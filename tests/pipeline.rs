//! Workspace integration test: a full end-to-end pipeline on synthetic country
//! data — generate, backbone, evaluate topology/quality/stability, and analyse
//! communities — across all crates.

use backboning_data::{
    CountryData, CountryDataConfig, CountryNetworkKind, OccupationData, OccupationDataConfig,
};
use backboning_eval::metrics::{coverage, quality_ratio, stability};
use backboning_eval::Method;
use backboning_netsci::community::label_propagation;
use backboning_netsci::{modularity, Partition};

fn small_country_data() -> CountryData {
    CountryData::generate(&CountryDataConfig::small())
}

#[test]
fn noise_corrected_pipeline_on_the_trade_network() {
    let data = small_country_data();
    let kind = CountryNetworkKind::Trade;
    let year0 = data.network(kind, 0);
    let year1 = data.network(kind, 1);

    let target = year0.edge_count() / 5;
    let edges = Method::NoiseCorrected.edge_set(year0, target).unwrap();
    assert_eq!(edges.len(), target);

    let backbone = year0.subgraph_with_edges(&edges).unwrap();
    // Topology: dropping 80% of the edges must not destroy the node set.
    let coverage_value = coverage(year0, &backbone);
    assert!(coverage_value > 0.5, "coverage {coverage_value} too low");

    // Quality: the backbone should explain the gravity model at least as well
    // as the full network (the Table II criterion), within a small tolerance.
    let quality = quality_ratio(&data, kind, year0, &edges).unwrap();
    assert!(quality > 0.9, "quality {quality} unexpectedly low");

    // Stability: the retained edges must be strongly correlated across years.
    let stability_value = stability(&edges, year0, year1).unwrap();
    assert!(stability_value > 0.6, "stability {stability_value} too low");
}

#[test]
fn all_methods_run_end_to_end_on_a_country_network() {
    let data = small_country_data();
    let graph = data.network(CountryNetworkKind::Flight, 0);
    let target = graph.edge_count() / 10;
    for method in Method::all() {
        match method.edge_set(graph, target) {
            Ok(edges) => {
                assert!(
                    !edges.is_empty(),
                    "{} returned an empty backbone",
                    method.short_name()
                );
                let backbone = graph.subgraph_with_edges(&edges).unwrap();
                assert_eq!(backbone.node_count(), graph.node_count());
            }
            Err(_) => {
                // Only the Doubly-Stochastic method may legitimately fail
                // (no feasible scaling), mirroring the "n/a" of the paper.
                assert_eq!(
                    method,
                    Method::DoublyStochastic,
                    "{} failed unexpectedly",
                    method.short_name()
                );
            }
        }
    }
}

#[test]
fn backboning_sharpens_community_structure_in_the_occupation_data() {
    let data = OccupationData::generate(&OccupationDataConfig::small());
    let classification = Partition::from_labels(data.major_group.clone());

    let full_modularity = modularity(&data.co_occurrence, &classification);
    let target = data.co_occurrence.edge_count() / 7;
    let nc_edges = Method::NoiseCorrected
        .edge_set(&data.co_occurrence, target)
        .unwrap();
    let backbone = data.co_occurrence.subgraph_with_edges(&nc_edges).unwrap();
    let backbone_modularity = modularity(&backbone, &classification);
    assert!(
        backbone_modularity > full_modularity,
        "backbone modularity {backbone_modularity} should exceed the hairball's {full_modularity}"
    );

    // Detected communities on the backbone should correlate with the
    // classification at least somewhat.
    let detected = label_propagation(&backbone, 3, 100);
    assert!(detected.community_count() > 1);
}

#[test]
fn quality_and_stability_are_defined_for_every_network_kind() {
    let data = small_country_data();
    for kind in CountryNetworkKind::all() {
        let graph = data.network(kind, 0);
        let target = (graph.edge_count() / 5).max(20);
        let edges = Method::NoiseCorrected.edge_set(graph, target).unwrap();
        let quality = quality_ratio(&data, kind, graph, &edges).unwrap();
        assert!(
            quality.is_finite() && quality > 0.0,
            "{}: quality {quality}",
            kind.name()
        );
        let stability_value = stability(&edges, graph, data.network(kind, 1)).unwrap();
        assert!(
            stability_value > 0.3,
            "{}: stability {stability_value} too low",
            kind.name()
        );
    }
}
