//! Workspace integration and property tests comparing the backboning methods
//! against each other on shared invariants.

use proptest::prelude::*;

use backboning::{BackboneExtractor, DisparityFilter, NaiveThreshold, NoiseCorrected};
use backboning_data::noisy_barabasi_albert;
use backboning_eval::metrics::jaccard_index;
use backboning_eval::Method;
use backboning_graph::{Direction, WeightedGraph};

#[test]
fn statistical_methods_beat_random_selection_on_noisy_synthetic_data() {
    let network = noisy_barabasi_albert(150, 3, 0.25, 11).unwrap();
    let true_edges = network.true_edge_indices();
    let k = network.true_edge_count;

    // A "random" baseline: take the first k edges in insertion order (insertion
    // order interleaves true and noise edges deterministically).
    let arbitrary: Vec<usize> = (0..k).collect();
    let arbitrary_recovery = jaccard_index(&arbitrary, &true_edges);

    for method in [
        Method::NoiseCorrected,
        Method::DisparityFilter,
        Method::NaiveThreshold,
    ] {
        let recovered = method.edge_set(&network.graph, k).unwrap();
        let recovery = jaccard_index(&recovered, &true_edges);
        assert!(
            recovery > arbitrary_recovery,
            "{} recovery {recovery} does not beat the arbitrary baseline {arbitrary_recovery}",
            method.short_name()
        );
    }
}

#[test]
fn noise_corrected_is_most_noise_resilient_on_average() {
    // The Figure 4 headline: averaged over noise levels, NC recovers at least
    // as much of the true network as DF and NT.
    let mut totals = [0.0f64; 3]; // NC, DF, NT
    let noise_levels = [0.1, 0.2, 0.3];
    for (run, &eta) in noise_levels.iter().enumerate() {
        let network = noisy_barabasi_albert(150, 3, eta, 100 + run as u64).unwrap();
        let truth = network.true_edge_indices();
        let k = network.true_edge_count;
        for (slot, method) in [
            Method::NoiseCorrected,
            Method::DisparityFilter,
            Method::NaiveThreshold,
        ]
        .iter()
        .enumerate()
        {
            let recovered = method.edge_set(&network.graph, k).unwrap();
            totals[slot] += jaccard_index(&recovered, &truth);
        }
    }
    assert!(
        totals[0] >= totals[1] - 1e-9,
        "NC ({}) should not trail DF ({})",
        totals[0],
        totals[1]
    );
    assert!(
        totals[0] >= totals[2] - 1e-9,
        "NC ({}) should not trail NT ({})",
        totals[0],
        totals[2]
    );
}

/// Strategy: a random small directed weighted graph as an edge list.
fn arbitrary_graph() -> impl Strategy<Value = WeightedGraph> {
    proptest::collection::vec(((0usize..12), (0usize..12), 0.1f64..100.0), 1..60).prop_map(
        |edges| {
            let mut graph = WeightedGraph::with_nodes(Direction::Directed, 12);
            for (source, target, weight) in edges {
                if source != target {
                    graph.add_edge(source, target, weight).unwrap();
                }
            }
            graph
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every method scores every edge exactly once, and thresholding never
    /// invents edges that were not in the original graph.
    #[test]
    fn scoring_covers_all_edges_and_filtering_is_a_subset(graph in arbitrary_graph()) {
        let extractors: Vec<Box<dyn BackboneExtractor>> = vec![
            Box::new(NoiseCorrected::default()),
            Box::new(DisparityFilter::new()),
            Box::new(NaiveThreshold::new()),
        ];
        for extractor in &extractors {
            let scored = extractor.score(&graph).unwrap();
            prop_assert_eq!(scored.len(), graph.edge_count());
            let kept = scored.top_k(graph.edge_count() / 2);
            prop_assert!(kept.len() <= graph.edge_count());
            for index in kept {
                prop_assert!(graph.edge(index).is_some());
            }
        }
    }

    /// The Noise-Corrected score threshold is monotone: raising delta never
    /// keeps more edges.
    #[test]
    fn nc_threshold_is_monotone(graph in arbitrary_graph()) {
        let scored = NoiseCorrected::default().score(&graph).unwrap();
        let relaxed = scored.filter(0.5).len();
        let medium = scored.filter(1.28).len();
        let strict = scored.filter(2.32).len();
        prop_assert!(relaxed >= medium);
        prop_assert!(medium >= strict);
    }

    /// Scaling all edge weights by a constant leaves the NC and DF rankings
    /// unchanged (both null models are share-based).
    #[test]
    fn rankings_are_scale_invariant(graph in arbitrary_graph(), factor in 2.0f64..50.0) {
        let mut scaled = WeightedGraph::with_nodes(Direction::Directed, graph.node_count());
        for edge in graph.edges() {
            scaled.add_edge(edge.source, edge.target, edge.weight * factor).unwrap();
        }
        if graph.edge_count() >= 4 {
            let k = graph.edge_count() / 2;
            for method in [Method::NoiseCorrected, Method::DisparityFilter] {
                let original: std::collections::HashSet<usize> =
                    method.edge_set(&graph, k).unwrap().into_iter().collect();
                let rescaled: std::collections::HashSet<usize> =
                    method.edge_set(&scaled, k).unwrap().into_iter().collect();
                // Allow at most one edge of slack for ties at the cut point.
                let overlap = original.intersection(&rescaled).count();
                prop_assert!(overlap + 1 >= k, "{}: overlap {overlap} of {k}", method.short_name());
            }
        }
    }
}
