//! Workspace integration test: every reproduction experiment runs end to end
//! on reduced configurations and produces well-formed reports.

use backboning_data::{
    CountryData, CountryDataConfig, CountryNetworkKind, OccupationData, OccupationDataConfig,
};
use backboning_eval::experiments::{
    case_study, fig2, fig4, fig5, fig6, fig7, fig8, fig9, table1, table2,
};
use backboning_eval::Method;

fn data() -> CountryData {
    CountryData::generate(&CountryDataConfig::small())
}

#[test]
fn figure2_report_is_well_formed() {
    let result = fig2::run(&data(), CountryNetworkKind::Business, &[1.0, 2.0, 3.0], 20);
    assert_eq!(result.distributions.len(), 3);
    assert!(result.render().contains("delta"));
}

#[test]
fn figure4_report_is_well_formed() {
    let result = fig4::run(&fig4::RecoveryConfig::small());
    assert!(!result.points.is_empty());
    assert!(result.render().contains("noise"));
}

#[test]
fn figure5_and_6_reports_cover_all_networks() {
    let data = data();
    let fig5_result = fig5::run(&data);
    assert_eq!(fig5_result.distributions.len(), 6);
    let fig6_result = fig6::run(&data);
    assert_eq!(fig6_result.correlations.len(), 6);
    assert!(fig5_result.render().contains("Business"));
    assert!(fig6_result.render().contains("Ownership"));
}

#[test]
fn table1_reports_positive_correlations() {
    let result = table1::run(&data());
    let positive = result
        .entries
        .iter()
        .filter(|e| e.correlation.is_some_and(|c| c > 0.0))
        .count();
    assert!(
        positive >= 5,
        "only {positive} of 6 networks validate positively"
    );
}

#[test]
fn figure7_and_8_sweeps_produce_values_for_fast_methods() {
    let data = data();
    let methods = vec![
        Method::NaiveThreshold,
        Method::DisparityFilter,
        Method::NoiseCorrected,
    ];
    let coverage = fig7::run(&data, &methods, &[0.1, 0.5]);
    assert_eq!(coverage.sweeps.len(), 6);
    let stability = fig8::run(&data, &methods, &[0.2]);
    assert_eq!(stability.sweeps.len(), 6);
    for sweep in &stability.sweeps {
        for point in &sweep.points {
            assert!(point.stability.iter().all(Option::is_some));
        }
    }
}

#[test]
fn table2_reports_quality_for_the_noise_corrected_backbone_everywhere() {
    let result = table2::run(
        &data(),
        &[Method::NaiveThreshold, Method::NoiseCorrected],
        0.25,
    );
    for kind in CountryNetworkKind::all() {
        let value = result
            .quality_of(Method::NoiseCorrected, kind)
            .unwrap_or_else(|| panic!("{} missing NC quality", kind.name()));
        assert!(value.is_finite() && value > 0.0);
    }
}

#[test]
fn figure9_scaling_is_measured() {
    let result = fig9::run(
        &[Method::NaiveThreshold, Method::NoiseCorrected],
        &[2_000, 8_000],
        usize::MAX,
        1,
    );
    let exponent = result.scaling_exponent(Method::NoiseCorrected).unwrap();
    assert!(
        exponent > 0.3 && exponent < 2.5,
        "implausible scaling exponent {exponent}"
    );
}

#[test]
fn case_study_report_is_well_formed() {
    let occupation_data = OccupationData::generate(&OccupationDataConfig::small());
    let result = case_study::run(&occupation_data, 0.15);
    assert_eq!(result.entries.len(), 3);
    assert!(result.render().contains("flow correlation"));
}
