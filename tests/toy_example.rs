//! Workspace integration test: the Figure 3 toy example, exercised through
//! the public APIs of the graph, backboning and eval crates together.

use backboning::{
    BackboneExtractor, DisparityFilter, HighSalienceSkeleton, MaximumSpanningTree, NaiveThreshold,
    NoiseCorrected,
};
use backboning_eval::experiments::fig3;
use backboning_graph::GraphBuilder;

#[test]
fn figure3_toy_example_reproduces_the_papers_contrast() {
    let result = fig3::run();
    let index_of = |a: usize, b: usize| {
        result
            .edges
            .iter()
            .position(|&(s, t, _)| (s, t) == (a, b) || (s, t) == (b, a))
            .expect("edge present in the toy graph")
    };
    let peripheral = index_of(1, 2);
    for hub_target in [1usize, 2usize] {
        let hub_edge = index_of(0, hub_target);
        assert!(
            result.nc_scores[peripheral] > result.nc_scores[hub_edge],
            "NC must rank the peripheral edge above the hub edge to node {hub_target}"
        );
        assert!(
            result.df_scores[hub_edge] >= result.df_scores[peripheral],
            "DF must keep the hub edge to node {hub_target}"
        );
    }
}

#[test]
fn every_method_scores_the_toy_graph_consistently() {
    let graph = fig3::toy_graph();
    let extractors: Vec<Box<dyn BackboneExtractor>> = vec![
        Box::new(NoiseCorrected::default()),
        Box::new(DisparityFilter::new()),
        Box::new(HighSalienceSkeleton::new()),
        Box::new(MaximumSpanningTree::new()),
        Box::new(NaiveThreshold::new()),
    ];
    for extractor in &extractors {
        let scored = extractor
            .score(&graph)
            .expect("method applies to the toy graph");
        assert_eq!(scored.len(), graph.edge_count(), "{}", extractor.name());
        // Selecting every edge reproduces the original edge count; selecting the
        // top half produces a strictly smaller backbone with the same node set.
        let all = scored.backbone_top_k(&graph, graph.edge_count()).unwrap();
        assert_eq!(all.edge_count(), graph.edge_count());
        let half = scored
            .backbone_top_k(&graph, graph.edge_count() / 2)
            .unwrap();
        assert_eq!(half.edge_count(), graph.edge_count() / 2);
        assert_eq!(half.node_count(), graph.node_count());
    }
}

#[test]
fn labels_survive_backbone_extraction() {
    let graph = GraphBuilder::undirected()
        .edge("hub", "a", 20.0)
        .edge("hub", "b", 20.0)
        .edge("hub", "c", 20.0)
        .edge("a", "b", 10.0)
        .build()
        .unwrap();
    let backbone = NoiseCorrected::default()
        .score(&graph)
        .unwrap()
        .backbone_top_k(&graph, 2)
        .unwrap();
    assert_eq!(backbone.node_count(), graph.node_count());
    assert!(backbone.node_by_label("hub").is_some());
    assert!(backbone.node_by_label("a").is_some());
}
