//! Quickstart: extract the Noise-Corrected backbone of a small noisy network.
//!
//! ```text
//! cargo run -p backboning-bench --example quickstart
//! ```

use backboning::{BackboneExtractor, DisparityFilter, NoiseCorrected, DELTA_P05};
use backboning_graph::GraphBuilder;

fn main() {
    // A tiny "hairball": a hub connected to everything plus one genuine
    // peripheral relationship (the Figure 3 toy example of the paper).
    let graph = GraphBuilder::undirected()
        .edge("hub", "alice", 20.0)
        .edge("hub", "bob", 20.0)
        .edge("hub", "carol", 20.0)
        .edge("hub", "dave", 20.0)
        .edge("hub", "erin", 20.0)
        .edge("alice", "bob", 10.0)
        .build()
        .expect("valid graph");

    println!(
        "original network: {} nodes, {} edges",
        graph.node_count(),
        graph.edge_count()
    );

    // Score every edge with the Noise-Corrected backbone. The score is the
    // number of standard deviations by which the edge exceeds its null-model
    // expectation, so filtering at DELTA_P05 ≈ 1.64 keeps edges significant at
    // roughly p < 0.05.
    let nc = NoiseCorrected::default();
    let scored = nc.score(&graph).expect("NC scores any weighted graph");
    println!("\nedge scores (standard deviations above the expectation):");
    for edge in scored.iter() {
        println!(
            "  {:>5} - {:<5}  weight {:>5.1}   score {:>7.2}",
            graph.label(edge.source).unwrap_or("?"),
            graph.label(edge.target).unwrap_or("?"),
            edge.weight,
            edge.score
        );
    }

    let backbone = scored
        .backbone(&graph, DELTA_P05)
        .expect("threshold filtering");
    println!(
        "\nNoise-Corrected backbone at delta = {DELTA_P05}: {} of {} edges kept",
        backbone.edge_count(),
        graph.edge_count()
    );
    for edge in backbone.edges() {
        println!(
            "  kept {} - {}",
            backbone.label(edge.source).unwrap_or("?"),
            backbone.label(edge.target).unwrap_or("?")
        );
    }

    // Compare with the Disparity Filter at the same backbone size.
    let df_backbone = DisparityFilter::new()
        .score(&graph)
        .expect("DF scores any weighted graph")
        .backbone_top_k(&graph, backbone.edge_count())
        .expect("top-k filtering");
    println!("\nDisparity Filter backbone of the same size keeps:");
    for edge in df_backbone.edges() {
        println!(
            "  kept {} - {}",
            df_backbone.label(edge.source).unwrap_or("?"),
            df_backbone.label(edge.target).unwrap_or("?")
        );
    }
    println!("\nNote how NC favours the alice-bob edge while DF favours the hub's spokes.");
}
