//! Case-study example: backbone the occupation skill co-occurrence network and
//! check how well it predicts occupation-switching flows (paper, Section VI).
//!
//! ```text
//! cargo run --release -p backboning-bench --example occupation_flows
//! ```

use backboning::{BackboneExtractor, DisparityFilter, NoiseCorrected};
use backboning_data::{OccupationData, OccupationDataConfig};
use backboning_eval::experiments::case_study;
use backboning_netsci::community::infomap;
use backboning_netsci::{modularity, Partition};

fn main() {
    let data = OccupationData::generate(&OccupationDataConfig::default());
    println!(
        "synthetic occupation data: {} occupations, {} skills, co-occurrence hairball with {} edges",
        data.occupation_count(),
        data.skills[0].len(),
        data.co_occurrence.edge_count()
    );

    // The full co-occurrence network is a hairball: the expert classification
    // has almost no modularity on it.
    let classification = Partition::from_labels(data.major_group.clone());
    println!(
        "modularity of the expert classification on the full hairball: {:.3}",
        modularity(&data.co_occurrence, &classification)
    );

    // Extract NC and DF backbones of equal size and inspect them.
    let target = data.co_occurrence.edge_count() / 7;
    let nc_backbone = NoiseCorrected::default()
        .score(&data.co_occurrence)
        .expect("NC scoring")
        .backbone_top_k(&data.co_occurrence, target)
        .expect("NC backbone");
    let df_backbone = DisparityFilter::new()
        .score(&data.co_occurrence)
        .expect("DF scoring")
        .backbone_top_k(&data.co_occurrence, target)
        .expect("DF backbone");

    for (label, backbone) in [
        ("Noise-Corrected", &nc_backbone),
        ("Disparity Filter", &df_backbone),
    ] {
        let result = infomap(backbone, 30);
        println!(
            "{label} backbone: {} edges, {} covered occupations, codelength {:.2} -> {:.2} bits ({:.1}% gain), classification modularity {:.3}",
            backbone.edge_count(),
            backbone.non_isolated_node_count(),
            result.baseline_codelength,
            result.codelength,
            result.compression_gain() * 100.0,
            modularity(backbone, &classification)
        );
    }

    // The full case-study table (including flow-prediction correlations).
    let result = case_study::run(&data, 0.15);
    println!("\n{}", result.render());
}
