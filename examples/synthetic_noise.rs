//! Synthetic-noise example: how well does each method recover a known network
//! as the noise level grows? (paper, Figure 4)
//!
//! ```text
//! cargo run --release -p backboning-bench --example synthetic_noise
//! ```

use backboning_data::noisy_barabasi_albert;
use backboning_eval::experiments::fig4::{run, RecoveryConfig};
use backboning_eval::Method;

fn main() {
    // Show a single instance first: how much noise does η = 0.2 inject?
    let instance = noisy_barabasi_albert(200, 3, 0.2, 1).expect("valid parameters");
    println!(
        "one synthetic instance at eta = 0.2: {} true edges buried in {} observed edges",
        instance.true_edge_count,
        instance.graph.edge_count()
    );

    // Then the full sweep of Figure 4.
    let config = RecoveryConfig {
        repetitions: 3,
        ..RecoveryConfig::default()
    };
    let result = run(&config);
    println!("\nrecovery (Jaccard similarity with the true edge set) per noise level:\n");
    println!("{}", result.render());

    let nc = result
        .average_recovery(Method::NoiseCorrected)
        .unwrap_or(f64::NAN);
    let nt = result
        .average_recovery(Method::NaiveThreshold)
        .unwrap_or(f64::NAN);
    let df = result
        .average_recovery(Method::DisparityFilter)
        .unwrap_or(f64::NAN);
    println!("average recovery across noise levels:  NC {nc:.3}   DF {df:.3}   NT {nt:.3}");
}
