//! Country-network example: extract backbones of the synthetic Trade network
//! with every method and compare their topology, quality and stability.
//!
//! ```text
//! cargo run --release -p backboning-bench --example country_trade
//! ```

use backboning_data::{CountryData, CountryDataConfig, CountryNetworkKind};
use backboning_eval::metrics::{coverage, quality_ratio, stability};
use backboning_eval::{Method, TextTable};

fn main() {
    let data = CountryData::generate(&CountryDataConfig {
        country_count: 80,
        ..CountryDataConfig::default()
    });
    let kind = CountryNetworkKind::Trade;
    let year0 = data.network(kind, 0);
    let year1 = data.network(kind, 1);
    println!(
        "synthetic Trade network: {} countries, {} edges, total weight {:.3e}",
        year0.node_count(),
        year0.edge_count(),
        year0.total_weight()
    );

    let target_edges = year0.edge_count() / 5;
    let mut table = TextTable::new(vec!["method", "edges", "coverage", "quality", "stability"]);
    for method in Method::all() {
        let Ok(edges) = method.edge_set(year0, target_edges) else {
            table.add_row(vec![
                method.full_name().to_string(),
                "n/a".into(),
                "n/a".into(),
                "n/a".into(),
                "n/a".into(),
            ]);
            continue;
        };
        let backbone = year0
            .subgraph_with_edges(&edges)
            .expect("valid edge indices");
        let coverage_value = coverage(year0, &backbone);
        let quality_value = quality_ratio(&data, kind, year0, &edges).unwrap_or(f64::NAN);
        let stability_value = stability(&edges, year0, year1).unwrap_or(f64::NAN);
        table.add_row(vec![
            method.full_name().to_string(),
            edges.len().to_string(),
            format!("{coverage_value:.3}"),
            format!("{quality_value:.3}"),
            format!("{stability_value:.3}"),
        ]);
    }
    println!("\nbackbones restricted to ~{target_edges} edges:\n");
    println!("{}", table.render());
    println!(
        "Quality > 1 means the backbone explains the gravity model better than the full network."
    );
}
