//! Incremental-rescore benchmark: maintain the `"patch"` section of
//! `BENCH_backbones.json`.
//!
//! One row per (substrate, method): the median wall time of a full
//! from-scratch scoring pass next to the median wall time of
//! [`delta_rescore`] after a small reweight batch, with the speedup between
//! them. Before timing anything the harness asserts the two paths agree
//! bit-for-bit — a fast wrong answer must never make it into the snapshot.
//!
//! Like the `"matrix"` section, the section is maintained by textual upsert
//! (key: substrate × method × batch size × threads) so the `bench_patch`
//! binary can refresh its rows without touching anything else in the
//! document, and `bench_snapshot` carries the section over untouched.

use std::time::Instant;

use backboning::{apply_batch, delta_rescore, delta_rescore_in_place, DeltaStrategy, Method};
use backboning_graph::delta::{DeltaOp, DeltaOpKind};
use backboning_graph::{CsrGraph, DeltaBatch};

/// One row of the `"patch"` section.
#[derive(Debug, Clone, PartialEq)]
pub struct PatchRow {
    /// Substrate label (`ba_100k`, …).
    pub substrate: String,
    /// Node count of the substrate.
    pub nodes: usize,
    /// Edge count of the substrate.
    pub edges: usize,
    /// Method cache key (`nt`, `df`, `nc`, …).
    pub method: String,
    /// The method's [`DeltaStrategy`], as a stable label.
    pub strategy: String,
    /// Edges reweighted by the benchmark batch.
    pub batch_edges: usize,
    /// Worker threads both paths ran with.
    pub threads: usize,
    /// Median wall time of a from-scratch scoring pass, in milliseconds.
    pub full_median_ms: f64,
    /// Median wall time of the incremental rescore, in milliseconds.
    pub delta_median_ms: f64,
    /// `full_median_ms / delta_median_ms`.
    pub speedup: f64,
}

/// The stable label of a [`DeltaStrategy`] used in the snapshot rows.
pub fn strategy_name(strategy: DeltaStrategy) -> &'static str {
    match strategy {
        DeltaStrategy::EdgeLocal => "edge-local",
        DeltaStrategy::NodeLocal => "node-local",
        DeltaStrategy::TotalCoupled => "total-coupled",
        DeltaStrategy::Global => "global",
        DeltaStrategy::Invalidate => "invalidate",
    }
}

/// Build the benchmark delta: `batch_edges` reweights spread evenly across
/// the edge-id range (old weight + 1), addressed by the unlabeled graph's
/// numeric node ids.
pub fn reweight_batch(graph: &CsrGraph, batch_edges: usize) -> DeltaBatch {
    let stride = (graph.edge_count() / batch_edges).max(1);
    let ops = (0..batch_edges)
        .filter_map(|k| graph.edge(k * stride))
        .enumerate()
        .map(|(index, edge)| DeltaOp {
            line: index + 1,
            kind: DeltaOpKind::Reweight {
                source: edge.source.to_string(),
                target: edge.target.to_string(),
                weight: edge.weight + 1.0,
            },
        })
        .collect();
    DeltaBatch { ops }
}

/// Median of `runs` timed executions, in milliseconds.
fn timed_runs(runs: usize, mut work: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            work();
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    samples[samples.len() / 2]
}

/// Measure every method's full-pass vs incremental-rescore wall time on one
/// substrate after a `batch_edges`-edge reweight batch. Fails (rather than
/// recording a row) if the incremental scores are not identical to the
/// from-scratch ones.
pub fn measure_patch_rescore(
    substrate: &str,
    graph: &CsrGraph,
    methods: &[Method],
    batch_edges: usize,
    runs: usize,
    threads: usize,
) -> Result<Vec<PatchRow>, String> {
    let batch = reweight_batch(graph, batch_edges);
    let (patched, effect) = apply_batch(graph, &batch)
        .map_err(|e| format!("{substrate}: applying the benchmark batch: {e}"))?;
    let mut rows = Vec::new();
    for &method in methods {
        let name = method.cache_key();
        let previous = method
            .score_with_threads(graph, threads)
            .map_err(|e| format!("{substrate}/{name}: base scoring: {e}"))?;
        let fresh = method
            .score_with_threads(&patched, threads)
            .map_err(|e| format!("{substrate}/{name}: from-scratch scoring: {e}"))?;
        let incremental = delta_rescore(method, &patched, &previous, &effect, threads)
            .map_err(|e| format!("{substrate}/{name}: incremental rescore: {e}"))?;
        let in_place = delta_rescore_in_place(method, &patched, previous.clone(), &effect, threads)
            .map_err(|e| format!("{substrate}/{name}: in-place rescore: {e}"))?;
        if incremental != fresh || in_place != fresh {
            return Err(format!(
                "{substrate}/{name}: incremental scores differ from from-scratch scoring \
                 — refusing to record a speedup for a wrong answer"
            ));
        }
        let full_median_ms = timed_runs(runs, || {
            let _ = method.score_with_threads(&patched, threads);
        });
        // Time the ownership-threading loop a maintained score state uses:
        // each iteration consumes the state and gets the updated one back
        // (idempotent here — the rescore set is recomputed from the patched
        // graph — so every iteration does the full incremental work).
        let mut state = Some(previous);
        let delta_median_ms = timed_runs(runs, || {
            let next = delta_rescore_in_place(
                method,
                &patched,
                state.take().expect("state is always returned"),
                &effect,
                threads,
            )
            .expect("rescore succeeded above");
            state = Some(next);
        });
        rows.push(PatchRow {
            substrate: substrate.to_string(),
            nodes: graph.node_count(),
            edges: graph.edge_count(),
            method: name,
            strategy: strategy_name(method.delta_strategy()).to_string(),
            batch_edges,
            threads,
            full_median_ms,
            delta_median_ms,
            speedup: full_median_ms / delta_median_ms,
        });
    }
    Ok(rows)
}

/// Render one row as a single JSON object line (4-space indent, no trailing
/// comma — the section renderer adds those).
pub fn render_row(row: &PatchRow) -> String {
    format!(
        "{{\"substrate\": \"{}\", \"nodes\": {}, \"edges\": {}, \"method\": \"{}\", \
         \"strategy\": \"{}\", \"batch_edges\": {}, \"threads\": {}, \
         \"full_median_ms\": {:.3}, \"delta_median_ms\": {:.6}, \"speedup\": {:.1}}}",
        row.substrate,
        row.nodes,
        row.edges,
        row.method,
        row.strategy,
        row.batch_edges,
        row.threads,
        row.full_median_ms,
        row.delta_median_ms,
        row.speedup,
    )
}

fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let marker = format!("\"{key}\": ");
    let start = line.find(&marker)? + marker.len();
    let rest = &line[start..];
    if let Some(quoted) = rest.strip_prefix('"') {
        Some(&quoted[..quoted.find('"')?])
    } else {
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        Some(rest[..end].trim())
    }
}

/// Parse a rendered row line back into a [`PatchRow`] (used by the upsert
/// merge and `bench_snapshot`'s carry-over). Returns `None` on any
/// malformed field.
pub fn parse_row(line: &str) -> Option<PatchRow> {
    let line = line.trim().trim_end_matches(',');
    if !line.starts_with('{') || !line.ends_with('}') {
        return None;
    }
    Some(PatchRow {
        substrate: field(line, "substrate")?.to_string(),
        nodes: field(line, "nodes")?.parse().ok()?,
        edges: field(line, "edges")?.parse().ok()?,
        method: field(line, "method")?.to_string(),
        strategy: field(line, "strategy")?.to_string(),
        batch_edges: field(line, "batch_edges")?.parse().ok()?,
        threads: field(line, "threads")?.parse().ok()?,
        full_median_ms: field(line, "full_median_ms")?.parse().ok()?,
        delta_median_ms: field(line, "delta_median_ms")?.parse().ok()?,
        speedup: field(line, "speedup")?.parse().ok()?,
    })
}

const SECTION_OPEN: &str = "  \"patch\": [\n";
const SECTION_CLOSE: &str = "\n  ]";

/// Extract the rows of an existing `"patch"` section, oldest first.
/// Returns an empty vector when the document has no section yet.
pub fn extract_rows(json: &str) -> Vec<PatchRow> {
    let Some(start) = json.find(SECTION_OPEN) else {
        return Vec::new();
    };
    let body_start = start + SECTION_OPEN.len();
    let Some(body_len) = json[body_start..].find(SECTION_CLOSE) else {
        return Vec::new();
    };
    json[body_start..body_start + body_len]
        .lines()
        .filter_map(parse_row)
        .collect()
}

/// Merge new rows over existing ones: a new row replaces the existing row
/// with the same (substrate, method, batch_edges, threads) key, otherwise
/// appends.
pub fn merge_rows(existing: Vec<PatchRow>, new_rows: Vec<PatchRow>) -> Vec<PatchRow> {
    let mut merged = existing;
    for row in new_rows {
        let key = (
            row.substrate.clone(),
            row.method.clone(),
            row.batch_edges,
            row.threads,
        );
        match merged.iter_mut().find(|existing| {
            (
                existing.substrate.clone(),
                existing.method.clone(),
                existing.batch_edges,
                existing.threads,
            ) == key
        }) {
            Some(slot) => *slot = row,
            None => merged.push(row),
        }
    }
    merged
}

/// Remove the `"patch"` section (and the comma that attached it) from a
/// rendered snapshot document, returning valid JSON.
pub fn strip_patch_section(json: &str) -> String {
    let Some(start) = json.find(SECTION_OPEN) else {
        return json.to_string();
    };
    let Some(close) = json[start..].find(SECTION_CLOSE) else {
        return json.to_string();
    };
    let mut end = start + close + SECTION_CLOSE.len();
    if json[end..].starts_with('\n') {
        end += 1;
    }
    let head = json[..start].trim_end_matches('\n');
    let head = head.strip_suffix(',').unwrap_or(head);
    format!("{head}\n{}", &json[end..])
}

/// Return `json` with its `"patch"` section replaced by `rows` (or with a
/// new section appended as the last key when none exists). `json` must be a
/// rendered snapshot document — an object ending in `}`.
pub fn with_patch_section(json: &str, rows: &[PatchRow]) -> String {
    let base = strip_patch_section(json);
    let trimmed = base.trim_end();
    let body = trimmed
        .strip_suffix('}')
        .expect("snapshot document ends with a closing brace")
        .trim_end();
    if rows.is_empty() {
        return format!("{body}\n}}\n");
    }
    let rendered: Vec<String> = rows
        .iter()
        .map(|row| format!("    {}", render_row(row)))
        .collect();
    let joiner = if body.trim_end().ends_with('{') {
        ""
    } else {
        ","
    };
    format!(
        "{body}{joiner}\n{}{}{}\n}}\n",
        SECTION_OPEN,
        rendered.join(",\n"),
        SECTION_CLOSE
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use backboning_graph::generators::barabasi_albert_csr;

    fn sample_row() -> PatchRow {
        PatchRow {
            substrate: "ba_100k".to_string(),
            nodes: 100_000,
            edges: 299_994,
            method: "nt".to_string(),
            strategy: "edge-local".to_string(),
            batch_edges: 16,
            threads: 1,
            full_median_ms: 15.877,
            delta_median_ms: 0.021,
            speedup: 756.0,
        }
    }

    #[test]
    fn rows_round_trip_through_render_and_parse() {
        let row = sample_row();
        assert_eq!(parse_row(&render_row(&row)), Some(row.clone()));
        assert_eq!(parse_row(&format!("    {},", render_row(&row))), Some(row));
        assert_eq!(parse_row("not a row"), None);
    }

    #[test]
    fn section_insert_extract_strip_round_trip() {
        let base = "{\n  \"entries\": [\n    {\"x\": 1}\n  ]\n}\n";
        let rows = vec![sample_row()];
        let with_section = with_patch_section(base, &rows);
        assert!(with_section.contains("\"patch\": ["));
        assert_eq!(extract_rows(&with_section), rows);
        assert_eq!(strip_patch_section(&with_section), base);
        assert_eq!(strip_patch_section(base), base);
        // Upsert: same key replaces, new key appends.
        let mut faster = sample_row();
        faster.delta_median_ms = 0.01;
        let mut other = sample_row();
        other.method = "df".to_string();
        let merged = merge_rows(rows, vec![faster.clone(), other.clone()]);
        assert_eq!(merged, vec![faster, other]);
    }

    #[test]
    fn measured_rows_pin_bit_identity_on_a_small_substrate() {
        let graph = barabasi_albert_csr(300, 3, 7).unwrap();
        let methods = [
            Method::parse("naive").unwrap(),
            Method::parse("df").unwrap(),
            Method::parse("nc").unwrap(),
        ];
        let rows = measure_patch_rescore("ba_300", &graph, &methods, 16, 1, 1).unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].strategy, "edge-local");
        assert_eq!(rows[1].strategy, "node-local");
        assert_eq!(rows[2].strategy, "total-coupled");
        for row in &rows {
            assert_eq!(row.batch_edges, 16);
            assert!(row.full_median_ms > 0.0 && row.delta_median_ms > 0.0);
        }
    }
}
