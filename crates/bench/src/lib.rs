//! # backboning-bench
//!
//! Reproduction binaries, Criterion benchmarks, runnable examples and
//! workspace-spanning integration tests for the `backboning-rs` workspace.
//!
//! One binary per table/figure of *Network Backboning with Noisy Data*
//! (Coscia & Neffke, ICDE 2017):
//!
//! ```text
//! cargo run --release -p backboning-bench --bin fig2_thresholds
//! cargo run --release -p backboning-bench --bin fig3_toy
//! cargo run --release -p backboning-bench --bin fig4_recovery
//! cargo run --release -p backboning-bench --bin fig5_weight_distributions
//! cargo run --release -p backboning-bench --bin fig6_local_correlation
//! cargo run --release -p backboning-bench --bin table1_validation
//! cargo run --release -p backboning-bench --bin fig7_coverage
//! cargo run --release -p backboning-bench --bin table2_quality
//! cargo run --release -p backboning-bench --bin fig8_stability
//! cargo run --release -p backboning-bench --bin fig9_scalability
//! cargo run --release -p backboning-bench --bin case_study
//! cargo run --release -p backboning-bench --bin reproduce_all
//! ```
//!
//! The library part only holds shared configuration helpers so that every
//! binary (and the integration tests) evaluates the same synthetic datasets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod loadtest;
pub mod matrix;
pub mod patchbench;

use backboning_data::{CountryData, CountryDataConfig, OccupationData, OccupationDataConfig};
use backboning_eval::Method;

/// Whether the `BACKBONING_SMALL` environment variable asks for the reduced
/// experiment sizes (used by smoke tests and CI).
pub fn small_mode() -> bool {
    std::env::var("BACKBONING_SMALL").is_ok_and(|value| value != "0" && !value.is_empty())
}

/// The country-data configuration used by all reproduction binaries: the
/// full-size synthetic world, or the reduced one in small mode.
pub fn country_config() -> CountryDataConfig {
    if small_mode() {
        CountryDataConfig::small()
    } else {
        CountryDataConfig::default()
    }
}

/// Generate the country dataset used by the reproduction binaries.
pub fn country_data() -> CountryData {
    CountryData::generate(&country_config())
}

/// The occupation-data configuration used by the case-study binary.
pub fn occupation_config() -> OccupationDataConfig {
    if small_mode() {
        OccupationDataConfig::small()
    } else {
        OccupationDataConfig::default()
    }
}

/// Generate the occupation dataset used by the case-study binary.
pub fn occupation_data() -> OccupationData {
    OccupationData::generate(&occupation_config())
}

/// The methods compared by the reproduction binaries: the paper's six in
/// full mode, or the four fast ones in small mode (the structural methods —
/// HSS in particular — are expensive on the larger configuration).
pub fn paper_methods() -> Vec<Method> {
    if small_mode() {
        Method::scalable().to_vec()
    } else {
        Method::all().to_vec()
    }
}

/// The edge shares swept by the coverage and stability reproductions.
pub fn sweep_shares() -> Vec<f64> {
    if small_mode() {
        vec![0.05, 0.2, 0.5]
    } else {
        vec![0.01, 0.02, 0.05, 0.1, 0.2, 0.3, 0.5, 0.75, 1.0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configurations_are_consistent() {
        let config = country_config();
        assert!(config.years >= 2);
        assert!(config.country_count >= 50);
        let shares = sweep_shares();
        assert!(!shares.is_empty());
        assert!(shares.iter().all(|&s| s > 0.0 && s <= 1.0));
    }
}
