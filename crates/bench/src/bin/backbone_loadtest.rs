//! Soak a running backboning server and cross-check its `/metrics` against
//! the client side — the observability layer's end-to-end test under real
//! concurrency.
//!
//! ```text
//! backbone_loadtest --addr 127.0.0.1:4817 [--graph NAME] [--method nc]
//!                   [--top-share 0.2] [--clients 4] [--requests 25]
//!                   [--churn]
//! ```
//!
//! `--requests` is per client. With `--graph` the mix alternates the cached
//! backbone summary route (byte-identity asserted on every response) with
//! `/health`; without it only `/health` is soaked. The binary exits
//! non-zero when any cross-check fails: a non-200 response, diverging
//! response bytes, a `/metrics` count that disagrees with the client-side
//! count, or a server quantile more than one histogram bucket above the
//! client-observed one. `ci.sh` runs it against the smoke server.
//!
//! With `--churn` the binary instead runs the concurrent-churn soak
//! ([`backboning_bench::loadtest::run_churn_soak`]): it uploads its own
//! substrate, races `--clients` readers (`--requests` reads each) against
//! two writers streaming `PATCH` deltas, and asserts every response is
//! byte-identical to the from-scratch backbone of some reachable weight
//! state, with the `/metrics` patch counters matching exactly.

use std::net::{SocketAddr, ToSocketAddrs};

use backboning_bench::loadtest::{
    run_churn_soak, run_loadtest, ChurnConfig, LoadTarget, LoadtestConfig,
};

fn usage() -> String {
    "usage: backbone_loadtest --addr HOST:PORT [--graph NAME] [--method M] \
     [--top-share F] [--clients N] [--requests N] [--churn]"
        .to_string()
}

/// What the binary was asked to run: the route-mix soak or the churn soak.
enum Mode {
    Soak(LoadtestConfig),
    Churn(ChurnConfig),
}

fn parse_config() -> Result<Mode, String> {
    let mut addr: Option<SocketAddr> = None;
    let mut graph: Option<String> = None;
    let mut method = "nc".to_string();
    let mut top_share = "0.2".to_string();
    let mut clients = 4usize;
    let mut requests = 25usize;
    let mut churn = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value_for = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag}: missing value\n{}", usage()))
        };
        match arg.as_str() {
            "--addr" => {
                let text = value_for(&arg)?;
                addr = Some(
                    text.to_socket_addrs()
                        .map_err(|e| format!("--addr {text}: {e}"))?
                        .next()
                        .ok_or_else(|| format!("--addr {text}: no address resolved"))?,
                );
            }
            "--graph" => graph = Some(value_for(&arg)?),
            "--method" => method = value_for(&arg)?,
            "--top-share" => top_share = value_for(&arg)?,
            "--clients" => {
                clients = value_for(&arg)?
                    .parse()
                    .map_err(|e| format!("--clients: {e}"))?;
            }
            "--requests" => {
                requests = value_for(&arg)?
                    .parse()
                    .map_err(|e| format!("--requests: {e}"))?;
            }
            "--churn" => churn = true,
            "-h" | "--help" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}`\n{}", usage())),
        }
    }
    let addr = addr.ok_or_else(|| format!("--addr is required\n{}", usage()))?;

    if churn {
        return Ok(Mode::Churn(ChurnConfig {
            addr,
            readers: clients,
            reads_per_reader: requests,
        }));
    }

    let mut targets = Vec::new();
    if let Some(name) = &graph {
        targets.push(LoadTarget {
            path: format!(
                "/graphs/{name}/backbone?method={method}&top_share={top_share}&output=summary"
            ),
            route: "/graphs/{name}/backbone".to_string(),
            expect_identical: true,
        });
    }
    targets.push(LoadTarget {
        path: "/health".to_string(),
        route: "/health".to_string(),
        // /health reports live cache counters, so its body may change
        // between requests.
        expect_identical: false,
    });
    Ok(Mode::Soak(LoadtestConfig {
        addr,
        clients,
        requests_per_client: requests,
        targets,
    }))
}

fn main() {
    let mode = match parse_config() {
        Ok(mode) => mode,
        Err(message) => {
            eprintln!("backbone_loadtest: {message}");
            std::process::exit(2);
        }
    };
    let outcome = match mode {
        Mode::Soak(config) => run_loadtest(&config).map(|report| report.render_table()),
        Mode::Churn(config) => run_churn_soak(&config).map(|report| report.render_table()),
    };
    match outcome {
        Ok(table) => print!("{table}"),
        Err(message) => {
            eprintln!("backbone_loadtest: FAILED: {message}");
            std::process::exit(1);
        }
    }
}
