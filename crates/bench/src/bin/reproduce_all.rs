//! Run every reproduction experiment in sequence and print the combined
//! report (the source of `EXPERIMENTS.md`).
//!
//! `BACKBONING_SMALL=1 cargo run -p backboning-bench --bin reproduce_all`
//! runs the reduced configuration in a couple of minutes; the default
//! configuration is meant to be run with `--release`.

use backboning_bench::{country_data, occupation_data, paper_methods, small_mode, sweep_shares};
use backboning_data::CountryNetworkKind;
use backboning_eval::experiments::{
    case_study, fig2, fig3, fig4, fig5, fig6, fig7, fig8, fig9, table1, table2,
};
use backboning_eval::Method;

fn main() {
    let small = small_mode();
    let data = country_data();
    // Every sweep below scores and selects through the shared
    // `backboning::Pipeline` — the same code the `backbone` CLI serves.
    let methods = paper_methods();

    println!("================================================================");
    println!("Figure 2 — threshold distributions");
    println!("================================================================");
    for kind in [
        CountryNetworkKind::CountrySpace,
        CountryNetworkKind::Business,
    ] {
        println!("{}", fig2::run(&data, kind, &[1.0, 2.0, 3.0], 25).render());
    }

    println!("================================================================");
    println!("Figure 3 — toy example");
    println!("================================================================");
    println!("{}", fig3::run().render());

    println!("================================================================");
    println!("Figure 4 — recovery under noise");
    println!("================================================================");
    let fig4_config = if small {
        fig4::RecoveryConfig {
            nodes: 100,
            repetitions: 1,
            ..fig4::RecoveryConfig::default()
        }
    } else {
        fig4::RecoveryConfig::default()
    };
    println!("{}", fig4::run(&fig4_config).render());

    println!("================================================================");
    println!("Figure 5 — edge weight distributions");
    println!("================================================================");
    println!("{}", fig5::run(&data).render());

    println!("================================================================");
    println!("Figure 6 — local weight correlation");
    println!("================================================================");
    println!("{}", fig6::run(&data).render());

    println!("================================================================");
    println!("Table I — variance validation");
    println!("================================================================");
    println!("{}", table1::run(&data).render());

    println!("================================================================");
    println!("Figure 7 — coverage");
    println!("================================================================");
    println!("{}", fig7::run(&data, &methods, &sweep_shares()).render());

    println!("================================================================");
    println!("Table II — predictive quality");
    println!("================================================================");
    println!("{}", table2::run(&data, &methods, 0.2).render());

    println!("================================================================");
    println!("Figure 8 — stability");
    println!("================================================================");
    println!("{}", fig8::run(&data, &methods, &sweep_shares()).render());

    println!("================================================================");
    println!("Figure 9 — scalability");
    println!("================================================================");
    let (sizes, slow_limit): (Vec<usize>, usize) = if small {
        (vec![5_000, 20_000], 2_000)
    } else {
        (vec![25_000, 100_000, 400_000, 1_600_000], 4_000)
    };
    println!(
        "{}",
        fig9::run(&Method::all(), &sizes, slow_limit, 9).render()
    );

    println!("================================================================");
    println!("Section VI — occupation case study");
    println!("================================================================");
    println!("{}", case_study::run(&occupation_data(), 0.15).render());
}
