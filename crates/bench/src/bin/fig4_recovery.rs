//! Reproduce Figure 4: recovery of the true backbone of synthetic
//! Barabási–Albert networks under increasing noise, for all six methods.

use backboning_bench::small_mode;
use backboning_eval::experiments::fig4::{self, RecoveryConfig};

fn main() {
    let config = if small_mode() {
        RecoveryConfig {
            repetitions: 1,
            nodes: 100,
            ..RecoveryConfig::default()
        }
    } else {
        RecoveryConfig::default()
    };
    println!(
        "Figure 4 — recovery (Jaccard) of the true BA backbone, {} nodes, {} repetitions",
        config.nodes, config.repetitions
    );
    let result = fig4::run(&config);
    println!("{}", result.render());
}
