//! Reproduce Figure 6: edge weight vs average neighbouring edge weight
//! (log–log Pearson correlation) for the six country networks.

use backboning_bench::country_data;
use backboning_eval::experiments::fig6;

fn main() {
    let data = country_data();
    let result = fig6::run(&data);
    println!("Figure 6 — local correlation of edge weights");
    println!("{}", result.render());
}
