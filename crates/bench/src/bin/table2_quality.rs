//! Reproduce Table II: the improvement in predictive power (OLS R² ratio)
//! when restricting the gravity-style models to each method's backbone.

use backboning_bench::{country_data, paper_methods};
use backboning_eval::experiments::table2;
use backboning_eval::Method;

fn main() {
    let data = country_data();
    let result = table2::run(&data, &paper_methods(), 0.2);
    println!("Table II — predictive quality R²(backbone) / R²(full network)");
    println!("{}", result.render());
    if result.method_dominates(Method::NoiseCorrected) {
        println!(
            "The Noise-Corrected backbone has the best quality on every network (as in the paper)."
        );
    } else {
        println!("Note: the Noise-Corrected backbone is not dominant on every synthetic network in this run.");
    }
}
