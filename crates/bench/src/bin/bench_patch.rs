//! Refresh the `"patch"` section of `BENCH_backbones.json`: incremental
//! rescoring after a small PATCH batch vs scoring from scratch.
//!
//! ```text
//! cargo run --release -p backboning_bench --bin bench_patch
//! ```
//!
//! The workload is the acceptance scenario of the dynamic-graph work: a
//! 16-edge reweight batch on the 100k-node Barabási–Albert substrate (the
//! same `ba_100k` the `large_substrates` section measures), rescored with
//! `delta_rescore` for one method per [`DeltaStrategy`] tier — `nt`
//! (edge-local), `df` (node-local) and `nc` (total-coupled, an honest ~1×:
//! every NC score couples to the grand total, so the exact incremental path
//! is a full pass by construction). Bit-identity against from-scratch
//! scoring is asserted before any timing is recorded.
//!
//! The section is upserted textually (see [`backboning_bench::patchbench`]),
//! so the rest of the snapshot document — including rows measured under
//! `BENCH_SCALE=full` — is preserved verbatim. Environment: `BENCH_RUNS`
//! (default 5) timed runs per cell, median reported.
//!
//! [`DeltaStrategy`]: backboning::DeltaStrategy

use backboning::Method;
use backboning_bench::patchbench;
use backboning_graph::generators::barabasi_albert_csr;

fn main() {
    let runs: usize = std::env::var("BENCH_RUNS")
        .ok()
        .and_then(|value| value.parse().ok())
        .unwrap_or(5);
    let graph = barabasi_albert_csr(100_000, 3, 4242).expect("valid BA parameters");
    let methods = [
        Method::parse("naive").expect("known method"),
        Method::parse("df").expect("known method"),
        Method::parse("nc").expect("known method"),
    ];
    let rows = match patchbench::measure_patch_rescore("ba_100k", &graph, &methods, 16, runs, 1) {
        Ok(rows) => rows,
        Err(message) => {
            eprintln!("bench_patch: {message}");
            std::process::exit(1);
        }
    };

    let path = "BENCH_backbones.json";
    let existing = std::fs::read_to_string(path).unwrap_or_else(|_| "{\n}\n".to_string());
    let merged = patchbench::merge_rows(patchbench::extract_rows(&existing), rows.clone());
    let json = patchbench::with_patch_section(&existing, &merged);
    std::fs::write(path, &json).expect("write BENCH_backbones.json");

    for row in &rows {
        println!(
            "patch {} {} ({}): full {:.3} ms vs delta {:.3} ms = {:.1}x \
             (16-edge reweight, bit-identical scores)",
            row.substrate,
            row.method,
            row.strategy,
            row.full_median_ms,
            row.delta_median_ms,
            row.speedup
        );
    }
    println!("patch section upserted into {path}");
}
