//! Perf smoke snapshot: time every backbone extractor on fixed synthetic
//! substrates and write `BENCH_backbones.json` at the repo root, so each CI
//! run leaves a comparable perf trajectory point behind.
//!
//! Substrates (fixed seeds, so every run measures the same graphs):
//!
//! * `ba_2000` — Barabási–Albert, 2000 nodes, m = 3 (the scalability wall the
//!   paper hit with the High Salience Skeleton);
//! * `er_2000` — Erdős–Rényi, 2000 nodes, ~6000 weighted edges;
//! * `complete_200` — a dense complete graph where the Doubly-Stochastic
//!   scaling is guaranteed to exist.
//!
//! Besides the six methods, the snapshot times the HSS seed adjacency path
//! against the parallel CSR engine at 4 workers and reports the speedup —
//! the headline number of the "HSS doesn't scale" fix.
//!
//! Since PR 4 the snapshot also measures the HTTP serving subsystem
//! (`backboning_server`) on `ba_2000`: for NC and HSS it records the cold
//! first request (scoring included), the cached-request median and its
//! requests/sec, the in-process pipeline-from-scratch median, and the
//! resulting cache speedup — the "sweeping thresholds costs microseconds"
//! claim, measured end-to-end through real loopback sockets.
//!
//! Since PR 5 the snapshot also times the `backbone compare` evaluation
//! engine (`backboning_eval::Comparison`) on `er_2000`: the cold run (every
//! method scored plus the noise Monte Carlo) against the cache-backed run
//! (`run_with_scores` over pre-scored edges — what the server's
//! `/graphs/{name}/compare` route does after the first request).
//!
//! Since PR 6 the snapshot also measures the compact u32/CSR core at scale:
//! `ba_100k`/`er_100k` (always) and `ba_1m`/`er_1m` (1M nodes, 3M/10M
//! edges; only with `BENCH_SCALE=full`, which is how the committed
//! `BENCH_backbones.json` is produced) are generated straight into
//! [`backboning_graph::CsrGraph`] and scored with the four scalable
//! methods (NT, MST, DF, NC), recording the CSR footprint and the process
//! memory high-water mark (`VmHWM`) alongside each median. The substrates
//! run smallest-first, so each entry's HWM bounds that substrate's peak.
//!
//! Since PR 7 the scalable-method set includes the sampled-root `hss-approx`
//! estimator, so the large substrates carry approximate-HSS rows, and a
//! dedicated `hss` section records (a) the estimator's max per-edge
//! deviation from exact HSS on the 2k substrates next to its 95% Hoeffding
//! union bound, and (b) exact HSS timed at 100k on the unit-weight BA
//! substrate under `BENCH_SCALE=full` — with explicit `"skipped": true`
//! markers where the exact skeleton is deliberately not run. Every
//! `large_substrates` row now also reports its resolved worker count.
//!
//! Environment: `BENCH_RUNS` (default 3) timed runs per entry, median
//! reported; `BENCH_SCALE=full` adds the million-node substrates;
//! `BACKBONING_THREADS` steers the auto-threaded entries.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Instant;

use backboning::{HighSalienceSkeleton, Pipeline, ThresholdPolicy};
use backboning_eval::comparison::{Comparison, ComparisonConfig};
use backboning_eval::Method;
use backboning_graph::generators::{
    barabasi_albert, barabasi_albert_csr, complete_graph, erdos_renyi, erdos_renyi_csr,
};
use backboning_graph::{CsrGraph, Direction, WeightedGraph};
use backboning_parallel::available_threads;
use backboning_server::{Server, ServerConfig};

/// One measured snapshot entry.
struct Entry {
    method: &'static str,
    substrate: &'static str,
    nodes: usize,
    edges: usize,
    threads: usize,
    median_ms: f64,
    edges_per_sec: f64,
}

fn timed_runs(runs: usize, mut work: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            work();
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    samples[samples.len() / 2]
}

fn entry(
    runs: usize,
    method: &'static str,
    substrate: &'static str,
    graph: &WeightedGraph,
    threads: usize,
    work: impl FnMut(),
) -> Entry {
    let median_ms = timed_runs(runs, work);
    Entry {
        method,
        substrate,
        nodes: graph.node_count(),
        edges: graph.edge_count(),
        threads,
        median_ms,
        edges_per_sec: graph.edge_count() as f64 / (median_ms / 1e3),
    }
}

/// One measured entry of the large CSR substrates.
struct LargeEntry {
    method: &'static str,
    substrate: &'static str,
    nodes: usize,
    edges: usize,
    /// Bytes of the flat CSR arrays (offsets, targets, edge ids, weights).
    graph_mib: f64,
    /// The resolved worker count the scoring pass actually used.
    threads: usize,
    median_ms: f64,
    edges_per_sec: f64,
    /// Process `VmHWM` after this measurement, in MiB. The kernel counter
    /// is monotone, so within the smallest-first substrate order each value
    /// is an upper bound on the substrate's true peak.
    peak_rss_mib: f64,
}

/// The process's peak resident set (`VmHWM` from `/proc/self/status`) in
/// MiB; `0.0` where the proc interface is unavailable.
fn peak_rss_mib() -> f64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|status| {
            status
                .lines()
                .find(|line| line.starts_with("VmHWM:"))
                .and_then(|line| line.split_whitespace().nth(1))
                .and_then(|kib| kib.parse::<f64>().ok())
        })
        .map(|kib| kib / 1024.0)
        .unwrap_or(0.0)
}

/// Score every scalable method on one large CSR substrate, recording the
/// resolved worker count and the memory high-water mark after each timed
/// run.
fn measure_large(
    entries: &mut Vec<LargeEntry>,
    substrate: &'static str,
    graph: &CsrGraph,
    runs: usize,
    default_threads: usize,
) {
    for method in Method::scalable() {
        // NT and MST are single sequential passes regardless of the
        // engine's worker count; the statistical methods auto-thread.
        let threads = if method.is_parameter_free() || method == Method::NaiveThreshold {
            1
        } else {
            default_threads
        };
        let median_ms = timed_runs(runs, || {
            let _ = method.score(graph);
        });
        entries.push(LargeEntry {
            method: method.short_name(),
            substrate,
            nodes: graph.node_count(),
            edges: graph.edge_count(),
            graph_mib: graph.memory_bytes() as f64 / (1024.0 * 1024.0),
            threads,
            median_ms,
            edges_per_sec: graph.edge_count() as f64 / (median_ms / 1e3),
            peak_rss_mib: peak_rss_mib(),
        });
    }
}

/// One measured server query: the same (graph, method, policy) asked cold
/// (first request: scoring runs), cached (every later request), and as an
/// in-process pipeline run from scratch for comparison.
struct ServerQuery {
    method: &'static str,
    cold_first_request_ms: f64,
    cached_median_ms: f64,
    cached_rps: f64,
    pipeline_scratch_ms: f64,
    speedup_cached_vs_scratch: f64,
}

/// One blocking HTTP GET over a fresh loopback connection; asserts 200.
fn http_get(addr: std::net::SocketAddr, path: &str) -> Vec<u8> {
    let mut stream = TcpStream::connect(addr).expect("connect to the bench server");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: bench\r\nConnection: close\r\n\r\n"
    )
    .expect("send the bench request");
    let mut response = Vec::new();
    stream
        .read_to_end(&mut response)
        .expect("read the bench response");
    assert!(
        response.starts_with(b"HTTP/1.1 200"),
        "bench query `{path}` failed: {}",
        String::from_utf8_lossy(&response[..response.len().min(200)])
    );
    response
}

/// Measure the serving subsystem on `graph`: cold vs cached requests for a
/// cheap-to-score method (NC) and an expensive one (HSS), plus an aggregate
/// cached requests/sec under 4 concurrent client threads.
fn measure_server(runs: usize, graph: &WeightedGraph) -> (Vec<ServerQuery>, f64) {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        ..ServerConfig::default()
    })
    .expect("bind the bench server on an ephemeral port");
    let addr = server.addr();

    let mut queries = Vec::new();
    for method in [Method::NoiseCorrected, Method::HighSalienceSkeleton] {
        let cli_name = match method {
            Method::NoiseCorrected => "nc",
            _ => "hss",
        };
        // The same work, in process, re-scoring every time — what each
        // threshold sweep step cost before the scored-graph cache existed.
        let pipeline = Pipeline::new(method, ThresholdPolicy::TopShare(0.2));
        let pipeline_scratch_ms = timed_runs(runs, || {
            let _ = pipeline.run(graph);
        });

        // A fresh registry name per method makes the first request cold.
        let name = format!("bench_{cli_name}");
        server
            .registry()
            .insert(
                &name,
                CsrGraph::from_graph(graph).expect("bench graph fits the CSR limits"),
            )
            .expect("register the bench graph");
        let path =
            format!("/graphs/{name}/backbone?method={cli_name}&top_share=0.2&output=summary");

        let cold_start = Instant::now();
        let cold_body = http_get(addr, &path);
        let cold_first_request_ms = cold_start.elapsed().as_secs_f64() * 1e3;

        let samples = (runs * 10).max(20);
        let mut cached: Vec<f64> = (0..samples)
            .map(|_| {
                let start = Instant::now();
                let body = http_get(addr, &path);
                assert_eq!(body, cold_body, "cached response differs from cold");
                start.elapsed().as_secs_f64() * 1e3
            })
            .collect();
        cached.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let cached_median_ms = cached[cached.len() / 2];

        queries.push(ServerQuery {
            method: cli_name,
            cold_first_request_ms,
            cached_median_ms,
            cached_rps: 1e3 / cached_median_ms,
            pipeline_scratch_ms,
            speedup_cached_vs_scratch: pipeline_scratch_ms / cached_median_ms,
        });
    }

    // Aggregate cached throughput: 4 client threads, 25 requests each.
    let path = "/graphs/bench_nc/backbone?method=nc&top_share=0.2&output=summary";
    let burst_start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(|| {
                for _ in 0..25 {
                    let _ = http_get(addr, path);
                }
            });
        }
    });
    let concurrent_rps = 100.0 / burst_start.elapsed().as_secs_f64();

    server.shutdown();
    (queries, concurrent_rps)
}

/// Empirical accuracy of the sampled-root HSS estimator on one substrate
/// where the exact skeleton is affordable: the maximum per-edge absolute
/// deviation between `hss-approx` (at its default roots/seed) and exact
/// HSS, next to the Hoeffding bounds it is supposed to respect.
struct HssDeviation {
    substrate: &'static str,
    edges: usize,
    max_abs_deviation: f64,
    union_bound_95: f64,
}

/// Exact HSS timed at scale — or an explicit skip marker, so a missing
/// number in the snapshot reads as a decision, not an oversight.
enum HssAtScale {
    Measured {
        substrate: &'static str,
        threads: usize,
        median_ms: f64,
        peak_rss_mib: f64,
    },
    Skipped {
        substrate: &'static str,
        reason: &'static str,
    },
}

/// Max per-edge |approx − exact| of the default hss-approx configuration.
fn measure_hss_deviation(substrate: &'static str, graph: &WeightedGraph) -> HssDeviation {
    let Method::HssApprox { roots, seed } = Method::hss_approx_default() else {
        unreachable!("hss_approx_default is the sampled variant");
    };
    let hss = HighSalienceSkeleton::new();
    let exact = hss.score_with_threads(graph, 0).expect("exact HSS scores");
    let approx = hss
        .score_sampled_with_threads(graph, roots, seed, 0)
        .expect("sampled HSS scores");
    let max_abs_deviation = exact
        .iter()
        .zip(approx.iter())
        .map(|(a, b)| (a.score - b.score).abs())
        .fold(0.0, f64::max);
    HssDeviation {
        substrate,
        edges: graph.edge_count(),
        max_abs_deviation,
        union_bound_95: backboning::high_salience::max_salience_error_bound(
            roots,
            graph.edge_count(),
            0.95,
        ),
    }
}

/// Timings of the `backbone compare` evaluation engine on one substrate,
/// with the configuration labels derived from the config that actually ran.
struct CompareTimings {
    methods: String,
    top_share: f64,
    noise: f64,
    resamples: usize,
    cold_ms: f64,
    cached_scores_ms: f64,
}

/// Time the comparison engine cold (every method scored in-run) and with
/// pre-scored edges (the server's scored-edge-cache path).
fn measure_compare(runs: usize, graph: &WeightedGraph) -> CompareTimings {
    let config = ComparisonConfig {
        methods: vec![
            Method::NoiseCorrected,
            Method::DisparityFilter,
            Method::NaiveThreshold,
        ],
        noise_resamples: 4,
        ..ComparisonConfig::default()
    };
    let comparison = Comparison::new(config).expect("bench compare config is valid");
    let cold_ms = timed_runs(runs, || {
        let _ = comparison.run(graph);
    });
    let scored: Vec<(Method, Arc<backboning::ScoredEdges>)> = comparison
        .config()
        .methods
        .iter()
        .map(|&method| {
            (
                method,
                Arc::new(method.score(graph).expect("bench methods score")),
            )
        })
        .collect();
    let cached_scores_ms = timed_runs(runs, || {
        let _ = comparison.run_with_scores(graph, |method| {
            Ok(Arc::clone(
                &scored
                    .iter()
                    .find(|(cached, _)| *cached == method)
                    .expect("pre-scored method")
                    .1,
            ))
        });
    });
    let config = comparison.config();
    CompareTimings {
        methods: config
            .methods
            .iter()
            .map(|m| m.cli_name())
            .collect::<Vec<_>>()
            .join(","),
        top_share: config.top_share,
        noise: config.noise_level,
        resamples: config.noise_resamples,
        cold_ms,
        cached_scores_ms,
    }
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    default_threads: usize,
    entries: &[Entry],
    large: &[LargeEntry],
    hss_speedup: f64,
    server_queries: &[ServerQuery],
    concurrent_rps: f64,
    compare: &CompareTimings,
    hss_deviation: &[HssDeviation],
    hss_at_scale: &[HssAtScale],
) -> String {
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"default_threads\": {default_threads},\n"));
    json.push_str(&format!(
        "  \"hss_speedup_4_threads_vs_seed_ba_2000\": {hss_speedup:.3},\n"
    ));
    json.push_str("  \"entries\": [\n");
    for (index, e) in entries.iter().enumerate() {
        let comma = if index + 1 < entries.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{\"method\": \"{}\", \"substrate\": \"{}\", \"nodes\": {}, \"edges\": {}, \
             \"threads\": {}, \"median_ms\": {:.3}, \"edges_per_sec\": {:.1}}}{}\n",
            e.method, e.substrate, e.nodes, e.edges, e.threads, e.median_ms, e.edges_per_sec, comma
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"large_substrates\": [\n");
    for (index, e) in large.iter().enumerate() {
        let comma = if index + 1 < large.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{\"method\": \"{}\", \"substrate\": \"{}\", \"nodes\": {}, \"edges\": {}, \
             \"csr_mib\": {:.1}, \"threads\": {}, \"median_ms\": {:.3}, \
             \"edges_per_sec\": {:.1}, \"peak_rss_mib\": {:.1}}}{}\n",
            e.method,
            e.substrate,
            e.nodes,
            e.edges,
            e.graph_mib,
            e.threads,
            e.median_ms,
            e.edges_per_sec,
            e.peak_rss_mib,
            comma
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"server\": {\n");
    json.push_str("    \"substrate\": \"ba_2000\",\n");
    json.push_str("    \"policy\": \"top_share=0.2, summary output\",\n");
    json.push_str(&format!(
        "    \"cached_concurrent_rps_4_clients\": {concurrent_rps:.1},\n"
    ));
    json.push_str("    \"queries\": [\n");
    for (index, q) in server_queries.iter().enumerate() {
        let comma = if index + 1 < server_queries.len() {
            ","
        } else {
            ""
        };
        json.push_str(&format!(
            "      {{\"method\": \"{}\", \"cold_first_request_ms\": {:.3}, \
             \"cached_median_ms\": {:.3}, \"cached_rps\": {:.1}, \
             \"pipeline_scratch_ms\": {:.3}, \"speedup_cached_vs_scratch\": {:.1}}}{}\n",
            q.method,
            q.cold_first_request_ms,
            q.cached_median_ms,
            q.cached_rps,
            q.pipeline_scratch_ms,
            q.speedup_cached_vs_scratch,
            comma
        ));
    }
    json.push_str("    ]\n");
    json.push_str("  },\n");
    json.push_str("  \"compare\": {\n");
    json.push_str("    \"substrate\": \"er_2000\",\n");
    json.push_str(&format!(
        "    \"methods\": \"{}\", \"top_share\": {}, \"noise\": {}, \"resamples\": {},\n",
        compare.methods, compare.top_share, compare.noise, compare.resamples
    ));
    json.push_str(&format!(
        "    \"cold_ms\": {:.3}, \"cached_scores_ms\": {:.3}, \"speedup_cached_vs_cold\": {:.2}\n",
        compare.cold_ms,
        compare.cached_scores_ms,
        compare.cold_ms / compare.cached_scores_ms
    ));
    json.push_str("  },\n");

    let Method::HssApprox { roots, seed } = Method::hss_approx_default() else {
        unreachable!("hss_approx_default is the sampled variant");
    };
    json.push_str("  \"hss\": {\n");
    json.push_str(&format!(
        "    \"approx_roots\": {roots}, \"approx_seed\": {seed},\n"
    ));
    json.push_str(&format!(
        "    \"per_edge_error_bound_95\": {:.6},\n",
        backboning::high_salience::salience_error_bound(roots, 0.95)
    ));
    json.push_str("    \"deviation_vs_exact\": [\n");
    for (index, d) in hss_deviation.iter().enumerate() {
        let comma = if index + 1 < hss_deviation.len() {
            ","
        } else {
            ""
        };
        json.push_str(&format!(
            "      {{\"substrate\": \"{}\", \"edges\": {}, \"max_abs_deviation\": {:.6}, \
             \"union_bound_95\": {:.6}, \"within_union_bound\": {}}}{}\n",
            d.substrate,
            d.edges,
            d.max_abs_deviation,
            d.union_bound_95,
            d.max_abs_deviation <= d.union_bound_95,
            comma
        ));
    }
    json.push_str("    ],\n");
    json.push_str("    \"exact_at_scale\": [\n");
    for (index, e) in hss_at_scale.iter().enumerate() {
        let comma = if index + 1 < hss_at_scale.len() {
            ","
        } else {
            ""
        };
        match e {
            HssAtScale::Measured {
                substrate,
                threads,
                median_ms,
                peak_rss_mib,
            } => json.push_str(&format!(
                "      {{\"substrate\": \"{substrate}\", \"threads\": {threads}, \
                 \"median_ms\": {median_ms:.3}, \"peak_rss_mib\": {peak_rss_mib:.1}}}{comma}\n"
            )),
            HssAtScale::Skipped { substrate, reason } => json.push_str(&format!(
                "      {{\"substrate\": \"{substrate}\", \"skipped\": true, \
                 \"reason\": \"{reason}\"}}{comma}\n"
            )),
        }
    }
    json.push_str("    ]\n");
    json.push_str("  }\n}\n");
    json
}

fn main() {
    let runs: usize = std::env::var("BENCH_RUNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(3);
    let default_threads = available_threads();

    let ba_2000 = barabasi_albert(2000, 3, 4242).expect("valid BA parameters");
    let er_2000 =
        erdos_renyi(2000, 6000, 10.0, Direction::Undirected, 99).expect("valid ER parameters");
    let complete_200 = complete_graph(200, 2.0).expect("valid complete-graph parameters");

    let mut entries = Vec::new();
    for (substrate, graph) in [("ba_2000", &ba_2000), ("er_2000", &er_2000)] {
        for method in Method::all() {
            // The dense Sinkhorn normalisation is measured on its own feasible
            // substrate below; a 2000-node dense matrix is not a smoke test.
            if method == Method::DoublyStochastic {
                continue;
            }
            // NT and MST are single sequential passes regardless of the
            // engine's worker count.
            let threads = if method.is_parameter_free() || method == Method::NaiveThreshold {
                1
            } else {
                default_threads
            };
            entries.push(entry(
                runs,
                method.short_name(),
                substrate,
                graph,
                threads,
                || {
                    let _ = method.score(graph);
                },
            ));
        }
    }
    entries.push(entry(
        runs,
        Method::DoublyStochastic.short_name(),
        "complete_200",
        &complete_200,
        default_threads,
        || {
            let _ = Method::DoublyStochastic.score(&complete_200);
        },
    ));

    // The headline comparison: seed adjacency HSS vs the parallel CSR engine.
    let hss = HighSalienceSkeleton::new();
    let seed = entry(runs, "HSS_seed_path", "ba_2000", &ba_2000, 1, || {
        let _ = hss.score_adjacency_reference(&ba_2000);
    });
    let engine = entry(runs, "HSS_csr_4_threads", "ba_2000", &ba_2000, 4, || {
        let _ = hss.score_with_threads(&ba_2000, 4);
    });
    let hss_speedup = seed.median_ms / engine.median_ms;
    entries.push(seed);
    entries.push(engine);

    let (server_queries, concurrent_rps) = measure_server(runs, &ba_2000);
    let compare = measure_compare(runs, &er_2000);

    // Sampled-root accuracy: on the 2k substrates the exact skeleton is
    // affordable, so the estimator's worst per-edge deviation can be put
    // next to its Hoeffding bound.
    let hss_deviation = vec![
        measure_hss_deviation("ba_2000", &ba_2000),
        measure_hss_deviation("er_2000", &er_2000),
    ];

    // Large CSR substrates, smallest first (VmHWM is monotone). The
    // million-node pair only runs under BENCH_SCALE=full — that mode
    // produces the committed BENCH_backbones.json; the default keeps CI
    // within its smoke budget.
    let full_scale = std::env::var("BENCH_SCALE").as_deref() == Ok("full");
    let mut large = Vec::new();
    let mut hss_at_scale = Vec::new();
    {
        let ba_100k = barabasi_albert_csr(100_000, 3, 4242).expect("valid BA parameters");
        measure_large(&mut large, "ba_100k", &ba_100k, runs, default_threads);
        // Exact HSS is feasible at 100k on the unit-weight BA substrate
        // (the batched-BFS path), but only inside the full-scale budget.
        if full_scale {
            let hss = HighSalienceSkeleton::new();
            let median_ms = timed_runs(1, || {
                let _ = hss.score_with_threads(&ba_100k, 0);
            });
            hss_at_scale.push(HssAtScale::Measured {
                substrate: "ba_100k",
                threads: default_threads,
                median_ms,
                peak_rss_mib: peak_rss_mib(),
            });
        } else {
            hss_at_scale.push(HssAtScale::Skipped {
                substrate: "ba_100k",
                reason: "exact HSS at 100k runs only under BENCH_SCALE=full",
            });
        }
    }
    {
        let er_100k = erdos_renyi_csr(100_000, 300_000, 10.0, Direction::Undirected, 99)
            .expect("valid ER parameters");
        measure_large(&mut large, "er_100k", &er_100k, runs, default_threads);
        hss_at_scale.push(HssAtScale::Skipped {
            substrate: "er_100k",
            reason: "weighted substrate: 100k exact per-root SSSP is out of budget; use hss-approx",
        });
    }
    if full_scale {
        {
            let ba_1m = barabasi_albert_csr(1_000_000, 3, 4242).expect("valid BA parameters");
            measure_large(&mut large, "ba_1m", &ba_1m, 1, default_threads);
        }
        let er_1m = erdos_renyi_csr(1_000_000, 10_000_000, 10.0, Direction::Undirected, 99)
            .expect("valid ER parameters");
        measure_large(&mut large, "er_1m", &er_1m, 1, default_threads);
    }

    let json = render_json(
        default_threads,
        &entries,
        &large,
        hss_speedup,
        &server_queries,
        concurrent_rps,
        &compare,
        &hss_deviation,
        &hss_at_scale,
    );
    // Resolved at runtime (ci.sh runs from the repo root); override with
    // BENCH_SNAPSHOT_PATH when invoking from elsewhere.
    let path =
        std::env::var("BENCH_SNAPSHOT_PATH").unwrap_or_else(|_| "BENCH_backbones.json".to_string());
    std::fs::write(&path, &json).expect("write BENCH_backbones.json");

    println!("{json}");
    println!("HSS ba_2000: seed path vs CSR engine @4 threads = {hss_speedup:.2}x (target >= 2x)");
    for q in &server_queries {
        println!(
            "server ba_2000 {}: cached query vs pipeline from scratch = {:.1}x (target >= 10x)",
            q.method, q.speedup_cached_vs_scratch
        );
    }
    if let Some(exact_hss) = entries
        .iter()
        .find(|e| e.method == "HSS" && e.substrate == "ba_2000")
    {
        println!(
            "exact HSS ba_2000: {:.1} ms (target <= 86.4 ms, half the 172.8 ms seed-era median)",
            exact_hss.median_ms
        );
    }
    let large_median = |method: &str, substrate: &str| {
        large
            .iter()
            .find(|e| e.method == method && e.substrate == substrate)
            .map(|e| e.median_ms)
    };
    if let (Some(approx), Some(nc)) = (
        large_median("HSSA", "ba_100k"),
        large_median("NC", "ba_100k"),
    ) {
        println!(
            "hss-approx ba_100k: {:.1} ms = {:.1}x NC's {:.1} ms (target <= 10x)",
            approx,
            approx / nc,
            nc
        );
    }
    for d in &hss_deviation {
        println!(
            "hss-approx {}: max per-edge deviation {:.4} vs 95% union bound {:.4} ({})",
            d.substrate,
            d.max_abs_deviation,
            d.union_bound_95,
            if d.max_abs_deviation <= d.union_bound_95 {
                "within bound"
            } else {
                "EXCEEDS bound"
            }
        );
    }
    println!("snapshot written to {path}");
}
