//! Perf smoke snapshot: time every backbone extractor on fixed synthetic
//! substrates and write `BENCH_backbones.json` at the repo root, so each CI
//! run leaves a comparable perf trajectory point behind.
//!
//! Substrates (fixed seeds, so every run measures the same graphs):
//!
//! * `ba_2000` — Barabási–Albert, 2000 nodes, m = 3 (the scalability wall the
//!   paper hit with the High Salience Skeleton);
//! * `er_2000` — Erdős–Rényi, 2000 nodes, ~6000 weighted edges;
//! * `complete_200` — a dense complete graph where the Doubly-Stochastic
//!   scaling is guaranteed to exist.
//!
//! Besides the six methods, the snapshot times the HSS seed adjacency path
//! against the parallel CSR engine at 4 workers and reports the speedup —
//! the headline number of the "HSS doesn't scale" fix.
//!
//! Environment: `BENCH_RUNS` (default 3) timed runs per entry, median
//! reported; `BACKBONING_THREADS` steers the auto-threaded entries.

use std::time::Instant;

use backboning::HighSalienceSkeleton;
use backboning_eval::Method;
use backboning_graph::generators::{barabasi_albert, complete_graph, erdos_renyi};
use backboning_graph::{Direction, WeightedGraph};
use backboning_parallel::available_threads;

/// One measured snapshot entry.
struct Entry {
    method: &'static str,
    substrate: &'static str,
    nodes: usize,
    edges: usize,
    threads: usize,
    median_ms: f64,
    edges_per_sec: f64,
}

fn timed_runs(runs: usize, mut work: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            work();
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    samples[samples.len() / 2]
}

fn entry(
    runs: usize,
    method: &'static str,
    substrate: &'static str,
    graph: &WeightedGraph,
    threads: usize,
    work: impl FnMut(),
) -> Entry {
    let median_ms = timed_runs(runs, work);
    Entry {
        method,
        substrate,
        nodes: graph.node_count(),
        edges: graph.edge_count(),
        threads,
        median_ms,
        edges_per_sec: graph.edge_count() as f64 / (median_ms / 1e3),
    }
}

fn render_json(default_threads: usize, entries: &[Entry], hss_speedup: f64) -> String {
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"default_threads\": {default_threads},\n"));
    json.push_str(&format!(
        "  \"hss_speedup_4_threads_vs_seed_ba_2000\": {hss_speedup:.3},\n"
    ));
    json.push_str("  \"entries\": [\n");
    for (index, e) in entries.iter().enumerate() {
        let comma = if index + 1 < entries.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{\"method\": \"{}\", \"substrate\": \"{}\", \"nodes\": {}, \"edges\": {}, \
             \"threads\": {}, \"median_ms\": {:.3}, \"edges_per_sec\": {:.1}}}{}\n",
            e.method, e.substrate, e.nodes, e.edges, e.threads, e.median_ms, e.edges_per_sec, comma
        ));
    }
    json.push_str("  ]\n}\n");
    json
}

fn main() {
    let runs: usize = std::env::var("BENCH_RUNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(3);
    let default_threads = available_threads();

    let ba_2000 = barabasi_albert(2000, 3, 4242).expect("valid BA parameters");
    let er_2000 =
        erdos_renyi(2000, 6000, 10.0, Direction::Undirected, 99).expect("valid ER parameters");
    let complete_200 = complete_graph(200, 2.0).expect("valid complete-graph parameters");

    let mut entries = Vec::new();
    for (substrate, graph) in [("ba_2000", &ba_2000), ("er_2000", &er_2000)] {
        for method in Method::all() {
            // The dense Sinkhorn normalisation is measured on its own feasible
            // substrate below; a 2000-node dense matrix is not a smoke test.
            if method == Method::DoublyStochastic {
                continue;
            }
            // NT and MST are single sequential passes regardless of the
            // engine's worker count.
            let threads = if method.is_parameter_free() || method == Method::NaiveThreshold {
                1
            } else {
                default_threads
            };
            entries.push(entry(
                runs,
                method.short_name(),
                substrate,
                graph,
                threads,
                || {
                    let _ = method.score(graph);
                },
            ));
        }
    }
    entries.push(entry(
        runs,
        Method::DoublyStochastic.short_name(),
        "complete_200",
        &complete_200,
        default_threads,
        || {
            let _ = Method::DoublyStochastic.score(&complete_200);
        },
    ));

    // The headline comparison: seed adjacency HSS vs the parallel CSR engine.
    let hss = HighSalienceSkeleton::new();
    let seed = entry(runs, "HSS_seed_path", "ba_2000", &ba_2000, 1, || {
        let _ = hss.score_adjacency_reference(&ba_2000);
    });
    let engine = entry(runs, "HSS_csr_4_threads", "ba_2000", &ba_2000, 4, || {
        let _ = hss.score_with_threads(&ba_2000, 4);
    });
    let hss_speedup = seed.median_ms / engine.median_ms;
    entries.push(seed);
    entries.push(engine);

    let json = render_json(default_threads, &entries, hss_speedup);
    // Resolved at runtime (ci.sh runs from the repo root); override with
    // BENCH_SNAPSHOT_PATH when invoking from elsewhere.
    let path =
        std::env::var("BENCH_SNAPSHOT_PATH").unwrap_or_else(|_| "BENCH_backbones.json".to_string());
    std::fs::write(&path, &json).expect("write BENCH_backbones.json");

    println!("{json}");
    println!("HSS ba_2000: seed path vs CSR engine @4 threads = {hss_speedup:.2}x (target >= 2x)");
    println!("snapshot written to {path}");
}
