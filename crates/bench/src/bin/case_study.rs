//! Reproduce the Section VI case study: occupation skill co-occurrence
//! backbones evaluated through community structure and flow prediction.

use backboning_bench::occupation_data;
use backboning_eval::experiments::case_study;

fn main() {
    let data = occupation_data();
    let result = case_study::run(&data, 0.15);
    println!("Section VI — occupation skill-relatedness case study");
    println!("{}", result.render());
    println!(
        "Paper reference values: codelength gain 15.0% (NC) vs 9.3% (DF); classification\n\
         modularity 0.192 vs 0.115; NMI 0.423 vs 0.401; flow correlation 0.454 (NC) vs 0.431 (DF)\n\
         vs 0.390 (full network)."
    );
}
