//! Reproduce Figure 5: cumulative edge-weight distributions of the six
//! country networks.

use backboning_bench::country_data;
use backboning_eval::experiments::fig5;

fn main() {
    let data = country_data();
    let result = fig5::run(&data);
    println!("Figure 5 — edge weight distributions (summary quantiles)");
    println!("{}", result.render());
    println!("Full CCDF of the Trade network (weight, share of edges ≥ weight):");
    let trade = result
        .distributions
        .iter()
        .find(|d| d.kind == backboning_data::CountryNetworkKind::Trade)
        .expect("Trade network present");
    let step = (trade.ccdf.len() / 20).max(1);
    for point in trade.ccdf.iter().step_by(step) {
        println!("  {:>14.1}  {:.5}", point.value, point.share);
    }
}
