//! Reproduce Table I: correlation between the NC-predicted variance of the
//! transformed edge weights and the variance observed across years.

use backboning_bench::country_data;
use backboning_eval::experiments::table1;

fn main() {
    let data = country_data();
    let result = table1::run(&data);
    println!("Table I — validation of the Noise-Corrected variance estimates");
    println!("{}", result.render());
}
