//! Generate a synthetic benchmark substrate as a streaming-ready edge list.
//!
//! ```sh
//! gen_substrate ba <nodes> <edges_per_node> <seed> <out.tsv>
//! gen_substrate er <nodes> <expected_edges> <seed> <out.tsv>
//! gen_substrate spec <scenario-spec> <out.tsv>
//! ```
//!
//! A thin wrapper over [`backboning_gen`]: the `ba`/`er` forms are kept for
//! `ci.sh` compatibility and translate 1:1 into scenario specs (the gen
//! crate consumes the exact random streams of the original substrate
//! generators, so the emitted bytes are unchanged — pinned by
//! `tests/gen_substrate_identity.rs`). The `spec` form exposes every
//! family/weight/noise combination the generator knows.

use std::process::ExitCode;

use backboning_gen::ScenarioSpec;
use backboning_graph::io::write_edge_list_file;

fn usage() -> ExitCode {
    eprintln!("usage: gen_substrate <ba|er> <nodes> <param> <seed> <out.tsv>");
    eprintln!("       gen_substrate spec <scenario-spec> <out.tsv>");
    eprintln!("  ba:   param = edges per new node (undirected, unit weights)");
    eprintln!("  er:   param = expected edge count (undirected, weights in (0, 10])");
    eprintln!("  spec: e.g. sb:n=5000,b=8,pin=0.02,pout=0.0008,w=lognormal(0,1)");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (spec_text, out) = match args.as_slice() {
        [kind, spec, out] if kind == "spec" => (spec.clone(), out),
        [kind, nodes, param, seed, out] if kind == "ba" || kind == "er" => {
            let (Ok(nodes), Ok(param), Ok(seed)) = (
                nodes.parse::<usize>(),
                param.parse::<usize>(),
                seed.parse::<u64>(),
            ) else {
                return usage();
            };
            let text = match kind.as_str() {
                "ba" => format!("ba:n={nodes},m={param},w=unit,noise=0,seed={seed}"),
                _ => format!("er:n={nodes},e={param},w=uniform(10),noise=0,seed={seed}"),
            };
            (text, out)
        }
        _ => return usage(),
    };
    let spec = match spec_text.parse::<ScenarioSpec>() {
        Ok(spec) => spec,
        Err(err) => {
            eprintln!("gen_substrate: {err}");
            return usage();
        }
    };
    let graph = match spec.generate() {
        Ok(graph) => graph,
        Err(err) => {
            eprintln!("gen_substrate: {err}");
            std::process::exit(1);
        }
    };
    if let Err(err) = write_edge_list_file(&graph, out) {
        eprintln!("gen_substrate: {out}: {err}");
        return ExitCode::FAILURE;
    }
    println!(
        "{} substrate: {} nodes, {} edges -> {out}",
        spec.family.tag(),
        graph.node_count(),
        graph.edge_count()
    );
    ExitCode::SUCCESS
}
