//! Generate a synthetic benchmark substrate as a streaming-ready edge list.
//!
//! ```sh
//! gen_substrate ba <nodes> <edges_per_node> <seed> <out.tsv>
//! gen_substrate er <nodes> <expected_edges> <seed> <out.tsv>
//! ```
//!
//! The graph is generated straight into the compact CSR core
//! ([`backboning_graph::CsrGraph`]) and written with the standard edge-list
//! writer, so `ci.sh` can push a 100k-node Barabási–Albert network through
//! the full `backbone` CLI (streaming ingestion → score → select) inside a
//! wall-clock budget without committing a multi-megabyte fixture.

use std::process::ExitCode;

use backboning_graph::generators::{barabasi_albert_csr, erdos_renyi_csr};
use backboning_graph::io::write_edge_list_file;
use backboning_graph::{CsrGraph, Direction};

fn usage() -> ExitCode {
    eprintln!("usage: gen_substrate <ba|er> <nodes> <param> <seed> <out.tsv>");
    eprintln!("  ba: param = edges per new node (undirected)");
    eprintln!("  er: param = expected edge count (undirected, weights in (0, 10])");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [kind, nodes, param, seed, out] = args.as_slice() else {
        return usage();
    };
    let (Ok(nodes), Ok(param), Ok(seed)) = (
        nodes.parse::<usize>(),
        param.parse::<usize>(),
        seed.parse::<u64>(),
    ) else {
        return usage();
    };
    let graph: CsrGraph = match kind.as_str() {
        "ba" => barabasi_albert_csr(nodes, param, seed),
        "er" => erdos_renyi_csr(nodes, param, 10.0, Direction::Undirected, seed),
        _ => return usage(),
    }
    .unwrap_or_else(|err| {
        eprintln!("gen_substrate: {err}");
        std::process::exit(1);
    });
    if let Err(err) = write_edge_list_file(&graph, out) {
        eprintln!("gen_substrate: {out}: {err}");
        return ExitCode::FAILURE;
    }
    println!(
        "{kind} substrate: {} nodes, {} edges -> {out}",
        graph.node_count(),
        graph.edge_count()
    );
    ExitCode::SUCCESS
}
