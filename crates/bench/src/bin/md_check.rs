//! Markdown docs checker, run by `ci.sh`: the README and every file under
//! `docs/` must stay consistent with the repository.
//!
//! Two checks, both cheap and dependency-free:
//!
//! * **Intra-repo links resolve** — every relative markdown link target
//!   (`[text](docs/GUIDE.md#anchor)`, `[text](../README.md)`) must name an
//!   existing file or directory after stripping the `#anchor`. External
//!   links (`http://`, `https://`, `mailto:`) are not fetched.
//! * **Fenced shell blocks parse** — every ```` ```sh ```` / `bash` /
//!   `shell` fence must be accepted by `bash -n` (syntax only, nothing is
//!   executed), so the commands the docs tell users to run at least parse.
//!
//! Exit code 0 when everything passes, 1 with one line per finding
//! otherwise. Override the repository root with `MD_CHECK_ROOT` (defaults
//! to the workspace root, resolved from this crate's manifest directory).

use std::path::{Path, PathBuf};

/// A fenced code block: the fence's info string, the body, and where it
/// started (for error messages).
struct Fence {
    language: String,
    body: String,
    line: usize,
}

/// Split a markdown document into its prose (with fenced blocks blanked
/// out, so links inside code are not treated as real links) and its fences.
fn split_fences(text: &str) -> (String, Vec<Fence>) {
    let mut prose = String::with_capacity(text.len());
    let mut fences = Vec::new();
    let mut current: Option<Fence> = None;
    for (index, line) in text.lines().enumerate() {
        let trimmed = line.trim_start();
        if let Some(info) = trimmed.strip_prefix("```") {
            match current.take() {
                Some(fence) => fences.push(fence),
                None => {
                    current = Some(Fence {
                        language: info.trim().to_string(),
                        body: String::new(),
                        line: index + 1,
                    });
                }
            }
            prose.push('\n');
            continue;
        }
        match current.as_mut() {
            Some(fence) => {
                fence.body.push_str(line);
                fence.body.push('\n');
                prose.push('\n');
            }
            None => {
                prose.push_str(line);
                prose.push('\n');
            }
        }
    }
    if let Some(fence) = current {
        // An unterminated fence is itself a finding; report it as a fence
        // with a sentinel language the caller flags.
        fences.push(Fence {
            language: format!("UNTERMINATED {}", fence.language),
            body: fence.body,
            line: fence.line,
        });
    }
    (prose, fences)
}

/// Extract every markdown link target `(...)` following a `](` in `prose`.
fn link_targets(prose: &str) -> Vec<String> {
    let bytes = prose.as_bytes();
    let mut targets = Vec::new();
    let mut i = 0;
    while i + 1 < bytes.len() {
        if bytes[i] == b']' && bytes[i + 1] == b'(' {
            let start = i + 2;
            if let Some(length) = prose[start..].find(')') {
                targets.push(prose[start..start + length].to_string());
                i = start + length;
            }
        }
        i += 1;
    }
    targets
}

/// Whether a link target should be checked against the filesystem.
fn is_local_target(target: &str) -> bool {
    !(target.is_empty()
        || target.starts_with('#')
        || target.starts_with("http://")
        || target.starts_with("https://")
        || target.starts_with("mailto:"))
}

fn check_file(path: &Path, findings: &mut Vec<String>) {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(err) => {
            findings.push(format!("{}: unreadable: {err}", path.display()));
            return;
        }
    };
    let (prose, fences) = split_fences(&text);

    let directory = path.parent().unwrap_or(Path::new("."));
    for target in link_targets(&prose) {
        if !is_local_target(&target) {
            continue;
        }
        let file_part = target.split('#').next().unwrap_or_default();
        if file_part.is_empty() {
            continue;
        }
        let resolved = directory.join(file_part);
        if !resolved.exists() {
            findings.push(format!(
                "{}: broken link `{target}` ({} does not exist)",
                path.display(),
                resolved.display()
            ));
        }
    }

    for fence in fences {
        if fence.language.starts_with("UNTERMINATED") {
            findings.push(format!(
                "{}:{}: unterminated code fence",
                path.display(),
                fence.line
            ));
            continue;
        }
        if !matches!(fence.language.as_str(), "sh" | "bash" | "shell") {
            continue;
        }
        match bash_parses(&fence.body) {
            Ok(()) => {}
            Err(message) => findings.push(format!(
                "{}:{}: ```{} block does not parse: {message}",
                path.display(),
                fence.line,
                fence.language
            )),
        }
    }
}

/// Run `bash -n` (parse only) on `script`.
fn bash_parses(script: &str) -> Result<(), String> {
    use std::io::Write;
    use std::process::{Command, Stdio};
    let mut child = Command::new("bash")
        .args(["-n", "/dev/stdin"])
        .stdin(Stdio::piped())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .map_err(|err| format!("cannot run bash: {err}"))?;
    child
        .stdin
        .as_mut()
        .expect("stdin is piped")
        .write_all(script.as_bytes())
        .map_err(|err| format!("cannot feed bash: {err}"))?;
    drop(child.stdin.take());
    let output = child
        .wait_with_output()
        .map_err(|err| format!("bash did not finish: {err}"))?;
    if output.status.success() {
        Ok(())
    } else {
        Err(String::from_utf8_lossy(&output.stderr)
            .lines()
            .next()
            .unwrap_or("bash -n failed")
            .to_string())
    }
}

/// All markdown files to check: the repo-root README plus `docs/**/*.md`.
fn markdown_files(root: &Path) -> Vec<PathBuf> {
    let mut files = vec![root.join("README.md")];
    let mut stack = vec![root.join("docs")];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().and_then(|e| e.to_str()) == Some("md") {
                files.push(path);
            }
        }
    }
    files.sort();
    files
}

fn main() {
    let root = std::env::var("MD_CHECK_ROOT")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."));
    let files = markdown_files(&root);
    let mut findings = Vec::new();
    for file in &files {
        check_file(file, &mut findings);
    }
    if findings.is_empty() {
        println!("md_check: {} file(s) OK", files.len());
        return;
    }
    for finding in &findings {
        eprintln!("md_check: {finding}");
    }
    eprintln!(
        "md_check: {} finding(s) in {} file(s)",
        findings.len(),
        files.len()
    );
    std::process::exit(1);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn links_are_extracted_outside_fences_only() {
        let text = "see [a](x.md) and [b](docs/y.md#z)\n```sh\necho '[not](a-link.md)'\n```\n";
        let (prose, fences) = split_fences(text);
        assert_eq!(link_targets(&prose), vec!["x.md", "docs/y.md#z"]);
        assert_eq!(fences.len(), 1);
        assert_eq!(fences[0].language, "sh");
        assert!(fences[0].body.contains("not"));
    }

    #[test]
    fn local_target_filter() {
        assert!(is_local_target("docs/GUIDE.md"));
        assert!(is_local_target("../README.md#anchor"));
        assert!(!is_local_target("https://example.com"));
        assert!(!is_local_target("#anchor"));
        assert!(!is_local_target("mailto:x@y.z"));
    }

    #[test]
    fn bash_syntax_gate() {
        assert!(bash_parses("echo hi | sort\n").is_ok());
        assert!(bash_parses("for f in; do\n").is_err());
    }

    #[test]
    fn unterminated_fences_are_flagged() {
        let (_, fences) = split_fences("```sh\necho hi\n");
        assert_eq!(fences.len(), 1);
        assert!(fences[0].language.starts_with("UNTERMINATED"));
    }
}
