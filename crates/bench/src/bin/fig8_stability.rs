//! Reproduce Figure 8: stability (Spearman correlation of backbone edge
//! weights between consecutive years) for varying backbone sizes.

use backboning_bench::{country_data, paper_methods, sweep_shares};
use backboning_eval::experiments::fig8;

fn main() {
    let data = country_data();
    let result = fig8::run(&data, &paper_methods(), &sweep_shares());
    println!("Figure 8 — stability per backbone for varying backbone sizes");
    println!("{}", result.render());
}
