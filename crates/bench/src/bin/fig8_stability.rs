//! Reproduce Figure 8: stability (Spearman correlation of backbone edge
//! weights between consecutive years) for varying backbone sizes.

use backboning_bench::{country_data, small_mode, sweep_shares};
use backboning_eval::experiments::fig8;
use backboning_eval::Method;

fn main() {
    let data = country_data();
    let methods: Vec<Method> = if small_mode() {
        vec![
            Method::NaiveThreshold,
            Method::MaximumSpanningTree,
            Method::DisparityFilter,
            Method::NoiseCorrected,
        ]
    } else {
        Method::all().to_vec()
    };
    let result = fig8::run(&data, &methods, &sweep_shares());
    println!("Figure 8 — stability per backbone for varying backbone sizes");
    println!("{}", result.render());
}
