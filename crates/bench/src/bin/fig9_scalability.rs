//! Reproduce Figure 9: running-time scalability on Erdős–Rényi graphs with
//! average degree 3 and uniform random weights.
//!
//! Run with `--release`: the paper's claim is about the *scaling exponent*
//! (NC ≈ O(|E|^1.14)) and the ordering of methods, not absolute seconds.

use backboning_bench::small_mode;
use backboning_eval::experiments::fig9;
use backboning_eval::Method;

fn main() {
    let (sizes, slow_limit): (Vec<usize>, usize) = if small_mode() {
        (vec![5_000, 20_000, 80_000], 2_000)
    } else {
        // 1_000_000 aligns the sweep with the bench_snapshot large
        // substrates (ba_1m/er_1m), so the fitted exponent and the absolute
        // snapshot numbers share a measured point.
        (
            vec![25_000, 100_000, 400_000, 1_000_000, 1_600_000, 3_200_000],
            4_000,
        )
    };
    let methods = Method::all().to_vec();
    println!("Figure 9 — running time scalability (seconds per method)");
    println!("(HSS and DS are skipped above {slow_limit} edges, as in the paper)");
    let result = fig9::run(&methods, &sizes, slow_limit, 9);
    println!("{}", result.render());
}
