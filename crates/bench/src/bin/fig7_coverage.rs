//! Reproduce Figure 7: coverage per backbone for varying threshold values, on
//! all six country networks.

use backboning_bench::{country_data, paper_methods, sweep_shares};
use backboning_eval::experiments::fig7;

fn main() {
    let data = country_data();
    let result = fig7::run(&data, &paper_methods(), &sweep_shares());
    println!("Figure 7 — coverage per backbone for varying backbone sizes");
    println!("{}", result.render());
}
