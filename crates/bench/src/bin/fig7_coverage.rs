//! Reproduce Figure 7: coverage per backbone for varying threshold values, on
//! all six country networks.

use backboning_bench::{country_data, small_mode, sweep_shares};
use backboning_eval::experiments::fig7;
use backboning_eval::Method;

fn main() {
    let data = country_data();
    // The structural methods (HSS in particular) are expensive on the larger
    // configuration; they are included unless running in small mode.
    let methods: Vec<Method> = if small_mode() {
        vec![
            Method::NaiveThreshold,
            Method::MaximumSpanningTree,
            Method::DisparityFilter,
            Method::NoiseCorrected,
        ]
    } else {
        Method::all().to_vec()
    };
    let result = fig7::run(&data, &methods, &sweep_shares());
    println!("Figure 7 — coverage per backbone for varying backbone sizes");
    println!("{}", result.render());
}
