//! Reproduce Figure 2: the distribution of `L̃ij − δ·σ` for δ ∈ {1, 2, 3} on
//! the Country Space and Business networks.

use backboning_bench::country_data;
use backboning_data::CountryNetworkKind;
use backboning_eval::experiments::fig2;

fn main() {
    let data = country_data();
    for kind in [
        CountryNetworkKind::CountrySpace,
        CountryNetworkKind::Business,
    ] {
        let result = fig2::run(&data, kind, &[1.0, 2.0, 3.0], 25);
        println!("{}", result.render());
    }
}
