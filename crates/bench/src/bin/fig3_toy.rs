//! Reproduce Figure 3: the toy example where the Noise-Corrected backbone and
//! the Disparity Filter disagree about the hub's edges.

use backboning_eval::experiments::fig3;

fn main() {
    let result = fig3::run();
    println!("Figure 3 — toy example (hub = node 0, peripheral pair = nodes 1 and 2)");
    println!("{}", result.render());
    println!(
        "The Noise-Corrected backbone ranks the peripheral edge 1-2 above the hub's edges to\n\
         nodes 1 and 2; the Disparity Filter keeps those hub edges instead."
    );
}
