//! A concurrent load-test harness for the backboning HTTP server.
//!
//! The harness soaks a running server with `clients × requests_per_client`
//! keep-alive-less requests cycling over a route mix, measures every
//! client-side latency (post-connect: request write → full response read)
//! into the same [`backboning_obs::LatencyHistogram`] the server uses, and
//! then **cross-checks the server's own `/metrics` against what the clients
//! observed**:
//!
//! * per-route request counts must match *exactly* (the server records a
//!   request's metrics before writing its response, so every response a
//!   client finished reading is visible to the next scrape);
//! * responses of deterministic routes must be byte-identical under
//!   concurrency (the scored-graph cache's central guarantee);
//! * the server-reported p50/p90/p99 may not exceed the client-observed
//!   quantile by more than one histogram bucket (server handling time is a
//!   subset of the client round trip, and the shared log-bucketed histogram
//!   overstates a quantile by at most one bucket).
//!
//! Both the `backbone_loadtest` binary (run by `ci.sh` against the smoke
//! server) and `bench_snapshot`'s `server_load` section are thin wrappers
//! around [`run_loadtest`] — one measurement pipeline, two consumers.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use backboning_obs::{bucket_index_micros, HistogramSnapshot, LatencyHistogram};

/// One route of the soak mix.
#[derive(Debug, Clone)]
pub struct LoadTarget {
    /// Request path (with query string) sent to the server.
    pub path: String,
    /// The route label the server files this path under in `/metrics`
    /// (e.g. `/graphs/{name}/backbone` — patterns, not concrete paths).
    pub route: String,
    /// Assert that every response is byte-identical to the first one.
    /// Off for routes whose body legitimately varies (`/health` reports
    /// live cache counters).
    pub expect_identical: bool,
}

/// A full load-test configuration.
#[derive(Debug, Clone)]
pub struct LoadtestConfig {
    /// Address of the running server.
    pub addr: SocketAddr,
    /// Number of concurrent client threads.
    pub clients: usize,
    /// Requests per client, cycling round-robin over [`LoadtestConfig::targets`].
    pub requests_per_client: usize,
    /// The route mix.
    pub targets: Vec<LoadTarget>,
}

/// Per-route outcome of one soak: client-side latency distribution next to
/// the server-reported quantiles for the same route.
#[derive(Debug, Clone)]
pub struct RouteOutcome {
    /// The server's route label.
    pub route: String,
    /// Requests the clients completed against this route.
    pub requests: u64,
    /// Client-side latency distribution (write → full read).
    pub client: HistogramSnapshot,
    /// Server-reported p50 for this route, in milliseconds.
    pub server_p50_ms: f64,
    /// Server-reported p90 for this route, in milliseconds.
    pub server_p90_ms: f64,
    /// Server-reported p99 for this route, in milliseconds.
    pub server_p99_ms: f64,
}

/// The result of one [`run_loadtest`] soak. Constructed only after every
/// cross-check passed.
#[derive(Debug, Clone)]
pub struct LoadtestReport {
    /// Total requests completed across all clients.
    pub total_requests: u64,
    /// Wall time of the soak (first connect to last read), in seconds.
    pub wall_seconds: f64,
    /// Aggregate client-side throughput: `total_requests / wall_seconds`.
    pub rps: f64,
    /// Client-side latency distribution over every request of the soak.
    pub client: HistogramSnapshot,
    /// Per-route breakdown, in route-label order.
    pub routes: Vec<RouteOutcome>,
}

/// One blocking HTTP/1.1 GET over a fresh connection, returning the status
/// code and the full raw response (head + body).
pub fn http_get(addr: SocketAddr, path: &str) -> Result<(u16, Vec<u8>), String> {
    let mut stream =
        TcpStream::connect(addr).map_err(|e| format!("connect {addr} for {path}: {e}"))?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: loadtest\r\nConnection: close\r\n\r\n"
    )
    .map_err(|e| format!("send {path}: {e}"))?;
    let mut response = Vec::new();
    stream
        .read_to_end(&mut response)
        .map_err(|e| format!("read {path}: {e}"))?;
    let head = std::str::from_utf8(response.get(..12).unwrap_or(&response))
        .map_err(|_| format!("{path}: non-UTF-8 status line"))?;
    let status: u16 = head
        .strip_prefix("HTTP/1.1 ")
        .and_then(|rest| rest.get(..3))
        .and_then(|code| code.parse().ok())
        .ok_or_else(|| format!("{path}: malformed status line `{head}`"))?;
    Ok((status, response))
}

/// The body of a `/metrics?format=json` scrape.
pub fn scrape_metrics_json(addr: SocketAddr) -> Result<String, String> {
    let (status, response) = http_get(addr, "/metrics?format=json")?;
    if status != 200 {
        return Err(format!("/metrics scrape returned {status}"));
    }
    let text = String::from_utf8(response).map_err(|_| "/metrics: non-UTF-8 body".to_string())?;
    let body_at = text
        .find("\r\n\r\n")
        .ok_or_else(|| "/metrics: no header/body separator".to_string())?;
    Ok(text[body_at + 4..].to_string())
}

/// Extract the first number following `"key": ` on `line`.
fn json_number(line: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\": ");
    let at = line.find(&needle)? + needle.len();
    let rest = &line[at..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Total of `http_requests_total` over every status for one GET route in a
/// `/metrics?format=json` body. The obs renderer emits one metric entry per
/// line, so a line filter is a complete parse.
pub fn route_request_count(metrics_json: &str, route: &str) -> u64 {
    metrics_json
        .lines()
        .filter(|line| {
            line.contains("\"name\": \"http_requests_total\"")
                && line.contains("\"method\": \"GET\"")
                && line.contains(&format!("\"route\": \"{route}\""))
        })
        .filter_map(|line| json_number(line, "value"))
        .sum::<f64>() as u64
}

/// The `(count, sum_seconds)` of one GET route's duration histogram in a
/// `/metrics?format=json` body.
pub fn route_duration_seconds(metrics_json: &str, route: &str) -> Option<(u64, f64)> {
    metrics_json
        .lines()
        .find(|line| {
            line.contains("\"name\": \"http_request_duration_seconds\"")
                && line.contains("\"method\": \"GET\"")
                && line.contains(&format!("\"route\": \"{route}\""))
        })
        .and_then(|line| {
            Some((
                json_number(line, "count")? as u64,
                json_number(line, "sum_seconds")?,
            ))
        })
}

/// The server-reported `(p50, p90, p99)` of one GET route's duration
/// histogram, in seconds.
pub fn route_quantiles_seconds(metrics_json: &str, route: &str) -> Option<(f64, f64, f64)> {
    metrics_json
        .lines()
        .find(|line| {
            line.contains("\"name\": \"http_request_duration_seconds\"")
                && line.contains("\"method\": \"GET\"")
                && line.contains(&format!("\"route\": \"{route}\""))
        })
        .and_then(|line| {
            Some((
                json_number(line, "p50_seconds")?,
                json_number(line, "p90_seconds")?,
                json_number(line, "p99_seconds")?,
            ))
        })
}

/// Per-target shared state of one soak.
struct TargetState {
    histogram: LatencyHistogram,
    completed: AtomicU64,
    reference: Mutex<Option<Vec<u8>>>,
}

/// Run the soak and every cross-check; any failed assertion returns `Err`
/// with a message naming the route and the numbers that disagreed.
pub fn run_loadtest(config: &LoadtestConfig) -> Result<LoadtestReport, String> {
    if config.targets.is_empty() || config.clients == 0 || config.requests_per_client == 0 {
        return Err("loadtest needs at least one target, client and request".to_string());
    }
    let before = scrape_metrics_json(config.addr)?;

    let states: Vec<TargetState> = config
        .targets
        .iter()
        .map(|_| TargetState {
            histogram: LatencyHistogram::new(),
            completed: AtomicU64::new(0),
            reference: Mutex::new(None),
        })
        .collect();
    let overall = LatencyHistogram::new();
    let failures: Mutex<Vec<String>> = Mutex::new(Vec::new());

    let soak_start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..config.clients {
            scope.spawn(|| {
                for index in 0..config.requests_per_client {
                    let target_index = index % config.targets.len();
                    let target = &config.targets[target_index];
                    let state = &states[target_index];
                    let result = (|| -> Result<(), String> {
                        let mut stream = TcpStream::connect(config.addr)
                            .map_err(|e| format!("connect for {}: {e}", target.path))?;
                        let start = Instant::now();
                        write!(
                            stream,
                            "GET {} HTTP/1.1\r\nHost: loadtest\r\nConnection: close\r\n\r\n",
                            target.path
                        )
                        .map_err(|e| format!("send {}: {e}", target.path))?;
                        let mut response = Vec::new();
                        stream
                            .read_to_end(&mut response)
                            .map_err(|e| format!("read {}: {e}", target.path))?;
                        let elapsed = start.elapsed();
                        if !response.starts_with(b"HTTP/1.1 200") {
                            return Err(format!(
                                "{}: non-200 response: {}",
                                target.path,
                                String::from_utf8_lossy(&response[..response.len().min(120)])
                            ));
                        }
                        if target.expect_identical {
                            let mut reference = state.reference.lock().unwrap();
                            match reference.as_ref() {
                                None => *reference = Some(response.clone()),
                                Some(expected) if *expected != response => {
                                    return Err(format!(
                                        "{}: response bytes diverged under load \
                                         ({} vs {} bytes)",
                                        target.path,
                                        expected.len(),
                                        response.len()
                                    ));
                                }
                                Some(_) => {}
                            }
                        }
                        state.histogram.record(elapsed);
                        overall.record(elapsed);
                        state.completed.fetch_add(1, Ordering::Relaxed);
                        Ok(())
                    })();
                    if let Err(message) = result {
                        failures.lock().unwrap().push(message);
                        break;
                    }
                }
            });
        }
    });
    let wall_seconds = soak_start.elapsed().as_secs_f64();
    let failures = failures.into_inner().unwrap();
    if let Some(first) = failures.first() {
        return Err(format!(
            "{} client failure(s); first: {first}",
            failures.len()
        ));
    }

    let after = scrape_metrics_json(config.addr)?;

    // Group client-side results by route label: several paths may share one
    // route pattern (the server can't tell them apart, so neither do we).
    let mut routes: Vec<RouteOutcome> = Vec::new();
    for (target, state) in config.targets.iter().zip(&states) {
        let snapshot = state.histogram.snapshot();
        let completed = state.completed.load(Ordering::Relaxed);
        match routes.iter_mut().find(|r| r.route == target.route) {
            Some(existing) => {
                existing.requests += completed;
                existing.client.merge(&snapshot);
            }
            None => routes.push(RouteOutcome {
                route: target.route.clone(),
                requests: completed,
                client: snapshot,
                server_p50_ms: 0.0,
                server_p90_ms: 0.0,
                server_p99_ms: 0.0,
            }),
        }
    }
    routes.sort_by(|a, b| a.route.cmp(&b.route));

    for outcome in &mut routes {
        // Exact count cross-check. The pre-soak scrape's own request is
        // recorded before its response is written, so it is part of the
        // after-scrape's `/metrics` count; the after-scrape itself is not.
        let mut expected = outcome.requests;
        if outcome.route == "/metrics" {
            expected += 1;
        }
        let delta = route_request_count(&after, &outcome.route)
            .saturating_sub(route_request_count(&before, &outcome.route));
        if delta != expected {
            return Err(format!(
                "route {}: /metrics counted {delta} request(s), clients completed {expected}",
                outcome.route
            ));
        }

        let (p50, p90, p99) = route_quantiles_seconds(&after, &outcome.route)
            .ok_or_else(|| format!("route {}: no duration histogram in /metrics", outcome.route))?;
        outcome.server_p50_ms = p50 * 1e3;
        outcome.server_p90_ms = p90 * 1e3;
        outcome.server_p99_ms = p99 * 1e3;

        // Quantile cross-check — only when the soak is the route's whole
        // traffic, so both sides rank the same request population. Server
        // handling time is a subset of the client round trip, and each
        // reported quantile overstates its true value by at most one
        // bucket, so the server may lead the client by at most one bucket.
        if route_request_count(&before, &outcome.route) == 0 && outcome.route != "/metrics" {
            for (quantile, server_ms) in [
                (0.5, outcome.server_p50_ms),
                (0.9, outcome.server_p90_ms),
                (0.99, outcome.server_p99_ms),
            ] {
                let client_micros = outcome.client.quantile_micros(quantile);
                let server_micros = (server_ms * 1e3).round() as u64;
                if bucket_index_micros(server_micros) > bucket_index_micros(client_micros) + 1 {
                    return Err(format!(
                        "route {}: server p{} {:.3} ms exceeds the client-side {:.3} ms \
                         by more than one histogram bucket",
                        outcome.route,
                        (quantile * 100.0) as u32,
                        server_ms,
                        client_micros as f64 / 1e3
                    ));
                }
            }
        }
    }

    let total_requests: u64 = states
        .iter()
        .map(|s| s.completed.load(Ordering::Relaxed))
        .sum();
    Ok(LoadtestReport {
        total_requests,
        wall_seconds,
        rps: total_requests as f64 / wall_seconds,
        client: overall.snapshot(),
        routes,
    })
}

impl LoadtestReport {
    /// Render the human-readable soak summary printed by the
    /// `backbone_loadtest` binary.
    pub fn render_table(&self) -> String {
        let ms = |micros: u64| micros as f64 / 1e3;
        let mut out = format!(
            "loadtest: {} requests in {:.3} s = {:.1} req/s\n\
             client latency: p50 {:.3} ms, p90 {:.3} ms, p99 {:.3} ms, max {:.3} ms\n",
            self.total_requests,
            self.wall_seconds,
            self.rps,
            ms(self.client.quantile_micros(0.5)),
            ms(self.client.quantile_micros(0.9)),
            ms(self.client.quantile_micros(0.99)),
            ms(self.client.max_micros()),
        );
        for route in &self.routes {
            out.push_str(&format!(
                "  {}: {} requests, client p50 {:.3} ms / server p50 {:.3} ms \
                 (count + quantile cross-checks passed)\n",
                route.route,
                route.requests,
                ms(route.client.quantile_micros(0.5)),
                route.server_p50_ms,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_line_parsers_extract_counts_and_quantiles() {
        let body = concat!(
            "{\n",
            "  \"counters\": [\n",
            "    { \"name\": \"http_requests_total\", \"labels\": { \"method\": \"GET\", ",
            "\"route\": \"/health\", \"status\": \"200\" }, \"value\": 7 },\n",
            "    { \"name\": \"http_requests_total\", \"labels\": { \"method\": \"GET\", ",
            "\"route\": \"/health\", \"status\": \"400\" }, \"value\": 2 },\n",
            "    { \"name\": \"http_requests_total\", \"labels\": { \"method\": \"POST\", ",
            "\"route\": \"/health\", \"status\": \"200\" }, \"value\": 9 }\n",
            "  ],\n",
            "  \"histograms\": [\n",
            "    { \"name\": \"http_request_duration_seconds\", \"labels\": ",
            "{ \"method\": \"GET\", \"route\": \"/health\" }, \"count\": 9, ",
            "\"sum_seconds\": 0.01, \"p50_seconds\": 0.001024, \"p90_seconds\": 0.002048, ",
            "\"p99_seconds\": 0.004096, \"max_seconds\": 0.005 }\n",
            "  ]\n",
            "}\n"
        );
        // GET statuses sum; the POST line is excluded.
        assert_eq!(route_request_count(body, "/health"), 9);
        assert_eq!(route_request_count(body, "/graphs"), 0);
        assert_eq!(
            route_quantiles_seconds(body, "/health"),
            Some((0.001024, 0.002048, 0.004096))
        );
        assert_eq!(route_quantiles_seconds(body, "/graphs"), None);
        assert_eq!(route_duration_seconds(body, "/health"), Some((9, 0.01)));
    }

    #[test]
    fn empty_configurations_are_rejected() {
        let config = LoadtestConfig {
            addr: "127.0.0.1:1".parse().unwrap(),
            clients: 0,
            requests_per_client: 10,
            targets: vec![LoadTarget {
                path: "/health".to_string(),
                route: "/health".to_string(),
                expect_identical: false,
            }],
        };
        assert!(run_loadtest(&config).is_err());
    }
}
