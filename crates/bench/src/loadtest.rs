//! A concurrent load-test harness for the backboning HTTP server.
//!
//! The harness soaks a running server with `clients × requests_per_client`
//! keep-alive-less requests cycling over a route mix, measures every
//! client-side latency (post-connect: request write → full response read)
//! into the same [`backboning_obs::LatencyHistogram`] the server uses, and
//! then **cross-checks the server's own `/metrics` against what the clients
//! observed**:
//!
//! * per-route request counts must match *exactly* (the server records a
//!   request's metrics before writing its response, so every response a
//!   client finished reading is visible to the next scrape);
//! * responses of deterministic routes must be byte-identical under
//!   concurrency (the scored-graph cache's central guarantee);
//! * the server-reported p50/p90/p99 may not exceed the client-observed
//!   quantile by more than one histogram bucket (server handling time is a
//!   subset of the client round trip, and the shared log-bucketed histogram
//!   overstates a quantile by at most one bucket).
//!
//! Both the `backbone_loadtest` binary (run by `ci.sh` against the smoke
//! server) and `bench_snapshot`'s `server_load` section are thin wrappers
//! around [`run_loadtest`] — one measurement pipeline, two consumers.
//!
//! [`run_churn_soak`] is the dynamic-graph counterpart: writers stream
//! `PATCH` deltas at a graph while readers hammer its backbone route, and
//! every response a reader sees must be byte-identical to the from-scratch
//! output of *some* reachable weight state — the server's generation
//! snapshots make torn reads impossible, and this soak is the end-to-end
//! proof under real concurrency.

use std::collections::{HashMap, HashSet};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use backboning::{apply_batch, Method, Pipeline, ThresholdPolicy};
use backboning_graph::io::{read_edge_list_csr_str, EdgeListOptions};
use backboning_graph::{DeltaBatch, Direction};
use backboning_obs::{bucket_index_micros, HistogramSnapshot, LatencyHistogram};

/// One route of the soak mix.
#[derive(Debug, Clone)]
pub struct LoadTarget {
    /// Request path (with query string) sent to the server.
    pub path: String,
    /// The route label the server files this path under in `/metrics`
    /// (e.g. `/graphs/{name}/backbone` — patterns, not concrete paths).
    pub route: String,
    /// Assert that every response is byte-identical to the first one.
    /// Off for routes whose body legitimately varies (`/health` reports
    /// live cache counters).
    pub expect_identical: bool,
}

/// A full load-test configuration.
#[derive(Debug, Clone)]
pub struct LoadtestConfig {
    /// Address of the running server.
    pub addr: SocketAddr,
    /// Number of concurrent client threads.
    pub clients: usize,
    /// Requests per client, cycling round-robin over [`LoadtestConfig::targets`].
    pub requests_per_client: usize,
    /// The route mix.
    pub targets: Vec<LoadTarget>,
}

/// Per-route outcome of one soak: client-side latency distribution next to
/// the server-reported quantiles for the same route.
#[derive(Debug, Clone)]
pub struct RouteOutcome {
    /// The server's route label.
    pub route: String,
    /// Requests the clients completed against this route.
    pub requests: u64,
    /// Client-side latency distribution (write → full read).
    pub client: HistogramSnapshot,
    /// Server-reported p50 for this route, in milliseconds.
    pub server_p50_ms: f64,
    /// Server-reported p90 for this route, in milliseconds.
    pub server_p90_ms: f64,
    /// Server-reported p99 for this route, in milliseconds.
    pub server_p99_ms: f64,
}

/// The result of one [`run_loadtest`] soak. Constructed only after every
/// cross-check passed.
#[derive(Debug, Clone)]
pub struct LoadtestReport {
    /// Total requests completed across all clients.
    pub total_requests: u64,
    /// Wall time of the soak (first connect to last read), in seconds.
    pub wall_seconds: f64,
    /// Aggregate client-side throughput: `total_requests / wall_seconds`.
    pub rps: f64,
    /// Client-side latency distribution over every request of the soak.
    pub client: HistogramSnapshot,
    /// Per-route breakdown, in route-label order.
    pub routes: Vec<RouteOutcome>,
}

/// Parse the status code off a raw HTTP/1.1 response.
fn status_of(response: &[u8], path: &str) -> Result<u16, String> {
    let head = std::str::from_utf8(response.get(..12).unwrap_or(response))
        .map_err(|_| format!("{path}: non-UTF-8 status line"))?;
    head.strip_prefix("HTTP/1.1 ")
        .and_then(|rest| rest.get(..3))
        .and_then(|code| code.parse().ok())
        .ok_or_else(|| format!("{path}: malformed status line `{head}`"))
}

/// The body of a raw HTTP response (everything after the header separator).
pub fn response_body(response: &[u8]) -> Result<&[u8], String> {
    response
        .windows(4)
        .position(|window| window == b"\r\n\r\n")
        .map(|at| &response[at + 4..])
        .ok_or_else(|| "response has no header/body separator".to_string())
}

/// One blocking HTTP/1.1 GET over a fresh connection, returning the status
/// code and the full raw response (head + body).
pub fn http_get(addr: SocketAddr, path: &str) -> Result<(u16, Vec<u8>), String> {
    let mut stream =
        TcpStream::connect(addr).map_err(|e| format!("connect {addr} for {path}: {e}"))?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: loadtest\r\nConnection: close\r\n\r\n"
    )
    .map_err(|e| format!("send {path}: {e}"))?;
    let mut response = Vec::new();
    stream
        .read_to_end(&mut response)
        .map_err(|e| format!("read {path}: {e}"))?;
    let status = status_of(&response, path)?;
    Ok((status, response))
}

/// One blocking HTTP/1.1 request with a body (`POST`, `PATCH`, `DELETE`, …)
/// over a fresh connection, returning the status code and the full raw
/// response (head + body).
pub fn http_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &[u8],
    content_type: &str,
) -> Result<(u16, Vec<u8>), String> {
    let mut stream =
        TcpStream::connect(addr).map_err(|e| format!("connect {addr} for {path}: {e}"))?;
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: loadtest\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )
    .map_err(|e| format!("send {method} {path}: {e}"))?;
    stream
        .write_all(body)
        .map_err(|e| format!("send {method} {path} body: {e}"))?;
    let mut response = Vec::new();
    stream
        .read_to_end(&mut response)
        .map_err(|e| format!("read {method} {path}: {e}"))?;
    let status = status_of(&response, path)?;
    Ok((status, response))
}

/// The body of a `/metrics?format=json` scrape.
pub fn scrape_metrics_json(addr: SocketAddr) -> Result<String, String> {
    let (status, response) = http_get(addr, "/metrics?format=json")?;
    if status != 200 {
        return Err(format!("/metrics scrape returned {status}"));
    }
    let text = String::from_utf8(response).map_err(|_| "/metrics: non-UTF-8 body".to_string())?;
    let body_at = text
        .find("\r\n\r\n")
        .ok_or_else(|| "/metrics: no header/body separator".to_string())?;
    Ok(text[body_at + 4..].to_string())
}

/// Extract the first number following `"key": ` on `line`.
fn json_number(line: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\": ");
    let at = line.find(&needle)? + needle.len();
    let rest = &line[at..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Total of `http_requests_total` over every status for one GET route in a
/// `/metrics?format=json` body. The obs renderer emits one metric entry per
/// line, so a line filter is a complete parse.
pub fn route_request_count(metrics_json: &str, route: &str) -> u64 {
    route_request_count_by_method(metrics_json, "GET", route)
}

/// [`route_request_count`] for an explicit HTTP method — the churn soak
/// counts `PATCH` traffic separately from the `GET` reader traffic.
pub fn route_request_count_by_method(metrics_json: &str, method: &str, route: &str) -> u64 {
    metrics_json
        .lines()
        .filter(|line| {
            line.contains("\"name\": \"http_requests_total\"")
                && line.contains(&format!("\"method\": \"{method}\""))
                && line.contains(&format!("\"route\": \"{route}\""))
        })
        .filter_map(|line| json_number(line, "value"))
        .sum::<f64>() as u64
}

/// Total of one unlabeled (or label-summed) counter in a
/// `/metrics?format=json` body — e.g. `graph_patches_total`.
pub fn counter_total(metrics_json: &str, name: &str) -> u64 {
    metrics_json
        .lines()
        .filter(|line| line.contains(&format!("\"name\": \"{name}\"")))
        .filter_map(|line| json_number(line, "value"))
        .sum::<f64>() as u64
}

/// The `(count, sum_seconds)` of one GET route's duration histogram in a
/// `/metrics?format=json` body.
pub fn route_duration_seconds(metrics_json: &str, route: &str) -> Option<(u64, f64)> {
    metrics_json
        .lines()
        .find(|line| {
            line.contains("\"name\": \"http_request_duration_seconds\"")
                && line.contains("\"method\": \"GET\"")
                && line.contains(&format!("\"route\": \"{route}\""))
        })
        .and_then(|line| {
            Some((
                json_number(line, "count")? as u64,
                json_number(line, "sum_seconds")?,
            ))
        })
}

/// The server-reported `(p50, p90, p99)` of one GET route's duration
/// histogram, in seconds.
pub fn route_quantiles_seconds(metrics_json: &str, route: &str) -> Option<(f64, f64, f64)> {
    metrics_json
        .lines()
        .find(|line| {
            line.contains("\"name\": \"http_request_duration_seconds\"")
                && line.contains("\"method\": \"GET\"")
                && line.contains(&format!("\"route\": \"{route}\""))
        })
        .and_then(|line| {
            Some((
                json_number(line, "p50_seconds")?,
                json_number(line, "p90_seconds")?,
                json_number(line, "p99_seconds")?,
            ))
        })
}

/// Per-target shared state of one soak.
struct TargetState {
    histogram: LatencyHistogram,
    completed: AtomicU64,
    reference: Mutex<Option<Vec<u8>>>,
}

/// Run the soak and every cross-check; any failed assertion returns `Err`
/// with a message naming the route and the numbers that disagreed.
pub fn run_loadtest(config: &LoadtestConfig) -> Result<LoadtestReport, String> {
    if config.targets.is_empty() || config.clients == 0 || config.requests_per_client == 0 {
        return Err("loadtest needs at least one target, client and request".to_string());
    }
    let before = scrape_metrics_json(config.addr)?;

    let states: Vec<TargetState> = config
        .targets
        .iter()
        .map(|_| TargetState {
            histogram: LatencyHistogram::new(),
            completed: AtomicU64::new(0),
            reference: Mutex::new(None),
        })
        .collect();
    let overall = LatencyHistogram::new();
    let failures: Mutex<Vec<String>> = Mutex::new(Vec::new());

    let soak_start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..config.clients {
            scope.spawn(|| {
                for index in 0..config.requests_per_client {
                    let target_index = index % config.targets.len();
                    let target = &config.targets[target_index];
                    let state = &states[target_index];
                    let result = (|| -> Result<(), String> {
                        let mut stream = TcpStream::connect(config.addr)
                            .map_err(|e| format!("connect for {}: {e}", target.path))?;
                        let start = Instant::now();
                        write!(
                            stream,
                            "GET {} HTTP/1.1\r\nHost: loadtest\r\nConnection: close\r\n\r\n",
                            target.path
                        )
                        .map_err(|e| format!("send {}: {e}", target.path))?;
                        let mut response = Vec::new();
                        stream
                            .read_to_end(&mut response)
                            .map_err(|e| format!("read {}: {e}", target.path))?;
                        let elapsed = start.elapsed();
                        if !response.starts_with(b"HTTP/1.1 200") {
                            return Err(format!(
                                "{}: non-200 response: {}",
                                target.path,
                                String::from_utf8_lossy(&response[..response.len().min(120)])
                            ));
                        }
                        if target.expect_identical {
                            let mut reference = state.reference.lock().unwrap();
                            match reference.as_ref() {
                                None => *reference = Some(response.clone()),
                                Some(expected) if *expected != response => {
                                    return Err(format!(
                                        "{}: response bytes diverged under load \
                                         ({} vs {} bytes)",
                                        target.path,
                                        expected.len(),
                                        response.len()
                                    ));
                                }
                                Some(_) => {}
                            }
                        }
                        state.histogram.record(elapsed);
                        overall.record(elapsed);
                        state.completed.fetch_add(1, Ordering::Relaxed);
                        Ok(())
                    })();
                    if let Err(message) = result {
                        failures.lock().unwrap().push(message);
                        break;
                    }
                }
            });
        }
    });
    let wall_seconds = soak_start.elapsed().as_secs_f64();
    let failures = failures.into_inner().unwrap();
    if let Some(first) = failures.first() {
        return Err(format!(
            "{} client failure(s); first: {first}",
            failures.len()
        ));
    }

    let after = scrape_metrics_json(config.addr)?;

    // Group client-side results by route label: several paths may share one
    // route pattern (the server can't tell them apart, so neither do we).
    let mut routes: Vec<RouteOutcome> = Vec::new();
    for (target, state) in config.targets.iter().zip(&states) {
        let snapshot = state.histogram.snapshot();
        let completed = state.completed.load(Ordering::Relaxed);
        match routes.iter_mut().find(|r| r.route == target.route) {
            Some(existing) => {
                existing.requests += completed;
                existing.client.merge(&snapshot);
            }
            None => routes.push(RouteOutcome {
                route: target.route.clone(),
                requests: completed,
                client: snapshot,
                server_p50_ms: 0.0,
                server_p90_ms: 0.0,
                server_p99_ms: 0.0,
            }),
        }
    }
    routes.sort_by(|a, b| a.route.cmp(&b.route));

    for outcome in &mut routes {
        // Exact count cross-check. The pre-soak scrape's own request is
        // recorded before its response is written, so it is part of the
        // after-scrape's `/metrics` count; the after-scrape itself is not.
        let mut expected = outcome.requests;
        if outcome.route == "/metrics" {
            expected += 1;
        }
        let delta = route_request_count(&after, &outcome.route)
            .saturating_sub(route_request_count(&before, &outcome.route));
        if delta != expected {
            return Err(format!(
                "route {}: /metrics counted {delta} request(s), clients completed {expected}",
                outcome.route
            ));
        }

        let (p50, p90, p99) = route_quantiles_seconds(&after, &outcome.route)
            .ok_or_else(|| format!("route {}: no duration histogram in /metrics", outcome.route))?;
        outcome.server_p50_ms = p50 * 1e3;
        outcome.server_p90_ms = p90 * 1e3;
        outcome.server_p99_ms = p99 * 1e3;

        // Quantile cross-check — only when the soak is the route's whole
        // traffic, so both sides rank the same request population. Server
        // handling time is a subset of the client round trip, and each
        // reported quantile overstates its true value by at most one
        // bucket, so the server may lead the client by at most one bucket.
        if route_request_count(&before, &outcome.route) == 0 && outcome.route != "/metrics" {
            for (quantile, server_ms) in [
                (0.5, outcome.server_p50_ms),
                (0.9, outcome.server_p90_ms),
                (0.99, outcome.server_p99_ms),
            ] {
                let client_micros = outcome.client.quantile_micros(quantile);
                let server_micros = (server_ms * 1e3).round() as u64;
                if bucket_index_micros(server_micros) > bucket_index_micros(client_micros) + 1 {
                    return Err(format!(
                        "route {}: server p{} {:.3} ms exceeds the client-side {:.3} ms \
                         by more than one histogram bucket",
                        outcome.route,
                        (quantile * 100.0) as u32,
                        server_ms,
                        client_micros as f64 / 1e3
                    ));
                }
            }
        }
    }

    let total_requests: u64 = states
        .iter()
        .map(|s| s.completed.load(Ordering::Relaxed))
        .sum();
    Ok(LoadtestReport {
        total_requests,
        wall_seconds,
        rps: total_requests as f64 / wall_seconds,
        client: overall.snapshot(),
        routes,
    })
}

impl LoadtestReport {
    /// Render the human-readable soak summary printed by the
    /// `backbone_loadtest` binary.
    pub fn render_table(&self) -> String {
        let ms = |micros: u64| micros as f64 / 1e3;
        let mut out = format!(
            "loadtest: {} requests in {:.3} s = {:.1} req/s\n\
             client latency: p50 {:.3} ms, p90 {:.3} ms, p99 {:.3} ms, max {:.3} ms\n",
            self.total_requests,
            self.wall_seconds,
            self.rps,
            ms(self.client.quantile_micros(0.5)),
            ms(self.client.quantile_micros(0.9)),
            ms(self.client.quantile_micros(0.99)),
            ms(self.client.max_micros()),
        );
        for route in &self.routes {
            out.push_str(&format!(
                "  {}: {} requests, client p50 {:.3} ms / server p50 {:.3} ms \
                 (count + quantile cross-checks passed)\n",
                route.route,
                route.requests,
                ms(route.client.quantile_micros(0.5)),
                route.server_p50_ms,
            ));
        }
        out
    }
}

/// Writers in the churn soak. Each writer owns a disjoint set of edges and
/// only ever *reweights* them to absolute values, so any interleaving of
/// writer progress lands on one of `(BATCHES + 1)^2` well-defined weight
/// states.
const CHURN_WRITERS: usize = 2;
/// Sequential delta batches each churn writer applies.
const CHURN_BATCHES: usize = 6;
/// Name the churn soak registers its graph under (replaced on re-runs,
/// deleted on success).
const CHURN_GRAPH: &str = "churn-soak";

/// Configuration of one [`run_churn_soak`]: reader concurrency against a
/// running server. The writer side is fixed (`CHURN_WRITERS` writers ×
/// `CHURN_BATCHES` batches) so the reachable-state enumeration stays
/// exact.
#[derive(Debug, Clone)]
pub struct ChurnConfig {
    /// Address of the running server.
    pub addr: SocketAddr,
    /// Number of concurrent reader threads.
    pub readers: usize,
    /// Backbone requests per reader.
    pub reads_per_reader: usize,
}

/// The result of one [`run_churn_soak`]. Constructed only after every
/// cross-check passed.
#[derive(Debug, Clone)]
pub struct ChurnReport {
    /// Backbone reads completed across all readers.
    pub reads: u64,
    /// PATCH deltas the writers applied.
    pub patches: u64,
    /// Distinct weight states the readers actually observed (≤
    /// [`ChurnReport::reachable_states`]; scheduling-dependent).
    pub states_observed: usize,
    /// Weight states reachable under any writer interleaving.
    pub reachable_states: usize,
    /// The graph's generation after all writers finished.
    pub final_generation: u64,
    /// Wall time of the soak, in seconds.
    pub wall_seconds: f64,
}

impl ChurnReport {
    /// Render the human-readable churn summary printed by the
    /// `backbone_loadtest` binary.
    pub fn render_table(&self) -> String {
        format!(
            "churn soak: {} reads raced against {} PATCH deltas in {:.3} s\n\
               every response was byte-identical to a from-scratch build of its state\n\
               {}/{} reachable states observed, final generation {}, \
             /metrics patch counters match\n\
             churn cross-checks passed\n",
            self.reads,
            self.patches,
            self.wall_seconds,
            self.states_observed,
            self.reachable_states,
            self.final_generation,
        )
    }
}

/// The churn substrate: three stable high-weight edges plus three edges per
/// writer, with base weights matching [`churn_batch_tsv`] at batch 0.
fn churn_base_edges() -> &'static str {
    "s1 s2 100\n\
     s2 s3 90\n\
     s3 s1 80\n\
     a0 b0 10\n\
     a1 b1 11\n\
     a2 b2 12\n\
     c0 d0 50\n\
     c1 d1 51\n\
     c2 d2 52\n"
}

/// The TSV delta a churn writer sends as its `batch`-th PATCH (1-based):
/// absolute reweights of the writer's own three edges, so the weight state
/// after any interleaving is `(batches applied by writer 0, batches applied
/// by writer 1)` — the last batch per writer wins.
fn churn_batch_tsv(writer: usize, batch: usize) -> String {
    let endpoints: [[(&str, &str); 3]; CHURN_WRITERS] = [
        [("a0", "b0"), ("a1", "b1"), ("a2", "b2")],
        [("c0", "d0"), ("c1", "d1"), ("c2", "d2")],
    ];
    let mut text = String::new();
    for (edge, (source, target)) in endpoints[writer].iter().enumerate() {
        let weight = 10 + writer * 40 + batch * 5 + edge;
        text.push_str(&format!("reweight {source} {target} {weight}\n"));
    }
    text
}

/// The backbone query the churn readers poll: TSV output so the body is the
/// exact `write_backbone` byte stream, `top_k=9` so every edge (and thus
/// every reweight) is visible in it.
fn churn_backbone_path() -> String {
    format!("/graphs/{CHURN_GRAPH}/backbone?method=naive&top_k=9&output=backbone&format=tsv")
}

/// Enumerate every reachable weight state `(i, j)` and compute its
/// from-scratch backbone body with the same pipeline the server runs —
/// `apply_batch` + [`Pipeline`] + `write_backbone`, no server involved.
fn churn_expected_bodies() -> Result<HashMap<Vec<u8>, (usize, usize)>, String> {
    let options = EdgeListOptions {
        direction: Direction::Undirected,
        ..Default::default()
    };
    let base = read_edge_list_csr_str(churn_base_edges(), &options)
        .map_err(|e| format!("churn substrate: {e}"))?;
    let method = Method::parse("naive").ok_or("churn: unknown method `naive`")?;
    let pipeline = Pipeline::new(method, ThresholdPolicy::TopK(9));
    let mut bodies = HashMap::new();
    for i in 0..=CHURN_BATCHES {
        for j in 0..=CHURN_BATCHES {
            let mut delta_text = String::new();
            if i > 0 {
                delta_text.push_str(&churn_batch_tsv(0, i));
            }
            if j > 0 {
                delta_text.push_str(&churn_batch_tsv(1, j));
            }
            let graph = if delta_text.is_empty() {
                base.clone()
            } else {
                let batch = DeltaBatch::parse_tsv(&delta_text)
                    .map_err(|e| format!("churn state ({i}, {j}): {e}"))?;
                apply_batch(&base, &batch)
                    .map_err(|e| format!("churn state ({i}, {j}): {e}"))?
                    .0
            };
            let run = pipeline
                .run(&graph)
                .map_err(|e| format!("churn state ({i}, {j}): {e}"))?;
            let mut body = Vec::new();
            run.write_backbone(&mut body)
                .map_err(|e| format!("churn state ({i}, {j}): {e}"))?;
            bodies.insert(body, (i, j));
        }
    }
    Ok(bodies)
}

/// Soak a running server with concurrent writers PATCHing a graph while
/// readers poll its backbone route, then cross-check everything that must
/// hold if generation snapshots work:
///
/// * every reader response is byte-identical to the from-scratch backbone
///   of **some** reachable weight state — never a torn mix of two deltas;
/// * the final generation equals `upload generation + total patches`;
/// * `/metrics` agrees exactly: `graph_patches_total`, per-op and
///   compaction counters, the PATCH request count on the graph route, and
///   the GET count on the backbone route all match the client side.
pub fn run_churn_soak(config: &ChurnConfig) -> Result<ChurnReport, String> {
    if config.readers == 0 || config.reads_per_reader == 0 {
        return Err("churn soak needs at least one reader and one read".to_string());
    }
    let expected = churn_expected_bodies()?;
    let before = scrape_metrics_json(config.addr)?;

    let upload_path = format!("/graphs/{CHURN_GRAPH}");
    let (status, response) = http_request(
        config.addr,
        "POST",
        &upload_path,
        churn_base_edges().as_bytes(),
        "text/tab-separated-values",
    )?;
    if status != 201 {
        return Err(format!("churn upload returned {status}"));
    }
    let upload_body = String::from_utf8_lossy(response_body(&response)?).to_string();
    let base_generation = upload_body
        .lines()
        .find_map(|line| json_number(line, "generation"))
        .ok_or("churn upload response has no generation")? as u64;

    let backbone_path = churn_backbone_path();
    let failures: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let observed: Mutex<HashSet<(usize, usize)>> = Mutex::new(HashSet::new());
    let reads_completed = AtomicU64::new(0);

    let soak_start = Instant::now();
    std::thread::scope(|scope| {
        for writer in 0..CHURN_WRITERS {
            scope.spawn({
                let failures = &failures;
                let upload_path = &upload_path;
                move || {
                    for batch in 1..=CHURN_BATCHES {
                        let delta = churn_batch_tsv(writer, batch);
                        let result = http_request(
                            config.addr,
                            "PATCH",
                            upload_path,
                            delta.as_bytes(),
                            "text/tab-separated-values",
                        );
                        match result {
                            Ok((200, _)) => {}
                            Ok((status, response)) => {
                                failures.lock().unwrap().push(format!(
                                    "writer {writer} batch {batch}: PATCH returned {status}: {}",
                                    String::from_utf8_lossy(&response[..response.len().min(200)])
                                ));
                                return;
                            }
                            Err(message) => {
                                failures.lock().unwrap().push(message);
                                return;
                            }
                        }
                        // Spread the batches across the read window so the
                        // readers race real mid-soak generations.
                        std::thread::sleep(Duration::from_millis(2));
                    }
                }
            });
        }
        for _ in 0..config.readers {
            scope.spawn(|| {
                for _ in 0..config.reads_per_reader {
                    let result = (|| -> Result<(), String> {
                        let (status, response) = http_get(config.addr, &backbone_path)?;
                        if status != 200 {
                            return Err(format!("{backbone_path}: status {status}"));
                        }
                        let body = response_body(&response)?;
                        let Some(&state) = expected.get(body) else {
                            return Err(format!(
                                "{backbone_path}: response matches no reachable weight \
                                 state (torn read?): {}",
                                String::from_utf8_lossy(&body[..body.len().min(200)])
                            ));
                        };
                        observed.lock().unwrap().insert(state);
                        reads_completed.fetch_add(1, Ordering::Relaxed);
                        Ok(())
                    })();
                    if let Err(message) = result {
                        failures.lock().unwrap().push(message);
                        break;
                    }
                }
            });
        }
    });
    let wall_seconds = soak_start.elapsed().as_secs_f64();
    let failures = failures.into_inner().unwrap();
    if let Some(first) = failures.first() {
        return Err(format!(
            "{} churn failure(s); first: {first}",
            failures.len()
        ));
    }

    // The settled state must be the one where both writers finished.
    let (status, response) = http_get(config.addr, &backbone_path)?;
    if status != 200 {
        return Err(format!("churn final read returned {status}"));
    }
    match expected.get(response_body(&response)?) {
        Some(&(CHURN_BATCHES, CHURN_BATCHES)) => {}
        Some(&state) => {
            return Err(format!(
                "churn settled on state {state:?}, expected \
                 ({CHURN_BATCHES}, {CHURN_BATCHES})"
            ))
        }
        None => return Err("churn final body matches no reachable state".to_string()),
    }

    let total_patches = (CHURN_WRITERS * CHURN_BATCHES) as u64;
    let (status, response) = http_get(config.addr, &upload_path)?;
    if status != 200 {
        return Err(format!("churn graph info returned {status}"));
    }
    let info = String::from_utf8_lossy(response_body(&response)?).to_string();
    let final_generation = info
        .lines()
        .find_map(|line| json_number(line, "generation"))
        .ok_or("churn graph info has no generation")? as u64;
    if final_generation != base_generation + total_patches {
        return Err(format!(
            "final generation {final_generation}, expected {} \
             (upload generation {base_generation} + {total_patches} patches)",
            base_generation + total_patches
        ));
    }

    // /metrics must agree exactly with what the clients did.
    let after = scrape_metrics_json(config.addr)?;
    let reads = reads_completed.load(Ordering::Relaxed);
    let checks: [(&str, u64, u64); 5] = [
        (
            "graph_patches_total",
            counter_total(&after, "graph_patches_total")
                .saturating_sub(counter_total(&before, "graph_patches_total")),
            total_patches,
        ),
        (
            "graph_patch_ops_total",
            counter_total(&after, "graph_patch_ops_total")
                .saturating_sub(counter_total(&before, "graph_patch_ops_total")),
            total_patches * 3,
        ),
        (
            "graph_compactions_total",
            counter_total(&after, "graph_compactions_total")
                .saturating_sub(counter_total(&before, "graph_compactions_total")),
            0,
        ),
        (
            "PATCH /graphs/{name}",
            route_request_count_by_method(&after, "PATCH", "/graphs/{name}").saturating_sub(
                route_request_count_by_method(&before, "PATCH", "/graphs/{name}"),
            ),
            total_patches,
        ),
        (
            "GET /graphs/{name}/backbone",
            route_request_count(&after, "/graphs/{name}/backbone")
                .saturating_sub(route_request_count(&before, "/graphs/{name}/backbone")),
            // Every reader request plus the settled-state confirmation read.
            reads + 1,
        ),
    ];
    for (what, got, want) in checks {
        if got != want {
            return Err(format!(
                "churn /metrics cross-check: {what} moved by {got}, clients did {want}"
            ));
        }
    }

    // Leave the server as we found it.
    let (status, _) = http_request(config.addr, "DELETE", &upload_path, b"", "text/plain")?;
    if status != 200 {
        return Err(format!("churn cleanup DELETE returned {status}"));
    }

    let states_observed = observed.into_inner().unwrap().len();
    Ok(ChurnReport {
        reads,
        patches: total_patches,
        states_observed,
        reachable_states: (CHURN_BATCHES + 1) * (CHURN_BATCHES + 1),
        final_generation,
        wall_seconds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_line_parsers_extract_counts_and_quantiles() {
        let body = concat!(
            "{\n",
            "  \"counters\": [\n",
            "    { \"name\": \"http_requests_total\", \"labels\": { \"method\": \"GET\", ",
            "\"route\": \"/health\", \"status\": \"200\" }, \"value\": 7 },\n",
            "    { \"name\": \"http_requests_total\", \"labels\": { \"method\": \"GET\", ",
            "\"route\": \"/health\", \"status\": \"400\" }, \"value\": 2 },\n",
            "    { \"name\": \"http_requests_total\", \"labels\": { \"method\": \"POST\", ",
            "\"route\": \"/health\", \"status\": \"200\" }, \"value\": 9 }\n",
            "  ],\n",
            "  \"histograms\": [\n",
            "    { \"name\": \"http_request_duration_seconds\", \"labels\": ",
            "{ \"method\": \"GET\", \"route\": \"/health\" }, \"count\": 9, ",
            "\"sum_seconds\": 0.01, \"p50_seconds\": 0.001024, \"p90_seconds\": 0.002048, ",
            "\"p99_seconds\": 0.004096, \"max_seconds\": 0.005 }\n",
            "  ]\n",
            "}\n"
        );
        // GET statuses sum; the POST line is excluded.
        assert_eq!(route_request_count(body, "/health"), 9);
        assert_eq!(route_request_count(body, "/graphs"), 0);
        assert_eq!(
            route_quantiles_seconds(body, "/health"),
            Some((0.001024, 0.002048, 0.004096))
        );
        assert_eq!(route_quantiles_seconds(body, "/graphs"), None);
        assert_eq!(route_duration_seconds(body, "/health"), Some((9, 0.01)));
    }

    #[test]
    fn method_aware_parsers_split_patch_from_get_traffic() {
        let body = concat!(
            "{\n",
            "    { \"name\": \"http_requests_total\", \"labels\": { \"method\": \"GET\", ",
            "\"route\": \"/graphs/{name}\", \"status\": \"200\" }, \"value\": 4 },\n",
            "    { \"name\": \"http_requests_total\", \"labels\": { \"method\": \"PATCH\", ",
            "\"route\": \"/graphs/{name}\", \"status\": \"200\" }, \"value\": 12 },\n",
            "    { \"name\": \"graph_patches_total\", \"labels\": {}, \"value\": 12 },\n",
            "    { \"name\": \"graph_patch_ops_total\", \"labels\": {}, \"value\": 36 }\n",
            "}\n"
        );
        assert_eq!(
            route_request_count_by_method(body, "PATCH", "/graphs/{name}"),
            12
        );
        assert_eq!(route_request_count(body, "/graphs/{name}"), 4);
        assert_eq!(counter_total(body, "graph_patches_total"), 12);
        assert_eq!(counter_total(body, "graph_patch_ops_total"), 36);
        assert_eq!(counter_total(body, "graph_compactions_total"), 0);
        assert_eq!(
            response_body(b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok").unwrap(),
            b"ok"
        );
    }

    #[test]
    fn every_reachable_churn_state_has_a_distinct_body() {
        // 49 distinct bodies means a reader can always tell exactly which
        // writer-progress state answered it — the soak's membership check
        // is as sharp as the enumeration.
        let bodies = churn_expected_bodies().unwrap();
        assert_eq!(bodies.len(), (CHURN_BATCHES + 1) * (CHURN_BATCHES + 1));
        // The batch generator and the substrate agree at batch 0: applying
        // "batch 0" weights must reproduce the base body.
        let base = read_edge_list_csr_str(
            churn_base_edges(),
            &EdgeListOptions {
                direction: Direction::Undirected,
                ..Default::default()
            },
        )
        .unwrap();
        let run = Pipeline::new(Method::parse("naive").unwrap(), ThresholdPolicy::TopK(9))
            .run(&base)
            .unwrap();
        let mut body = Vec::new();
        run.write_backbone(&mut body).unwrap();
        assert_eq!(bodies.get(&body), Some(&(0, 0)));
    }

    #[test]
    fn empty_configurations_are_rejected() {
        let config = LoadtestConfig {
            addr: "127.0.0.1:1".parse().unwrap(),
            clients: 0,
            requests_per_client: 10,
            targets: vec![LoadTarget {
                path: "/health".to_string(),
                route: "/health".to_string(),
                expect_identical: false,
            }],
        };
        assert!(run_loadtest(&config).is_err());
        assert!(run_churn_soak(&ChurnConfig {
            addr: "127.0.0.1:1".parse().unwrap(),
            readers: 0,
            reads_per_reader: 10,
        })
        .is_err());
    }
}
