//! The `bench-matrix` engine: sweep generated scenarios × methods × a
//! threshold policy and record one structured row per cell in the
//! `"matrix"` section of `BENCH_backbones.json`.
//!
//! Each row carries two kinds of fields:
//!
//! * **Deterministic** — spec string, family, node/edge counts, method
//!   cache key, policy, kept-edge count and an FNV-1a hash of the kept edge
//!   indices. Two runs with the same seed must reproduce these
//!   byte-identically (CI diffs them).
//! * **Run-dependent** — `median_ms` / `edges_per_sec` timings, stripped by
//!   the same `sed` idiom CI already uses for `score_wall_ms`.
//!
//! The section is maintained by textual upsert (key: spec × method × policy
//! × threads) so `bench-matrix` can extend the grid incrementally without
//! re-running every cell, and `bench_snapshot` carries the section over
//! when it rewrites the rest of the file.

use std::time::Instant;

use backboning::{Method, Pipeline, ThresholdPolicy};
use backboning_gen::ScenarioSpec;

/// One swept cell of the scenario × method matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixRow {
    /// Canonical scenario spec string (the row's substrate cache key).
    pub spec: String,
    /// Family tag of the spec (`ba`/`er`/`geo`/`sb`), for grepping.
    pub family: String,
    /// Node count of the generated substrate.
    pub nodes: usize,
    /// Edge count of the generated substrate.
    pub edges: usize,
    /// Method cache key (`nc`, `hss-approx:roots=256:seed=4242`, …).
    pub method: String,
    /// Threshold policy, rendered as `top_share=0.1`.
    pub policy: String,
    /// Number of edges the backbone kept.
    pub kept_edges: usize,
    /// FNV-1a 64-bit hash over the kept edge-index sequence — the
    /// timing-independent witness that the backbone itself is unchanged.
    pub backbone_hash: String,
    /// Worker threads used for scoring (resolved, never 0).
    pub threads: usize,
    /// Median scoring+selection wall time over the configured runs (ms).
    pub median_ms: f64,
    /// Input-edge throughput at the median (edges / second).
    pub edges_per_sec: f64,
}

/// Configuration of one `bench-matrix` sweep.
#[derive(Debug, Clone)]
pub struct MatrixConfig {
    /// Scenarios to sweep (generated once each, shared by all methods).
    pub specs: Vec<ScenarioSpec>,
    /// Methods to run on every scenario.
    pub methods: Vec<Method>,
    /// Share of top-scored edges each backbone keeps.
    pub top_share: f64,
    /// Timed repetitions per cell (the row records the median).
    pub runs: usize,
    /// Worker threads (0 = auto).
    pub threads: usize,
}

impl Default for MatrixConfig {
    fn default() -> Self {
        MatrixConfig {
            specs: default_grid(),
            methods: Method::scalable().to_vec(),
            top_share: 0.1,
            runs: 3,
            threads: 1,
        }
    }
}

/// The committed default grid: 4 families × 2 sizes, each family under a
/// different weight distribution, all on the workspace default seed.
pub fn default_grid() -> Vec<ScenarioSpec> {
    [
        "ba:n=2000,m=3,w=unit,noise=0,seed=4242",
        "ba:n=10000,m=3,w=unit,noise=0,seed=4242",
        "er:n=2000,e=6000,w=uniform(10),noise=0,seed=4242",
        "er:n=10000,e=30000,w=uniform(10),noise=0,seed=4242",
        "geo:n=2000,r=0.04,w=powerlaw(2.5),noise=0,seed=4242",
        "geo:n=10000,r=0.018,w=powerlaw(2.5),noise=0,seed=4242",
        "sb:n=2000,b=8,pin=0.01,pout=0.0004,w=lognormal(0,1),noise=0,seed=4242",
        "sb:n=10000,b=8,pin=0.002,pout=0.00008,w=lognormal(0,1),noise=0,seed=4242",
    ]
    .into_iter()
    .map(|text| ScenarioSpec::parse(text).expect("default grid specs are valid"))
    .collect()
}

/// FNV-1a over the kept edge-index sequence.
fn fnv1a_hash(kept: &[usize]) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &index in kept {
        for byte in (index as u64).to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    format!("{hash:016x}")
}

/// Run the sweep: every spec × method cell, `runs` timed repetitions each.
///
/// The kept edge set must be identical across repetitions (scoring is
/// deterministic); a divergence is reported as an error rather than a row.
pub fn run_matrix(config: &MatrixConfig) -> Result<Vec<MatrixRow>, String> {
    if config.specs.is_empty() || config.methods.is_empty() {
        return Err("bench-matrix needs at least one spec and one method".to_string());
    }
    if config.runs == 0 {
        return Err("bench-matrix needs at least one run per cell".to_string());
    }
    let policy = ThresholdPolicy::TopShare(config.top_share);
    let mut rows = Vec::with_capacity(config.specs.len() * config.methods.len());
    for spec in &config.specs {
        let graph = spec
            .generate()
            .map_err(|error| format!("generating `{spec}`: {error}"))?;
        for method in &config.methods {
            let mut timings_ms = Vec::with_capacity(config.runs);
            let mut witness: Option<(usize, String, usize)> = None;
            for _ in 0..config.runs {
                let started = Instant::now();
                let run = Pipeline::new(*method, policy)
                    .with_threads(config.threads)
                    .run(&graph)
                    .map_err(|error| format!("`{spec}` × {method}: {error}"))?;
                timings_ms.push(started.elapsed().as_secs_f64() * 1e3);
                let hash = fnv1a_hash(&run.kept);
                match &witness {
                    None => witness = Some((run.kept.len(), hash, run.threads)),
                    Some((kept_edges, expected, _)) => {
                        if *expected != hash || *kept_edges != run.kept.len() {
                            return Err(format!(
                                "`{spec}` × {method}: kept edge set diverged between runs"
                            ));
                        }
                    }
                }
            }
            let (kept_edges, backbone_hash, threads) = witness.expect("runs >= 1");
            timings_ms.sort_by(|a, b| a.total_cmp(b));
            let median_ms = timings_ms[timings_ms.len() / 2];
            let edges_per_sec = if median_ms > 0.0 {
                graph.edge_count() as f64 / (median_ms / 1e3)
            } else {
                f64::INFINITY
            };
            rows.push(MatrixRow {
                spec: spec.render(),
                family: spec.family.tag().to_string(),
                nodes: graph.node_count(),
                edges: graph.edge_count(),
                method: method.cache_key(),
                policy: format!("top_share={}", config.top_share),
                kept_edges,
                backbone_hash,
                threads,
                median_ms,
                edges_per_sec,
            });
        }
    }
    Ok(rows)
}

/// Render one row as a single JSON object line (4-space indent, no trailing
/// comma — the section renderer adds those).
pub fn render_row(row: &MatrixRow) -> String {
    format!(
        "{{\"spec\": \"{}\", \"family\": \"{}\", \"nodes\": {}, \"edges\": {}, \
         \"method\": \"{}\", \"policy\": \"{}\", \"kept_edges\": {}, \
         \"backbone_hash\": \"{}\", \"threads\": {}, \"median_ms\": {:.3}, \
         \"edges_per_sec\": {:.1}}}",
        row.spec,
        row.family,
        row.nodes,
        row.edges,
        row.method,
        row.policy,
        row.kept_edges,
        row.backbone_hash,
        row.threads,
        row.median_ms,
        row.edges_per_sec,
    )
}

fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let marker = format!("\"{key}\": ");
    let start = line.find(&marker)? + marker.len();
    let rest = &line[start..];
    if let Some(quoted) = rest.strip_prefix('"') {
        Some(&quoted[..quoted.find('"')?])
    } else {
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        Some(rest[..end].trim())
    }
}

/// Parse a rendered row line back into a [`MatrixRow`] (used by the CI
/// self-check and the upsert merge). Returns `None` on any malformed field.
pub fn parse_row(line: &str) -> Option<MatrixRow> {
    let line = line.trim().trim_end_matches(',');
    if !line.starts_with('{') || !line.ends_with('}') {
        return None;
    }
    Some(MatrixRow {
        spec: field(line, "spec")?.to_string(),
        family: field(line, "family")?.to_string(),
        nodes: field(line, "nodes")?.parse().ok()?,
        edges: field(line, "edges")?.parse().ok()?,
        method: field(line, "method")?.to_string(),
        policy: field(line, "policy")?.to_string(),
        kept_edges: field(line, "kept_edges")?.parse().ok()?,
        backbone_hash: field(line, "backbone_hash")?.to_string(),
        threads: field(line, "threads")?.parse().ok()?,
        median_ms: field(line, "median_ms")?.parse().ok()?,
        edges_per_sec: field(line, "edges_per_sec")?.parse().ok()?,
    })
}

const SECTION_OPEN: &str = "  \"matrix\": [\n";
const SECTION_CLOSE: &str = "\n  ]";

/// Extract the rows of an existing `"matrix"` section, oldest first.
/// Returns an empty vector when the document has no section yet.
pub fn extract_rows(json: &str) -> Vec<MatrixRow> {
    let Some(start) = json.find(SECTION_OPEN) else {
        return Vec::new();
    };
    let body_start = start + SECTION_OPEN.len();
    let Some(body_len) = json[body_start..].find(SECTION_CLOSE) else {
        return Vec::new();
    };
    json[body_start..body_start + body_len]
        .lines()
        .filter_map(parse_row)
        .collect()
}

/// Merge new rows over existing ones: a new row replaces the existing row
/// with the same (spec, method, policy, threads) key, otherwise appends.
pub fn merge_rows(existing: Vec<MatrixRow>, new_rows: Vec<MatrixRow>) -> Vec<MatrixRow> {
    let mut merged = existing;
    for row in new_rows {
        let key = (
            row.spec.clone(),
            row.method.clone(),
            row.policy.clone(),
            row.threads,
        );
        match merged.iter_mut().find(|existing| {
            (
                existing.spec.clone(),
                existing.method.clone(),
                existing.policy.clone(),
                existing.threads,
            ) == key
        }) {
            Some(slot) => *slot = row,
            None => merged.push(row),
        }
    }
    merged
}

/// Remove the `"matrix"` section (and the comma that attached it) from a
/// rendered snapshot document, returning valid JSON.
pub fn strip_matrix_section(json: &str) -> String {
    let Some(start) = json.find(SECTION_OPEN) else {
        return json.to_string();
    };
    let Some(close) = json[start..].find(SECTION_CLOSE) else {
        return json.to_string();
    };
    let mut end = start + close + SECTION_CLOSE.len();
    // Swallow a trailing newline after "  ]" so the join is seamless.
    if json[end..].starts_with('\n') {
        end += 1;
    }
    // Drop the comma (and its newline) that attached the section to the
    // previous one.
    let head = json[..start].trim_end_matches('\n');
    let head = head.strip_suffix(',').unwrap_or(head);
    format!("{head}\n{}", &json[end..])
}

/// Return `json` with its `"matrix"` section replaced by `rows` (or with a
/// new section appended as the last key when none exists). `json` must be a
/// rendered snapshot document — an object ending in `}`.
pub fn with_matrix_section(json: &str, rows: &[MatrixRow]) -> String {
    let base = strip_matrix_section(json);
    let trimmed = base.trim_end();
    let body = trimmed
        .strip_suffix('}')
        .expect("snapshot document ends with a closing brace")
        .trim_end();
    if rows.is_empty() {
        return format!("{body}\n}}\n");
    }
    let rendered: Vec<String> = rows
        .iter()
        .map(|row| format!("    {}", render_row(row)))
        .collect();
    // A fresh document (`{}`) has no previous key to attach to with a comma.
    let joiner = if body.trim_end().ends_with('{') {
        ""
    } else {
        ","
    };
    format!(
        "{body}{joiner}\n{}{}{}\n}}\n",
        SECTION_OPEN,
        rendered.join(",\n"),
        SECTION_CLOSE
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_row() -> MatrixRow {
        MatrixRow {
            spec: "ba:n=2000,m=3,w=unit,noise=0,seed=4242".to_string(),
            family: "ba".to_string(),
            nodes: 2000,
            edges: 5994,
            method: "nc".to_string(),
            policy: "top_share=0.1".to_string(),
            kept_edges: 599,
            backbone_hash: "0123456789abcdef".to_string(),
            threads: 1,
            median_ms: 1.234,
            edges_per_sec: 4857142.9,
        }
    }

    #[test]
    fn row_render_parse_round_trip() {
        let row = sample_row();
        let line = render_row(&row);
        let reparsed = parse_row(&line).unwrap();
        assert_eq!(reparsed, row);
        // With the section indentation and a trailing comma, too.
        assert_eq!(parse_row(&format!("    {line},")).unwrap(), row);
    }

    #[test]
    fn section_insert_extract_strip_round_trip() {
        let base = "{\n  \"entries\": [\n    {\"a\": 1}\n  ]\n}\n";
        let mut second = sample_row();
        second.method = "df".to_string();
        let rows = vec![sample_row(), second];

        let with_section = with_matrix_section(base, &rows);
        assert!(with_section.contains("\"matrix\": ["));
        assert_eq!(extract_rows(&with_section), rows);
        assert_eq!(strip_matrix_section(&with_section), base);
        // Idempotent on documents without a section.
        assert_eq!(strip_matrix_section(base), base);
        assert!(extract_rows(base).is_empty());
    }

    #[test]
    fn with_matrix_section_replaces_existing_rows() {
        let base = "{\n  \"entries\": []\n}\n";
        let first = with_matrix_section(base, &[sample_row()]);
        let mut updated = sample_row();
        updated.kept_edges = 42;
        let second = with_matrix_section(&first, &[updated.clone()]);
        let rows = extract_rows(&second);
        assert_eq!(rows, vec![updated]);
        assert_eq!(second.matches("\"matrix\"").count(), 1);
    }

    #[test]
    fn merge_rows_upserts_by_cell_key() {
        let mut replacement = sample_row();
        replacement.median_ms = 9.999;
        let mut other = sample_row();
        other.method = "mst".to_string();

        let merged = merge_rows(vec![sample_row()], vec![replacement.clone(), other.clone()]);
        assert_eq!(merged, vec![replacement, other]);
    }

    #[test]
    fn default_grid_covers_four_families_and_two_sizes() {
        let grid = default_grid();
        assert_eq!(grid.len(), 8);
        for tag in ["ba", "er", "geo", "sb"] {
            let sizes: Vec<usize> = grid
                .iter()
                .filter(|spec| spec.family.tag() == tag)
                .map(|spec| spec.nodes)
                .collect();
            assert_eq!(sizes, vec![2000, 10000], "family {tag}");
        }
    }

    #[test]
    fn run_matrix_produces_deterministic_rows() {
        let config = MatrixConfig {
            specs: vec![ScenarioSpec::parse("ba:n=300,m=3,seed=1").unwrap()],
            methods: vec![Method::NoiseCorrected, Method::DisparityFilter],
            top_share: 0.2,
            runs: 2,
            threads: 1,
        };
        let first = run_matrix(&config).unwrap();
        let second = run_matrix(&config).unwrap();
        assert_eq!(first.len(), 2);
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(a.spec, b.spec);
            assert_eq!(a.method, b.method);
            assert_eq!(a.kept_edges, b.kept_edges);
            assert_eq!(a.backbone_hash, b.backbone_hash);
            assert!(a.kept_edges > 0);
        }
    }

    #[test]
    fn run_matrix_rejects_empty_configs() {
        let mut config = MatrixConfig::default();
        config.methods.clear();
        assert!(run_matrix(&config).is_err());
    }
}
