//! Byte-identity regression for the `gen_substrate` rewrite: the binary is
//! now a thin wrapper over `backboning_gen`, and for the committed bench
//! seeds its output must be byte-for-byte what the original direct
//! generator calls emitted.

use std::process::Command;

use backboning_gen::ScenarioSpec;
use backboning_graph::generators::{barabasi_albert_csr, erdos_renyi_csr};
use backboning_graph::io::write_edge_list_string;
use backboning_graph::Direction;

fn run_gen_substrate(args: &[&str]) -> String {
    let dir = std::env::temp_dir().join(format!(
        "gen_substrate_identity_{}_{}",
        std::process::id(),
        args.join("_").replace(['/', ':', ',', '='], "-"),
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let out = dir.join("substrate.tsv");
    let status = Command::new(env!("CARGO_BIN_EXE_gen_substrate"))
        .args(args)
        .arg(&out)
        .status()
        .expect("gen_substrate runs");
    assert!(status.success(), "gen_substrate {args:?} failed");
    let text = std::fs::read_to_string(&out).unwrap();
    std::fs::remove_dir_all(&dir).ok();
    text
}

/// The `ba` CLI form reproduces the pre-rewrite `barabasi_albert_csr`
/// bytes for the committed bench seed.
#[test]
fn ba_form_matches_legacy_generator_bytes() {
    let legacy = write_edge_list_string(&barabasi_albert_csr(2000, 3, 4242).unwrap()).unwrap();
    assert_eq!(run_gen_substrate(&["ba", "2000", "3", "4242"]), legacy);
}

/// The `er` CLI form reproduces the pre-rewrite `erdos_renyi_csr` bytes
/// (inline uniform weights in (0, 10], same stream) for the committed seed.
#[test]
fn er_form_matches_legacy_generator_bytes() {
    let legacy = write_edge_list_string(
        &erdos_renyi_csr(2000, 6000, 10.0, Direction::Undirected, 99).unwrap(),
    )
    .unwrap();
    assert_eq!(run_gen_substrate(&["er", "2000", "6000", "99"]), legacy);
}

/// The `spec` CLI form emits exactly what library-level generation emits.
#[test]
fn spec_form_matches_library_generation() {
    let text = "sb:n=500,b=4,pin=0.05,pout=0.002,w=lognormal(0,1),noise=0.1,seed=7";
    let expected =
        write_edge_list_string(&ScenarioSpec::parse(text).unwrap().generate().unwrap()).unwrap();
    assert_eq!(run_gen_substrate(&["spec", text]), expected);
}
