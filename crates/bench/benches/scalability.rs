//! Criterion benchmarks backing Figure 9: running time of the scalable
//! methods (NC, DF, NT, MST) on Erdős–Rényi workloads of increasing size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use backboning_data::scalability_workload;
use backboning_eval::Method;

fn scalability(criterion: &mut Criterion) {
    let sizes = [10_000usize, 40_000, 160_000];
    let mut group = criterion.benchmark_group("scalability");
    group.sample_size(10);
    for &edges in &sizes {
        let graph = scalability_workload(edges, 99).expect("valid workload");
        group.throughput(Throughput::Elements(edges as u64));
        for method in Method::scalable() {
            group.bench_with_input(
                BenchmarkId::new(method.short_name(), edges),
                &method,
                |bencher, method| {
                    bencher.iter(|| {
                        let scored = method.score(black_box(&graph)).expect("method applies");
                        black_box(scored.len());
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, scalability);
criterion_main!(benches);
