//! Criterion benchmarks of the substrate crates: graph construction,
//! shortest-path trees (the HSS inner loop), Kruskal spanning trees, the
//! Sinkhorn normalisation and the OLS regression used by Table II.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use backboning_graph::algorithms::shortest_path::{dijkstra, DistanceTransform};
use backboning_graph::algorithms::spanning_tree::maximum_spanning_tree;
use backboning_graph::generators::{barabasi_albert, erdos_renyi};
use backboning_graph::matrix::AdjacencyMatrix;
use backboning_graph::Direction;
use backboning_stats::OlsModel;

fn substrates(criterion: &mut Criterion) {
    let ba = barabasi_albert(2_000, 3, 11).expect("valid BA parameters");
    let er =
        erdos_renyi(20_000, 30_000, 10.0, Direction::Undirected, 5).expect("valid ER parameters");

    criterion.bench_function("substrates/barabasi_albert_2k", |bencher| {
        bencher.iter(|| black_box(barabasi_albert(2_000, 3, 11).unwrap().edge_count()));
    });

    criterion.bench_function("substrates/dijkstra_spt_ba2k", |bencher| {
        bencher.iter(|| {
            let tree = dijkstra(black_box(&ba), 0, DistanceTransform::Inverse).unwrap();
            black_box(tree.tree_edges().len());
        });
    });

    criterion.bench_function("substrates/kruskal_mst_er30k", |bencher| {
        bencher.iter(|| black_box(maximum_spanning_tree(black_box(&er)).len()));
    });

    criterion.bench_function("substrates/sinkhorn_knopp_120", |bencher| {
        let mut dense = backboning_graph::WeightedGraph::with_nodes(Direction::Directed, 120);
        for i in 0..120usize {
            for j in 0..120usize {
                if i != j {
                    dense
                        .add_edge(i, j, 1.0 + ((i * 13 + j * 7) % 23) as f64)
                        .unwrap();
                }
            }
        }
        let matrix = AdjacencyMatrix::from_graph(&dense);
        bencher.iter(|| black_box(matrix.sinkhorn_knopp(1e-9, 500).unwrap().row_sum(0)));
    });

    criterion.bench_function("substrates/ols_regression_5k_rows", |bencher| {
        let n = 5_000;
        let x1: Vec<f64> = (0..n).map(|i| (i as f64 * 0.017).sin() * 4.0).collect();
        let x2: Vec<f64> = (0..n).map(|i| (i as f64 * 0.031).cos() * 2.0).collect();
        let y: Vec<f64> = (0..n)
            .map(|i| 1.0 + 2.0 * x1[i] - 0.5 * x2[i] + ((i % 7) as f64 - 3.0) * 0.1)
            .collect();
        bencher.iter(|| {
            let fit = OlsModel::new()
                .predictor("x1", x1.clone())
                .predictor("x2", x2.clone())
                .fit(black_box(&y))
                .unwrap();
            black_box(fit.r_squared);
        });
    });
}

criterion_group!(benches, substrates);
criterion_main!(benches);
