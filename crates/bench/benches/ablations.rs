//! Ablation benchmarks for the design choices called out in `DESIGN.md`:
//!
//! 1. Bayesian prior vs plug-in estimate of `P_ij` in the NC backbone.
//! 2. Posterior-variance scoring vs the direct binomial p-value (footnote 2).
//! 3. HSS distance transform: inverse weight vs negative log.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use backboning::{BackboneExtractor, HighSalienceSkeleton, NoiseCorrected, NoiseCorrectedBinomial};
use backboning_data::noisy_barabasi_albert;
use backboning_graph::algorithms::shortest_path::DistanceTransform;

fn ablations(criterion: &mut Criterion) {
    let network = noisy_barabasi_albert(200, 3, 0.2, 13).expect("valid parameters");
    let graph = &network.graph;

    let mut group = criterion.benchmark_group("ablations");
    group.sample_size(10);

    group.bench_function("nc_with_bayesian_prior", |bencher| {
        let extractor = NoiseCorrected::default();
        bencher.iter(|| black_box(extractor.score(black_box(graph)).unwrap().len()));
    });
    group.bench_function("nc_without_prior", |bencher| {
        let extractor = NoiseCorrected::without_prior();
        bencher.iter(|| black_box(extractor.score(black_box(graph)).unwrap().len()));
    });
    group.bench_function("nc_binomial_pvalue_variant", |bencher| {
        let extractor = NoiseCorrectedBinomial::new();
        bencher.iter(|| black_box(extractor.score(black_box(graph)).unwrap().len()));
    });
    group.bench_function("hss_inverse_transform", |bencher| {
        let extractor = HighSalienceSkeleton::new();
        bencher.iter(|| black_box(extractor.score(black_box(graph)).unwrap().len()));
    });
    group.bench_function("hss_negative_log_transform", |bencher| {
        let extractor = HighSalienceSkeleton::with_transform(DistanceTransform::NegativeLog);
        bencher.iter(|| black_box(extractor.score(black_box(graph)).unwrap().len()));
    });
    group.finish();
}

criterion_group!(benches, ablations);
criterion_main!(benches);
