//! Criterion micro-benchmarks of the six backboning methods on a common
//! country-network workload (supports the Figure 9 method-ordering claim:
//! NC ≈ NT ≈ DF, HSS and DS far slower).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use backboning::{BackboneExtractor, HighSalienceSkeleton};
use backboning_data::{CountryData, CountryDataConfig, CountryNetworkKind};
use backboning_eval::Method;
use backboning_graph::generators::barabasi_albert;

fn backbone_methods(criterion: &mut Criterion) {
    let data = CountryData::generate(&CountryDataConfig {
        country_count: 80,
        years: 1,
        ..CountryDataConfig::default()
    });
    let graph = data.network(CountryNetworkKind::Trade, 0);

    let mut group = criterion.benchmark_group("backbone_methods/trade_network");
    group.sample_size(10);
    for method in Method::all() {
        group.bench_with_input(
            BenchmarkId::from_parameter(method.short_name()),
            &method,
            |bencher, method| {
                bencher.iter(|| {
                    // DS may legitimately fail (no doubly-stochastic scaling); the
                    // benchmark measures the attempt either way.
                    let _ = black_box(method.score(black_box(graph)));
                });
            },
        );
    }
    group.finish();
}

/// End-to-end High Salience Skeleton extraction on a BA substrate: the seed
/// adjacency path vs the parallel CSR engine, plus the full score-and-prune
/// pipeline (the perf-trajectory companion of `bench_snapshot`).
fn hss_end_to_end(criterion: &mut Criterion) {
    let graph = barabasi_albert(500, 3, 7).expect("valid BA parameters");
    let hss = HighSalienceSkeleton::new();

    let mut group = criterion.benchmark_group("hss_end_to_end/ba_500");
    group.sample_size(10);
    group.bench_function("seed_adjacency_path", |bencher| {
        bencher.iter(|| black_box(hss.score_adjacency_reference(black_box(&graph))));
    });
    group.bench_function("csr_engine_auto_threads", |bencher| {
        bencher.iter(|| black_box(hss.score_with_threads(black_box(&graph), 0)));
    });
    group.bench_function("extract_top_quarter", |bencher| {
        let k = graph.edge_count() / 4;
        bencher.iter(|| black_box(hss.extract_top_k(black_box(&graph), k)));
    });
    group.finish();
}

criterion_group!(benches, backbone_methods, hss_end_to_end);
criterion_main!(benches);
