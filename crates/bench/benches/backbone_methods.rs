//! Criterion micro-benchmarks of the six backboning methods on a common
//! country-network workload (supports the Figure 9 method-ordering claim:
//! NC ≈ NT ≈ DF, HSS and DS far slower).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use backboning_data::{CountryData, CountryDataConfig, CountryNetworkKind};
use backboning_eval::Method;

fn backbone_methods(criterion: &mut Criterion) {
    let data = CountryData::generate(&CountryDataConfig {
        country_count: 80,
        years: 1,
        ..CountryDataConfig::default()
    });
    let graph = data.network(CountryNetworkKind::Trade, 0);

    let mut group = criterion.benchmark_group("backbone_methods/trade_network");
    group.sample_size(10);
    for method in Method::all() {
        group.bench_with_input(
            BenchmarkId::from_parameter(method.short_name()),
            &method,
            |bencher, method| {
                bencher.iter(|| {
                    // DS may legitimately fail (no doubly-stochastic scaling); the
                    // benchmark measures the attempt either way.
                    let _ = black_box(method.score(black_box(graph)));
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, backbone_methods);
criterion_main!(benches);
