//! # backboning-server
//!
//! A concurrent HTTP serving subsystem for the backboning pipeline, with a
//! **scored-graph cache**: the paper's methods (Coscia & Neffke, ICDE 2017)
//! score every edge once, and only the threshold policy varies per query —
//! so a long-lived server that caches [`backboning::ScoredEdges`] per
//! `(graph, method)` turns threshold sweeping (the paper's fig. 7/8
//! workflow) from a full recompute into a microsecond re-selection.
//!
//! The server is std-only (`std::net::TcpListener`, hand-rolled HTTP/1.1 in
//! [`http`]), sized by the same thread-count resolution as the
//! `backboning_parallel` scoring engine, and exposed as the `backbone serve`
//! subcommand of the CLI. Architecture:
//!
//! ```text
//!   TcpListener ──accept──▶ mpsc ──▶ worker pool (≥ 4 threads)
//!                                       │  http::read_request
//!                                       ▼
//!                                   router::handle ──▶ registry::Registry
//!                                       │                 graphs: name → CsrGraph (compact u32 core)
//!                                       │                 cache:  (graph, method) → ScoredEdges (LRU)
//!                                       ▼
//!                            Pipeline::run_with_scores   (select only — scores reused)
//! ```
//!
//! Responses reuse the CLI's writers (TSV backbone/score tables, JSON
//! summaries via `backboning::json`), and the served summary excludes wall
//! time, so **a cache-hit response is byte-identical to the cold one** — the
//! integration suite pins that down, concurrently, at several worker
//! counts.
//!
//! ## Example
//!
//! ```
//! use backboning_server::{Server, ServerConfig};
//! use backboning_graph::io::{read_edge_list_csr_str, EdgeListOptions};
//! use backboning_graph::Direction;
//!
//! let server = Server::bind(ServerConfig {
//!     addr: "127.0.0.1:0".to_string(), // ephemeral port
//!     ..ServerConfig::default()
//! })
//! .unwrap();
//! let graph = read_edge_list_csr_str(
//!     "a b 2\nb c 1\n",
//!     &EdgeListOptions::with_direction(Direction::Undirected),
//! )
//! .unwrap();
//! server.registry().insert("tiny", graph).unwrap();
//! assert_eq!(server.registry().graph_count(), 1);
//! server.shutdown(); // drains the pool and joins every thread
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod http;
pub mod metrics;
pub mod patch;
pub mod registry;
pub mod router;
pub mod server;

pub use metrics::ServerMetrics;
pub use registry::{CacheCounters, GraphEntry, GraphState, PatchOutcome, Registry};
pub use server::{Server, ServerConfig, ServerControl, ServerError, MIN_WORKERS};
