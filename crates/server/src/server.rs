//! The TCP accept loop and the worker-thread pool.
//!
//! A [`Server`] owns one `std::net::TcpListener`, one accept thread, and a
//! fixed pool of worker threads. Accepted connections flow through an mpsc
//! channel to the pool; each worker reads one request, dispatches it through
//! [`crate::router::handle`], and writes the response. Pool sizing reuses
//! the `backboning_parallel` thread-count resolution (`BACKBONING_THREADS`
//! aware), floored at [`MIN_WORKERS`] so the server stays concurrent even on
//! a single-core host — workers spend most of their time blocked on sockets
//! or on a scoring pass, not on the CPU.
//!
//! Shutdown is cooperative: the `POST /shutdown` control path (or
//! [`Server::shutdown`]) flips an atomic flag and pokes the listener with a
//! loopback connection so the blocking `accept` observes the flag. The
//! accept thread then closes the channel, the workers drain in-flight
//! requests and exit, and [`Server::wait`] joins them all. Killing the
//! process with SIGTERM is equally safe — the server holds no state that
//! outlives it.

use std::io::{BufRead, BufReader, Read};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use backboning_graph::io::EdgeListOptions;
use backboning_obs::Gauge;

use crate::http::{read_request, HttpError, Response};
use crate::metrics::{method_label, route_pattern, ServerMetrics, ROUTE_INVALID};
use crate::registry::Registry;
use crate::router;

/// The worker pool never has fewer threads than this, whatever
/// `BACKBONING_THREADS` or the core count say: request handling is
/// I/O-bound between scoring passes, and a lone worker would serialise the
/// health probe behind a long scoring request.
pub const MIN_WORKERS: usize = 4;

/// Per-connection socket timeout: a client that stalls mid-request cannot
/// pin a worker forever.
const SOCKET_TIMEOUT: Duration = Duration::from_secs(10);

/// Configuration of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:4817` (port `0` picks an ephemeral
    /// port — the bound address is reported by [`Server::addr`]).
    pub addr: String,
    /// Directory of edge-list files to pre-register at startup.
    pub graphs_dir: Option<PathBuf>,
    /// Worker threads for scoring (and the floor-adjusted pool size);
    /// `0` = automatic (honours `BACKBONING_THREADS`).
    pub threads: usize,
    /// Edge-list parsing options for graphs loaded from `graphs_dir`.
    pub options: EdgeListOptions,
    /// Write one access-log line per request to stderr (method, path,
    /// status, response bytes, wall milliseconds). Off by default so smoke
    /// tests and scripted servers keep byte-stable stderr.
    pub access_log: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:4817".to_string(),
            graphs_dir: None,
            threads: 0,
            options: EdgeListOptions::default(),
            access_log: false,
        }
    }
}

/// A failure to bring the server up.
#[derive(Debug)]
pub enum ServerError {
    /// Binding or configuring the listener failed.
    Io(std::io::Error),
    /// Loading the startup graph directory failed.
    Load(String),
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Io(err) => write!(f, "{err}"),
            ServerError::Load(message) => write!(f, "loading graphs: {message}"),
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServerError::Io(err) => Some(err),
            ServerError::Load(_) => None,
        }
    }
}

/// The shutdown signal shared between the router and the accept loop.
pub struct ServerControl {
    stop: AtomicBool,
    addr: SocketAddr,
    workers: usize,
}

impl ServerControl {
    /// Whether shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// The resolved worker-pool size (after the [`MIN_WORKERS`] floor).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Request shutdown: flip the flag and wake the blocking `accept` with
    /// a throwaway loopback connection.
    pub fn request_shutdown(&self) {
        if !self.stop.swap(true, Ordering::SeqCst) {
            // The connect only exists to wake `accept`; it is dropped
            // unanswered and read_request treats it as an empty connection.
            // A wildcard bind address (0.0.0.0 / ::) is not connectable, so
            // wake through loopback on the same port instead.
            let mut wake = self.addr;
            if wake.ip().is_unspecified() {
                wake.set_ip(match wake.ip() {
                    std::net::IpAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                    std::net::IpAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
                });
            }
            let _ = TcpStream::connect_timeout(&wake, Duration::from_secs(1));
        }
    }
}

/// A running backboning HTTP server.
pub struct Server {
    addr: SocketAddr,
    registry: Arc<Registry>,
    metrics: Arc<ServerMetrics>,
    control: Arc<ServerControl>,
    accept_handle: Option<JoinHandle<()>>,
    worker_handles: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind the configured address, load the startup graphs, and spawn the
    /// accept loop plus the worker pool. Returns once the server is
    /// accepting (the listener is live before this returns).
    pub fn bind(config: ServerConfig) -> Result<Server, ServerError> {
        let registry = Arc::new(Registry::new(config.threads));
        if let Some(dir) = &config.graphs_dir {
            registry
                .load_dir(dir, &config.options)
                .map_err(ServerError::Load)?;
        }

        let addr = config
            .addr
            .to_socket_addrs()
            .map_err(ServerError::Io)?
            .next()
            .ok_or_else(|| {
                ServerError::Io(std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    format!("`{}` resolves to no address", config.addr),
                ))
            })?;
        let listener = TcpListener::bind(addr).map_err(ServerError::Io)?;
        let addr = listener.local_addr().map_err(ServerError::Io)?;
        let workers = backboning_parallel::resolve_threads(config.threads).max(MIN_WORKERS);
        let control = Arc::new(ServerControl {
            stop: AtomicBool::new(false),
            addr,
            workers,
        });
        let metrics = Arc::new(ServerMetrics::new());

        let (sender, receiver) = channel::<TcpStream>();
        let receiver = Arc::new(Mutex::new(receiver));
        let access_log = config.access_log;
        let worker_handles = (0..workers)
            .map(|_| {
                let receiver = Arc::clone(&receiver);
                let registry = Arc::clone(&registry);
                let metrics = Arc::clone(&metrics);
                let control = Arc::clone(&control);
                std::thread::spawn(move || {
                    worker_loop(&receiver, &registry, &metrics, &control, access_log)
                })
            })
            .collect();

        let accept_control = Arc::clone(&control);
        let accept_handle = std::thread::spawn(move || {
            accept_loop(&listener, sender, &accept_control);
        });

        Ok(Server {
            addr,
            registry,
            metrics,
            control,
            accept_handle: Some(accept_handle),
            worker_handles,
        })
    }

    /// The address the server is listening on (useful with port `0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The graph registry (for pre-registering graphs programmatically, as
    /// the benchmark harness does).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The server's request-metric recorder (what `/metrics` renders).
    pub fn metrics(&self) -> &Arc<ServerMetrics> {
        &self.metrics
    }

    /// Block until the server shuts down (via `POST /shutdown` or
    /// [`Server::shutdown`]) and all workers have drained.
    pub fn wait(mut self) {
        self.join();
    }

    /// Request shutdown and block until every worker has drained.
    pub fn shutdown(mut self) {
        self.control.request_shutdown();
        self.join();
    }

    fn join(&mut self) {
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        for handle in self.worker_handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.control.request_shutdown();
        self.join();
    }
}

fn accept_loop(listener: &TcpListener, sender: Sender<TcpStream>, control: &ServerControl) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if control.is_shutting_down() {
                    break;
                }
                // Transient accept failures (fd exhaustion under flood,
                // aborted handshakes) must not turn into a busy spin.
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        if control.is_shutting_down() {
            // The wake-up connection (or a straggler): drop it unanswered.
            break;
        }
        if sender.send(stream).is_err() {
            break;
        }
    }
    // Dropping the sender closes the channel; workers drain and exit.
}

fn worker_loop(
    receiver: &Arc<Mutex<Receiver<TcpStream>>>,
    registry: &Arc<Registry>,
    metrics: &Arc<ServerMetrics>,
    control: &Arc<ServerControl>,
    access_log: bool,
) {
    loop {
        let stream = {
            let receiver = receiver.lock().unwrap_or_else(|e| e.into_inner());
            receiver.recv()
        };
        let Ok(stream) = stream else { break };
        handle_connection(stream, registry, metrics, control, access_log);
    }
}

/// A `BufRead` adapter counting every byte the request parser consumes, so
/// the bytes-in counter reflects what actually crossed the socket (request
/// line, headers, and body) rather than a reconstruction.
struct CountingReader<R> {
    inner: R,
    bytes: u64,
}

impl<R> CountingReader<R> {
    fn new(inner: R) -> Self {
        CountingReader { inner, bytes: 0 }
    }

    fn bytes_read(&self) -> u64 {
        self.bytes
    }
}

impl<R: Read> Read for CountingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let read = self.inner.read(buf)?;
        self.bytes += read as u64;
        Ok(read)
    }
}

impl<R: BufRead> BufRead for CountingReader<R> {
    fn fill_buf(&mut self) -> std::io::Result<&[u8]> {
        self.inner.fill_buf()
    }

    fn consume(&mut self, amt: usize) {
        self.bytes += amt as u64;
        self.inner.consume(amt);
    }
}

/// Decrements the in-flight gauge when the connection finishes, however it
/// finishes (early return, panic unwound by the caller, clean write).
struct InFlightGuard<'a>(&'a Gauge);

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        self.0.dec();
    }
}

fn handle_connection(
    stream: TcpStream,
    registry: &Arc<Registry>,
    metrics: &Arc<ServerMetrics>,
    control: &Arc<ServerControl>,
    access_log: bool,
) {
    let _ = stream.set_read_timeout(Some(SOCKET_TIMEOUT));
    let _ = stream.set_write_timeout(Some(SOCKET_TIMEOUT));
    metrics.in_flight().inc();
    let _in_flight = InFlightGuard(metrics.in_flight());
    let started = Instant::now();
    let mut reader = CountingReader::new(BufReader::new(&stream));
    let (route, method, target, response) = match read_request(&mut reader) {
        Ok(None) => return, // probe or shutdown wake: nothing to answer
        Ok(Some(request)) => {
            let route = route_pattern(&request);
            let method = method_label(&request.method);
            let target = if access_log {
                request_target(&request)
            } else {
                String::new()
            };
            // A panicking handler must not take its worker down with it.
            let response = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                router::handle(registry, control, metrics, &request)
            }))
            .unwrap_or_else(|_| Response::error(500, "internal error while handling the request"));
            (route, method, target, response)
        }
        Err(HttpError::TooLarge(bytes)) => (
            ROUTE_INVALID,
            "OTHER",
            String::new(),
            Response::error(
                413,
                &format!("request body of {bytes} bytes exceeds the upload limit"),
            ),
        ),
        Err(HttpError::Malformed(message)) => (
            ROUTE_INVALID,
            "OTHER",
            String::new(),
            Response::error(400, &message),
        ),
        Err(HttpError::Io(_)) => return, // peer went away mid-request
    };
    // Record (and log) before writing the response: a client that has read
    // its response can rely on `/metrics` already counting the request.
    let elapsed = started.elapsed();
    let bytes_out = response.encoded_len();
    metrics.record_request(
        route,
        method,
        response.status,
        elapsed,
        reader.bytes_read(),
        bytes_out,
    );
    if access_log {
        let target = if target.is_empty() { "-" } else { &target };
        eprintln!(
            "{method} {target} {} {bytes_out} {:.3}ms",
            response.status,
            elapsed.as_secs_f64() * 1e3,
        );
    }
    let mut writer = &stream;
    let _ = response.write_to(&mut writer);
}

/// The request target for the access log: the decoded path plus its query
/// parameters (re-joined; good enough for a human-readable log line).
fn request_target(request: &crate::http::Request) -> String {
    if request.query.is_empty() {
        return request.path.clone();
    }
    let query: Vec<String> = request
        .query
        .iter()
        .map(|(key, value)| {
            if value.is_empty() {
                key.clone()
            } else {
                format!("{key}={value}")
            }
        })
        .collect();
    format!("{}?{}", request.path, query.join("&"))
}
