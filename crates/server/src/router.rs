//! Route dispatch: one parsed [`Request`] in, one [`Response`] out.
//!
//! | Route | Meaning |
//! |---|---|
//! | `GET /health` | liveness, graph count, worker count, cache hit/miss/eviction counters |
//! | `GET /metrics` | Prometheus text exposition (or `?format=json`) of all request/cache metrics |
//! | `GET /graphs` | list registered graphs |
//! | `GET /graphs/{name}` | one graph's size, direction and cached methods |
//! | `POST /graphs/{name}` | upload an edge list body, register it as `{name}` |
//! | `PATCH /graphs/{name}` | apply a batched delta (TSV or JSON body), publish generation + 1 |
//! | `DELETE /graphs/{name}` | unregister a graph |
//! | `GET /graphs/{name}/backbone` | run the pipeline (cache-backed) and return backbone / scores / summary |
//! | `GET /graphs/{name}/compare` | matched-coverage method comparison (cache-backed), stable JSON |
//! | `POST /shutdown` | stop accepting and drain the worker pool |
//!
//! The backbone route takes `method=` (required; any CLI method name) and
//! exactly one threshold-policy parameter (`threshold=`, `top_k=`,
//! `top_share=`, `coverage=`). `hss_roots=` / `hss_seed=` tune the sampled
//! `hss-approx` estimator (rejected alongside any other method). Plus
//! `output=backbone|scores|summary` and
//! `format=tsv|json` (default: TSV for backbone/scores, JSON for summary;
//! an `Accept: application/json` header also selects JSON). Responses are
//! produced by the same writers as the `backbone` CLI, so the two surfaces
//! emit identical bytes — and because scored edges are cached and wall time
//! is excluded from the served summary, a cache-hit response is
//! byte-identical to the cold one.
//!
//! The compare route takes `methods=` (comma-separated CLI names or `all`;
//! default `nc,df,hss`), `top_share=`, `noise=`, `resamples=`, `seed=` and
//! the `hss_roots=` / `hss_seed=` sampling parameters, mirroring the
//! defaults of `backbone compare` — the body is the stable report of
//! `backbone compare … -o json` on the same graph, minus the CLI's
//! per-method `score_wall_ms` timing field (a cached body must be
//! byte-identical to a cold one). Base scoring
//! goes through the scored-edge cache ([`Registry::scored`]), so an
//! N-method comparison costs at most N scoring passes ever, and the
//! finished report — a pure function of `(graph, config)` — is cached per
//! graph, so only the *first* request for a configuration pays the noise
//! Monte Carlo. See `docs/API.md` for the full reference.

use std::sync::Arc;

use backboning::json::{self, JsonArray, JsonObject};
use backboning::{Method, Pipeline, PipelineRun, ThresholdPolicy};
use backboning_eval::comparison;
use backboning_graph::io::read_edge_list_csr_named;
use backboning_graph::{Direction, GraphError};

use crate::http::{Request, Response};
use crate::metrics::{metrics_response, ServerMetrics};
use crate::patch::parse_delta_body;
use crate::registry::{valid_graph_name, GraphEntry, Registry};
use crate::server::ServerControl;

/// Dispatch one request against the registry, possibly signalling shutdown.
pub fn handle(
    registry: &Registry,
    control: &ServerControl,
    metrics: &ServerMetrics,
    request: &Request,
) -> Response {
    let segments = request.path_segments();
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["health"]) => health(registry, control),
        ("GET", ["metrics"]) => metrics_response(metrics, registry, control.workers(), request),
        ("GET", ["graphs"]) => list_graphs(registry),
        ("GET", ["graphs", name]) => graph_info(registry, name),
        ("POST", ["graphs", name]) => upload_graph(registry, name, request),
        ("PATCH", ["graphs", name]) => patch_graph(registry, name, request),
        ("DELETE", ["graphs", name]) => delete_graph(registry, name),
        ("GET", ["graphs", name, "backbone"]) => backbone(registry, name, request),
        ("GET", ["graphs", name, "compare"]) => compare(registry, name, request),
        ("POST", ["shutdown"]) => {
            control.request_shutdown();
            let mut body = JsonObject::pretty();
            body.string("status", "shutting down");
            Response::json(200, finish_line(&mut body))
        }
        // Known paths hit with the wrong verb get a 405 rather than a 404.
        (
            _,
            ["health"]
            | ["metrics"]
            | ["graphs"]
            | ["graphs", _]
            | ["graphs", _, "backbone"]
            | ["graphs", _, "compare"]
            | ["shutdown"],
        ) => Response::error(405, &format!("method {} not allowed here", request.method)),
        _ => Response::error(404, &format!("no route for {}", request.path)),
    }
}

/// Finish a pretty JSON object with a trailing newline (curl-friendly).
fn finish_line(object: &mut JsonObject) -> String {
    let mut body = object.finish();
    body.push('\n');
    body
}

fn health(registry: &Registry, control: &ServerControl) -> Response {
    let counters = registry.cache_counters();
    let mut scored = JsonObject::inline();
    scored
        .u64("hits", counters.scored_hits)
        .u64("misses", counters.scored_misses)
        .u64("evictions", counters.scored_evictions);
    let mut compare = JsonObject::inline();
    compare
        .u64("hits", counters.compare_hits)
        .u64("misses", counters.compare_misses)
        .u64("evictions", counters.compare_evictions);
    let mut cache = JsonObject::inline();
    cache
        .raw("scored", &scored.finish())
        .raw("compare", &compare.finish());
    let mut body = JsonObject::pretty();
    body.string("status", "ok")
        .usize("graphs", registry.graph_count())
        .usize("workers", control.workers())
        .raw("cache", &cache.finish());
    Response::json(200, finish_line(&mut body))
}

fn graph_json(entry: &GraphEntry) -> String {
    // One snapshot for the whole document: size, generation and cached
    // methods always describe the same published state.
    let state = entry.snapshot();
    let mut methods = JsonArray::new();
    for name in state.cached_methods() {
        methods.string(&name);
    }
    let mut object = JsonObject::inline();
    object
        .string("name", entry.name())
        .usize("nodes", state.graph().node_count())
        .usize("edges", state.graph().edge_count())
        .string("direction", direction_name(state.graph().direction()))
        .u64("generation", state.generation())
        .raw("cached_methods", &methods.finish());
    object.finish()
}

fn direction_name(direction: Direction) -> &'static str {
    match direction {
        Direction::Directed => "directed",
        Direction::Undirected => "undirected",
    }
}

fn list_graphs(registry: &Registry) -> Response {
    let mut graphs = JsonArray::new();
    for entry in registry.list() {
        graphs.raw(&graph_json(&entry));
    }
    let mut body = JsonObject::pretty();
    body.usize("count", registry.graph_count())
        .raw("graphs", &graphs.finish());
    Response::json(200, finish_line(&mut body))
}

fn graph_info(registry: &Registry, name: &str) -> Response {
    match registry.get(name) {
        Some(entry) => Response::json(200, format!("{}\n", graph_json(&entry))),
        None => Response::error(404, &format!("no graph named `{name}`")),
    }
}

fn upload_graph(registry: &Registry, name: &str, request: &Request) -> Response {
    if !valid_graph_name(name) {
        return Response::error(
            400,
            &format!("invalid graph name `{name}` (use [A-Za-z0-9._-])"),
        );
    }
    let mut options = registry_upload_options(request);
    if let Some(separator) = request.query_param("separator") {
        let mut chars = separator.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => options.separator = Some(c),
            _ => {
                return Response::error(
                    400,
                    &format!("separator: expected a single character, got `{separator}`"),
                )
            }
        }
    }
    let source_name = format!("<upload {name}>");
    // Uploads stream straight into the CSR builder; oversized inputs (past
    // the u32 node/offset range) surface as a structured 400, not a panic.
    let graph = match read_edge_list_csr_named(request.body.as_slice(), &options, &source_name) {
        Ok(graph) => graph,
        Err(err) => return Response::error(400, &err.to_string()),
    };
    match registry.insert(name, graph) {
        Ok(entry) => Response::json(201, format!("{}\n", graph_json(&entry))),
        Err(message) => Response::error(400, &message),
    }
}

/// Upload parsing options from query parameters: `direction=directed|
/// undirected` (default undirected — the common case for backboning),
/// `header=1` to skip a header line.
fn registry_upload_options(request: &Request) -> backboning_graph::io::EdgeListOptions {
    backboning_graph::io::EdgeListOptions {
        direction: match request.query_param("direction") {
            Some("directed") => Direction::Directed,
            _ => Direction::Undirected,
        },
        has_header: matches!(request.query_param("header"), Some("1" | "true")),
        ..Default::default()
    }
}

/// `PATCH /graphs/{name}`: apply a batched delta and publish the next
/// generation. The body is TSV (`add SRC TGT W` / `remove SRC TGT` /
/// `reweight SRC TGT W`, one per line) or JSON (`{"ops": […]}` with
/// `Content-Type: application/json`). Validation is transactional — any bad
/// op rejects the whole batch with a line- or op-numbered 400 and the graph
/// stays at its current generation. A delta that would push the graph past
/// the compact core's `u32` capacity is a structured 400
/// (`"kind": "capacity_exceeded"`), never a panic.
fn patch_graph(registry: &Registry, name: &str, request: &Request) -> Response {
    let Some(entry) = registry.get(name) else {
        return Response::error(404, &format!("no graph named `{name}`"));
    };
    let batch = match parse_delta_body(request) {
        Ok(batch) => batch,
        Err(message) => return Response::error(400, &message),
    };
    if batch.is_empty() {
        return Response::error(400, "delta batch is empty (nothing to apply)");
    }
    match registry.patch(&entry, &batch) {
        Ok(outcome) => {
            let mut applied = JsonObject::inline();
            applied
                .usize("added", outcome.effect.added)
                .usize("removed", outcome.effect.removed)
                .usize("reweighted", outcome.effect.reweighted);
            let mut methods = JsonArray::new();
            for key in &outcome.rescored_methods {
                methods.string(key);
            }
            let mut body = JsonObject::pretty();
            body.string("name", entry.name())
                .usize("nodes", outcome.nodes)
                .usize("edges", outcome.edges)
                .string("direction", direction_name(entry.graph().direction()))
                .u64("generation", outcome.generation)
                .raw("applied", &applied.finish())
                .bool("compacted", outcome.compacted)
                .raw("rescored_methods", &methods.finish());
            Response::json(200, finish_line(&mut body))
        }
        Err(GraphError::CapacityExceeded {
            what,
            requested,
            limit,
        }) => {
            // Structured so clients can distinguish "your delta is too big
            // for the compact core" from a malformed batch.
            let mut body = JsonObject::pretty();
            body.usize("status", 400)
                .string(
                    "error",
                    &format!(
                        "delta exceeds the compact core's capacity: {requested} {what} (limit {limit})"
                    ),
                )
                .string("kind", "capacity_exceeded")
                .string("what", what)
                .u64("requested", requested)
                .u64("limit", limit);
            Response::json(400, finish_line(&mut body))
        }
        Err(err) => Response::error(400, &err.to_string()),
    }
}

fn delete_graph(registry: &Registry, name: &str) -> Response {
    if registry.remove(name) {
        let mut body = JsonObject::pretty();
        body.string("deleted", name);
        Response::json(200, finish_line(&mut body))
    } else {
        Response::error(404, &format!("no graph named `{name}`"))
    }
}

/// What the backbone route returns: mirrors the CLI's `-o` kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Output {
    Backbone,
    Scores,
    Summary,
}

fn parse_policy(request: &Request) -> Result<ThresholdPolicy, String> {
    let mut policies = Vec::new();
    if let Some(value) = request.query_param("threshold") {
        let value: f64 = value
            .parse()
            .map_err(|_| format!("threshold: cannot parse `{value}` as a number"))?;
        policies.push(ThresholdPolicy::Score(value));
    }
    if let Some(value) = request.query_param("top_k") {
        let value: usize = value
            .parse()
            .map_err(|_| format!("top_k: cannot parse `{value}` as an integer"))?;
        policies.push(ThresholdPolicy::TopK(value));
    }
    if let Some(value) = request.query_param("top_share") {
        let value: f64 = value
            .parse()
            .map_err(|_| format!("top_share: cannot parse `{value}` as a number"))?;
        policies.push(ThresholdPolicy::TopShare(value));
    }
    if let Some(value) = request.query_param("coverage") {
        let value: f64 = value
            .parse()
            .map_err(|_| format!("coverage: cannot parse `{value}` as a number"))?;
        policies.push(ThresholdPolicy::Coverage(value));
    }
    match policies.as_slice() {
        [policy] => Ok(*policy),
        [] => Err(
            "exactly one policy parameter (threshold, top_k, top_share, coverage) is required"
                .to_string(),
        ),
        _ => Err("exactly one policy parameter may be given".to_string()),
    }
}

fn parse_output(request: &Request) -> Result<Output, String> {
    match request.query_param("output") {
        None | Some("backbone") => Ok(Output::Backbone),
        Some("scores") => Ok(Output::Scores),
        Some("summary") => Ok(Output::Summary),
        Some(other) => Err(format!(
            "unknown output kind `{other}` (expected backbone, scores or summary)"
        )),
    }
}

/// Whether to render the selected output as JSON (`format=json`, or an
/// `Accept: application/json` header; summaries are always JSON).
fn wants_json(request: &Request, output: Output) -> Result<bool, String> {
    match request.query_param("format") {
        Some("json") => Ok(true),
        Some("tsv") => Ok(false),
        Some(other) => Err(format!("unknown format `{other}` (expected tsv or json)")),
        None => Ok(output == Output::Summary || request.accepts_json()),
    }
}

/// Apply the `hss_roots`/`hss_seed` query parameters to a parsed method.
/// They are only meaningful for `hss-approx`: giving either alongside any
/// other method is an error, matching the CLI's flag scoping (a silently
/// ignored sampling parameter would mislabel the response).
fn apply_hss_params(method: Method, request: &Request) -> Result<Method, String> {
    let roots = request
        .query_param("hss_roots")
        .map(|value| {
            value
                .parse::<usize>()
                .map_err(|_| format!("hss_roots: cannot parse `{value}` as an integer"))
        })
        .transpose()?;
    let seed = request
        .query_param("hss_seed")
        .map(|value| {
            value
                .parse::<u64>()
                .map_err(|_| format!("hss_seed: cannot parse `{value}` as an integer"))
        })
        .transpose()?;
    match method {
        Method::HssApprox {
            roots: default_roots,
            seed: default_seed,
        } => Ok(Method::HssApprox {
            roots: roots.unwrap_or(default_roots),
            seed: seed.unwrap_or(default_seed),
        }),
        _ if roots.is_some() || seed.is_some() => {
            Err("hss_roots/hss_seed apply only to the hss-approx method".to_string())
        }
        _ => Ok(method),
    }
}

fn backbone(registry: &Registry, name: &str, request: &Request) -> Response {
    let Some(entry) = registry.get(name) else {
        return Response::error(404, &format!("no graph named `{name}`"));
    };
    let Some(method_name) = request.query_param("method") else {
        return Response::error(400, "the `method` parameter is required");
    };
    let Some(method) = Method::parse(method_name) else {
        return Response::error(
            400,
            &format!(
                "unknown method `{method_name}` (expected one of: nc, ncb, df, hss, hss-approx, ds, mst, naive)"
            ),
        );
    };
    let method = match apply_hss_params(method, request) {
        Ok(method) => method,
        Err(message) => return Response::error(400, &message),
    };
    let policy = match parse_policy(request) {
        Ok(policy) => policy,
        Err(message) => return Response::error(400, &message),
    };
    let output = match parse_output(request) {
        Ok(output) => output,
        Err(message) => return Response::error(400, &message),
    };
    let as_json = match wants_json(request, output) {
        Ok(as_json) => as_json,
        Err(message) => return Response::error(400, &message),
    };

    // One snapshot for the whole request: graph and scores come from the
    // same generation even if a PATCH lands mid-flight. The cache-backed
    // hot path scores at most once per (generation, method); every policy
    // re-selects over the borrowed scores.
    let state = entry.snapshot();
    let scored = match registry.scored_state(&state, method) {
        Ok(scored) => scored,
        Err(err) => return Response::error(400, &err.to_string()),
    };
    let run = match Pipeline::new(method, policy)
        .with_threads(registry.threads())
        .run_with_scores(state.graph().as_ref(), scored)
    {
        Ok(run) => run,
        Err(err) => return Response::error(400, &err.to_string()),
    };
    render(&entry, &run, output, as_json)
}

/// Parse the comparison configuration from the request's query parameters,
/// starting from the `backbone compare` defaults so the two surfaces agree.
fn parse_compare_config(
    request: &Request,
    threads: usize,
) -> Result<comparison::ComparisonConfig, String> {
    let mut config = comparison::ComparisonConfig {
        threads,
        ..comparison::ComparisonConfig::default()
    };
    if let Some(spec) = request.query_param("methods") {
        config.methods = comparison::parse_method_list(spec)?;
    }
    let number = |name: &'static str| -> Result<Option<f64>, String> {
        request
            .query_param(name)
            .map(|value| {
                value
                    .parse::<f64>()
                    .map_err(|_| format!("{name}: cannot parse `{value}` as a number"))
            })
            .transpose()
    };
    if let Some(value) = number("top_share")? {
        config.top_share = value;
    }
    if let Some(value) = number("noise")? {
        config.noise_level = value;
    }
    if let Some(value) = request.query_param("resamples") {
        config.noise_resamples = value
            .parse()
            .map_err(|_| format!("resamples: cannot parse `{value}` as an integer"))?;
    }
    if let Some(value) = request.query_param("seed") {
        config.seed = value
            .parse()
            .map_err(|_| format!("seed: cannot parse `{value}` as an integer"))?;
    }
    // Sampling parameters patch every hss-approx entry of the method list;
    // without one in the list they are rejected, mirroring the CLI.
    let has_hss_approx = config
        .methods
        .iter()
        .any(|method| matches!(method, Method::HssApprox { .. }));
    if !has_hss_approx
        && (request.query_param("hss_roots").is_some() || request.query_param("hss_seed").is_some())
    {
        return Err("hss_roots/hss_seed apply only when `methods` includes hss-approx".to_string());
    }
    for method in &mut config.methods {
        if matches!(method, Method::HssApprox { .. }) {
            *method = apply_hss_params(*method, request)?;
        }
    }
    Ok(config)
}

/// The canonical cache key of a comparison configuration: every field the
/// report depends on, in a fixed order. Thread count is deliberately
/// excluded — results are bit-identical at any worker count.
fn compare_cache_key(config: &comparison::ComparisonConfig) -> String {
    // cache_key, not cli_name: two hss-approx configurations are different
    // comparisons and must never share a cached report.
    let methods: Vec<String> = config.methods.iter().map(Method::cache_key).collect();
    format!(
        "{}|{}|{}|{}|{}",
        methods.join(","),
        json::number(config.top_share),
        json::number(config.noise_level),
        config.noise_resamples,
        config.seed
    )
}

fn compare(registry: &Registry, name: &str, request: &Request) -> Response {
    let Some(entry) = registry.get(name) else {
        return Response::error(404, &format!("no graph named `{name}`"));
    };
    let config = match parse_compare_config(request, registry.threads()) {
        Ok(config) => config,
        Err(message) => return Response::error(400, &message),
    };
    let comparison = match comparison::Comparison::new(config) {
        Ok(comparison) => comparison,
        Err(err) => return Response::error(400, &err.to_string()),
    };
    // One snapshot for the whole request: the report and its cache entry
    // belong to a single generation, so a PATCH landing mid-Monte-Carlo
    // can never store a stale report on the successor state.
    let state = entry.snapshot();
    // The finished report is a pure function of (graph, config) — no wall
    // times — so repeated requests are answered from the per-generation
    // report cache without re-running the noise Monte Carlo.
    let key = compare_cache_key(comparison.config());
    if let Some(body) = state.cached_compare(&key) {
        return Response::json(200, body.to_string());
    }
    // Base scoring goes through the (generation, method) scored-edge cache;
    // only the noise resamples are scored fresh (they are perturbed copies).
    let report = match comparison.run_with_scores(state.graph().as_ref(), |method| {
        registry.scored_state(&state, method)
    }) {
        Ok(report) => report,
        Err(err) => return Response::error(400, &err.to_string()),
    };
    // The stable rendering (no wall times): a cache-hit body must be
    // byte-identical to the cold one.
    let mut body = report.to_json_stable();
    body.push('\n');
    state.store_compare(key, Arc::from(body.as_str()));
    Response::json(200, body)
}

fn render(entry: &GraphEntry, run: &PipelineRun, output: Output, as_json: bool) -> Response {
    match (output, as_json) {
        (Output::Summary, _) => {
            let mut body = JsonObject::pretty();
            body.string("graph", entry.name())
                .raw("summary", &run.summary_json_stable());
            Response::json(200, finish_line(&mut body))
        }
        (Output::Backbone, false) => {
            let mut body = Vec::new();
            if let Err(err) = run.write_backbone(&mut body) {
                return Response::error(500, &err.to_string());
            }
            Response::tsv(200, body)
        }
        (Output::Scores, false) => {
            let mut body = Vec::new();
            if let Err(err) = run.write_scores(&mut body) {
                return Response::error(500, &err.to_string());
            }
            Response::tsv(200, body)
        }
        (Output::Backbone, true) => {
            let graph = &run.backbone;
            let mut edges = JsonArray::new();
            for edge in graph.edges() {
                let mut object = JsonObject::inline();
                object
                    .string("source", &node_label(graph, edge.source))
                    .string("target", &node_label(graph, edge.target))
                    .f64("weight", edge.weight);
                edges.raw(&object.finish());
            }
            let mut body = JsonObject::pretty();
            body.string("graph", entry.name())
                .string("method", run.method.cli_name())
                .usize("edges_kept", run.kept.len())
                .raw("edges", &edges.finish());
            Response::json(200, finish_line(&mut body))
        }
        (Output::Scores, true) => {
            let kept: std::collections::HashSet<usize> = run.kept.iter().copied().collect();
            let mut rows = JsonArray::new();
            for edge in run.scored.iter() {
                let mut object = JsonObject::inline();
                object
                    .string("source", &node_label(&run.backbone, edge.source))
                    .string("target", &node_label(&run.backbone, edge.target))
                    .f64("weight", edge.weight)
                    .f64("score", edge.score)
                    .raw("p_value", &optional_number(edge.p_value))
                    .bool("kept", kept.contains(&edge.edge_index));
                rows.raw(&object.finish());
            }
            let mut body = JsonObject::pretty();
            body.string("graph", entry.name())
                .string("method", run.method.cli_name())
                .raw("scores", &rows.finish());
            Response::json(200, finish_line(&mut body))
        }
    }
}

fn optional_number(value: Option<f64>) -> String {
    match value {
        Some(v) => json::number(v),
        None => "null".to_string(),
    }
}

fn node_label(graph: &backboning_graph::WeightedGraph, node: backboning_graph::NodeId) -> String {
    graph
        .label(node)
        .map(str::to_string)
        .unwrap_or_else(|| node.to_string())
}
