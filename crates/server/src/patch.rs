//! PATCH body parsing: one request body in, one [`DeltaBatch`] out.
//!
//! Two wire formats are accepted, selected by `Content-Type`:
//!
//! * **TSV** (the default, mirroring the edge-list upload format): one op
//!   per line — `add SRC TGT W`, `remove SRC TGT`, `reweight SRC TGT W` —
//!   with blank lines and `#` comments ignored. Parsed by
//!   [`DeltaBatch::parse_tsv`], so CLI and server accept byte-identical
//!   delta files.
//! * **JSON** (`Content-Type: application/json`):
//!   `{"ops": [{"op": "add", "source": "a", "target": "b", "weight": 2.0}, …]}`
//!   where `source`/`target` may be strings (labels) or numbers (ids) and
//!   `remove` takes no weight. Parsed by a small hand-rolled reader —
//!   the workspace's `json` module is write-only and the dependency policy
//!   is std-only — and mapped onto the same [`DeltaBatch`], with the op's
//!   1-based position standing in for the TSV line number so validation
//!   errors stay addressable either way.

use backboning_graph::delta::{DeltaOp, DeltaOpKind};
use backboning_graph::DeltaBatch;

use crate::http::Request;

/// Parse a PATCH request body into a delta batch. Errors are ready-to-serve
/// 400 messages (line- or op-numbered).
pub fn parse_delta_body(request: &Request) -> Result<DeltaBatch, String> {
    let body = std::str::from_utf8(&request.body)
        .map_err(|_| "delta body is not valid UTF-8".to_string())?;
    let is_json = request
        .header("content-type")
        .is_some_and(|value| value.contains("application/json"));
    if is_json {
        parse_json_delta(body)
    } else {
        DeltaBatch::parse_tsv(body).map_err(|err| err.to_string())
    }
}

/// A parsed JSON value — just enough of the grammar for delta bodies.
enum Value {
    Object(Vec<(String, Value)>),
    Array(Vec<Value>),
    Text(String),
    Number(f64),
    Bool,
    Null,
}

impl Value {
    fn kind(&self) -> &'static str {
        match self {
            Value::Object(_) => "object",
            Value::Array(_) => "array",
            Value::Text(_) => "string",
            Value::Number(_) => "number",
            Value::Bool => "boolean",
            Value::Null => "null",
        }
    }
}

/// A minimal recursive-descent JSON reader over the body bytes.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(text: &'a str) -> Self {
        Reader {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, message: &str) -> String {
        format!("delta JSON: {message} (at byte {})", self.pos)
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_whitespace();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        match self.peek() {
            Some(found) if found == byte => {
                self.pos += 1;
                Ok(())
            }
            Some(found) => Err(self.error(&format!(
                "expected `{}`, found `{}`",
                byte as char, found as char
            ))),
            None => Err(self.error(&format!("expected `{}`, found end of input", byte as char))),
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Text(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool),
            Some(b'f') => self.literal("false", Value::Bool),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.error(&format!("unexpected character `{}`", c as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, String> {
        self.skip_whitespace();
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected `{text}`")))
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| self.error("unterminated escape"))?;
                    out.push(match escape {
                        b'"' => '"',
                        b'\\' => '\\',
                        b'/' => '/',
                        b'n' => '\n',
                        b't' => '\t',
                        b'r' => '\r',
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32)
                                .ok_or_else(|| self.error("invalid \\u escape"))?;
                            self.pos += 4;
                            hex
                        }
                        other => {
                            return Err(
                                self.error(&format!("unknown escape `\\{}`", *other as char))
                            )
                        }
                    });
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy a full UTF-8 scalar, not a byte.
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| self.error("invalid UTF-8 in string"))?;
                    let ch = text.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
                None => return Err(self.error("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        self.skip_whitespace();
        let start = self.pos;
        while matches!(
            self.bytes.get(self.pos),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii run");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.error(&format!("cannot parse number `{text}`")))
    }
}

/// A node token from a JSON field: strings pass through as labels/ids,
/// numbers are accepted as a convenience for unlabeled graphs.
fn node_token(op_index: usize, field: &str, value: &Value) -> Result<String, String> {
    match value {
        Value::Text(text) => Ok(text.clone()),
        Value::Number(number) if number.fract() == 0.0 && *number >= 0.0 => {
            Ok(format!("{}", *number as u64))
        }
        other => Err(format!(
            "op {}: `{field}` must be a string or a non-negative integer, got {}",
            op_index + 1,
            other.kind()
        )),
    }
}

fn parse_json_delta(body: &str) -> Result<DeltaBatch, String> {
    let mut reader = Reader::new(body);
    let document = reader.value()?;
    if reader.peek().is_some() {
        return Err(reader.error("trailing content after document"));
    }
    let Value::Object(fields) = document else {
        return Err(format!(
            "delta JSON: expected a top-level object with an `ops` array, got {}",
            document.kind()
        ));
    };
    let mut ops_value = None;
    for (key, value) in fields {
        match key.as_str() {
            "ops" => ops_value = Some(value),
            other => return Err(format!("delta JSON: unknown top-level field `{other}`")),
        }
    }
    let Some(Value::Array(items)) = ops_value else {
        return Err("delta JSON: the top-level `ops` array is required".to_string());
    };

    let mut ops = Vec::with_capacity(items.len());
    for (index, item) in items.iter().enumerate() {
        let Value::Object(fields) = item else {
            return Err(format!(
                "op {}: expected an object, got {}",
                index + 1,
                item.kind()
            ));
        };
        let mut op = None;
        let mut source = None;
        let mut target = None;
        let mut weight = None;
        for (key, value) in fields {
            match key.as_str() {
                "op" => match value {
                    Value::Text(text) => op = Some(text.clone()),
                    other => {
                        return Err(format!(
                            "op {}: `op` must be a string, got {}",
                            index + 1,
                            other.kind()
                        ))
                    }
                },
                "source" => source = Some(node_token(index, "source", value)?),
                "target" => target = Some(node_token(index, "target", value)?),
                "weight" => match value {
                    Value::Number(number) => weight = Some(*number),
                    other => {
                        return Err(format!(
                            "op {}: `weight` must be a number, got {}",
                            index + 1,
                            other.kind()
                        ))
                    }
                },
                other => return Err(format!("op {}: unknown field `{other}`", index + 1)),
            }
        }
        let require = |name: &str, value: Option<String>| {
            value.ok_or_else(|| format!("op {}: the `{name}` field is required", index + 1))
        };
        let op_name = op.ok_or_else(|| format!("op {}: the `op` field is required", index + 1))?;
        let kind = match op_name.as_str() {
            "add" => DeltaOpKind::Add {
                source: require("source", source)?,
                target: require("target", target)?,
                weight: weight.ok_or_else(|| {
                    format!("op {}: the `weight` field is required for add", index + 1)
                })?,
            },
            "remove" => {
                if weight.is_some() {
                    return Err(format!("op {}: remove takes no `weight`", index + 1));
                }
                DeltaOpKind::Remove {
                    source: require("source", source)?,
                    target: require("target", target)?,
                }
            }
            "reweight" => DeltaOpKind::Reweight {
                source: require("source", source)?,
                target: require("target", target)?,
                weight: weight.ok_or_else(|| {
                    format!(
                        "op {}: the `weight` field is required for reweight",
                        index + 1
                    )
                })?,
            },
            other => {
                return Err(format!(
                    "op {}: unknown op `{other}` (expected add, remove or reweight)",
                    index + 1
                ))
            }
        };
        ops.push(DeltaOp {
            line: index + 1,
            kind,
        });
    }
    Ok(DeltaBatch { ops })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_ops_map_onto_the_tsv_batch() {
        let body = r#"{"ops": [
            {"op": "add", "source": "a", "target": "b", "weight": 2.5},
            {"op": "remove", "source": 3, "target": 7},
            {"op": "reweight", "source": "x", "target": "y", "weight": 1}
        ]}"#;
        let batch = parse_json_delta(body).unwrap();
        assert_eq!(batch.len(), 3);
        assert_eq!(
            batch.ops[0].kind,
            DeltaOpKind::Add {
                source: "a".to_string(),
                target: "b".to_string(),
                weight: 2.5,
            }
        );
        assert_eq!(
            batch.ops[1].kind,
            DeltaOpKind::Remove {
                source: "3".to_string(),
                target: "7".to_string(),
            }
        );
        assert_eq!(batch.ops[1].line, 2);
        assert_eq!(
            batch.ops[2].kind,
            DeltaOpKind::Reweight {
                source: "x".to_string(),
                target: "y".to_string(),
                weight: 1.0,
            }
        );
    }

    #[test]
    fn json_errors_are_op_numbered() {
        let missing = r#"{"ops": [{"op": "add", "source": "a", "target": "b"}]}"#;
        assert_eq!(
            parse_json_delta(missing).unwrap_err(),
            "op 1: the `weight` field is required for add"
        );
        let unknown = r#"{"ops": [{"op": "add", "source": "a", "target": "b", "weight": 1},
                                  {"op": "upsert", "source": "a", "target": "b"}]}"#;
        assert!(parse_json_delta(unknown).unwrap_err().starts_with("op 2:"));
        let spurious = r#"{"ops": [{"op": "remove", "source": "a", "target": "b", "weight": 1}]}"#;
        assert_eq!(
            parse_json_delta(spurious).unwrap_err(),
            "op 1: remove takes no `weight`"
        );
    }

    #[test]
    fn malformed_json_is_rejected_with_position() {
        for body in ["", "[1,2]", r#"{"ops": "#, r#"{"ops": [{}], "extra": 1}"#] {
            assert!(parse_json_delta(body).is_err(), "`{body}`");
        }
        let err = parse_json_delta(r#"{"ops": [{"op": "add",]}"#).unwrap_err();
        assert!(err.contains("at byte"), "{err}");
    }

    #[test]
    fn string_escapes_round_trip() {
        let body = r#"{"ops": [{"op": "remove", "source": "a\tb", "target": "é"}]}"#;
        let batch = parse_json_delta(body).unwrap();
        assert_eq!(
            batch.ops[0].kind,
            DeltaOpKind::Remove {
                source: "a\tb".to_string(),
                target: "é".to_string(),
            }
        );
    }
}
