//! A minimal HTTP/1.1 request parser and response writer on `std::io`.
//!
//! The build environment vendors no HTTP crate, so the server hand-rolls the
//! small subset of RFC 9112 it needs: a request line, headers, an optional
//! `Content-Length` body, and fixed-length `Connection: close` responses.
//! Each connection carries exactly one request — the right trade-off for an
//! API whose expensive work (scoring a graph) dwarfs a TCP handshake, and it
//! keeps the worker pool free of keep-alive bookkeeping.

use std::io::{BufRead, Write};

/// Upload bodies larger than this are rejected with `413 Payload Too Large`
/// before any parsing happens (64 MiB — roomy for multi-million-edge lists,
/// small enough that a misbehaving client cannot exhaust memory).
pub const MAX_BODY_BYTES: usize = 64 << 20;

/// Limit on the request head (request line + headers) to bound memory.
const MAX_HEAD_BYTES: usize = 64 << 10;

/// A parse/read failure while receiving a request.
#[derive(Debug)]
pub enum HttpError {
    /// The request violates the subset of HTTP/1.1 the server speaks.
    Malformed(String),
    /// The declared body exceeds [`MAX_BODY_BYTES`].
    TooLarge(usize),
    /// The underlying socket read failed.
    Io(std::io::Error),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Malformed(message) => write!(f, "malformed request: {message}"),
            HttpError::TooLarge(bytes) => {
                write!(
                    f,
                    "body of {bytes} bytes exceeds the {MAX_BODY_BYTES} byte limit"
                )
            }
            HttpError::Io(err) => write!(f, "i/o error: {err}"),
        }
    }
}

impl std::error::Error for HttpError {}

/// A parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Request method (`GET`, `POST`, …), upper-case as received.
    pub method: String,
    /// Decoded path without the query string, e.g. `/graphs/trade/backbone`.
    pub path: String,
    /// Decoded query parameters in order of appearance.
    pub query: Vec<(String, String)>,
    /// Header fields with lower-cased names.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` was given).
    pub body: Vec<u8>,
}

impl Request {
    /// The last value of query parameter `name`, if present.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .rev()
            .find(|(key, _)| key == name)
            .map(|(_, value)| value.as_str())
    }

    /// The value of header `name` (case-insensitive), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(key, _)| *key == name)
            .map(|(_, value)| value.as_str())
    }

    /// Whether the client's `Accept` header asks for JSON.
    pub fn accepts_json(&self) -> bool {
        self.header("accept")
            .is_some_and(|accept| accept.contains("application/json"))
    }

    /// Path segments between `/` separators, empty segments dropped
    /// (`/graphs/trade/` → `["graphs", "trade"]`).
    pub fn path_segments(&self) -> Vec<&str> {
        self.path.split('/').filter(|s| !s.is_empty()).collect()
    }
}

/// Decode `%XX` escapes and `+`-as-space in a query component.
fn percent_decode(text: &str) -> String {
    let bytes = text.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes.get(i + 1..i + 3);
                match hex.and_then(|h| u8::from_str_radix(std::str::from_utf8(h).ok()?, 16).ok()) {
                    Some(byte) => {
                        out.push(byte);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            byte => {
                out.push(byte);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn parse_query(raw: &str) -> Vec<(String, String)> {
    raw.split('&')
        .filter(|pair| !pair.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((key, value)) => (percent_decode(key), percent_decode(value)),
            None => (percent_decode(pair), String::new()),
        })
        .collect()
}

/// Read one `\n`-terminated line without ever buffering more than the
/// remaining head `budget` — a peer streaming an endless line cannot grow
/// server memory past [`MAX_HEAD_BYTES`]. Returns `Ok(None)` on a clean
/// end-of-stream before any byte of the line.
fn read_bounded_line<R: BufRead>(
    reader: &mut R,
    budget: &mut usize,
) -> Result<Option<String>, HttpError> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let (used, done) = {
            let buf = reader.fill_buf().map_err(|err| {
                if matches!(
                    err.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) {
                    HttpError::Malformed("timed out mid-request".into())
                } else {
                    HttpError::Io(err)
                }
            })?;
            if buf.is_empty() {
                if line.is_empty() {
                    return Ok(None);
                }
                return Err(HttpError::Malformed("connection closed mid-request".into()));
            }
            match buf.iter().position(|&b| b == b'\n') {
                Some(position) => {
                    if line.len() + position > *budget {
                        return Err(HttpError::Malformed(format!(
                            "request head exceeds {MAX_HEAD_BYTES} bytes"
                        )));
                    }
                    line.extend_from_slice(&buf[..position]);
                    (position + 1, true)
                }
                None => {
                    if line.len() + buf.len() > *budget {
                        return Err(HttpError::Malformed(format!(
                            "request head exceeds {MAX_HEAD_BYTES} bytes"
                        )));
                    }
                    line.extend_from_slice(buf);
                    (buf.len(), false)
                }
            }
        };
        reader.consume(used);
        *budget = budget.saturating_sub(used);
        if done {
            while line.last() == Some(&b'\r') {
                line.pop();
            }
            return Ok(Some(String::from_utf8_lossy(&line).into_owned()));
        }
    }
}

/// Read one request from `reader`.
///
/// Returns `Ok(None)` when the peer closed the connection without sending
/// anything (a health probe or the shutdown self-wake) so callers can drop
/// such connections silently instead of logging a parse error.
pub fn read_request<R: BufRead>(reader: &mut R) -> Result<Option<Request>, HttpError> {
    let mut budget = MAX_HEAD_BYTES;
    let Some(request_line) = read_bounded_line(reader, &mut budget)? else {
        return Ok(None);
    };
    let mut parts = request_line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(method), Some(target), Some(version), None) => (method, target, version),
        _ => {
            return Err(HttpError::Malformed(format!(
                "bad request line `{request_line}`"
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!(
            "unsupported protocol version `{version}`"
        )));
    }

    let (raw_path, raw_query) = match target.split_once('?') {
        Some((path, query)) => (path, query),
        None => (target, ""),
    };

    let mut headers = Vec::new();
    loop {
        let line = read_bounded_line(reader, &mut budget)?
            .ok_or_else(|| HttpError::Malformed("connection closed mid-request".into()))?;
        if line.is_empty() {
            break;
        }
        let (name, value) = line.split_once(':').ok_or_else(|| {
            HttpError::Malformed(format!("header line without a colon: `{line}`"))
        })?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = headers
        .iter()
        .find(|(name, _)| name == "content-length")
        .map(|(_, value)| {
            value
                .parse::<usize>()
                .map_err(|_| HttpError::Malformed(format!("unparseable Content-Length `{value}`")))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::TooLarge(content_length));
    }
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        reader.read_exact(&mut body).map_err(HttpError::Io)?;
    }

    Ok(Some(Request {
        method: method.to_string(),
        path: percent_decode(raw_path),
        query: parse_query(raw_query),
        headers,
        body,
    }))
}

/// A fixed-length HTTP response ready to be written to a socket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: Vec<u8>,
}

/// `Content-Type` for tab-separated edge lists and score tables.
pub const CONTENT_TSV: &str = "text/tab-separated-values; charset=utf-8";
/// `Content-Type` for JSON documents.
pub const CONTENT_JSON: &str = "application/json";
/// `Content-Type` for the Prometheus text exposition format.
pub const CONTENT_PROMETHEUS: &str = "text/plain; version=0.0.4; charset=utf-8";

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: CONTENT_JSON,
            body: body.into_bytes(),
        }
    }

    /// A TSV response with the given status.
    pub fn tsv(status: u16, body: Vec<u8>) -> Response {
        Response {
            status,
            content_type: CONTENT_TSV,
            body,
        }
    }

    /// A Prometheus text exposition response.
    pub fn prometheus(body: String) -> Response {
        Response {
            status: 200,
            content_type: CONTENT_PROMETHEUS,
            body: body.into_bytes(),
        }
    }

    /// An error response: `{ "status": <code>, "error": "<message>" }`.
    pub fn error(status: u16, message: &str) -> Response {
        let mut object = backboning::json::JsonObject::pretty();
        object
            .usize("status", status as usize)
            .string("error", message);
        let mut body = object.finish();
        body.push('\n');
        Response::json(status, body)
    }

    /// The head the response serialises with (status line + headers).
    fn head(&self) -> String {
        format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len(),
        )
    }

    /// Total bytes the response occupies on the wire (head + body) — what
    /// the bytes-out counter accounts for.
    pub fn encoded_len(&self) -> u64 {
        (self.head().len() + self.body.len()) as u64
    }

    /// Serialise the response (status line, headers, body) onto `writer`.
    pub fn write_to<W: Write>(&self, writer: &mut W) -> std::io::Result<()> {
        writer.write_all(self.head().as_bytes())?;
        writer.write_all(&self.body)?;
        writer.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(raw: &str) -> Request {
        read_request(&mut raw.as_bytes())
            .expect("request parses")
            .expect("request present")
    }

    #[test]
    fn parses_a_get_with_query_and_headers() {
        let req = parse(
            "GET /graphs/trade/backbone?method=nc&top_share=0.2 HTTP/1.1\r\n\
             Host: localhost\r\nAccept: application/json\r\n\r\n",
        );
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/graphs/trade/backbone");
        assert_eq!(req.path_segments(), vec!["graphs", "trade", "backbone"]);
        assert_eq!(req.query_param("method"), Some("nc"));
        assert_eq!(req.query_param("top_share"), Some("0.2"));
        assert_eq!(req.query_param("missing"), None);
        assert_eq!(req.header("host"), Some("localhost"));
        assert_eq!(req.header("HOST"), Some("localhost"));
        assert!(req.accepts_json());
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_a_post_body_by_content_length() {
        let req = parse("POST /graphs/up HTTP/1.1\r\nContent-Length: 8\r\n\r\na b 1\nc ");
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"a b 1\nc ");
    }

    #[test]
    fn percent_and_plus_decoding() {
        let req = parse("GET /graphs/a%20b?note=x%3Dy+z&flag HTTP/1.1\r\n\r\n");
        assert_eq!(req.path, "/graphs/a b");
        assert_eq!(req.query_param("note"), Some("x=y z"));
        assert_eq!(req.query_param("flag"), Some(""));
    }

    #[test]
    fn empty_connection_reads_as_none() {
        assert!(read_request(&mut "".as_bytes()).unwrap().is_none());
    }

    #[test]
    fn malformed_requests_are_rejected() {
        for raw in [
            "GARBAGE\r\n\r\n",
            "GET /path SPDY/3\r\n\r\n",
            "GET /p HTTP/1.1\r\nno-colon-header\r\n\r\n",
            "POST /p HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
        ] {
            assert!(
                matches!(
                    read_request(&mut raw.as_bytes()),
                    Err(HttpError::Malformed(_))
                ),
                "{raw:?}"
            );
        }
    }

    #[test]
    fn oversized_request_heads_are_cut_off() {
        // A request line that never ends: rejected once it exceeds the head
        // budget instead of buffering without bound.
        let raw = format!("GET /{}", "a".repeat(MAX_BODY_BYTES.min(128 << 10)));
        assert!(matches!(
            read_request(&mut raw.as_bytes()),
            Err(HttpError::Malformed(message)) if message.contains("head exceeds")
        ));
        // Same for a single runaway header line.
        let raw = format!("GET /p HTTP/1.1\r\nX-Big: {}", "b".repeat(128 << 10));
        assert!(matches!(
            read_request(&mut raw.as_bytes()),
            Err(HttpError::Malformed(message)) if message.contains("head exceeds")
        ));
    }

    #[test]
    fn oversized_bodies_are_rejected_upfront() {
        let raw = format!(
            "POST /p HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(
            read_request(&mut raw.as_bytes()),
            Err(HttpError::TooLarge(_))
        ));
    }

    #[test]
    fn truncated_bodies_are_io_errors() {
        let raw = "POST /p HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort";
        assert!(matches!(
            read_request(&mut raw.as_bytes()),
            Err(HttpError::Io(_))
        ));
    }

    #[test]
    fn responses_carry_length_and_close() {
        let mut out = Vec::new();
        Response::json(200, "{}".to_string())
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));

        let mut out = Vec::new();
        Response::error(404, "no such graph")
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 404 Not Found\r\n"));
        assert!(text.contains("\"error\": \"no such graph\""));
    }
}
