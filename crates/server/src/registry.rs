//! The graph registry and its scored-edge cache.
//!
//! A [`Registry`] owns every named graph the server can answer queries
//! about: graphs loaded from a directory at startup plus graphs uploaded
//! over HTTP. Each [`GraphEntry`] carries a **scored-edge cache** keyed by
//! [`Method::cache_key`] — the CLI name for exact methods, and a key that
//! embeds `roots` and `seed` for the sampled `hss-approx` estimator — so
//! the expensive scoring pass (Sinkhorn for DS, one SSSP per root for HSS,
//! the NC posterior, Monte Carlo-free but still O(E) work for the rest)
//! runs **once per `(graph, method configuration)`** and every subsequent
//! threshold policy is answered from the cached
//! [`backboning::ScoredEdges`] at selection cost.
//!
//! Each entry additionally carries a **comparison report cache** keyed by
//! the canonical `/compare` configuration: a comparison's noise Monte
//! Carlo re-scores perturbed graph copies, which the scored-edge cache
//! cannot help with, but the finished report is a pure function of
//! `(graph, config)`, so its bytes are stored and repeated requests skip
//! the Monte Carlo entirely (bounded per graph; see
//! [`GraphEntry::store_compare`]).
//!
//! Concurrency model: the graph map is behind an `RwLock` (lookups are
//! reads; uploads are rare writes). Each cache slot is an
//! `Arc<OnceLock<…>>`, so concurrent first hits on the same `(graph,
//! method)` block on one scoring pass instead of duplicating it, while
//! queries for *other* methods or graphs proceed unhindered. Failed scoring
//! attempts are cached too — a graph with no doubly-stochastic scaling
//! answers every DS query with the same error without re-running Sinkhorn.
//!
//! Both caches are **LRU-bounded**: a `ScoredEdges` set of a million-edge
//! [`CsrGraph`] is an order of magnitude larger than the graph itself, so
//! at most `MAX_SCORED_METHODS` score sets (and `MAX_COMPARE_REPORTS`
//! reports) are retained per graph, evicting the least-recently-used slot.
//! Eviction is always safe: every cached value is a pure function of
//! `(graph, key)`, so a re-scored response is byte-identical to the
//! evicted one (pinned by the integration suite).

use std::collections::{BTreeMap, HashMap};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

use backboning::error::BackboneError;
use backboning::{Method, ScoredEdges};
use backboning_graph::io::{read_edge_list_csr_file, EdgeListOptions};
use backboning_graph::CsrGraph;

type ScoreSlot = Arc<OnceLock<Result<Arc<ScoredEdges>, BackboneError>>>;

/// Registry-lifetime cache event counters. One instance is shared (via
/// `Arc`) between the [`Registry`] and every [`GraphEntry`] it creates, so
/// counts accumulate across graph re-inserts and removals: they describe the
/// server process, not any single graph's cache.
#[derive(Default)]
struct CacheAtomics {
    scored_evictions: AtomicU64,
    compare_hits: AtomicU64,
    compare_misses: AtomicU64,
    compare_evictions: AtomicU64,
}

/// A point-in-time copy of every cache counter the registry keeps, for
/// `/health` and `/metrics`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheCounters {
    /// Scored-edge lookups answered from the cache.
    pub scored_hits: u64,
    /// Scored-edge lookups that ran a scoring pass.
    pub scored_misses: u64,
    /// Scored-edge slots evicted by the per-graph LRU bound.
    pub scored_evictions: u64,
    /// Comparison-report lookups answered from the cache.
    pub compare_hits: u64,
    /// Comparison-report lookups that missed (the report was computed).
    pub compare_misses: u64,
    /// Comparison reports evicted by the per-graph LRU bound.
    pub compare_evictions: u64,
}

/// Maximum number of cached comparison reports per graph. A comparison
/// report is small (a few KiB of JSON), but its cache key includes
/// free-form query parameters, so the map is bounded to keep a client
/// sweeping parameters from growing it without limit.
const MAX_COMPARE_REPORTS: usize = 32;

/// Maximum number of scored-edge sets retained per graph. A score set
/// carries several `f64` columns per edge, so on a multi-million-edge graph
/// it dwarfs the CSR arrays themselves; bounding the per-graph set keeps a
/// client sweeping methods from pinning `7 × O(E)` memory.
const MAX_SCORED_METHODS: usize = 4;

/// A named graph plus its per-method scored-edge cache and its comparison
/// report cache.
pub struct GraphEntry {
    name: String,
    graph: CsrGraph,
    /// Logical clock driving both LRU caches: bumped on every cache touch,
    /// so the entry with the smallest stamp is the least recently used.
    clock: AtomicU64,
    /// Keyed by [`Method::cache_key`]: the CLI name for exact methods, and
    /// `hss-approx:roots=K:seed=S` for the sampled estimator — two sampled
    /// configurations score differently and must never share a slot.
    cache: Mutex<HashMap<String, (u64, ScoreSlot)>>,
    compare_cache: Mutex<HashMap<String, (u64, Arc<str>)>>,
    /// Shared with the owning [`Registry`] so cache events survive graph
    /// re-inserts (which drop the entry, but not the process-wide counts).
    counters: Arc<CacheAtomics>,
}

impl GraphEntry {
    fn new(name: String, graph: CsrGraph, counters: Arc<CacheAtomics>) -> Self {
        GraphEntry {
            name,
            graph,
            clock: AtomicU64::new(0),
            cache: Mutex::new(HashMap::new()),
            compare_cache: Mutex::new(HashMap::new()),
            counters,
        }
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// The cached comparison report body for a canonical configuration key,
    /// if one was stored. Comparison reports are pure functions of
    /// `(graph, config)` — no wall times — so serving the stored bytes is
    /// indistinguishable from recomputing them. A hit refreshes the entry's
    /// LRU stamp.
    pub fn cached_compare(&self, key: &str) -> Option<Arc<str>> {
        let stamp = self.tick();
        let mut cache = self.compare_cache.lock().unwrap_or_else(|e| e.into_inner());
        let body = cache.get_mut(key).map(|(used, body)| {
            *used = stamp;
            Arc::clone(body)
        });
        if body.is_some() {
            self.counters.compare_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.counters.compare_misses.fetch_add(1, Ordering::Relaxed);
        }
        body
    }

    /// Store a comparison report body under its configuration key. The map
    /// is bounded (`MAX_COMPARE_REPORTS`); storing past the bound evicts
    /// the least-recently-used report rather than growing. Eviction is
    /// lossless: the report is a pure function of `(graph, config)`, so a
    /// recomputed body is byte-identical. Concurrent first requests may
    /// both compute and store; last-write-wins is harmless for the same
    /// reason.
    pub fn store_compare(&self, key: String, body: Arc<str>) {
        let stamp = self.tick();
        let mut cache = self.compare_cache.lock().unwrap_or_else(|e| e.into_inner());
        if cache.len() >= MAX_COMPARE_REPORTS && !cache.contains_key(&key) {
            evict_least_recently_used(&mut cache);
            self.counters
                .compare_evictions
                .fetch_add(1, Ordering::Relaxed);
        }
        cache.insert(key, (stamp, body));
    }

    /// The registry name of the graph.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The graph itself, in its compact CSR form.
    pub fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    /// Cache keys of the methods whose scores are currently cached
    /// (successfully computed ones only), sorted for stable output. Exact
    /// methods appear under their CLI name; sampled HSS under its full
    /// `hss-approx:roots=K:seed=S` key.
    pub fn cached_methods(&self) -> Vec<String> {
        let cache = self.cache.lock().unwrap_or_else(|e| e.into_inner());
        let mut names: Vec<String> = cache
            .iter()
            .filter(|(_, (_, slot))| matches!(slot.get(), Some(Ok(_))))
            .map(|(name, _)| name.clone())
            .collect();
        names.sort_unstable();
        names
    }
}

/// Remove the entry with the smallest LRU stamp from a bounded cache map.
fn evict_least_recently_used<K: Clone + std::hash::Hash + Eq, V>(map: &mut HashMap<K, (u64, V)>) {
    if let Some(oldest) = map
        .iter()
        .min_by_key(|(_, (used, _))| *used)
        .map(|(key, _)| key.clone())
    {
        map.remove(&oldest);
    }
}

/// Maximum accepted graph-name length.
const MAX_NAME_LEN: usize = 100;

/// Whether `name` is a legal registry name: 1–100 characters from
/// `[A-Za-z0-9._-]`, not starting with a dot.
pub fn valid_graph_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= MAX_NAME_LEN
        && !name.starts_with('.')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
}

/// The server's set of named graphs and their scored-edge caches.
pub struct Registry {
    graphs: RwLock<BTreeMap<String, Arc<GraphEntry>>>,
    threads: usize,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    counters: Arc<CacheAtomics>,
}

impl Registry {
    /// An empty registry whose scoring passes use `threads` workers
    /// (`0` = automatic, honouring `BACKBONING_THREADS`).
    pub fn new(threads: usize) -> Self {
        Registry {
            graphs: RwLock::new(BTreeMap::new()),
            threads,
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            counters: Arc::new(CacheAtomics::default()),
        }
    }

    /// The configured scoring worker count (`0` = automatic).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Load every edge-list file of `dir` (extensions `tsv`, `csv`, `txt`,
    /// `edges`) as a named graph; the file stem becomes the name. `csv`
    /// files are parsed comma-separated, everything else with `options`.
    /// Returns the loaded names; any unreadable or malformed file fails the
    /// whole load (a server should not come up half-configured).
    pub fn load_dir(&self, dir: &Path, options: &EdgeListOptions) -> Result<Vec<String>, String> {
        let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        let mut paths: Vec<std::path::PathBuf> = entries
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|path| {
                path.extension()
                    .and_then(|ext| ext.to_str())
                    .is_some_and(|ext| matches!(ext, "tsv" | "csv" | "txt" | "edges"))
            })
            .collect();
        paths.sort();
        let mut loaded = Vec::new();
        for path in paths {
            let name = path
                .file_stem()
                .and_then(|stem| stem.to_str())
                .unwrap_or_default()
                .to_string();
            if !valid_graph_name(&name) {
                return Err(format!(
                    "{}: `{name}` is not a valid graph name (use [A-Za-z0-9._-])",
                    path.display()
                ));
            }
            let mut file_options = options.clone();
            if path.extension().and_then(|e| e.to_str()) == Some("csv") {
                file_options.separator = Some(',');
            }
            // Stream straight into the CSR builder — no adjacency-map
            // intermediate, so startup memory is the CSR arrays plus one
            // line buffer even for multi-million-edge files.
            let graph = read_edge_list_csr_file(&path, &file_options).map_err(|e| e.to_string())?;
            self.insert(&name, graph)?;
            loaded.push(name);
        }
        Ok(loaded)
    }

    /// Register `graph` under `name`, replacing any previous graph of that
    /// name (and dropping its cache). Rejects invalid names.
    pub fn insert(&self, name: &str, graph: CsrGraph) -> Result<Arc<GraphEntry>, String> {
        if !valid_graph_name(name) {
            return Err(format!(
                "invalid graph name `{name}` (1-{MAX_NAME_LEN} characters from [A-Za-z0-9._-], not starting with a dot)"
            ));
        }
        let entry = Arc::new(GraphEntry::new(
            name.to_string(),
            graph,
            Arc::clone(&self.counters),
        ));
        let mut graphs = self.graphs.write().unwrap_or_else(|e| e.into_inner());
        graphs.insert(name.to_string(), Arc::clone(&entry));
        Ok(entry)
    }

    /// Remove the graph registered under `name`. Returns whether it existed.
    pub fn remove(&self, name: &str) -> bool {
        let mut graphs = self.graphs.write().unwrap_or_else(|e| e.into_inner());
        graphs.remove(name).is_some()
    }

    /// Look up a graph by name.
    pub fn get(&self, name: &str) -> Option<Arc<GraphEntry>> {
        let graphs = self.graphs.read().unwrap_or_else(|e| e.into_inner());
        graphs.get(name).cloned()
    }

    /// All registered graphs in name order.
    pub fn list(&self) -> Vec<Arc<GraphEntry>> {
        let graphs = self.graphs.read().unwrap_or_else(|e| e.into_inner());
        graphs.values().cloned().collect()
    }

    /// Number of registered graphs.
    pub fn graph_count(&self) -> usize {
        let graphs = self.graphs.read().unwrap_or_else(|e| e.into_inner());
        graphs.len()
    }

    /// The scored edges of `entry` under `method`, from the cache when
    /// present, scoring (once, with concurrent callers blocking on the same
    /// pass) when not. At most `MAX_SCORED_METHODS` score sets are
    /// retained per graph; a lookup past the bound evicts the
    /// least-recently-used method's slot (whose scores are recomputed —
    /// bit-identically — if it is ever asked for again).
    pub fn scored(
        &self,
        entry: &GraphEntry,
        method: Method,
    ) -> Result<Arc<ScoredEdges>, BackboneError> {
        let stamp = entry.tick();
        let key = method.cache_key();
        let slot = {
            let mut cache = entry.cache.lock().unwrap_or_else(|e| e.into_inner());
            if cache.len() >= MAX_SCORED_METHODS && !cache.contains_key(&key) {
                evict_least_recently_used(&mut cache);
                self.counters
                    .scored_evictions
                    .fetch_add(1, Ordering::Relaxed);
            }
            let (used, slot) = cache.entry(key).or_default();
            *used = stamp;
            Arc::clone(slot)
        };
        let mut computed_here = false;
        let result = slot.get_or_init(|| {
            computed_here = true;
            method
                .score_with_threads(&entry.graph, self.threads)
                .map(Arc::new)
        });
        if computed_here {
            self.cache_misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
        }
        result.clone()
    }

    /// Lifetime cache statistics: `(hits, misses)`. A hit is any scored
    /// lookup answered without running a scoring pass on the calling thread.
    pub fn cache_stats(&self) -> (u64, u64) {
        (
            self.cache_hits.load(Ordering::Relaxed),
            self.cache_misses.load(Ordering::Relaxed),
        )
    }

    /// Every cache counter the registry keeps, in one consistent-enough
    /// snapshot (each counter is read atomically; the set is advisory).
    pub fn cache_counters(&self) -> CacheCounters {
        CacheCounters {
            scored_hits: self.cache_hits.load(Ordering::Relaxed),
            scored_misses: self.cache_misses.load(Ordering::Relaxed),
            scored_evictions: self.counters.scored_evictions.load(Ordering::Relaxed),
            compare_hits: self.counters.compare_hits.load(Ordering::Relaxed),
            compare_misses: self.counters.compare_misses.load(Ordering::Relaxed),
            compare_evictions: self.counters.compare_evictions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use backboning_graph::{Direction, WeightedGraph};

    fn sample_graph() -> CsrGraph {
        let graph = WeightedGraph::from_labeled_edges(
            Direction::Undirected,
            vec![("a", "b", 4.0), ("b", "c", 3.0), ("c", "a", 2.0)],
        )
        .unwrap();
        CsrGraph::from_graph(&graph).unwrap()
    }

    #[test]
    fn insert_get_remove_round_trip() {
        let registry = Registry::new(1);
        assert_eq!(registry.graph_count(), 0);
        registry.insert("g1", sample_graph()).unwrap();
        assert_eq!(registry.graph_count(), 1);
        let entry = registry.get("g1").expect("registered graph");
        assert_eq!(entry.name(), "g1");
        assert_eq!(entry.graph().edge_count(), 3);
        assert!(registry.get("g2").is_none());
        assert!(registry.remove("g1"));
        assert!(!registry.remove("g1"));
        assert_eq!(registry.graph_count(), 0);
    }

    #[test]
    fn graph_names_are_validated() {
        let registry = Registry::new(1);
        for bad in [
            "",
            ".hidden",
            "has space",
            "sla/sh",
            "q?x",
            &"x".repeat(101),
        ] {
            assert!(registry.insert(bad, sample_graph()).is_err(), "`{bad}`");
        }
        for good in ["trade", "my-graph_2.v1", "X"] {
            assert!(registry.insert(good, sample_graph()).is_ok(), "`{good}`");
        }
    }

    #[test]
    fn scoring_is_cached_per_method() {
        let registry = Registry::new(1);
        let entry = registry.insert("g", sample_graph()).unwrap();
        assert_eq!(registry.cache_stats(), (0, 0));
        let first = registry.scored(&entry, Method::NoiseCorrected).unwrap();
        assert_eq!(registry.cache_stats(), (0, 1));
        let second = registry.scored(&entry, Method::NoiseCorrected).unwrap();
        assert_eq!(registry.cache_stats(), (1, 1));
        // Same allocation, not merely equal scores.
        assert!(Arc::ptr_eq(&first, &second));
        let _ = registry.scored(&entry, Method::DisparityFilter).unwrap();
        assert_eq!(registry.cache_stats(), (1, 2));
        assert_eq!(entry.cached_methods(), vec!["df", "nc"]);
    }

    #[test]
    fn sampled_hss_configurations_get_distinct_cache_slots() {
        let registry = Registry::new(1);
        let entry = registry.insert("g", sample_graph()).unwrap();
        let first = Method::HssApprox { roots: 2, seed: 1 };
        let second = Method::HssApprox { roots: 2, seed: 2 };
        let a = registry.scored(&entry, first).unwrap();
        let b = registry.scored(&entry, second).unwrap();
        // Different seeds are different scoring passes, never a shared slot.
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(registry.cache_stats(), (0, 2));
        assert_eq!(
            entry.cached_methods(),
            vec!["hss-approx:roots=2:seed=1", "hss-approx:roots=2:seed=2"]
        );
        // Repeating either configuration is a hit on its own slot.
        let again = registry.scored(&entry, first).unwrap();
        assert!(Arc::ptr_eq(&a, &again));
        assert_eq!(registry.cache_stats(), (1, 2));
    }

    #[test]
    fn reinserting_a_name_drops_the_old_cache() {
        let registry = Registry::new(1);
        let entry = registry.insert("g", sample_graph()).unwrap();
        let _ = registry.scored(&entry, Method::NaiveThreshold).unwrap();
        assert_eq!(entry.cached_methods(), vec!["naive"]);
        let replacement = registry.insert("g", sample_graph()).unwrap();
        assert!(replacement.cached_methods().is_empty());
    }

    #[test]
    fn compare_reports_are_cached_and_lru_bounded() {
        let registry = Registry::new(1);
        let entry = registry.insert("g", sample_graph()).unwrap();
        assert!(entry.cached_compare("key").is_none());
        entry.store_compare("key".to_string(), Arc::from("{}"));
        assert_eq!(entry.cached_compare("key").as_deref(), Some("{}"));

        // Filling the map up to the bound keeps everything.
        for index in 0..MAX_COMPARE_REPORTS - 1 {
            entry.store_compare(format!("filler-{index}"), Arc::from("{}"));
        }
        assert!(entry.cached_compare("filler-1").is_some());
        // "key" was just touched above, so the store past the bound evicts
        // the least-recently-used entry — filler-0 — and nothing else.
        assert!(entry.cached_compare("key").is_some());
        entry.store_compare("one-too-many".to_string(), Arc::from("{}"));
        assert!(entry.cached_compare("filler-0").is_none());
        assert!(entry.cached_compare("key").is_some());
        assert!(entry.cached_compare("filler-1").is_some());
        assert!(entry.cached_compare("one-too-many").is_some());

        // Re-inserting the graph drops the report cache with the entry.
        let replacement = registry.insert("g", sample_graph()).unwrap();
        assert!(replacement.cached_compare("key").is_none());
    }

    #[test]
    fn score_cache_evicts_least_recently_used_method() {
        let registry = Registry::new(1);
        let entry = registry.insert("g", sample_graph()).unwrap();
        let methods = [
            Method::NoiseCorrected,
            Method::DisparityFilter,
            Method::NaiveThreshold,
            Method::MaximumSpanningTree,
        ];
        assert_eq!(methods.len(), MAX_SCORED_METHODS);
        let first = registry.scored(&entry, methods[0]).unwrap();
        for &method in &methods[1..] {
            registry.scored(&entry, method).unwrap();
        }
        assert_eq!(entry.cached_methods().len(), MAX_SCORED_METHODS);

        // A fifth method evicts the least-recently-used slot (nc).
        registry
            .scored(&entry, Method::HighSalienceSkeleton)
            .unwrap();
        assert_eq!(entry.cached_methods().len(), MAX_SCORED_METHODS);
        assert!(!entry.cached_methods().iter().any(|key| key == "nc"));

        // Re-scoring the evicted method is a fresh pass with bit-identical
        // results — eviction is lossless.
        let rescored = registry.scored(&entry, methods[0]).unwrap();
        assert!(!Arc::ptr_eq(&first, &rescored), "a fresh scoring pass ran");
        assert_eq!(first.scores(), rescored.scores());
    }

    #[test]
    fn cache_counters_track_evictions_and_compare_traffic() {
        let registry = Registry::new(1);
        let entry = registry.insert("g", sample_graph()).unwrap();
        // Compare cache: one miss, one hit, then one eviction past the bound.
        assert!(entry.cached_compare("k").is_none());
        entry.store_compare("k".to_string(), Arc::from("{}"));
        assert!(entry.cached_compare("k").is_some());
        for index in 0..MAX_COMPARE_REPORTS {
            entry.store_compare(format!("filler-{index}"), Arc::from("{}"));
        }
        let counters = registry.cache_counters();
        assert_eq!(counters.compare_misses, 1);
        assert_eq!(counters.compare_hits, 1);
        assert_eq!(counters.compare_evictions, 1);

        // Scored-cache evictions count too, and mirror cache_stats.
        for method in [
            Method::NoiseCorrected,
            Method::DisparityFilter,
            Method::NaiveThreshold,
            Method::MaximumSpanningTree,
            Method::HighSalienceSkeleton,
        ] {
            registry.scored(&entry, method).unwrap();
        }
        let counters = registry.cache_counters();
        assert_eq!(counters.scored_evictions, 1);
        assert_eq!(counters.scored_misses, 5);
        assert_eq!(counters.scored_hits, 0);
        assert_eq!(registry.cache_stats(), (0, 5));

        // Counters describe the process, not one graph entry: re-inserting
        // the graph drops its caches but never the counts.
        registry.insert("g", sample_graph()).unwrap();
        assert_eq!(registry.cache_counters(), counters);
    }

    #[test]
    fn load_dir_names_graphs_by_file_stem() {
        let dir = std::env::temp_dir().join("backboning_server_registry_test");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("tiny.tsv"), "a b 2\nb c 1\n").unwrap();
        std::fs::write(dir.join("comma.csv"), "a,b,2\n").unwrap();
        std::fs::write(dir.join("ignored.md"), "not an edge list").unwrap();

        let registry = Registry::new(1);
        let loaded = registry
            .load_dir(&dir, &EdgeListOptions::default())
            .unwrap();
        assert_eq!(loaded, vec!["comma".to_string(), "tiny".to_string()]);
        assert_eq!(registry.get("tiny").unwrap().graph().edge_count(), 2);
        assert_eq!(registry.get("comma").unwrap().graph().edge_count(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_dir_fails_on_malformed_files() {
        let dir = std::env::temp_dir().join("backboning_server_registry_bad");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("broken.tsv"), "a b heavy\n").unwrap();
        let registry = Registry::new(1);
        let err = registry
            .load_dir(&dir, &EdgeListOptions::default())
            .unwrap_err();
        assert!(err.contains("broken.tsv"), "`{err}`");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
