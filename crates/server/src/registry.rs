//! The graph registry, its scored-edge cache, and patch generations.
//!
//! A [`Registry`] owns every named graph the server can answer queries
//! about: graphs loaded from a directory at startup plus graphs uploaded
//! over HTTP. Each [`GraphEntry`] publishes an immutable [`GraphState`]
//! snapshot — the compact graph plus every cache — behind a generation
//! counter. Readers clone one `Arc` per request and then work on a frozen
//! world: a concurrent `PATCH` publishes a *new* state (generation + 1)
//! without touching the old one, so a response is always computed against
//! exactly one generation's graph and scores — **torn reads are
//! structurally impossible**, not merely avoided (pinned by the
//! concurrent-churn soak).
//!
//! Each state carries a **scored-edge cache** keyed by
//! [`Method::cache_key`] — the CLI name for exact methods, and a key that
//! embeds `roots` and `seed` for the sampled `hss-approx` estimator — so
//! the expensive scoring pass (Sinkhorn for DS, one SSSP per root for HSS,
//! the NC posterior, Monte Carlo-free but still O(E) work for the rest)
//! runs **once per `(generation, method configuration)`** and every
//! subsequent threshold policy is answered from the cached
//! [`backboning::ScoredEdges`] at selection cost.
//!
//! [`Registry::patch`] applies a batched delta through the
//! [`backboning_graph::delta`] overlay (writers are serialized per graph;
//! readers are never blocked), compacts structural changes back to a flat
//! [`CsrGraph`], and **seeds the successor state's cache** by exact
//! incremental rescoring ([`backboning::delta::delta_rescore`]) of every
//! method cached in the previous generation whose
//! [`DeltaStrategy`] permits it — so the cache
//! stays hot under churn for the local methods, while HSS / hss-approx /
//! MST results invalidate to a staged full recompute on next request.
//! Cache invalidation is thereby *keyed by generation*: stale entries are
//! unreachable the instant the new state is published.
//!
//! Each state additionally carries a **comparison report cache** keyed by
//! the canonical `/compare` configuration: a comparison's noise Monte
//! Carlo re-scores perturbed graph copies, which the scored-edge cache
//! cannot help with, but the finished report is a pure function of
//! `(graph, config)`, so its bytes are stored and repeated requests skip
//! the Monte Carlo entirely (bounded per state; see
//! [`GraphState::store_compare`]).
//!
//! Concurrency model: the graph map is behind an `RwLock` (lookups are
//! reads; uploads are rare writes), as is each entry's published state.
//! Each cache slot is an `Arc<OnceLock<…>>`, so concurrent first hits on
//! the same `(graph, method)` block on one scoring pass instead of
//! duplicating it, while queries for *other* methods or graphs proceed
//! unhindered. Failed scoring attempts are cached too — a graph with no
//! doubly-stochastic scaling answers every DS query with the same error
//! without re-running Sinkhorn.
//!
//! Both caches are **LRU-bounded**: a `ScoredEdges` set of a million-edge
//! [`CsrGraph`] is an order of magnitude larger than the graph itself, so
//! at most `MAX_SCORED_METHODS` score sets (and `MAX_COMPARE_REPORTS`
//! reports) are retained per state, evicting the least-recently-used slot.
//! Eviction is always safe: every cached value is a pure function of
//! `(graph, key)`, so a re-scored response is byte-identical to the
//! evicted one (pinned by the integration suite).

use std::collections::{BTreeMap, HashMap};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

use backboning::error::BackboneError;
use backboning::{delta_rescore, DeltaStrategy, Method, ScoredEdges};
use backboning_graph::io::{read_edge_list_csr_file, EdgeListOptions};
use backboning_graph::{CsrGraph, DeltaBatch, DeltaGraph, GraphError, PatchEffect};

type ScoreSlot = Arc<OnceLock<Result<Arc<ScoredEdges>, BackboneError>>>;

/// Registry-lifetime event counters. One instance is shared (via `Arc`)
/// between the [`Registry`] and every [`GraphEntry`] / [`GraphState`] it
/// creates, so counts accumulate across graph re-inserts, removals and
/// patch generations: they describe the server process, not any single
/// graph's cache.
#[derive(Default)]
struct CacheAtomics {
    scored_evictions: AtomicU64,
    compare_hits: AtomicU64,
    compare_misses: AtomicU64,
    compare_evictions: AtomicU64,
    patches: AtomicU64,
    patch_ops: AtomicU64,
    compactions: AtomicU64,
}

/// A point-in-time copy of every cache and patch counter the registry
/// keeps, for `/health` and `/metrics`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheCounters {
    /// Scored-edge lookups answered from the cache.
    pub scored_hits: u64,
    /// Scored-edge lookups that ran a scoring pass.
    pub scored_misses: u64,
    /// Scored-edge slots evicted by the per-state LRU bound.
    pub scored_evictions: u64,
    /// Comparison-report lookups answered from the cache.
    pub compare_hits: u64,
    /// Comparison-report lookups that missed (the report was computed).
    pub compare_misses: u64,
    /// Comparison reports evicted by the per-state LRU bound.
    pub compare_evictions: u64,
    /// PATCH batches committed across all graphs.
    pub patches: u64,
    /// Individual delta ops committed across all PATCH batches.
    pub patch_ops: u64,
    /// Structural patches compacted back to a flat CSR.
    pub compactions: u64,
}

/// Maximum number of cached comparison reports per state. A comparison
/// report is small (a few KiB of JSON), but its cache key includes
/// free-form query parameters, so the map is bounded to keep a client
/// sweeping parameters from growing it without limit.
const MAX_COMPARE_REPORTS: usize = 32;

/// Maximum number of scored-edge sets retained per state. A score set
/// carries several `f64` columns per edge, so on a multi-million-edge graph
/// it dwarfs the CSR arrays themselves; bounding the per-state set keeps a
/// client sweeping methods from pinning `7 × O(E)` memory.
const MAX_SCORED_METHODS: usize = 4;

/// One immutable generation of a graph: the compact CSR plus the caches
/// computed against it. Requests snapshot the current state once
/// ([`GraphEntry::snapshot`]) and never observe a later patch.
pub struct GraphState {
    graph: Arc<CsrGraph>,
    generation: u64,
    /// Logical clock driving both LRU caches: bumped on every cache touch,
    /// so the entry with the smallest stamp is the least recently used.
    clock: AtomicU64,
    /// Keyed by [`Method::cache_key`]; the stored [`Method`] lets a patch
    /// seed the successor generation's cache by incremental rescoring.
    cache: Mutex<HashMap<String, (u64, Method, ScoreSlot)>>,
    compare_cache: Mutex<HashMap<String, (u64, Arc<str>)>>,
    /// Shared with the owning [`Registry`] so cache events survive graph
    /// re-inserts and patches (which drop the state, but not the
    /// process-wide counts).
    counters: Arc<CacheAtomics>,
}

impl GraphState {
    fn new(graph: Arc<CsrGraph>, generation: u64, counters: Arc<CacheAtomics>) -> Self {
        GraphState {
            graph,
            generation,
            clock: AtomicU64::new(0),
            cache: Mutex::new(HashMap::new()),
            compare_cache: Mutex::new(HashMap::new()),
            counters,
        }
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// The graph of this generation, in its compact CSR form.
    pub fn graph(&self) -> &Arc<CsrGraph> {
        &self.graph
    }

    /// The generation number (0 for a freshly inserted graph, +1 per
    /// committed patch).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The cached comparison report body for a canonical configuration key,
    /// if one was stored. Comparison reports are pure functions of
    /// `(graph, config)` — no wall times — so serving the stored bytes is
    /// indistinguishable from recomputing them. A hit refreshes the entry's
    /// LRU stamp.
    pub fn cached_compare(&self, key: &str) -> Option<Arc<str>> {
        let stamp = self.tick();
        let mut cache = self.compare_cache.lock().unwrap_or_else(|e| e.into_inner());
        let body = cache.get_mut(key).map(|(used, body)| {
            *used = stamp;
            Arc::clone(body)
        });
        if body.is_some() {
            self.counters.compare_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.counters.compare_misses.fetch_add(1, Ordering::Relaxed);
        }
        body
    }

    /// Store a comparison report body under its configuration key. The map
    /// is bounded (`MAX_COMPARE_REPORTS`); storing past the bound evicts
    /// the least-recently-used report rather than growing. Eviction is
    /// lossless: the report is a pure function of `(graph, config)`, so a
    /// recomputed body is byte-identical. Concurrent first requests may
    /// both compute and store; last-write-wins is harmless for the same
    /// reason.
    pub fn store_compare(&self, key: String, body: Arc<str>) {
        let stamp = self.tick();
        let mut cache = self.compare_cache.lock().unwrap_or_else(|e| e.into_inner());
        if cache.len() >= MAX_COMPARE_REPORTS && !cache.contains_key(&key) {
            evict_least_recently_used(&mut cache, |(used, _)| *used);
            self.counters
                .compare_evictions
                .fetch_add(1, Ordering::Relaxed);
        }
        cache.insert(key, (stamp, body));
    }

    /// Cache keys of the methods whose scores are currently cached
    /// (successfully computed ones only), sorted for stable output. Exact
    /// methods appear under their CLI name; sampled HSS under its full
    /// `hss-approx:roots=K:seed=S` key.
    pub fn cached_methods(&self) -> Vec<String> {
        let cache = self.cache.lock().unwrap_or_else(|e| e.into_inner());
        let mut names: Vec<String> = cache
            .iter()
            .filter(|(_, (_, _, slot))| matches!(slot.get(), Some(Ok(_))))
            .map(|(name, _)| name.clone())
            .collect();
        names.sort_unstable();
        names
    }

    /// Every successfully cached `(key, method, scores)` triple — the raw
    /// material a patch uses to seed its successor state.
    fn cached_scores(&self) -> Vec<(String, Method, Arc<ScoredEdges>)> {
        let cache = self.cache.lock().unwrap_or_else(|e| e.into_inner());
        cache
            .iter()
            .filter_map(|(key, (_, method, slot))| match slot.get() {
                Some(Ok(scored)) => Some((key.clone(), *method, Arc::clone(scored))),
                _ => None,
            })
            .collect()
    }

    /// Pre-populate a score slot (used when a patch carries scores over to
    /// the next generation). Counts neither as hit nor miss — no lookup
    /// happened.
    fn store_scored(&self, key: String, method: Method, scored: Arc<ScoredEdges>) {
        let stamp = self.tick();
        let mut cache = self.cache.lock().unwrap_or_else(|e| e.into_inner());
        if cache.len() >= MAX_SCORED_METHODS && !cache.contains_key(&key) {
            evict_least_recently_used(&mut cache, |(used, _, _)| *used);
            self.counters
                .scored_evictions
                .fetch_add(1, Ordering::Relaxed);
        }
        let slot: ScoreSlot = Arc::default();
        let _ = slot.set(Ok(scored));
        cache.insert(key, (stamp, method, slot));
    }
}

/// A named graph: the currently published [`GraphState`] plus the writer
/// side of the patch pipeline.
pub struct GraphEntry {
    name: String,
    state: RwLock<Arc<GraphState>>,
    /// The mutable overlay feeding [`Registry::patch`]; the mutex
    /// serializes writers per graph (readers never take it). Lazily seeded
    /// from the published state on first patch.
    patch: Mutex<Option<DeltaGraph>>,
}

impl GraphEntry {
    fn new(name: String, graph: CsrGraph, counters: Arc<CacheAtomics>) -> Self {
        let state = GraphState::new(Arc::new(graph), 0, counters);
        GraphEntry {
            name,
            state: RwLock::new(Arc::new(state)),
            patch: Mutex::new(None),
        }
    }

    /// The currently published generation. Handlers snapshot **once** per
    /// request and use the snapshot's graph and caches throughout, so a
    /// concurrent patch can never tear a response.
    pub fn snapshot(&self) -> Arc<GraphState> {
        Arc::clone(&self.state.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// The registry name of the graph.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The current generation's graph, in its compact CSR form.
    pub fn graph(&self) -> Arc<CsrGraph> {
        Arc::clone(&self.snapshot().graph)
    }

    /// The current generation number.
    pub fn generation(&self) -> u64 {
        self.snapshot().generation
    }

    /// [`GraphState::cached_compare`] on the current generation.
    pub fn cached_compare(&self, key: &str) -> Option<Arc<str>> {
        self.snapshot().cached_compare(key)
    }

    /// [`GraphState::store_compare`] on the current generation.
    pub fn store_compare(&self, key: String, body: Arc<str>) {
        self.snapshot().store_compare(key, body)
    }

    /// [`GraphState::cached_methods`] on the current generation.
    pub fn cached_methods(&self) -> Vec<String> {
        self.snapshot().cached_methods()
    }
}

/// Remove the entry with the smallest LRU stamp from a bounded cache map.
fn evict_least_recently_used<K: Clone + std::hash::Hash + Eq, V>(
    map: &mut HashMap<K, V>,
    stamp: impl Fn(&V) -> u64,
) {
    if let Some(oldest) = map
        .iter()
        .min_by_key(|(_, value)| stamp(value))
        .map(|(key, _)| key.clone())
    {
        map.remove(&oldest);
    }
}

/// What a committed [`Registry::patch`] did, for the PATCH response body.
#[derive(Debug, Clone)]
pub struct PatchOutcome {
    /// The newly published generation number.
    pub generation: u64,
    /// Node count of the new generation.
    pub nodes: usize,
    /// Edge count of the new generation.
    pub edges: usize,
    /// The overlay's report of the batch.
    pub effect: PatchEffect,
    /// Whether the structural delta log was compacted back to a flat CSR
    /// (reweight-only patches update weights in place instead).
    pub compacted: bool,
    /// Cache keys carried over to the new generation by incremental
    /// rescoring, sorted.
    pub rescored_methods: Vec<String>,
}

/// Maximum accepted graph-name length.
const MAX_NAME_LEN: usize = 100;

/// Whether `name` is a legal registry name: 1–100 characters from
/// `[A-Za-z0-9._-]`, not starting with a dot.
pub fn valid_graph_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= MAX_NAME_LEN
        && !name.starts_with('.')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
}

/// The server's set of named graphs and their scored-edge caches.
pub struct Registry {
    graphs: RwLock<BTreeMap<String, Arc<GraphEntry>>>,
    threads: usize,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    counters: Arc<CacheAtomics>,
}

impl Registry {
    /// An empty registry whose scoring passes use `threads` workers
    /// (`0` = automatic, honouring `BACKBONING_THREADS`).
    pub fn new(threads: usize) -> Self {
        Registry {
            graphs: RwLock::new(BTreeMap::new()),
            threads,
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            counters: Arc::new(CacheAtomics::default()),
        }
    }

    /// The configured scoring worker count (`0` = automatic).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Load every edge-list file of `dir` (extensions `tsv`, `csv`, `txt`,
    /// `edges`) as a named graph; the file stem becomes the name. `csv`
    /// files are parsed comma-separated, everything else with `options`.
    /// Returns the loaded names; any unreadable or malformed file fails the
    /// whole load (a server should not come up half-configured).
    pub fn load_dir(&self, dir: &Path, options: &EdgeListOptions) -> Result<Vec<String>, String> {
        let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        let mut paths: Vec<std::path::PathBuf> = entries
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|path| {
                path.extension()
                    .and_then(|ext| ext.to_str())
                    .is_some_and(|ext| matches!(ext, "tsv" | "csv" | "txt" | "edges"))
            })
            .collect();
        paths.sort();
        let mut loaded = Vec::new();
        for path in paths {
            let name = path
                .file_stem()
                .and_then(|stem| stem.to_str())
                .unwrap_or_default()
                .to_string();
            if !valid_graph_name(&name) {
                return Err(format!(
                    "{}: `{name}` is not a valid graph name (use [A-Za-z0-9._-])",
                    path.display()
                ));
            }
            let mut file_options = options.clone();
            if path.extension().and_then(|e| e.to_str()) == Some("csv") {
                file_options.separator = Some(',');
            }
            // Stream straight into the CSR builder — no adjacency-map
            // intermediate, so startup memory is the CSR arrays plus one
            // line buffer even for multi-million-edge files.
            let graph = read_edge_list_csr_file(&path, &file_options).map_err(|e| e.to_string())?;
            self.insert(&name, graph)?;
            loaded.push(name);
        }
        Ok(loaded)
    }

    /// Register `graph` under `name`, replacing any previous graph of that
    /// name (and dropping its cache, patch log and generation counter).
    /// Rejects invalid names.
    pub fn insert(&self, name: &str, graph: CsrGraph) -> Result<Arc<GraphEntry>, String> {
        if !valid_graph_name(name) {
            return Err(format!(
                "invalid graph name `{name}` (1-{MAX_NAME_LEN} characters from [A-Za-z0-9._-], not starting with a dot)"
            ));
        }
        let entry = Arc::new(GraphEntry::new(
            name.to_string(),
            graph,
            Arc::clone(&self.counters),
        ));
        let mut graphs = self.graphs.write().unwrap_or_else(|e| e.into_inner());
        graphs.insert(name.to_string(), Arc::clone(&entry));
        Ok(entry)
    }

    /// Remove the graph registered under `name`. Returns whether it existed.
    pub fn remove(&self, name: &str) -> bool {
        let mut graphs = self.graphs.write().unwrap_or_else(|e| e.into_inner());
        graphs.remove(name).is_some()
    }

    /// Look up a graph by name.
    pub fn get(&self, name: &str) -> Option<Arc<GraphEntry>> {
        let graphs = self.graphs.read().unwrap_or_else(|e| e.into_inner());
        graphs.get(name).cloned()
    }

    /// All registered graphs in name order.
    pub fn list(&self) -> Vec<Arc<GraphEntry>> {
        let graphs = self.graphs.read().unwrap_or_else(|e| e.into_inner());
        graphs.values().cloned().collect()
    }

    /// Number of registered graphs.
    pub fn graph_count(&self) -> usize {
        let graphs = self.graphs.read().unwrap_or_else(|e| e.into_inner());
        graphs.len()
    }

    /// The scored edges of `entry`'s **current** generation under `method`
    /// — a convenience wrapper over [`Registry::scored_state`] for callers
    /// that don't hold a snapshot.
    pub fn scored(
        &self,
        entry: &GraphEntry,
        method: Method,
    ) -> Result<Arc<ScoredEdges>, BackboneError> {
        self.scored_state(&entry.snapshot(), method)
    }

    /// The scored edges of one pinned generation under `method`, from the
    /// state's cache when present, scoring (once, with concurrent callers
    /// blocking on the same pass) when not. At most `MAX_SCORED_METHODS`
    /// score sets are retained per state; a lookup past the bound evicts
    /// the least-recently-used method's slot (whose scores are recomputed —
    /// bit-identically — if it is ever asked for again).
    pub fn scored_state(
        &self,
        state: &GraphState,
        method: Method,
    ) -> Result<Arc<ScoredEdges>, BackboneError> {
        let stamp = state.tick();
        let key = method.cache_key();
        let slot = {
            let mut cache = state.cache.lock().unwrap_or_else(|e| e.into_inner());
            if cache.len() >= MAX_SCORED_METHODS && !cache.contains_key(&key) {
                evict_least_recently_used(&mut cache, |(used, _, _)| *used);
                self.counters
                    .scored_evictions
                    .fetch_add(1, Ordering::Relaxed);
            }
            let (used, _, slot) = cache
                .entry(key)
                .or_insert_with(|| (0, method, Arc::default()));
            *used = stamp;
            Arc::clone(slot)
        };
        let mut computed_here = false;
        let result = slot.get_or_init(|| {
            computed_here = true;
            method
                .score_with_threads(state.graph.as_ref(), self.threads)
                .map(Arc::new)
        });
        if computed_here {
            self.cache_misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
        }
        result.clone()
    }

    /// Apply a batched delta to `entry` and publish the next generation.
    ///
    /// Writers are serialized per graph by the patch mutex; readers keep
    /// serving the previous state until the new one is published (one
    /// `RwLock` write of an `Arc`), so they never block on scoring and
    /// never observe a half-applied batch. Structural batches compact the
    /// overlay back to a flat CSR; reweight-only batches poke the weights
    /// of a cloned CSR (bit-identical to compaction, much cheaper). Every
    /// method cached on the old state whose
    /// [`DeltaStrategy`] is not `Invalidate` is
    /// carried to the new state via exact incremental rescoring, so the
    /// cache stays hot under churn. Validation failures (including
    /// [`GraphError::CapacityExceeded`]) leave the published state and the
    /// overlay untouched.
    pub fn patch(
        &self,
        entry: &GraphEntry,
        batch: &DeltaBatch,
    ) -> Result<PatchOutcome, GraphError> {
        let mut patch_guard = entry.patch.lock().unwrap_or_else(|e| e.into_inner());
        let old_state = entry.snapshot();
        let delta =
            patch_guard.get_or_insert_with(|| DeltaGraph::from_csr(old_state.graph.as_ref()));
        let effect = delta.apply(batch)?;
        let compact_result = if effect.structure_changed {
            delta.to_csr().map(Arc::new)
        } else {
            let updates: Vec<(usize, f64)> = effect
                .changed_edges
                .iter()
                .map(|&id| (id, delta.edge_weight(id).expect("changed edge is live")))
                .collect();
            old_state
                .graph
                .with_reweighted_edges(&updates)
                .map(Arc::new)
        };
        let new_graph = match compact_result {
            Ok(graph) => graph,
            Err(error) => {
                // The overlay committed but the rebuild failed (should be
                // unreachable — apply re-validates capacity): drop the
                // overlay so the next patch re-seeds from the published
                // state instead of diverging from it.
                *patch_guard = None;
                return Err(error);
            }
        };
        if effect.structure_changed {
            self.counters.compactions.fetch_add(1, Ordering::Relaxed);
        }

        let new_state = Arc::new(GraphState::new(
            Arc::clone(&new_graph),
            old_state.generation + 1,
            Arc::clone(&self.counters),
        ));
        // Seed the successor's cache: exact incremental rescore of every
        // carryable method cached on the old generation. HSS / hss-approx /
        // MST invalidate — their next request is a staged full recompute on
        // the new state.
        let mut rescored = Vec::new();
        for (key, method, previous) in old_state.cached_scores() {
            if method.delta_strategy() == DeltaStrategy::Invalidate {
                continue;
            }
            if let Ok(scored) = delta_rescore(
                method,
                new_graph.as_ref(),
                previous.as_ref(),
                &effect,
                self.threads,
            ) {
                new_state.store_scored(key.clone(), method, Arc::new(scored));
                rescored.push(key);
            }
        }
        rescored.sort_unstable();

        *entry.state.write().unwrap_or_else(|e| e.into_inner()) = Arc::clone(&new_state);
        self.counters.patches.fetch_add(1, Ordering::Relaxed);
        self.counters
            .patch_ops
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        let compacted = effect.structure_changed;
        Ok(PatchOutcome {
            generation: new_state.generation,
            nodes: new_graph.node_count(),
            edges: new_graph.edge_count(),
            effect,
            compacted,
            rescored_methods: rescored,
        })
    }

    /// Lifetime cache statistics: `(hits, misses)`. A hit is any scored
    /// lookup answered without running a scoring pass on the calling thread.
    pub fn cache_stats(&self) -> (u64, u64) {
        (
            self.cache_hits.load(Ordering::Relaxed),
            self.cache_misses.load(Ordering::Relaxed),
        )
    }

    /// Every cache counter the registry keeps, in one consistent-enough
    /// snapshot (each counter is read atomically; the set is advisory).
    pub fn cache_counters(&self) -> CacheCounters {
        CacheCounters {
            scored_hits: self.cache_hits.load(Ordering::Relaxed),
            scored_misses: self.cache_misses.load(Ordering::Relaxed),
            scored_evictions: self.counters.scored_evictions.load(Ordering::Relaxed),
            compare_hits: self.counters.compare_hits.load(Ordering::Relaxed),
            compare_misses: self.counters.compare_misses.load(Ordering::Relaxed),
            compare_evictions: self.counters.compare_evictions.load(Ordering::Relaxed),
            patches: self.counters.patches.load(Ordering::Relaxed),
            patch_ops: self.counters.patch_ops.load(Ordering::Relaxed),
            compactions: self.counters.compactions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use backboning_graph::{Direction, WeightedGraph};

    fn sample_graph() -> CsrGraph {
        let graph = WeightedGraph::from_labeled_edges(
            Direction::Undirected,
            vec![("a", "b", 4.0), ("b", "c", 3.0), ("c", "a", 2.0)],
        )
        .unwrap();
        CsrGraph::from_graph(&graph).unwrap()
    }

    #[test]
    fn insert_get_remove_round_trip() {
        let registry = Registry::new(1);
        assert_eq!(registry.graph_count(), 0);
        registry.insert("g1", sample_graph()).unwrap();
        assert_eq!(registry.graph_count(), 1);
        let entry = registry.get("g1").expect("registered graph");
        assert_eq!(entry.name(), "g1");
        assert_eq!(entry.graph().edge_count(), 3);
        assert!(registry.get("g2").is_none());
        assert!(registry.remove("g1"));
        assert!(!registry.remove("g1"));
        assert_eq!(registry.graph_count(), 0);
    }

    #[test]
    fn graph_names_are_validated() {
        let registry = Registry::new(1);
        for bad in [
            "",
            ".hidden",
            "has space",
            "sla/sh",
            "q?x",
            &"x".repeat(101),
        ] {
            assert!(registry.insert(bad, sample_graph()).is_err(), "`{bad}`");
        }
        for good in ["trade", "my-graph_2.v1", "X"] {
            assert!(registry.insert(good, sample_graph()).is_ok(), "`{good}`");
        }
    }

    #[test]
    fn scoring_is_cached_per_method() {
        let registry = Registry::new(1);
        let entry = registry.insert("g", sample_graph()).unwrap();
        assert_eq!(registry.cache_stats(), (0, 0));
        let first = registry.scored(&entry, Method::NoiseCorrected).unwrap();
        assert_eq!(registry.cache_stats(), (0, 1));
        let second = registry.scored(&entry, Method::NoiseCorrected).unwrap();
        assert_eq!(registry.cache_stats(), (1, 1));
        // Same allocation, not merely equal scores.
        assert!(Arc::ptr_eq(&first, &second));
        let _ = registry.scored(&entry, Method::DisparityFilter).unwrap();
        assert_eq!(registry.cache_stats(), (1, 2));
        assert_eq!(entry.cached_methods(), vec!["df", "nc"]);
    }

    #[test]
    fn sampled_hss_configurations_get_distinct_cache_slots() {
        let registry = Registry::new(1);
        let entry = registry.insert("g", sample_graph()).unwrap();
        let first = Method::HssApprox { roots: 2, seed: 1 };
        let second = Method::HssApprox { roots: 2, seed: 2 };
        let a = registry.scored(&entry, first).unwrap();
        let b = registry.scored(&entry, second).unwrap();
        // Different seeds are different scoring passes, never a shared slot.
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(registry.cache_stats(), (0, 2));
        assert_eq!(
            entry.cached_methods(),
            vec!["hss-approx:roots=2:seed=1", "hss-approx:roots=2:seed=2"]
        );
        // Repeating either configuration is a hit on its own slot.
        let again = registry.scored(&entry, first).unwrap();
        assert!(Arc::ptr_eq(&a, &again));
        assert_eq!(registry.cache_stats(), (1, 2));
    }

    #[test]
    fn reinserting_a_name_drops_the_old_cache() {
        let registry = Registry::new(1);
        let entry = registry.insert("g", sample_graph()).unwrap();
        let _ = registry.scored(&entry, Method::NaiveThreshold).unwrap();
        assert_eq!(entry.cached_methods(), vec!["naive"]);
        let replacement = registry.insert("g", sample_graph()).unwrap();
        assert!(replacement.cached_methods().is_empty());
    }

    #[test]
    fn compare_reports_are_cached_and_lru_bounded() {
        let registry = Registry::new(1);
        let entry = registry.insert("g", sample_graph()).unwrap();
        assert!(entry.cached_compare("key").is_none());
        entry.store_compare("key".to_string(), Arc::from("{}"));
        assert_eq!(entry.cached_compare("key").as_deref(), Some("{}"));

        // Filling the map up to the bound keeps everything.
        for index in 0..MAX_COMPARE_REPORTS - 1 {
            entry.store_compare(format!("filler-{index}"), Arc::from("{}"));
        }
        assert!(entry.cached_compare("filler-1").is_some());
        // "key" was just touched above, so the store past the bound evicts
        // the least-recently-used entry — filler-0 — and nothing else.
        assert!(entry.cached_compare("key").is_some());
        entry.store_compare("one-too-many".to_string(), Arc::from("{}"));
        assert!(entry.cached_compare("filler-0").is_none());
        assert!(entry.cached_compare("key").is_some());
        assert!(entry.cached_compare("filler-1").is_some());
        assert!(entry.cached_compare("one-too-many").is_some());

        // Re-inserting the graph drops the report cache with the entry.
        let replacement = registry.insert("g", sample_graph()).unwrap();
        assert!(replacement.cached_compare("key").is_none());
    }

    #[test]
    fn score_cache_evicts_least_recently_used_method() {
        let registry = Registry::new(1);
        let entry = registry.insert("g", sample_graph()).unwrap();
        let methods = [
            Method::NoiseCorrected,
            Method::DisparityFilter,
            Method::NaiveThreshold,
            Method::MaximumSpanningTree,
        ];
        assert_eq!(methods.len(), MAX_SCORED_METHODS);
        let first = registry.scored(&entry, methods[0]).unwrap();
        for &method in &methods[1..] {
            registry.scored(&entry, method).unwrap();
        }
        assert_eq!(entry.cached_methods().len(), MAX_SCORED_METHODS);

        // A fifth method evicts the least-recently-used slot (nc).
        registry
            .scored(&entry, Method::HighSalienceSkeleton)
            .unwrap();
        assert_eq!(entry.cached_methods().len(), MAX_SCORED_METHODS);
        assert!(!entry.cached_methods().iter().any(|key| key == "nc"));

        // Re-scoring the evicted method is a fresh pass with bit-identical
        // results — eviction is lossless.
        let rescored = registry.scored(&entry, methods[0]).unwrap();
        assert!(!Arc::ptr_eq(&first, &rescored), "a fresh scoring pass ran");
        assert_eq!(first.scores(), rescored.scores());
    }

    #[test]
    fn cache_counters_track_evictions_and_compare_traffic() {
        let registry = Registry::new(1);
        let entry = registry.insert("g", sample_graph()).unwrap();
        // Compare cache: one miss, one hit, then one eviction past the bound.
        assert!(entry.cached_compare("k").is_none());
        entry.store_compare("k".to_string(), Arc::from("{}"));
        assert!(entry.cached_compare("k").is_some());
        for index in 0..MAX_COMPARE_REPORTS {
            entry.store_compare(format!("filler-{index}"), Arc::from("{}"));
        }
        let counters = registry.cache_counters();
        assert_eq!(counters.compare_misses, 1);
        assert_eq!(counters.compare_hits, 1);
        assert_eq!(counters.compare_evictions, 1);

        // Scored-cache evictions count too, and mirror cache_stats.
        for method in [
            Method::NoiseCorrected,
            Method::DisparityFilter,
            Method::NaiveThreshold,
            Method::MaximumSpanningTree,
            Method::HighSalienceSkeleton,
        ] {
            registry.scored(&entry, method).unwrap();
        }
        let counters = registry.cache_counters();
        assert_eq!(counters.scored_evictions, 1);
        assert_eq!(counters.scored_misses, 5);
        assert_eq!(counters.scored_hits, 0);
        assert_eq!(registry.cache_stats(), (0, 5));

        // Counters describe the process, not one graph entry: re-inserting
        // the graph drops its caches but never the counts.
        registry.insert("g", sample_graph()).unwrap();
        assert_eq!(registry.cache_counters(), counters);
    }

    #[test]
    fn patch_publishes_a_new_generation_and_seeds_the_cache() {
        let registry = Registry::new(1);
        let entry = registry.insert("g", sample_graph()).unwrap();
        assert_eq!(entry.generation(), 0);
        let nt = registry.scored(&entry, Method::NaiveThreshold).unwrap();
        let _ = registry.scored(&entry, Method::DisparityFilter).unwrap();
        let _ = registry
            .scored(&entry, Method::MaximumSpanningTree)
            .unwrap();

        let old_state = entry.snapshot();
        let batch = DeltaBatch::parse_tsv("reweight a b 9\n").unwrap();
        let outcome = registry.patch(&entry, &batch).unwrap();
        assert_eq!(outcome.generation, 1);
        assert!(!outcome.compacted);
        assert_eq!(outcome.effect.reweighted, 1);
        // Local methods were carried over; MST invalidated.
        assert_eq!(
            outcome.rescored_methods,
            vec!["df".to_string(), "naive".to_string()]
        );
        assert_eq!(entry.generation(), 1);
        assert_eq!(entry.cached_methods(), vec!["df", "naive"]);

        // The old snapshot is frozen — readers holding it never tear.
        assert_eq!(old_state.generation(), 0);
        assert_eq!(old_state.graph().edge_count(), 3);
        assert!(Arc::ptr_eq(
            &nt,
            &registry
                .scored_state(&old_state, Method::NaiveThreshold)
                .unwrap()
        ));

        // The seeded cache answers without a scoring pass and matches a
        // from-scratch score of the patched graph bit-for-bit.
        let (hits_before, misses_before) = registry.cache_stats();
        let seeded = registry.scored(&entry, Method::NaiveThreshold).unwrap();
        assert_eq!(
            registry.cache_stats(),
            (hits_before + 1, misses_before),
            "seeded slot must be a cache hit"
        );
        let fresh = Method::NaiveThreshold
            .score_with_threads(entry.graph().as_ref(), 1)
            .unwrap();
        assert_eq!(seeded.as_ref(), &fresh);
    }

    #[test]
    fn structural_patches_compact_and_invalidate_hss() {
        let registry = Registry::new(1);
        let entry = registry.insert("g", sample_graph()).unwrap();
        let _ = registry
            .scored(&entry, Method::HighSalienceSkeleton)
            .unwrap();
        let batch = DeltaBatch::parse_tsv("add a d 5\nremove b c\n").unwrap();
        let outcome = registry.patch(&entry, &batch).unwrap();
        assert!(outcome.compacted);
        assert_eq!(outcome.generation, 1);
        assert_eq!(outcome.nodes, 4);
        assert_eq!(outcome.edges, 3);
        assert!(outcome.rescored_methods.is_empty());
        assert!(entry.cached_methods().is_empty());
        let counters = registry.cache_counters();
        assert_eq!(counters.patches, 1);
        assert_eq!(counters.patch_ops, 2);
        assert_eq!(counters.compactions, 1);
    }

    #[test]
    fn failed_patches_change_nothing() {
        let registry = Registry::new(1);
        let entry = registry.insert("g", sample_graph()).unwrap();
        let batch = DeltaBatch::parse_tsv("add a b 1\n").unwrap(); // already exists
        let err = registry.patch(&entry, &batch).unwrap_err().to_string();
        assert!(err.contains("line 1"), "{err}");
        assert_eq!(entry.generation(), 0);
        assert_eq!(registry.cache_counters().patches, 0);
        // A valid follow-up still works against the unchanged state.
        let ok = DeltaBatch::parse_tsv("reweight a b 1\n").unwrap();
        assert_eq!(registry.patch(&entry, &ok).unwrap().generation, 1);
    }

    #[test]
    fn load_dir_names_graphs_by_file_stem() {
        let dir = std::env::temp_dir().join("backboning_server_registry_test");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("tiny.tsv"), "a b 2\nb c 1\n").unwrap();
        std::fs::write(dir.join("comma.csv"), "a,b,2\n").unwrap();
        std::fs::write(dir.join("ignored.md"), "not an edge list").unwrap();

        let registry = Registry::new(1);
        let loaded = registry
            .load_dir(&dir, &EdgeListOptions::default())
            .unwrap();
        assert_eq!(loaded, vec!["comma".to_string(), "tiny".to_string()]);
        assert_eq!(registry.get("tiny").unwrap().graph().edge_count(), 2);
        assert_eq!(registry.get("comma").unwrap().graph().edge_count(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_dir_fails_on_malformed_files() {
        let dir = std::env::temp_dir().join("backboning_server_registry_bad");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("broken.tsv"), "a b heavy\n").unwrap();
        let registry = Registry::new(1);
        let err = registry
            .load_dir(&dir, &EdgeListOptions::default())
            .unwrap_err();
        assert!(err.contains("broken.tsv"), "`{err}`");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
