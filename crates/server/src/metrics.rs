//! Server-side request metrics and the `/metrics` rendering.
//!
//! All per-request series live in a [`backboning_obs::MetricsRegistry`]
//! owned by [`ServerMetrics`]; recording is lock-free after a series' first
//! registration. Routes are labelled by **pattern** (`/graphs/{name}/…`),
//! never by the concrete graph name, so label cardinality stays bounded no
//! matter what clients request.
//!
//! Exposed series:
//!
//! | name | labels | kind |
//! |---|---|---|
//! | `http_requests_total` | `route`, `method`, `status` | counter |
//! | `http_request_duration_seconds` | `route`, `method` | latency histogram |
//! | `http_requests_in_flight` | — | gauge |
//! | `http_request_bytes_total` | — | counter (request heads + bodies) |
//! | `http_response_bytes_total` | — | counter (response heads + bodies) |
//!
//! The `/metrics` endpoint additionally appends scrape-time samples owned
//! elsewhere: the graph count, the resolved worker-thread count, and the
//! registry's scored-edge / compare-report cache counters.
//!
//! Requests are recorded **before** their response bytes are written, so a
//! client that has read its response can rely on a subsequent scrape already
//! counting that request — the load-test harness cross-checks its client-side
//! counts against `/metrics` on exactly this guarantee.

use std::sync::Arc;
use std::time::Duration;

use backboning_obs::{Counter, Gauge, MetricsRegistry};

use crate::http::{Request, Response};
use crate::registry::Registry;

/// Route label used for requests that never parsed into a [`Request`].
pub const ROUTE_INVALID: &str = "invalid";

/// The server's request-metric recorder.
pub struct ServerMetrics {
    registry: MetricsRegistry,
    in_flight: Arc<Gauge>,
    bytes_in: Arc<Counter>,
    bytes_out: Arc<Counter>,
}

impl Default for ServerMetrics {
    fn default() -> Self {
        ServerMetrics::new()
    }
}

impl ServerMetrics {
    /// A fresh recorder with the label-free series pre-registered.
    pub fn new() -> Self {
        let registry = MetricsRegistry::new();
        let in_flight = registry.gauge("http_requests_in_flight", &[]);
        let bytes_in = registry.counter("http_request_bytes_total", &[]);
        let bytes_out = registry.counter("http_response_bytes_total", &[]);
        ServerMetrics {
            registry,
            in_flight,
            bytes_in,
            bytes_out,
        }
    }

    /// The gauge of requests currently being handled.
    pub fn in_flight(&self) -> &Arc<Gauge> {
        &self.in_flight
    }

    /// Records one finished request. Must be called before the response is
    /// written to the socket (see the module docs for why).
    pub fn record_request(
        &self,
        route: &str,
        method: &str,
        status: u16,
        elapsed: Duration,
        bytes_in: u64,
        bytes_out: u64,
    ) {
        let status = status.to_string();
        self.registry
            .counter(
                "http_requests_total",
                &[("route", route), ("method", method), ("status", &status)],
            )
            .inc();
        self.registry
            .histogram(
                "http_request_duration_seconds",
                &[("route", route), ("method", method)],
            )
            .record(elapsed);
        self.bytes_in.add(bytes_in);
        self.bytes_out.add(bytes_out);
    }

    /// Renders the `/metrics` body: every request series plus scrape-time
    /// samples for the graph count, worker pool size, and cache counters.
    pub fn render(&self, registry: &Registry, workers: usize, as_json: bool) -> String {
        let mut snapshot = self.registry.snapshot();
        snapshot.push_gauge("graphs_registered", &[], registry.graph_count() as i64);
        snapshot.push_gauge("worker_threads", &[], workers as i64);
        let counters = registry.cache_counters();
        snapshot.push_counter("score_cache_hits_total", &[], counters.scored_hits);
        snapshot.push_counter("score_cache_misses_total", &[], counters.scored_misses);
        snapshot.push_counter(
            "score_cache_evictions_total",
            &[],
            counters.scored_evictions,
        );
        snapshot.push_counter("compare_cache_hits_total", &[], counters.compare_hits);
        snapshot.push_counter("compare_cache_misses_total", &[], counters.compare_misses);
        snapshot.push_counter(
            "compare_cache_evictions_total",
            &[],
            counters.compare_evictions,
        );
        snapshot.push_counter("graph_patches_total", &[], counters.patches);
        snapshot.push_counter("graph_patch_ops_total", &[], counters.patch_ops);
        snapshot.push_counter("graph_compactions_total", &[], counters.compactions);
        if as_json {
            snapshot.to_json()
        } else {
            snapshot.to_prometheus()
        }
    }
}

/// The bounded-cardinality route label of a parsed request: the matching
/// route pattern, or `"other"` for unrouted paths.
pub fn route_pattern(request: &Request) -> &'static str {
    match request.path_segments().as_slice() {
        ["health"] => "/health",
        ["metrics"] => "/metrics",
        ["graphs"] => "/graphs",
        ["graphs", _] => "/graphs/{name}",
        ["graphs", _, "backbone"] => "/graphs/{name}/backbone",
        ["graphs", _, "compare"] => "/graphs/{name}/compare",
        ["shutdown"] => "/shutdown",
        _ => "other",
    }
}

/// The bounded-cardinality method label: known verbs pass through, anything
/// else collapses to `OTHER` so clients cannot mint label values.
pub fn method_label(method: &str) -> &'static str {
    match method {
        "GET" => "GET",
        "POST" => "POST",
        "PATCH" => "PATCH",
        "DELETE" => "DELETE",
        "PUT" => "PUT",
        "HEAD" => "HEAD",
        _ => "OTHER",
    }
}

/// Dispatches the `/metrics` request itself: Prometheus text by default,
/// JSON with `?format=json`.
pub fn metrics_response(
    metrics: &ServerMetrics,
    registry: &Registry,
    workers: usize,
    request: &Request,
) -> Response {
    match request.query_param("format") {
        None | Some("prometheus") | Some("text") => {
            Response::prometheus(metrics.render(registry, workers, false))
        }
        Some("json") => Response::json(200, metrics.render(registry, workers, true)),
        Some(other) => Response::error(
            400,
            &format!("unknown format `{other}` (expected prometheus or json)"),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::read_request;

    fn request(raw: &str) -> Request {
        read_request(&mut raw.as_bytes()).unwrap().unwrap()
    }

    #[test]
    fn route_patterns_never_leak_graph_names() {
        for (target, expected) in [
            ("/health", "/health"),
            ("/metrics", "/metrics"),
            ("/graphs", "/graphs"),
            ("/graphs/trade", "/graphs/{name}"),
            (
                "/graphs/trade/backbone?method=nc",
                "/graphs/{name}/backbone",
            ),
            ("/graphs/secret-name/compare", "/graphs/{name}/compare"),
            ("/shutdown", "/shutdown"),
            ("/not/a/route", "other"),
        ] {
            let req = request(&format!("GET {target} HTTP/1.1\r\n\r\n"));
            assert_eq!(route_pattern(&req), expected, "{target}");
        }
    }

    #[test]
    fn method_labels_are_bounded() {
        assert_eq!(method_label("GET"), "GET");
        assert_eq!(method_label("DELETE"), "DELETE");
        assert_eq!(method_label("BREW"), "OTHER");
    }

    #[test]
    fn recorded_requests_show_up_in_both_renderings() {
        let metrics = ServerMetrics::new();
        metrics.record_request("/health", "GET", 200, Duration::from_micros(250), 100, 300);
        metrics.record_request("/health", "GET", 200, Duration::from_micros(400), 100, 300);
        let registry = Registry::new(1);

        let text = metrics.render(&registry, 4, false);
        assert!(text
            .contains("http_requests_total{method=\"GET\",route=\"/health\",status=\"200\"} 2\n"));
        assert!(text.contains("# TYPE http_request_duration_seconds summary\n"));
        assert!(text
            .contains("http_request_duration_seconds_count{method=\"GET\",route=\"/health\"} 2\n"));
        assert!(text.contains("http_request_bytes_total 200\n"));
        assert!(text.contains("http_response_bytes_total 600\n"));
        assert!(text.contains("worker_threads 4\n"));
        assert!(text.contains("graphs_registered 0\n"));
        assert!(text.contains("score_cache_hits_total 0\n"));
        assert!(text.contains("compare_cache_evictions_total 0\n"));

        let json = metrics.render(&registry, 4, true);
        assert!(json.contains("\"name\": \"http_requests_total\""));
        assert!(json.contains("\"count\": 2"));
        assert!(json.ends_with("}\n"));
    }
}
