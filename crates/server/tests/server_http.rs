//! End-to-end integration tests of the backboning HTTP server: each test
//! binds a real server on an ephemeral port and talks to it over plain TCP
//! sockets — no in-process shortcuts. Covered: the 404/400 error paths,
//! upload-then-query, all 7 methods × 4 threshold policies, the
//! cache-hit-equals-cold byte-identity contract (sequentially, under
//! concurrent load, and across worker counts), and the `POST /shutdown`
//! control path.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;

use backboning_graph::io::{read_edge_list_csr_file, EdgeListOptions};
use backboning_graph::{CsrGraph, Direction};
use backboning_server::{Server, ServerConfig};

/// The bundled example network from `docs/GUIDE.md` (8 nodes, 28 edges),
/// streamed into the compact CSR form the registry stores.
fn trade_graph() -> CsrGraph {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../docs/examples/trade.tsv");
    let options = EdgeListOptions::with_direction(Direction::Undirected);
    read_edge_list_csr_file(&path, &options).expect("bundled example edge list parses")
}

/// Bind a fresh server on an ephemeral port with the trade graph loaded.
fn trade_server(threads: usize) -> Server {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads,
        ..ServerConfig::default()
    })
    .expect("bind an ephemeral port");
    server
        .registry()
        .insert("trade", trade_graph())
        .expect("register the fixture graph");
    server
}

/// One HTTP exchange over a fresh TCP connection; returns (status, body).
fn request(server: &Server, request_text: &str) -> (u16, Vec<u8>) {
    let mut stream = TcpStream::connect(server.addr()).expect("connect to the server");
    stream
        .write_all(request_text.as_bytes())
        .expect("send the request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read the response");
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response has a header/body separator");
    let head = std::str::from_utf8(&raw[..head_end]).expect("headers are UTF-8");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .expect("status line has a code")
        .parse()
        .expect("status code parses");
    let content_length: usize = head
        .lines()
        .find_map(|line| line.strip_prefix("Content-Length: "))
        .expect("response declares a length")
        .parse()
        .expect("length parses");
    let body = raw[head_end + 4..].to_vec();
    assert_eq!(body.len(), content_length, "body length matches the header");
    (status, body)
}

fn get(server: &Server, path_and_query: &str) -> (u16, Vec<u8>) {
    request(
        server,
        &format!("GET {path_and_query} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"),
    )
}

fn post(server: &Server, path_and_query: &str, body: &str) -> (u16, Vec<u8>) {
    request(
        server,
        &format!(
            "POST {path_and_query} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        ),
    )
}

/// A PATCH exchange; `content_type: None` sends the TSV default.
fn patch(
    server: &Server,
    path_and_query: &str,
    body: &str,
    content_type: Option<&str>,
) -> (u16, Vec<u8>) {
    let type_header = content_type
        .map(|value| format!("Content-Type: {value}\r\n"))
        .unwrap_or_default();
    request(
        server,
        &format!(
            "PATCH {path_and_query} HTTP/1.1\r\nHost: test\r\n{type_header}Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn text(body: &[u8]) -> String {
    String::from_utf8(body.to_vec()).expect("body is UTF-8")
}

#[test]
fn health_and_graph_listing() {
    let server = trade_server(1);
    let (status, body) = get(&server, "/health");
    assert_eq!(status, 200);
    let health = text(&body);
    assert!(health.contains("\"status\": \"ok\""), "{health}");
    assert!(health.contains("\"graphs\": 1"), "{health}");
    assert!(health.contains("\"cache\""), "{health}");

    let (status, body) = get(&server, "/graphs");
    assert_eq!(status, 200);
    let listing = text(&body);
    assert!(listing.contains("\"name\": \"trade\""), "{listing}");
    assert!(listing.contains("\"nodes\": 8"), "{listing}");
    assert!(listing.contains("\"edges\": 28"), "{listing}");

    let (status, body) = get(&server, "/graphs/trade");
    assert_eq!(status, 200);
    assert!(text(&body).contains("\"direction\": \"undirected\""));
    server.shutdown();
}

#[test]
fn all_methods_and_policies_answer() {
    let server = trade_server(1);
    for method in ["nc", "ncb", "df", "hss", "ds", "mst", "naive"] {
        for policy in ["threshold=0.0", "top_k=10", "top_share=0.3", "coverage=0.9"] {
            let (status, body) = get(
                &server,
                &format!("/graphs/trade/backbone?method={method}&{policy}"),
            );
            let body = text(&body);
            assert_eq!(status, 200, "{method} {policy}: {body}");
            assert!(
                body.starts_with("# source\ttarget\tweight"),
                "{method} {policy}: unexpected body `{}`",
                body.lines().next().unwrap_or_default()
            );
            assert!(
                body.lines().count() > 1,
                "{method} {policy}: empty backbone"
            );
        }
    }
    // 7 methods scored once each; 7 × 4 = 28 queries → 21 cache hits.
    let (hits, misses) = server.registry().cache_stats();
    assert_eq!(misses, 7);
    assert_eq!(hits, 21);
    server.shutdown();
}

#[test]
fn output_kinds_and_formats() {
    let server = trade_server(1);
    // Scores table: same shape as the CLI's `-o scores`.
    let (status, body) = get(
        &server,
        "/graphs/trade/backbone?method=nc&top_k=5&output=scores",
    );
    assert_eq!(status, 200);
    let table = text(&body);
    assert!(table.starts_with("# source\ttarget\tweight\tscore\traw_score\tstd_dev\tp_value\tkept"));
    assert_eq!(table.lines().count(), 29);

    // Summary: JSON, stable (no wall time), wrapped with the graph name.
    let (status, body) = get(
        &server,
        "/graphs/trade/backbone?method=nc&top_share=0.3&output=summary",
    );
    assert_eq!(status, 200);
    let summary = text(&body);
    assert!(summary.contains("\"graph\": \"trade\""), "{summary}");
    assert!(summary.contains("\"method\": \"nc\""), "{summary}");
    assert!(summary.contains("\"kind\": \"top_share\""), "{summary}");
    assert!(!summary.contains("wall_ms"), "{summary}");

    // JSON backbone via format=.
    let (status, body) = get(
        &server,
        "/graphs/trade/backbone?method=nc&top_k=3&format=json",
    );
    assert_eq!(status, 200);
    let json = text(&body);
    assert!(json.contains("\"edges_kept\": 3"), "{json}");
    assert!(json.contains("\"source\":"), "{json}");

    // JSON scores via the Accept header.
    let (status, body) = request(
        &server,
        "GET /graphs/trade/backbone?method=df&top_k=3&output=scores HTTP/1.1\r\nHost: t\r\nAccept: application/json\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status, 200);
    let json = text(&body);
    assert!(json.contains("\"scores\": ["), "{json}");
    assert!(json.contains("\"kept\": true"), "{json}");
    server.shutdown();
}

#[test]
fn upload_then_query() {
    let server = trade_server(1);
    let edge_list = "a b 5\nb c 4\nc d 1\nd a 3\n";
    let (status, body) = post(&server, "/graphs/uploaded?direction=undirected", edge_list);
    assert_eq!(status, 201, "{}", text(&body));
    let info = text(&body);
    assert!(info.contains("\"name\": \"uploaded\""), "{info}");
    assert!(info.contains("\"nodes\": 4"), "{info}");
    assert!(info.contains("\"edges\": 4"), "{info}");

    let (status, body) = get(&server, "/graphs/uploaded/backbone?method=naive&top_k=2");
    assert_eq!(status, 200);
    let backbone = text(&body);
    assert!(backbone.contains("a\tb\t5"), "{backbone}");
    assert!(backbone.contains("b\tc\t4"), "{backbone}");
    assert!(!backbone.contains("c\td"), "{backbone}");

    // Uploading under the same name replaces the graph (and its cache).
    let (status, _) = post(&server, "/graphs/uploaded?direction=undirected", "x y 1\n");
    assert_eq!(status, 201);
    let (status, body) = get(&server, "/graphs/uploaded");
    assert_eq!(status, 200);
    assert!(text(&body).contains("\"edges\": 1"));

    // DELETE unregisters.
    let (status, _) = request(
        &server,
        "DELETE /graphs/uploaded HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status, 200);
    let (status, _) = get(&server, "/graphs/uploaded");
    assert_eq!(status, 404);
    server.shutdown();
}

#[test]
fn not_found_and_bad_request_paths() {
    let server = trade_server(1);
    for (path, expected) in [
        ("/nope", 404),
        ("/graphs/absent", 404),
        ("/graphs/absent/backbone?method=nc&top_k=3", 404),
        ("/graphs/trade/backbone?method=wat&top_k=3", 400),
        ("/graphs/trade/backbone?top_k=3", 400),
        ("/graphs/trade/backbone?method=nc", 400),
        (
            "/graphs/trade/backbone?method=nc&top_k=3&top_share=0.5",
            400,
        ),
        ("/graphs/trade/backbone?method=nc&top_share=1.5", 400),
        ("/graphs/trade/backbone?method=nc&top_k=x", 400),
        ("/graphs/trade/backbone?method=nc&top_k=3&output=wat", 400),
        ("/graphs/trade/backbone?method=nc&top_k=3&format=xml", 400),
    ] {
        let (status, body) = get(&server, path);
        assert_eq!(status, expected, "{path}: {}", text(&body));
        assert!(text(&body).contains("\"error\":"), "{path}");
    }

    // Wrong verbs → 405.
    let (status, _) = post(&server, "/health", "");
    assert_eq!(status, 405);
    let (status, _) = get(&server, "/shutdown");
    assert_eq!(status, 405);

    // Malformed upload bodies → 400 naming the upload and the line.
    let (status, body) = post(&server, "/graphs/broken", "a b heavy\n");
    assert_eq!(status, 400);
    let err = text(&body);
    assert!(err.contains("upload broken"), "{err}");
    assert!(err.contains("line 1"), "{err}");

    // Invalid graph names are rejected before parsing.
    let (status, _) = post(&server, "/graphs/..", "a b 1\n");
    assert_eq!(status, 400);

    // A garbage request line → 400 without killing the worker.
    let (status, _) = request(&server, "NONSENSE\r\n\r\n");
    assert_eq!(status, 400);
    let (status, _) = get(&server, "/health");
    assert_eq!(status, 200);
    server.shutdown();
}

/// The tentpole contract: a cache-hit response is byte-identical to the
/// cold response, for every output kind.
#[test]
fn cached_responses_are_byte_identical_to_cold() {
    let server = trade_server(1);
    for query in [
        "/graphs/trade/backbone?method=nc&top_share=0.3",
        "/graphs/trade/backbone?method=nc&top_share=0.3&output=scores",
        "/graphs/trade/backbone?method=nc&top_share=0.3&output=summary",
        "/graphs/trade/backbone?method=hss&coverage=0.9&format=json",
    ] {
        let (status, cold) = get(&server, query);
        assert_eq!(status, 200, "{query}");
        for _ in 0..3 {
            let (status, warm) = get(&server, query);
            assert_eq!(status, 200, "{query}");
            assert_eq!(warm, cold, "{query}: cached bytes differ from cold");
        }
    }
    server.shutdown();
}

/// The scored-edge cache is LRU-bounded (4 methods per graph): sweeping
/// more methods than the bound evicts the oldest slot, and re-querying the
/// evicted method re-scores to byte-identical bytes — eviction is lossless.
#[test]
fn evicted_scores_recompute_byte_identically() {
    let server = trade_server(1);
    let query = "/graphs/trade/backbone?method=nc&top_share=0.3&output=scores";
    let (status, cold) = get(&server, query);
    assert_eq!(status, 200);

    // Score four other methods: nc is now the least recently used of five
    // candidates and must have been evicted.
    for method in ["df", "hss", "mst", "naive"] {
        let (status, _) = get(
            &server,
            &format!("/graphs/trade/backbone?method={method}&top_k=5"),
        );
        assert_eq!(status, 200, "{method}");
    }
    let entry = server.registry().get("trade").expect("registered graph");
    assert!(
        !entry.cached_methods().iter().any(|key| key == "nc"),
        "nc evicted after sweeping past the cache bound, got {:?}",
        entry.cached_methods()
    );

    // The re-score pays a cache miss but serves the same bytes.
    let (_, misses_before) = server.registry().cache_stats();
    let (status, warm) = get(&server, query);
    assert_eq!(status, 200);
    assert_eq!(warm, cold, "re-scored response differs from the cold bytes");
    let (_, misses_after) = server.registry().cache_stats();
    assert_eq!(
        misses_after,
        misses_before + 1,
        "eviction forced a re-score"
    );
    server.shutdown();
}

/// Worker-count invariance over HTTP: servers running the scoring engine at
/// 1 thread and at 4 threads serve byte-identical responses — the
/// `BACKBONING_THREADS` contract of the parallel engine, end to end.
#[test]
fn responses_are_identical_across_worker_counts() {
    let single = trade_server(1);
    let multi = trade_server(4);
    // Summaries are excluded here: they report the *configured* thread
    // count, which legitimately differs between the two servers. Backbones
    // and score tables carry only scoring results, which must not.
    for query in [
        "/graphs/trade/backbone?method=nc&top_share=0.3",
        "/graphs/trade/backbone?method=hss&top_k=10",
        "/graphs/trade/backbone?method=df&threshold=0.6&output=scores",
        "/graphs/trade/backbone?method=ds&coverage=0.9&output=scores",
    ] {
        let (_, at_one) = get(&single, query);
        let (_, at_four) = get(&multi, query);
        assert_eq!(at_one, at_four, "{query}: thread count changed the bytes");
    }
    single.shutdown();
    multi.shutdown();
}

/// Concurrent stress: many client threads hammer the same and different
/// `(method, policy)` queries; every response must equal the cold bytes.
#[test]
fn concurrent_requests_serve_identical_bytes() {
    let server = trade_server(2);
    let queries = [
        "/graphs/trade/backbone?method=nc&top_share=0.3",
        "/graphs/trade/backbone?method=nc&top_k=10&output=scores",
        "/graphs/trade/backbone?method=df&top_share=0.3",
        "/graphs/trade/backbone?method=hss&coverage=0.9&output=summary",
    ];
    // Cold reference bytes, gathered sequentially first.
    let cold: Vec<Vec<u8>> = queries
        .iter()
        .map(|query| {
            let (status, body) = get(&server, query);
            assert_eq!(status, 200, "{query}");
            body
        })
        .collect();

    std::thread::scope(|scope| {
        for worker in 0..8 {
            let server = &server;
            let queries = &queries;
            let cold = &cold;
            scope.spawn(move || {
                for round in 0..5 {
                    let index = (worker + round) % queries.len();
                    let (status, body) = get(server, queries[index]);
                    assert_eq!(status, 200, "{}", queries[index]);
                    assert_eq!(
                        body, cold[index],
                        "{}: concurrent response differs from cold",
                        queries[index]
                    );
                }
            });
        }
    });

    let (hits, misses) = server.registry().cache_stats();
    assert_eq!(misses, 3, "nc, df, hss each scored exactly once");
    assert_eq!(hits + misses, 44, "4 cold + 40 concurrent lookups");
    server.shutdown();
}

/// The compare route: stable JSON that is byte-identical across calls
/// (cold and cache-hit), equal to the in-process `Comparison` engine on the
/// same graph, invariant across worker counts, and answered from the
/// scored-edge cache.
#[test]
fn compare_route_serves_stable_cache_backed_json() {
    let server = trade_server(1);
    let query = "/graphs/trade/compare?methods=nc,df,hss&top_share=0.1";
    let (status, cold) = get(&server, query);
    assert_eq!(status, 200, "{}", text(&cold));
    let body = text(&cold);
    assert!(body.contains("\"matched_edges\": 3"), "{body}");
    assert!(body.contains("\"noise_stability\""), "{body}");
    assert!(body.contains("\"jaccard\""), "{body}");

    // The default parameters are exactly `?methods=nc,df,hss&top_share=0.1`
    // (plus the default noise Monte Carlo), so the bare route answers the
    // same bytes.
    let (status, bare) = get(&server, "/graphs/trade/compare");
    assert_eq!(status, 200);
    assert_eq!(bare, cold);

    // Cache hits are byte-identical to the cold response.
    for _ in 0..2 {
        let (status, warm) = get(&server, query);
        assert_eq!(status, 200);
        assert_eq!(warm, cold, "cached compare differs from cold");
    }

    // The cold request scored nc, df and hss exactly once; every follow-up
    // (bare default and both warm repeats) was answered from the per-graph
    // comparison report cache without touching the scored-edge cache at
    // all — no re-scoring, no noise Monte Carlo.
    let (hits, misses) = server.registry().cache_stats();
    assert_eq!(misses, 3, "nc, df, hss each scored once");
    assert_eq!(hits, 0, "follow-ups served from the report cache");

    // The served bytes are exactly the in-process engine's stable report
    // (+ \n) — the timing-free core of what `backbone compare -o json`
    // renders.
    let report = backboning_eval::Comparison::new(backboning_eval::ComparisonConfig::default())
        .expect("default config is valid")
        .run(&trade_graph())
        .expect("comparison runs");
    assert_eq!(text(&cold), format!("{}\n", report.to_json_stable()));
    assert!(
        !text(&cold).contains("score_wall_ms"),
        "served compare bodies carry no wall times"
    );

    // Worker-count invariance of the noise Monte Carlo, end to end.
    let multi = trade_server(4);
    let (_, at_four) = get(&multi, query);
    assert_eq!(at_four, cold, "thread count changed the compare bytes");

    // Non-default parameters change the report but stay deterministic.
    let custom = "/graphs/trade/compare?methods=all&top_share=0.3&noise=0.2&resamples=4&seed=7";
    let (status, first) = get(&server, custom);
    assert_eq!(status, 200, "{}", text(&first));
    assert!(text(&first).contains("\"method\": \"mst\""));
    let (_, second) = get(&server, custom);
    assert_eq!(first, second);

    server.shutdown();
    multi.shutdown();
}

/// The sampled hss-approx estimator over HTTP: `hss_roots`/`hss_seed` are
/// part of the cache identity, responses are deterministic for a fixed
/// `(roots, seed)`, and the parameters are rejected alongside exact methods
/// — on both the backbone and the compare route.
#[test]
fn hss_approx_route_keys_its_cache_by_sampling_parameters() {
    let server = trade_server(1);
    let query = "/graphs/trade/backbone?method=hss-approx&hss_roots=4&hss_seed=7&top_k=5";
    let (status, cold) = get(&server, query);
    assert_eq!(status, 200, "{}", text(&cold));
    let (status, warm) = get(&server, query);
    assert_eq!(status, 200);
    assert_eq!(warm, cold, "fixed (roots, seed) is deterministic");

    // A different seed is a different scoring pass with its own cache slot.
    let (status, body) = get(
        &server,
        "/graphs/trade/backbone?method=hss-approx&hss_roots=4&hss_seed=8&top_k=5",
    );
    assert_eq!(status, 200, "{}", text(&body));
    let (_, misses) = server.registry().cache_stats();
    assert_eq!(misses, 2, "each (roots, seed) scored exactly once");
    let (status, info) = get(&server, "/graphs/trade");
    assert_eq!(status, 200);
    let info = text(&info);
    assert!(info.contains("hss-approx:roots=4:seed=7"), "{info}");
    assert!(info.contains("hss-approx:roots=4:seed=8"), "{info}");

    // Omitted parameters fall back to the method's defaults.
    let (status, _) = get(&server, "/graphs/trade/backbone?method=hss-approx&top_k=5");
    assert_eq!(status, 200);

    // Sampling parameters alongside an exact method — or unparsable ones —
    // are a 400, on both routes.
    for bad in [
        "/graphs/trade/backbone?method=nc&hss_roots=4&top_k=5",
        "/graphs/trade/backbone?method=hss&hss_seed=7&top_k=5",
        "/graphs/trade/backbone?method=hss-approx&hss_roots=x&top_k=5",
        "/graphs/trade/backbone?method=hss-approx&hss_roots=0&top_k=5",
        "/graphs/trade/compare?methods=nc,df&hss_roots=4",
    ] {
        let (status, body) = get(&server, bad);
        assert_eq!(status, 400, "{bad}: {}", text(&body));
        assert!(text(&body).contains("\"error\":"), "{bad}");
    }

    // The compare route accepts the parameters when hss-approx is in the
    // method list and keys its report cache by them.
    let first_query =
        "/graphs/trade/compare?methods=nc,hss-approx&hss_roots=4&hss_seed=7&resamples=0";
    let (status, first) = get(&server, first_query);
    assert_eq!(status, 200, "{}", text(&first));
    assert!(text(&first).contains("\"method\": \"hss-approx\""));
    let (status, _) = get(
        &server,
        "/graphs/trade/compare?methods=nc,hss-approx&hss_roots=4&hss_seed=8&resamples=0",
    );
    assert_eq!(status, 200);
    let (_, repeat) = get(&server, first_query);
    assert_eq!(repeat, first, "report cache keyed by sampling parameters");
    server.shutdown();
}

/// Compare-route error paths: missing graphs 404, bad parameters 400.
#[test]
fn compare_route_rejects_bad_requests() {
    let server = trade_server(1);
    for (path, expected) in [
        ("/graphs/absent/compare", 404),
        ("/graphs/trade/compare?methods=wat", 400),
        ("/graphs/trade/compare?methods=nc,nc", 400),
        ("/graphs/trade/compare?methods=", 400),
        ("/graphs/trade/compare?top_share=1.5", 400),
        ("/graphs/trade/compare?top_share=x", 400),
        ("/graphs/trade/compare?noise=1.0", 400),
        ("/graphs/trade/compare?resamples=x", 400),
        ("/graphs/trade/compare?seed=-1", 400),
    ] {
        let (status, body) = get(&server, path);
        assert_eq!(status, expected, "{path}: {}", text(&body));
        assert!(text(&body).contains("\"error\":"), "{path}");
    }
    // Wrong verb → 405.
    let (status, _) = post(&server, "/graphs/trade/compare", "");
    assert_eq!(status, 405);
    server.shutdown();
}

/// One raw HTTP exchange returning the response head (status line +
/// headers) for header-level assertions.
fn response_head(server: &Server, path: &str) -> String {
    let mut stream = TcpStream::connect(server.addr()).expect("connect to the server");
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .expect("send the request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read the response");
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response has a header/body separator");
    String::from_utf8(raw[..head_end].to_vec()).expect("headers are UTF-8")
}

/// `/metrics` serves Prometheus text exposition by default and JSON on
/// request, with exact per-route request counts: every answered request is
/// recorded *before* its response is written, so a scrape that follows a
/// completed request always counts it.
#[test]
fn metrics_route_counts_requests_exactly() {
    let server = trade_server(1);
    let (status, _) = get(&server, "/health");
    assert_eq!(status, 200);
    for _ in 0..3 {
        let (status, _) = get(
            &server,
            "/graphs/trade/backbone?method=nc&top_share=0.3&output=summary",
        );
        assert_eq!(status, 200);
    }
    let (status, _) = get(&server, "/graphs/trade/backbone?method=wat&top_k=3");
    assert_eq!(status, 400);

    let (status, body) = get(&server, "/metrics");
    assert_eq!(status, 200);
    let metrics = text(&body);
    assert!(
        metrics.contains("# TYPE http_requests_total counter\n"),
        "{metrics}"
    );
    assert!(
        metrics
            .contains("http_requests_total{method=\"GET\",route=\"/health\",status=\"200\"} 1\n"),
        "{metrics}"
    );
    // Routes are labelled by pattern — the graph name never appears.
    assert!(
        metrics.contains(
            "http_requests_total{method=\"GET\",route=\"/graphs/{name}/backbone\",status=\"200\"} 3\n"
        ),
        "{metrics}"
    );
    assert!(
        metrics.contains(
            "http_requests_total{method=\"GET\",route=\"/graphs/{name}/backbone\",status=\"400\"} 1\n"
        ),
        "{metrics}"
    );
    // The first scrape does not count itself (it is recorded only after its
    // body was rendered) …
    assert!(!metrics.contains("route=\"/metrics\""), "{metrics}");
    // … and per-route latency summaries carry quantiles, sum, count and max.
    assert!(
        metrics.contains("# TYPE http_request_duration_seconds summary\n"),
        "{metrics}"
    );
    assert!(
        metrics.contains(
            "http_request_duration_seconds{method=\"GET\",route=\"/health\",quantile=\"0.5\"} "
        ),
        "{metrics}"
    );
    assert!(
        metrics
            .contains("http_request_duration_seconds_count{method=\"GET\",route=\"/health\"} 1\n"),
        "{metrics}"
    );
    assert!(
        metrics.contains("# TYPE http_request_duration_seconds_max gauge\n"),
        "{metrics}"
    );
    // Scrape-time samples: registry, worker pool, and cache counters.
    assert!(metrics.contains("graphs_registered 1\n"), "{metrics}");
    assert!(metrics.contains("worker_threads 4\n"), "{metrics}");
    assert!(metrics.contains("score_cache_hits_total 2\n"), "{metrics}");
    assert!(
        metrics.contains("score_cache_misses_total 1\n"),
        "{metrics}"
    );
    assert!(
        metrics.contains("score_cache_evictions_total 0\n"),
        "{metrics}"
    );
    assert!(
        metrics.contains("compare_cache_misses_total 0\n"),
        "{metrics}"
    );
    // Traffic counters move with real byte counts.
    assert!(metrics.contains("http_request_bytes_total "), "{metrics}");
    assert!(
        !metrics.contains("http_request_bytes_total 0\n"),
        "{metrics}"
    );

    // The JSON format reports the same counts; by now the previous scrape
    // itself has been recorded.
    let (status, body) = get(&server, "/metrics?format=json");
    assert_eq!(status, 200);
    let json = text(&body);
    assert!(json.contains("\"counters\": ["), "{json}");
    assert!(json.contains("\"histograms\": ["), "{json}");
    assert!(
        json.contains(
            "{ \"name\": \"http_requests_total\", \"labels\": { \"method\": \"GET\", \"route\": \"/metrics\", \"status\": \"200\" }, \"value\": 1 }"
        ),
        "{json}"
    );
    assert!(json.contains("\"p99_seconds\": "), "{json}");

    // An unknown format is a 400; wrong verbs are a 405.
    let (status, _) = get(&server, "/metrics?format=xml");
    assert_eq!(status, 400);
    let (status, _) = post(&server, "/metrics", "");
    assert_eq!(status, 405);

    // The exposition content type is the Prometheus text format.
    let head = response_head(&server, "/metrics");
    assert!(
        head.contains("Content-Type: text/plain; version=0.0.4; charset=utf-8"),
        "{head}"
    );
    server.shutdown();
}

/// `/health` exposes the resolved worker-thread count and the full
/// hit/miss/eviction cache counters for both per-graph caches.
#[test]
fn health_reports_workers_and_cache_counters() {
    let server = trade_server(1);
    let (status, _) = get(&server, "/graphs/trade/backbone?method=nc&top_k=5");
    assert_eq!(status, 200);
    let (status, body) = get(&server, "/health");
    assert_eq!(status, 200);
    let health = text(&body);
    // threads=1 still floors the pool at MIN_WORKERS.
    assert!(health.contains("\"workers\": 4"), "{health}");
    assert!(
        health.contains(
            "\"cache\": { \"scored\": { \"hits\": 0, \"misses\": 1, \"evictions\": 0 }, \
             \"compare\": { \"hits\": 0, \"misses\": 0, \"evictions\": 0 } }"
        ),
        "{health}"
    );
    server.shutdown();
}

/// The PATCH tentpole over HTTP: a reweight batch bumps the generation,
/// changes the *cached* backbone, and the post-patch response is
/// byte-identical to a fresh server that ingested the patched edge list
/// from scratch — generation-keyed invalidation plus exact incremental
/// rescoring, end to end.
#[test]
fn patch_route_rescores_exactly_and_bumps_the_generation() {
    let server = trade_server(1);
    let edge_list = "a b 5\nb c 4\nc d 1\nd a 3\n";
    let (status, body) = post(&server, "/graphs/delta?direction=undirected", edge_list);
    assert_eq!(status, 201, "{}", text(&body));
    assert!(text(&body).contains("\"generation\": 0"), "{}", text(&body));

    // Warm the cache, pinning the pre-patch backbone.
    let query = "/graphs/delta/backbone?method=naive&top_k=2";
    let (status, before) = get(&server, query);
    assert_eq!(status, 200);
    assert!(text(&before).contains("a\tb\t5"), "{}", text(&before));
    assert!(!text(&before).contains("c\td"), "{}", text(&before));

    // Reweight c–d to the top: the cached response must change.
    let (status, body) = patch(&server, "/graphs/delta", "reweight c d 9\n", None);
    assert_eq!(status, 200, "{}", text(&body));
    let outcome = text(&body);
    assert!(outcome.contains("\"generation\": 1"), "{outcome}");
    assert!(
        outcome.contains("\"applied\": { \"added\": 0, \"removed\": 0, \"reweighted\": 1 }"),
        "{outcome}"
    );
    assert!(outcome.contains("\"compacted\": false"), "{outcome}");
    // The cached naive scores were carried over by incremental rescoring.
    assert!(
        outcome.contains("\"rescored_methods\": [\"naive\"]"),
        "{outcome}"
    );

    let (status, after) = get(&server, query);
    assert_eq!(status, 200);
    assert_ne!(after, before, "patch must invalidate the cached backbone");
    assert!(text(&after).contains("c\td\t9"), "{}", text(&after));

    // Ground truth: a server that ingested the patched list from scratch
    // serves byte-identical bytes (the seeded cache is exact, not stale).
    let fresh = trade_server(1);
    let patched_list = "a b 5\nb c 4\nc d 9\nd a 3\n";
    let (status, _) = post(&fresh, "/graphs/delta?direction=undirected", patched_list);
    assert_eq!(status, 201);
    let (_, from_scratch) = get(&fresh, query);
    assert_eq!(
        after, from_scratch,
        "incrementally rescored response differs from a from-scratch server"
    );

    // The seeded slot answers as a cache *hit* — no re-scoring happened.
    let (hits_before, misses_before) = server.registry().cache_stats();
    let (status, _) = get(&server, query);
    assert_eq!(status, 200);
    assert_eq!(
        server.registry().cache_stats(),
        (hits_before + 1, misses_before)
    );

    // Structural JSON batch: add + remove compacts and invalidates.
    let json_body = r#"{"ops": [
        {"op": "add", "source": "a", "target": "e", "weight": 7},
        {"op": "remove", "source": "c", "target": "d"}
    ]}"#;
    let (status, body) = patch(
        &server,
        "/graphs/delta",
        json_body,
        Some("application/json"),
    );
    assert_eq!(status, 200, "{}", text(&body));
    let outcome = text(&body);
    assert!(outcome.contains("\"generation\": 2"), "{outcome}");
    assert!(outcome.contains("\"nodes\": 5"), "{outcome}");
    assert!(outcome.contains("\"edges\": 4"), "{outcome}");
    assert!(
        outcome.contains("\"applied\": { \"added\": 1, \"removed\": 1, \"reweighted\": 0 }"),
        "{outcome}"
    );
    assert!(outcome.contains("\"compacted\": true"), "{outcome}");
    let (status, info) = get(&server, "/graphs/delta");
    assert_eq!(status, 200);
    assert!(text(&info).contains("\"generation\": 2"), "{}", text(&info));

    // The patch counters surface on /metrics, and PATCH keeps its verb label.
    let (status, body) = get(&server, "/metrics");
    assert_eq!(status, 200);
    let metrics = text(&body);
    assert!(metrics.contains("graph_patches_total 2\n"), "{metrics}");
    assert!(metrics.contains("graph_patch_ops_total 3\n"), "{metrics}");
    assert!(metrics.contains("graph_compactions_total 1\n"), "{metrics}");
    assert!(
        metrics.contains(
            "http_requests_total{method=\"PATCH\",route=\"/graphs/{name}\",status=\"200\"} 2\n"
        ),
        "{metrics}"
    );
    server.shutdown();
}

/// PATCH negative paths: unknown graphs 404, malformed or inapplicable
/// deltas 400 with the offending line, oversized deltas a structured
/// `capacity_exceeded` — never a panic, and never a generation bump.
#[test]
fn patch_route_rejects_bad_deltas() {
    let server = trade_server(1);
    let (status, body) = patch(&server, "/graphs/absent", "reweight a b 1\n", None);
    assert_eq!(status, 404, "{}", text(&body));

    let edge_list = "a b 5\nb c 4\n";
    let (status, _) = post(&server, "/graphs/delta?direction=undirected", edge_list);
    assert_eq!(status, 201);

    // Malformed / inapplicable TSV deltas: 400 naming the line, nothing
    // applied (the whole batch is transactional).
    for (delta, fragment) in [
        ("add a b heavy\n", "line 1"),
        ("reweight a b 1\nremove a z\n", "line 2"),
        ("reweight a b 1\nremove b c\nadd a b 2\n", "line 3"),
        ("upsert a b 2\n", "unknown op `upsert`"),
        ("add a c -1\n", "line 1"),
    ] {
        let (status, body) = patch(&server, "/graphs/delta", delta, None);
        assert_eq!(status, 400, "`{delta}`: {}", text(&body));
        assert!(text(&body).contains(fragment), "`{delta}`: {}", text(&body));
    }
    // Malformed JSON deltas: 400 naming the op.
    let bad_json = r#"{"ops": [{"op": "add", "source": "a", "target": "c"}]}"#;
    let (status, body) = patch(&server, "/graphs/delta", bad_json, Some("application/json"));
    assert_eq!(status, 400);
    assert!(text(&body).contains("op 1"), "{}", text(&body));
    // Empty batches are rejected, not silently committed.
    let (status, body) = patch(&server, "/graphs/delta", "# nothing\n", None);
    assert_eq!(status, 400);
    assert!(text(&body).contains("empty"), "{}", text(&body));

    // Nothing above moved the generation.
    let (_, info) = get(&server, "/graphs/delta");
    assert!(text(&info).contains("\"generation\": 0"), "{}", text(&info));
    assert_eq!(server.registry().cache_counters().patches, 0);

    // A delta pushing an unlabeled graph past the u32 node range is a
    // structured 400 the client can match on — the server stays up.
    let plain = {
        let mut graph = backboning_graph::WeightedGraph::with_nodes(Direction::Undirected, 3);
        graph.add_edge(0, 1, 2.0).unwrap();
        graph.add_edge(1, 2, 1.0).unwrap();
        CsrGraph::from_graph(&graph).unwrap()
    };
    server.registry().insert("plain", plain).unwrap();
    let (status, body) = patch(&server, "/graphs/plain", "add 0 4294967295 1\n", None);
    assert_eq!(status, 400);
    let error = text(&body);
    assert!(error.contains("\"kind\": \"capacity_exceeded\""), "{error}");
    assert!(error.contains("\"what\": \"nodes\""), "{error}");
    assert!(error.contains("\"requested\": 4294967296"), "{error}");
    let (status, _) = get(&server, "/health");
    assert_eq!(status, 200, "server survives capacity rejections");
    server.shutdown();
}

/// The clean-shutdown control path: POST /shutdown answers, the server
/// drains, `wait` returns, and the port stops accepting.
#[test]
fn shutdown_route_stops_the_server() {
    let server = trade_server(1);
    let addr = server.addr();
    let (status, body) = post(&server, "/shutdown", "");
    assert_eq!(status, 200);
    assert!(text(&body).contains("shutting down"));
    server.wait(); // returns only once every thread has drained

    // The listener is gone: a fresh connection must fail.
    assert!(TcpStream::connect_timeout(&addr, std::time::Duration::from_millis(500)).is_err());
}
