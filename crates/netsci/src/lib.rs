//! # backboning-netsci
//!
//! Network-analysis toolkit used by the evaluation of the `backboning-rs`
//! workspace (a Rust reproduction of *Network Backboning with Noisy Data*,
//! Coscia & Neffke, ICDE 2017).
//!
//! The paper's case study (Section VI) judges backbones by how well their
//! community structure matches an expert classification of occupations:
//!
//! * the **Infomap codelength** gain obtained by partitioning the backbone
//!   (the paper reports a 15.0% gain for the NC backbone vs 9.3% for the
//!   Disparity Filter) — implemented as the two-level map equation in
//!   [`mod@community::infomap`];
//! * the **modularity** of the expert classification on each backbone
//!   ([`modularity()`]);
//! * the **normalized mutual information** between detected communities and
//!   the classification ([`nmi`]).
//!
//! The toolkit also provides label propagation and a Louvain-style modularity
//! optimiser ([`community`]), partitions ([`partition`]) and clustering
//! coefficients ([`clustering`]) used by the motivating example (Figure 1) and
//! the wider test suite.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clustering;
pub mod community;
pub mod modularity;
pub mod nmi;
pub mod partition;

pub use community::{infomap::InfomapResult, label_propagation, louvain};
pub use modularity::modularity;
pub use nmi::normalized_mutual_information;
pub use partition::Partition;
