//! Node partitions (community assignments).

use std::collections::HashMap;

/// A partition of the nodes `0..n` into communities.
///
/// Community labels are arbitrary `usize` values; [`Partition::renumbered`]
/// maps them onto the dense range `0..community_count()`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    labels: Vec<usize>,
}

impl Partition {
    /// Create a partition from per-node community labels.
    pub fn from_labels(labels: Vec<usize>) -> Self {
        Partition { labels }
    }

    /// The partition that puts every node in the same community.
    pub fn single_community(node_count: usize) -> Self {
        Partition {
            labels: vec![0; node_count],
        }
    }

    /// The partition that puts every node in its own community.
    pub fn singletons(node_count: usize) -> Self {
        Partition {
            labels: (0..node_count).collect(),
        }
    }

    /// Number of nodes covered by the partition.
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// The community label of a node.
    pub fn community_of(&self, node: usize) -> usize {
        self.labels[node]
    }

    /// The raw label vector.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Number of distinct communities.
    pub fn community_count(&self) -> usize {
        let mut seen: Vec<usize> = self.labels.clone();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    }

    /// Whether two nodes share a community.
    pub fn same_community(&self, a: usize, b: usize) -> bool {
        self.labels[a] == self.labels[b]
    }

    /// A copy with community labels renumbered to `0..community_count()` in
    /// order of first appearance.
    pub fn renumbered(&self) -> Partition {
        let mut mapping: HashMap<usize, usize> = HashMap::new();
        let mut next = 0;
        let labels = self
            .labels
            .iter()
            .map(|&label| {
                *mapping.entry(label).or_insert_with(|| {
                    let value = next;
                    next += 1;
                    value
                })
            })
            .collect();
        Partition { labels }
    }

    /// The members of every community, keyed by (renumbered) community index.
    pub fn communities(&self) -> Vec<Vec<usize>> {
        let renumbered = self.renumbered();
        let mut groups = vec![Vec::new(); renumbered.community_count()];
        for (node, &label) in renumbered.labels.iter().enumerate() {
            groups[label].push(node);
        }
        groups
    }

    /// Sizes of all communities (in renumbered order).
    pub fn community_sizes(&self) -> Vec<usize> {
        self.communities().iter().map(Vec::len).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accessors() {
        let p = Partition::from_labels(vec![5, 5, 7, 9, 7]);
        assert_eq!(p.node_count(), 5);
        assert_eq!(p.community_count(), 3);
        assert_eq!(p.community_of(2), 7);
        assert!(p.same_community(0, 1));
        assert!(!p.same_community(0, 2));
        assert_eq!(p.labels(), &[5, 5, 7, 9, 7]);
    }

    #[test]
    fn trivial_partitions() {
        let single = Partition::single_community(4);
        assert_eq!(single.community_count(), 1);
        let singles = Partition::singletons(4);
        assert_eq!(singles.community_count(), 4);
        assert!(!singles.same_community(0, 1));
    }

    #[test]
    fn renumbering_is_dense_and_order_preserving() {
        let p = Partition::from_labels(vec![10, 3, 10, 99]).renumbered();
        assert_eq!(p.labels(), &[0, 1, 0, 2]);
        assert_eq!(p.community_count(), 3);
    }

    #[test]
    fn communities_group_members() {
        let p = Partition::from_labels(vec![1, 2, 1, 2, 3]);
        let groups = p.communities();
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[0], vec![0, 2]);
        assert_eq!(groups[1], vec![1, 3]);
        assert_eq!(groups[2], vec![4]);
        assert_eq!(p.community_sizes(), vec![2, 2, 1]);
    }

    #[test]
    fn empty_partition() {
        let p = Partition::from_labels(vec![]);
        assert_eq!(p.node_count(), 0);
        assert_eq!(p.community_count(), 0);
        assert!(p.communities().is_empty());
    }
}
