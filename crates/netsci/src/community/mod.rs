//! Community detection algorithms.
//!
//! * [`label_propagation`] — fast weighted label propagation; used as a
//!   lightweight detector and as the seed partition for the slower optimisers.
//! * [`louvain`] — greedy modularity optimisation in the Louvain style.
//! * [`mod@infomap`] — two-level map-equation (Infomap-style) codelength and its
//!   greedy optimisation, used by the paper's case study (Section VI).

pub mod infomap;
mod label_propagation_impl;
mod louvain_impl;

pub use infomap::{infomap, map_equation_codelength, InfomapResult};
pub use label_propagation_impl::label_propagation;
pub use louvain_impl::louvain;
