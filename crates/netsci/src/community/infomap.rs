//! Two-level map equation (Infomap-style) community detection.
//!
//! The case study of the paper (Section VI) uses Infomap's two-level
//! codelength to compare backbones: partitioning the NC backbone compresses a
//! random walker's description from 7.97 to 6.78 bits (a 15.0% gain), against
//! a 9.3% gain on the Disparity Filter backbone. This module implements the
//! same quantity — the two-level map equation of Rosvall & Bergstrom (2008) —
//! for undirected weighted networks, plus a greedy optimiser.
//!
//! For an undirected weighted network the random walker's stationary visit
//! rate of node `α` is `p_α = s_α / (2m)` (strength over twice the total edge
//! weight), and the exit rate of module `i` is `q_i = w_i^out / (2m)` where
//! `w_i^out` is the total weight of edges with exactly one endpoint in the
//! module. The two-level codelength is
//!
//! ```text
//! L(M) = plogp(Σ_i q_i)
//!        − 2 Σ_i plogp(q_i)
//!        − Σ_α plogp(p_α)
//!        + Σ_i plogp(q_i + Σ_{α ∈ i} p_α)
//! ```
//!
//! with `plogp(x) = x log₂ x`. With a single module the codelength reduces to
//! the entropy of the visit rates — the "no community structure" baseline the
//! paper reports as 7.97 / 7.69 bits.

use std::collections::HashMap;

use backboning_graph::WeightedGraph;

use crate::partition::Partition;

/// `x log₂ x`, with the convention `0 log 0 = 0`.
fn plogp(x: f64) -> f64 {
    if x > 0.0 {
        x * x.log2()
    } else {
        0.0
    }
}

/// Flow quantities of a weighted network, treating edges as undirected.
struct Flow {
    /// Visit rate of every node (`s_α / 2m`).
    visit_rates: Vec<f64>,
    /// Symmetric adjacency used to compute module exit rates.
    adjacency: Vec<Vec<(usize, f64)>>,
    /// Twice the total edge weight.
    two_m: f64,
}

impl Flow {
    fn from_graph(graph: &WeightedGraph) -> Self {
        let node_count = graph.node_count();
        let mut adjacency: Vec<Vec<(usize, f64)>> = vec![Vec::new(); node_count];
        let mut strength = vec![0.0; node_count];
        let mut total = 0.0;
        for edge in graph.edges() {
            total += edge.weight;
            strength[edge.source] += edge.weight;
            strength[edge.target] += edge.weight;
            if edge.source != edge.target {
                adjacency[edge.source].push((edge.target, edge.weight));
                adjacency[edge.target].push((edge.source, edge.weight));
            }
        }
        let two_m = 2.0 * total;
        let visit_rates = strength
            .iter()
            .map(|&s| if two_m > 0.0 { s / two_m } else { 0.0 })
            .collect();
        Flow {
            visit_rates,
            adjacency,
            two_m,
        }
    }

    /// Exit rate of every module under the given labels.
    fn module_exit_rates(&self, labels: &[usize]) -> HashMap<usize, f64> {
        let mut exit: HashMap<usize, f64> = HashMap::new();
        if self.two_m <= 0.0 {
            return exit;
        }
        for (node, neighbors) in self.adjacency.iter().enumerate() {
            for &(neighbor, weight) in neighbors {
                if labels[node] != labels[neighbor] {
                    // Each undirected edge appears in both adjacency rows, so
                    // dividing by 2m (not 4m) counts each crossing edge once
                    // per direction — the flow leaving the module.
                    *exit.entry(labels[node]).or_insert(0.0) += weight / self.two_m;
                }
            }
        }
        exit
    }

    /// Total visit rate per module.
    fn module_visit_rates(&self, labels: &[usize]) -> HashMap<usize, f64> {
        let mut rates: HashMap<usize, f64> = HashMap::new();
        for (node, &rate) in self.visit_rates.iter().enumerate() {
            *rates.entry(labels[node]).or_insert(0.0) += rate;
        }
        rates
    }

    /// The two-level map-equation codelength (in bits) of a labelling.
    fn codelength(&self, labels: &[usize]) -> f64 {
        if self.two_m <= 0.0 || labels.is_empty() {
            return 0.0;
        }
        let exit = self.module_exit_rates(labels);
        let visits = self.module_visit_rates(labels);

        let total_exit: f64 = exit.values().sum();
        let exit_terms: f64 = exit.values().map(|&q| plogp(q)).sum();
        let node_terms: f64 = self.visit_rates.iter().map(|&p| plogp(p)).sum();
        let module_terms: f64 = visits
            .iter()
            .map(|(module, &p_total)| plogp(p_total + exit.get(module).copied().unwrap_or(0.0)))
            .sum();

        plogp(total_exit) - 2.0 * exit_terms - node_terms + module_terms
    }
}

/// The two-level map-equation codelength (bits per random-walker step) of a
/// partition on a weighted network.
///
/// With [`Partition::single_community`] this is the entropy of the node visit
/// rates — the "codelength without communities" baseline of the paper's case
/// study.
pub fn map_equation_codelength(graph: &WeightedGraph, partition: &Partition) -> f64 {
    assert_eq!(
        partition.node_count(),
        graph.node_count(),
        "partition covers {} nodes but the graph has {}",
        partition.node_count(),
        graph.node_count()
    );
    Flow::from_graph(graph).codelength(partition.labels())
}

/// Result of the greedy Infomap-style optimisation.
#[derive(Debug, Clone, PartialEq)]
pub struct InfomapResult {
    /// The partition found by the optimiser.
    pub partition: Partition,
    /// Codelength of [`InfomapResult::partition`] in bits.
    pub codelength: f64,
    /// Codelength of the single-community baseline in bits.
    pub baseline_codelength: f64,
}

impl InfomapResult {
    /// Relative compression gain over the single-community baseline,
    /// `1 − L(M) / L(1)` — the quantity the paper reports as
    /// "codelength 15.0% smaller than without communities".
    pub fn compression_gain(&self) -> f64 {
        if self.baseline_codelength > 0.0 {
            1.0 - self.codelength / self.baseline_codelength
        } else {
            0.0
        }
    }
}

/// Greedy two-level map-equation optimisation.
///
/// Starts from singleton modules and repeatedly moves single nodes to the
/// neighbouring module that most reduces the codelength, until a full sweep
/// makes no move or `max_sweeps` is reached. The result never has a larger
/// codelength than the single-community baseline (if the optimiser cannot
/// beat the baseline it returns the baseline partition itself).
pub fn infomap(graph: &WeightedGraph, max_sweeps: usize) -> InfomapResult {
    let flow = Flow::from_graph(graph);
    let node_count = graph.node_count();
    let baseline_labels = vec![0usize; node_count];
    let baseline_codelength = flow.codelength(&baseline_labels);

    if node_count == 0 {
        return InfomapResult {
            partition: Partition::from_labels(Vec::new()),
            codelength: 0.0,
            baseline_codelength,
        };
    }

    let mut labels: Vec<usize> = (0..node_count).collect();
    let mut current_codelength = flow.codelength(&labels);

    for _ in 0..max_sweeps {
        let mut improved = false;
        for node in 0..node_count {
            if flow.adjacency[node].is_empty() {
                continue;
            }
            let original = labels[node];
            // Candidate modules: the modules of the node's neighbours.
            let mut candidates: Vec<usize> = flow.adjacency[node]
                .iter()
                .map(|&(neighbor, _)| labels[neighbor])
                .collect();
            candidates.sort_unstable();
            candidates.dedup();

            let mut best_label = original;
            let mut best_codelength = current_codelength;
            for &candidate in &candidates {
                if candidate == original {
                    continue;
                }
                labels[node] = candidate;
                let candidate_codelength = flow.codelength(&labels);
                if candidate_codelength < best_codelength - 1e-12 {
                    best_codelength = candidate_codelength;
                    best_label = candidate;
                }
            }
            labels[node] = best_label;
            if best_label != original {
                current_codelength = best_codelength;
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }

    if current_codelength > baseline_codelength {
        return InfomapResult {
            partition: Partition::single_community(node_count),
            codelength: baseline_codelength,
            baseline_codelength,
        };
    }
    InfomapResult {
        partition: Partition::from_labels(labels).renumbered(),
        codelength: current_codelength,
        baseline_codelength,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nmi::normalized_mutual_information;
    use backboning_graph::generators::{complete_graph, stochastic_block_model};
    use backboning_graph::GraphBuilder;

    #[test]
    fn single_module_codelength_is_visit_rate_entropy() {
        // A star with uniform weights: visit rates are 1/2 for the hub and
        // 1/(2k) for each of the k leaves; the baseline codelength is their entropy.
        let graph = GraphBuilder::undirected()
            .indexed_edge(0, 1, 1.0)
            .indexed_edge(0, 2, 1.0)
            .indexed_edge(0, 3, 1.0)
            .indexed_edge(0, 4, 1.0)
            .build()
            .unwrap();
        let baseline =
            map_equation_codelength(&graph, &Partition::single_community(graph.node_count()));
        let expected = -(plogp(0.5) + 4.0 * plogp(0.125));
        assert!(
            (baseline - expected).abs() < 1e-12,
            "got {baseline}, want {expected}"
        );
    }

    #[test]
    fn partitioning_two_cliques_reduces_codelength() {
        let graph = GraphBuilder::undirected()
            // Clique A
            .indexed_edge(0, 1, 5.0)
            .indexed_edge(1, 2, 5.0)
            .indexed_edge(0, 2, 5.0)
            .indexed_edge(2, 3, 5.0)
            .indexed_edge(0, 3, 5.0)
            .indexed_edge(1, 3, 5.0)
            // Clique B
            .indexed_edge(4, 5, 5.0)
            .indexed_edge(5, 6, 5.0)
            .indexed_edge(4, 6, 5.0)
            .indexed_edge(6, 7, 5.0)
            .indexed_edge(4, 7, 5.0)
            .indexed_edge(5, 7, 5.0)
            // Weak bridge
            .indexed_edge(3, 4, 0.5)
            .build()
            .unwrap();
        let baseline =
            map_equation_codelength(&graph, &Partition::single_community(graph.node_count()));
        let split = map_equation_codelength(
            &graph,
            &Partition::from_labels(vec![0, 0, 0, 0, 1, 1, 1, 1]),
        );
        assert!(
            split < baseline,
            "split {split} should beat baseline {baseline}"
        );

        // A bad split must cost more bits than the good one.
        let bad = map_equation_codelength(
            &graph,
            &Partition::from_labels(vec![0, 1, 0, 1, 0, 1, 0, 1]),
        );
        assert!(bad > split);
    }

    #[test]
    fn greedy_optimiser_finds_the_two_cliques() {
        let (graph, truth) = stochastic_block_model(&[20, 20], 0.7, 0.02, 5.0, 1.0, 17).unwrap();
        let result = infomap(&graph, 50);
        assert!(result.codelength <= result.baseline_codelength + 1e-12);
        assert!(result.compression_gain() > 0.05);
        let nmi = normalized_mutual_information(&result.partition, &Partition::from_labels(truth));
        assert!(nmi > 0.8, "NMI {nmi} too low");
    }

    #[test]
    fn complete_graph_does_not_benefit_from_partitioning() {
        let graph = complete_graph(8, 1.0).unwrap();
        let result = infomap(&graph, 50);
        // No community structure: the optimiser must fall back to (or match)
        // the single-module baseline.
        assert!(result.codelength <= result.baseline_codelength + 1e-12);
        assert!(result.compression_gain() < 0.05);
    }

    #[test]
    fn compression_gain_matches_definition() {
        let (graph, _) = stochastic_block_model(&[15, 15, 15], 0.6, 0.02, 4.0, 1.0, 23).unwrap();
        let result = infomap(&graph, 50);
        let expected = 1.0 - result.codelength / result.baseline_codelength;
        assert!((result.compression_gain() - expected).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_is_handled() {
        let graph = backboning_graph::WeightedGraph::undirected();
        let result = infomap(&graph, 10);
        assert_eq!(result.partition.node_count(), 0);
        assert_eq!(result.codelength, 0.0);
    }

    #[test]
    #[should_panic(expected = "partition covers")]
    fn mismatched_partition_panics() {
        let graph = complete_graph(4, 1.0).unwrap();
        map_equation_codelength(&graph, &Partition::from_labels(vec![0, 1]));
    }
}
