//! Greedy modularity optimisation in the Louvain style.

use std::collections::HashMap;

use backboning_graph::WeightedGraph;

use crate::modularity::modularity;
use crate::partition::Partition;

/// Symmetric weighted adjacency with self-loop weights kept separately.
struct Adjacency {
    neighbors: Vec<Vec<(usize, f64)>>,
    strength: Vec<f64>,
    total_weight: f64,
}

impl Adjacency {
    fn from_graph(graph: &WeightedGraph) -> Self {
        let node_count = graph.node_count();
        let mut neighbors: Vec<Vec<(usize, f64)>> = vec![Vec::new(); node_count];
        let mut strength = vec![0.0; node_count];
        let mut total_weight = 0.0;
        for edge in graph.edges() {
            total_weight += edge.weight;
            strength[edge.source] += edge.weight;
            strength[edge.target] += edge.weight;
            if edge.source != edge.target {
                neighbors[edge.source].push((edge.target, edge.weight));
                neighbors[edge.target].push((edge.source, edge.weight));
            }
        }
        Adjacency {
            neighbors,
            strength,
            total_weight,
        }
    }
}

/// One pass of greedy local moves: each node is moved to the neighbouring
/// community that yields the largest modularity gain, until no move improves.
fn local_moves(adjacency: &Adjacency, labels: &mut [usize], max_sweeps: usize) -> bool {
    let two_m = 2.0 * adjacency.total_weight;
    if two_m <= 0.0 {
        return false;
    }
    let node_count = labels.len();
    // Total strength per community.
    let mut community_strength: HashMap<usize, f64> = HashMap::new();
    for (node, &label) in labels.iter().enumerate() {
        *community_strength.entry(label).or_insert(0.0) += adjacency.strength[node];
    }

    let mut improved_any = false;
    for _ in 0..max_sweeps {
        let mut improved = false;
        for node in 0..node_count {
            if adjacency.neighbors[node].is_empty() {
                continue;
            }
            let current = labels[node];
            // Weight from `node` towards each neighbouring community.
            let mut weight_to: HashMap<usize, f64> = HashMap::new();
            for &(neighbor, weight) in &adjacency.neighbors[node] {
                *weight_to.entry(labels[neighbor]).or_insert(0.0) += weight;
            }
            // Remove the node from its community for the gain computation.
            *community_strength.get_mut(&current).expect("present") -= adjacency.strength[node];
            let own_strength = adjacency.strength[node];

            let gain = |community: usize| -> f64 {
                let towards = weight_to.get(&community).copied().unwrap_or(0.0);
                let sigma = community_strength.get(&community).copied().unwrap_or(0.0);
                towards / adjacency.total_weight - own_strength * sigma / (two_m * two_m / 2.0)
            };

            let mut best_community = current;
            let mut best_gain = gain(current);
            for &candidate in weight_to.keys() {
                let candidate_gain = gain(candidate);
                if candidate_gain > best_gain + 1e-12
                    || (candidate_gain > best_gain - 1e-12 && candidate < best_community)
                        && candidate_gain >= best_gain
                {
                    best_gain = candidate_gain;
                    best_community = candidate;
                }
            }
            *community_strength.entry(best_community).or_insert(0.0) += adjacency.strength[node];
            if best_community != current {
                labels[node] = best_community;
                improved = true;
                improved_any = true;
            }
        }
        if !improved {
            break;
        }
    }
    improved_any
}

/// Greedy modularity optimisation.
///
/// Starts from singleton communities, performs local moves until convergence,
/// and returns the partition together with its modularity. This is a
/// single-level Louvain pass (no graph aggregation), which is sufficient for
/// the backbone-sized networks of the evaluation and keeps the implementation
/// easy to audit.
pub fn louvain(graph: &WeightedGraph, max_sweeps: usize) -> (Partition, f64) {
    let adjacency = Adjacency::from_graph(graph);
    let mut labels: Vec<usize> = (0..graph.node_count()).collect();
    local_moves(&adjacency, &mut labels, max_sweeps);
    let partition = Partition::from_labels(labels).renumbered();
    let score = modularity(graph, &partition);
    (partition, score)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nmi::normalized_mutual_information;
    use backboning_graph::generators::{complete_graph, stochastic_block_model};
    use backboning_graph::GraphBuilder;

    #[test]
    fn two_triangles_are_split_correctly() {
        let graph = GraphBuilder::undirected()
            .indexed_edge(0, 1, 1.0)
            .indexed_edge(1, 2, 1.0)
            .indexed_edge(0, 2, 1.0)
            .indexed_edge(3, 4, 1.0)
            .indexed_edge(4, 5, 1.0)
            .indexed_edge(3, 5, 1.0)
            .indexed_edge(2, 3, 1.0)
            .build()
            .unwrap();
        let (partition, q) = louvain(&graph, 100);
        assert_eq!(partition.community_count(), 2);
        assert!(partition.same_community(0, 2));
        assert!(partition.same_community(3, 5));
        assert!(!partition.same_community(0, 3));
        // The optimal split's modularity, computed by hand: 12/14 − 1/2.
        assert!((q - (12.0 / 14.0 - 0.5)).abs() < 1e-9);
    }

    #[test]
    fn modularity_never_negative_on_structured_graphs() {
        let (graph, _) = stochastic_block_model(&[20, 20, 20], 0.5, 0.02, 4.0, 1.0, 9).unwrap();
        let (_, q) = louvain(&graph, 100);
        assert!(q > 0.3, "expected clearly positive modularity, got {q}");
    }

    #[test]
    fn recovers_planted_communities() {
        let (graph, truth) = stochastic_block_model(&[25, 25], 0.6, 0.02, 5.0, 1.0, 21).unwrap();
        let (partition, _) = louvain(&graph, 200);
        let nmi = normalized_mutual_information(&partition, &Partition::from_labels(truth));
        assert!(nmi > 0.8, "NMI {nmi} too low");
    }

    #[test]
    fn complete_graph_stays_together_or_splits_harmlessly() {
        let graph = complete_graph(8, 1.0).unwrap();
        let (partition, q) = louvain(&graph, 100);
        // The best modularity of a complete graph is 0 (single community);
        // greedy optimisation must not do worse than slightly negative.
        assert!(q >= -1e-9, "modularity {q} should not be negative");
        assert!(partition.community_count() <= 8);
    }

    #[test]
    fn empty_graph() {
        let graph = backboning_graph::WeightedGraph::undirected();
        let (partition, q) = louvain(&graph, 10);
        assert_eq!(partition.node_count(), 0);
        assert_eq!(q, 0.0);
    }

    #[test]
    fn isolated_nodes_stay_in_singletons() {
        let graph = GraphBuilder::undirected()
            .indexed_edge(0, 1, 3.0)
            .nodes(4)
            .build()
            .unwrap();
        let (partition, _) = louvain(&graph, 10);
        assert!(partition.same_community(0, 1));
        assert!(!partition.same_community(2, 3));
    }
}
