//! Weighted label propagation.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use backboning_graph::WeightedGraph;

use crate::partition::Partition;

/// Weighted asynchronous label propagation.
///
/// Every node starts in its own community; nodes are visited in a random
/// (seeded) order and adopt the label with the largest total incident weight
/// among their neighbours. The process stops when a full sweep changes no
/// label or after `max_sweeps` sweeps.
///
/// Directed edges are treated as undirected (weight flows both ways), which is
/// the convention used throughout the paper's community analyses.
pub fn label_propagation(graph: &WeightedGraph, seed: u64, max_sweeps: usize) -> Partition {
    let node_count = graph.node_count();
    let mut labels: Vec<usize> = (0..node_count).collect();
    if node_count == 0 {
        return Partition::from_labels(labels);
    }

    // Symmetric adjacency (neighbor, weight) built once.
    let mut adjacency: Vec<Vec<(usize, f64)>> = vec![Vec::new(); node_count];
    for edge in graph.edges() {
        if edge.source == edge.target {
            continue;
        }
        adjacency[edge.source].push((edge.target, edge.weight));
        adjacency[edge.target].push((edge.source, edge.weight));
    }

    let mut rng = StdRng::seed_from_u64(seed);
    let mut order: Vec<usize> = (0..node_count).collect();

    for _ in 0..max_sweeps {
        order.shuffle(&mut rng);
        let mut changed = false;
        for &node in &order {
            if adjacency[node].is_empty() {
                continue;
            }
            let mut weight_by_label: HashMap<usize, f64> = HashMap::new();
            for &(neighbor, weight) in &adjacency[node] {
                *weight_by_label.entry(labels[neighbor]).or_insert(0.0) += weight;
            }
            // Deterministic tie-break: highest weight, then smallest label.
            let current = labels[node];
            let best = weight_by_label
                .iter()
                .map(|(&label, &weight)| (label, weight))
                .max_by(|a, b| {
                    a.1.partial_cmp(&b.1)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then_with(|| b.0.cmp(&a.0))
                })
                .map(|(label, _)| label)
                .unwrap_or(current);
            if best != current {
                labels[node] = best;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    Partition::from_labels(labels).renumbered()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nmi::normalized_mutual_information;
    use backboning_graph::generators::{complete_graph, stochastic_block_model};
    use backboning_graph::GraphBuilder;

    #[test]
    fn complete_graph_collapses_to_one_community() {
        let g = complete_graph(10, 1.0).unwrap();
        let partition = label_propagation(&g, 1, 50);
        assert_eq!(partition.community_count(), 1);
    }

    #[test]
    fn two_dense_blocks_are_separated() {
        let g = GraphBuilder::undirected()
            // Block A
            .indexed_edge(0, 1, 5.0)
            .indexed_edge(1, 2, 5.0)
            .indexed_edge(0, 2, 5.0)
            .indexed_edge(2, 3, 5.0)
            .indexed_edge(0, 3, 5.0)
            .indexed_edge(1, 3, 5.0)
            // Block B
            .indexed_edge(4, 5, 5.0)
            .indexed_edge(5, 6, 5.0)
            .indexed_edge(4, 6, 5.0)
            .indexed_edge(6, 7, 5.0)
            .indexed_edge(4, 7, 5.0)
            .indexed_edge(5, 7, 5.0)
            // Weak bridge
            .indexed_edge(3, 4, 0.5)
            .build()
            .unwrap();
        let partition = label_propagation(&g, 7, 100);
        assert_eq!(partition.community_count(), 2);
        assert!(partition.same_community(0, 3));
        assert!(partition.same_community(4, 7));
        assert!(!partition.same_community(0, 4));
    }

    #[test]
    fn recovers_planted_blocks_approximately() {
        let (g, truth) = stochastic_block_model(&[25, 25, 25], 0.6, 0.02, 5.0, 1.0, 3).unwrap();
        let detected = label_propagation(&g, 5, 100);
        let nmi = normalized_mutual_information(&detected, &Partition::from_labels(truth));
        assert!(nmi > 0.7, "NMI {nmi} too low for a well-separated SBM");
    }

    #[test]
    fn isolated_nodes_keep_their_own_label() {
        let g = GraphBuilder::undirected()
            .indexed_edge(0, 1, 1.0)
            .nodes(4)
            .build()
            .unwrap();
        let partition = label_propagation(&g, 1, 10);
        assert!(partition.same_community(0, 1));
        assert!(!partition.same_community(2, 3));
    }

    #[test]
    fn deterministic_given_seed() {
        let (g, _) = stochastic_block_model(&[20, 20], 0.5, 0.05, 3.0, 1.0, 11).unwrap();
        let a = label_propagation(&g, 42, 100);
        let b = label_propagation(&g, 42, 100);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_graph() {
        let g = backboning_graph::WeightedGraph::undirected();
        let partition = label_propagation(&g, 0, 10);
        assert_eq!(partition.node_count(), 0);
    }
}
