//! Weighted Newman modularity.
//!
//! The case study of the paper (Section VI) reports the modularity of the
//! expert occupation classification on the NC backbone (0.192) and on the
//! Disparity Filter backbone (0.115): higher modularity means the backbone's
//! connectivity lines up better with the ground-truth grouping.

use backboning_graph::WeightedGraph;

use crate::partition::Partition;

/// Weighted Newman modularity of a partition:
///
/// ```text
/// Q = 1/(2m) Σ_ij [A_ij − k_i k_j / (2m)] δ(c_i, c_j)
/// ```
///
/// where `k_i` is the (weighted) strength of node `i` and `m` the total edge
/// weight. Directed graphs are treated as undirected (each edge contributes to
/// the strength of both endpoints), which is how the reference evaluation uses
/// modularity. Self-loops contribute to their node's community.
///
/// Returns 0 for graphs without edges.
pub fn modularity(graph: &WeightedGraph, partition: &Partition) -> f64 {
    assert_eq!(
        partition.node_count(),
        graph.node_count(),
        "partition covers {} nodes but the graph has {}",
        partition.node_count(),
        graph.node_count()
    );
    let total_weight: f64 = graph.edges().map(|e| e.weight).sum();
    if total_weight <= 0.0 {
        return 0.0;
    }
    let two_m = 2.0 * total_weight;

    // Undirected strengths: every edge contributes to both endpoints,
    // self-loops contribute twice to their single endpoint.
    let mut strength = vec![0.0; graph.node_count()];
    for edge in graph.edges() {
        strength[edge.source] += edge.weight;
        strength[edge.target] += edge.weight;
    }

    // Within-community observed weight (counting each undirected pair once,
    // doubled below) and expected weight from the configuration model.
    let mut observed_within = 0.0;
    for edge in graph.edges() {
        if partition.same_community(edge.source, edge.target) {
            observed_within += edge.weight;
        }
    }

    // Σ over communities of (total strength in community)² / (2m)².
    let community_count = partition
        .labels()
        .iter()
        .copied()
        .max()
        .map_or(0, |max| max + 1);
    let mut community_strength = vec![0.0; community_count];
    for node in graph.nodes() {
        community_strength[partition.community_of(node)] += strength[node];
    }
    let expected_within: f64 = community_strength
        .iter()
        .map(|&s| (s / two_m) * (s / two_m))
        .sum();

    2.0 * observed_within / two_m - expected_within
}

#[cfg(test)]
mod tests {
    use super::*;
    use backboning_graph::{Direction, GraphBuilder, WeightedGraph};

    /// Two triangles joined by a single bridge edge.
    fn two_triangles() -> WeightedGraph {
        GraphBuilder::undirected()
            .indexed_edge(0, 1, 1.0)
            .indexed_edge(1, 2, 1.0)
            .indexed_edge(0, 2, 1.0)
            .indexed_edge(3, 4, 1.0)
            .indexed_edge(4, 5, 1.0)
            .indexed_edge(3, 5, 1.0)
            .indexed_edge(2, 3, 1.0)
            .build()
            .unwrap()
    }

    #[test]
    fn known_value_on_two_triangles() {
        // Hand computation for the natural split into the two triangles:
        // the 6 within-community edges contribute 2·6/(2m) = 12/14, each
        // community holds half of the total degree, so the expected fraction
        // is 2·(7/14)² = 1/2, giving Q = 12/14 − 1/2 = 5/14 ≈ 0.357.
        let graph = two_triangles();
        let partition = Partition::from_labels(vec![0, 0, 0, 1, 1, 1]);
        let q = modularity(&graph, &partition);
        assert!((q - (12.0 / 14.0 - 0.5)).abs() < 1e-12, "got {q}");
    }

    #[test]
    fn single_community_has_zero_modularity() {
        let graph = two_triangles();
        let partition = Partition::single_community(6);
        assert!(modularity(&graph, &partition).abs() < 1e-12);
    }

    #[test]
    fn good_partition_beats_bad_partition() {
        let graph = two_triangles();
        let good = Partition::from_labels(vec![0, 0, 0, 1, 1, 1]);
        let bad = Partition::from_labels(vec![0, 1, 0, 1, 0, 1]);
        assert!(modularity(&graph, &good) > modularity(&graph, &bad));
        assert!(modularity(&graph, &bad) < 0.0);
    }

    #[test]
    fn singletons_have_negative_modularity() {
        let graph = two_triangles();
        let partition = Partition::singletons(6);
        assert!(modularity(&graph, &partition) < 0.0);
    }

    #[test]
    fn weights_matter() {
        // Heavier within-community edges raise modularity.
        let light = GraphBuilder::undirected()
            .indexed_edge(0, 1, 1.0)
            .indexed_edge(2, 3, 1.0)
            .indexed_edge(1, 2, 1.0)
            .build()
            .unwrap();
        let heavy = GraphBuilder::undirected()
            .indexed_edge(0, 1, 10.0)
            .indexed_edge(2, 3, 10.0)
            .indexed_edge(1, 2, 1.0)
            .build()
            .unwrap();
        let partition = Partition::from_labels(vec![0, 0, 1, 1]);
        assert!(modularity(&heavy, &partition) > modularity(&light, &partition));
    }

    #[test]
    fn directed_graphs_are_treated_as_undirected() {
        let directed = WeightedGraph::from_edges(
            Direction::Directed,
            4,
            vec![(0, 1, 2.0), (1, 0, 2.0), (2, 3, 2.0), (1, 2, 1.0)],
        )
        .unwrap();
        let partition = Partition::from_labels(vec![0, 0, 1, 1]);
        let q = modularity(&directed, &partition);
        assert!(q > 0.0);
    }

    #[test]
    fn empty_graph_has_zero_modularity() {
        let graph = WeightedGraph::with_nodes(Direction::Undirected, 3);
        let partition = Partition::singletons(3);
        assert_eq!(modularity(&graph, &partition), 0.0);
    }

    #[test]
    #[should_panic(expected = "partition covers")]
    fn mismatched_partition_panics() {
        let graph = two_triangles();
        let partition = Partition::from_labels(vec![0, 1]);
        modularity(&graph, &partition);
    }
}
