//! Clustering coefficients.
//!
//! The paper criticises the Maximum Spanning Tree backbone for destroying
//! transitivity; the clustering coefficient is the metric that makes that
//! criticism quantitative (a tree always has clustering zero).

use std::collections::HashSet;

use backboning_graph::{NodeId, WeightedGraph};

/// Collect the (unweighted, undirected) neighbour set of a node, ignoring
/// self-loops.
fn neighbor_set(graph: &WeightedGraph, node: NodeId) -> HashSet<NodeId> {
    let mut neighbors: HashSet<NodeId> = graph
        .out_neighbors(node)
        .map(|(n, _)| n)
        .filter(|&n| n != node)
        .collect();
    if graph.is_directed() {
        neighbors.extend(
            graph
                .in_neighbors(node)
                .map(|(n, _)| n)
                .filter(|&n| n != node),
        );
    }
    neighbors
}

/// Local clustering coefficient of one node: the share of pairs of its
/// neighbours that are themselves connected. Nodes with fewer than two
/// neighbours have coefficient 0.
pub fn local_clustering(graph: &WeightedGraph, node: NodeId) -> f64 {
    let neighbors: Vec<NodeId> = neighbor_set(graph, node).into_iter().collect();
    let degree = neighbors.len();
    if degree < 2 {
        return 0.0;
    }
    let mut closed = 0usize;
    for i in 0..degree {
        for j in (i + 1)..degree {
            if graph.has_edge(neighbors[i], neighbors[j])
                || graph.has_edge(neighbors[j], neighbors[i])
            {
                closed += 1;
            }
        }
    }
    2.0 * closed as f64 / (degree * (degree - 1)) as f64
}

/// Average local clustering coefficient over all nodes (0 for an empty graph).
pub fn average_clustering(graph: &WeightedGraph) -> f64 {
    if graph.node_count() == 0 {
        return 0.0;
    }
    graph
        .nodes()
        .map(|n| local_clustering(graph, n))
        .sum::<f64>()
        / graph.node_count() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use backboning_graph::generators::{complete_graph, path_graph, star_graph};
    use backboning_graph::{Direction, GraphBuilder, WeightedGraph};

    #[test]
    fn complete_graph_has_full_clustering() {
        let g = complete_graph(5, 1.0).unwrap();
        assert!((average_clustering(&g) - 1.0).abs() < 1e-12);
        assert!((local_clustering(&g, 2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn trees_have_zero_clustering() {
        let star = star_graph(6, 1.0).unwrap();
        assert_eq!(average_clustering(&star), 0.0);
        let path = path_graph(5, 1.0).unwrap();
        assert_eq!(average_clustering(&path), 0.0);
    }

    #[test]
    fn triangle_with_tail() {
        let g = GraphBuilder::undirected()
            .indexed_edge(0, 1, 1.0)
            .indexed_edge(1, 2, 1.0)
            .indexed_edge(0, 2, 1.0)
            .indexed_edge(2, 3, 1.0)
            .build()
            .unwrap();
        assert!((local_clustering(&g, 0) - 1.0).abs() < 1e-12);
        // Node 2 has neighbours {0, 1, 3}; only the pair (0, 1) is closed.
        assert!((local_clustering(&g, 2) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(local_clustering(&g, 3), 0.0);
    }

    #[test]
    fn directed_edges_count_as_undirected_for_clustering() {
        let g = WeightedGraph::from_edges(
            Direction::Directed,
            3,
            vec![(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)],
        )
        .unwrap();
        assert!((local_clustering(&g, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn self_loops_are_ignored() {
        let g = GraphBuilder::undirected()
            .indexed_edge(0, 0, 5.0)
            .indexed_edge(0, 1, 1.0)
            .indexed_edge(0, 2, 1.0)
            .indexed_edge(1, 2, 1.0)
            .build()
            .unwrap();
        assert!((local_clustering(&g, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_graph() {
        let g = WeightedGraph::undirected();
        assert_eq!(average_clustering(&g), 0.0);
    }
}
