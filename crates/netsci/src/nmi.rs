//! Normalized mutual information between partitions.
//!
//! The paper's case study compares the communities found by Infomap on each
//! backbone against the two-digit occupation classification using normalized
//! mutual information (NC backbone: 0.423, Disparity Filter: 0.401).

use crate::partition::Partition;

/// Natural-log entropy helper: `−Σ p ln p`.
fn entropy(probabilities: &[f64]) -> f64 {
    probabilities
        .iter()
        .filter(|&&p| p > 0.0)
        .map(|&p| -p * p.ln())
        .sum()
}

/// Normalized mutual information between two partitions of the same node set,
/// using the arithmetic-mean normalisation `2 I(X; Y) / (H(X) + H(Y))`.
///
/// Returns a value in `[0, 1]`; by convention two identical single-community
/// partitions (both with zero entropy) have NMI 1, and the NMI against a
/// zero-entropy partition is 0 otherwise.
///
/// # Panics
///
/// Panics when the two partitions cover a different number of nodes.
pub fn normalized_mutual_information(a: &Partition, b: &Partition) -> f64 {
    assert_eq!(
        a.node_count(),
        b.node_count(),
        "partitions cover different node counts ({} vs {})",
        a.node_count(),
        b.node_count()
    );
    let n = a.node_count();
    if n == 0 {
        return 1.0;
    }
    let a = a.renumbered();
    let b = b.renumbered();
    let communities_a = a.community_count();
    let communities_b = b.community_count();

    // Joint distribution of community memberships.
    let mut joint = vec![0.0; communities_a * communities_b];
    for node in 0..n {
        joint[a.community_of(node) * communities_b + b.community_of(node)] += 1.0;
    }
    for value in &mut joint {
        *value /= n as f64;
    }
    let marginal_a: Vec<f64> = (0..communities_a)
        .map(|i| {
            (0..communities_b)
                .map(|j| joint[i * communities_b + j])
                .sum()
        })
        .collect();
    let marginal_b: Vec<f64> = (0..communities_b)
        .map(|j| {
            (0..communities_a)
                .map(|i| joint[i * communities_b + j])
                .sum()
        })
        .collect();

    let h_a = entropy(&marginal_a);
    let h_b = entropy(&marginal_b);
    if h_a == 0.0 && h_b == 0.0 {
        // Both partitions are single communities: identical by definition.
        return 1.0;
    }
    if h_a == 0.0 || h_b == 0.0 {
        return 0.0;
    }

    let mut mutual_information = 0.0;
    for i in 0..communities_a {
        for j in 0..communities_b {
            let p = joint[i * communities_b + j];
            if p > 0.0 {
                mutual_information += p * (p / (marginal_a[i] * marginal_b[j])).ln();
            }
        }
    }
    (2.0 * mutual_information / (h_a + h_b)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_partitions_have_nmi_one() {
        let p = Partition::from_labels(vec![0, 0, 1, 1, 2, 2]);
        let q = Partition::from_labels(vec![5, 5, 9, 9, 2, 2]); // same grouping, different labels
        assert!((normalized_mutual_information(&p, &q) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn independent_partitions_have_low_nmi() {
        // A perfectly crossed design: knowing one partition tells nothing about the other.
        let p = Partition::from_labels(vec![0, 0, 1, 1]);
        let q = Partition::from_labels(vec![0, 1, 0, 1]);
        assert!(normalized_mutual_information(&p, &q).abs() < 1e-12);
    }

    #[test]
    fn partial_agreement_is_between_zero_and_one() {
        let p = Partition::from_labels(vec![0, 0, 0, 1, 1, 1]);
        let q = Partition::from_labels(vec![0, 0, 1, 1, 1, 1]);
        let nmi = normalized_mutual_information(&p, &q);
        assert!(nmi > 0.0 && nmi < 1.0);
    }

    #[test]
    fn nmi_is_symmetric() {
        let p = Partition::from_labels(vec![0, 1, 1, 2, 2, 2, 0]);
        let q = Partition::from_labels(vec![1, 1, 0, 0, 2, 2, 2]);
        let forward = normalized_mutual_information(&p, &q);
        let backward = normalized_mutual_information(&q, &p);
        assert!((forward - backward).abs() < 1e-12);
    }

    #[test]
    fn degenerate_partitions() {
        let single = Partition::single_community(4);
        let split = Partition::from_labels(vec![0, 0, 1, 1]);
        assert_eq!(normalized_mutual_information(&single, &split), 0.0);
        assert_eq!(normalized_mutual_information(&single, &single), 1.0);
        let empty_a = Partition::from_labels(vec![]);
        let empty_b = Partition::from_labels(vec![]);
        assert_eq!(normalized_mutual_information(&empty_a, &empty_b), 1.0);
    }

    #[test]
    fn finer_partition_retains_information() {
        // Splitting one community into two keeps NMI strictly above the
        // independent level.
        let coarse = Partition::from_labels(vec![0, 0, 0, 0, 1, 1, 1, 1]);
        let fine = Partition::from_labels(vec![0, 0, 2, 2, 1, 1, 3, 3]);
        let nmi = normalized_mutual_information(&coarse, &fine);
        assert!(nmi > 0.5);
        assert!(nmi < 1.0);
    }

    #[test]
    #[should_panic(expected = "different node counts")]
    fn mismatched_sizes_panic() {
        let p = Partition::from_labels(vec![0, 1]);
        let q = Partition::from_labels(vec![0, 1, 2]);
        normalized_mutual_information(&p, &q);
    }
}
