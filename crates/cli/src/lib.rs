//! # backboning-cli
//!
//! The library behind the `backbone` binary: argument parsing and execution
//! for the production-facing backboning pipeline. Given any weighted edge
//! list — a file or stdin, whitespace/CSV/TSV separated — it selects one of
//! the seven backboning methods, applies one of the four threshold policies,
//! and emits the backbone edge list, the full scored-edge table, or a JSON
//! run summary.
//!
//! All of the actual work happens in [`backboning::Pipeline`]; this crate
//! only translates command-line flags into a [`CliConfig`] (or, for
//! `backbone serve`, a [`backboning_server::ServerConfig`]) and streams the
//! input. The parser is hand-rolled (the build environment vendors no
//! argument-parsing crate) but follows GNU conventions: long flags with
//! values as separate arguments, `-` for stdin, `--` unsupported-flag errors
//! with a usage hint.
//!
//! ```
//! use backboning_cli::{parse_args, Command};
//!
//! let command = parse_args(["--method", "nc", "--top-k", "10", "edges.tsv"]
//!     .map(String::from))
//!     .unwrap();
//! let Command::Run(config) = command else { panic!("expected a run") };
//! assert_eq!(config.method, backboning::Method::NoiseCorrected);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::io::{BufReader, Write};
use std::path::PathBuf;

use backboning::{apply_batch, delta_rescore, Method, Pipeline, ThresholdPolicy};
use backboning_bench::matrix;
use backboning_eval::comparison::{parse_method_list, Comparison, ComparisonConfig};
use backboning_gen::ScenarioSpec;
use backboning_graph::io::{read_edge_list_csr_named, EdgeListOptions};
use backboning_graph::DeltaBatch;
use backboning_graph::Direction;

/// The usage text printed by `backbone --help` and on usage errors.
pub const USAGE: &str = "\
backbone — extract the statistically significant backbone of a weighted network
(Coscia & Neffke, \"Network Backboning with Noisy Data\", ICDE 2017)

USAGE:
    backbone --method <METHOD> <POLICY> [OPTIONS] [INPUT]

INPUT:
    Path to a weighted edge list (`source target [weight]`, one edge per
    line), or `-` for stdin (the default). Input is streamed line by line.

METHOD (-m, --method):
    nc          Noise-Corrected backbone (the paper's contribution)
    ncb         Noise-Corrected, direct binomial p-values
    df          Disparity Filter (Serrano et al. 2009)
    hss         High Salience Skeleton (Grady et al. 2012)
    hss-approx  HSS estimated from K sampled roots (see --hss-roots); scales
                to networks where exact hss is infeasible
    ds          Doubly Stochastic (Slater 2009; parameter-free)
    mst         Maximum Spanning Tree (parameter-free)
    naive       Naive weight threshold

HSS-APPROX OPTIONS (with --method hss-approx, or compare --methods lists
containing it; rejected otherwise):
    --hss-roots <K>        sampled shortest-path-tree roots (default 256);
                           per-edge salience error ≤ sqrt(ln(2/α)/(2K)) with
                           probability 1−α, and K ≥ |V| is exactly hss
    --hss-seed <N>         root-sampling seed (default 4242); a fixed
                           (roots, seed) pair is fully deterministic

POLICY (exactly one):
    --threshold <SCORE>    keep edges with score ≥ SCORE (the method's natural
                           parameter, e.g. the NC δ: 1.28/1.64/2.32 for
                           p ≈ .10/.05/.01)
    --top-k <N>            keep the N highest scoring edges
    --top-share <F>        keep the top share F ∈ [0,1] of edges
    --coverage <F>         keep the smallest score-ranked prefix of edges
                           covering a share F ∈ [0,1] of the non-isolated nodes

INPUT FORMAT:
    --undirected           merge edge orientations (default: directed)
    --csv                  comma-separated fields
    --tsv                  tab-separated fields
    --separator <CHAR>     custom single-character separator
                           (default: any whitespace)
    --header               skip the first non-comment line
    --comment <CHAR>       comment-line prefix (default: '#')
    --no-comment           treat no line as a comment

OUTPUT:
    -o, --output <KIND>    backbone  the backbone as a TSV edge list (default)
                           scores    the full scored-edge table as TSV
                           summary   a JSON run summary
    --threads <N>          worker threads (default: auto; also honours the
                           BACKBONING_THREADS environment variable)
    --timings              print a per-stage wall-time breakdown (ingest /
                           score / select / build) to stderr after the run

COMPARE MODE:
    backbone compare [--methods LIST] [--top-share F] [OPTIONS] [INPUT]

    Run several methods on the same graph and report which backbone to
    trust: every method is selected at matched edge coverage (the paper's
    Section V methodology) and compared on node/edge/weight coverage,
    connectivity, pairwise Jaccard agreement, and stability under
    multiplicative noise. See docs/GUIDE.md § Which method should I use?

    --methods <LIST>       comma-separated method names, or `all`
                           (default: nc,df,hss — the tunable methods)
    --top-share <F>        matched edge coverage: every method keeps
                           round(F × E) edges (default 0.1)
    --noise <F>            multiplicative noise level in [0, 1): weights are
                           scaled by U(1-F, 1+F) per resample (default 0.1)
    --resamples <N>        noise Monte Carlo resamples; 0 skips the
                           stability metric (default 8)
    --seed <N>             base seed of the noise resamples (default 4242)
    -o, --output <KIND>    table  human-readable comparison tables (default)
                           json   the JSON report: the stable report of the
                                  server's /graphs/NAME/compare route plus a
                                  per-method score_wall_ms timing field
    --threads <N>          worker threads (default: auto)
    The INPUT FORMAT and HSS-APPROX flags above apply; INPUT defaults to
    stdin.

SERVE MODE:
    backbone serve [--addr HOST:PORT] [--graphs DIR] [OPTIONS]

    Run a long-lived HTTP server with a scored-graph cache: graphs are
    loaded from DIR at startup (and can be uploaded via POST /graphs/NAME),
    each (graph, method) pair is scored at most once, and every threshold
    query after the first is answered from the cached scores.

    --addr <HOST:PORT>     bind address (default 127.0.0.1:4817; port 0
                           picks an ephemeral port)
    --graphs <DIR>         directory of edge lists (*.tsv, *.csv, *.txt,
                           *.edges) to register at startup, named by file
                           stem
    --threads <N>          scoring worker threads, and the worker-pool floor
    --access-log           log one line per request to stderr
                           (method, path, status, bytes, milliseconds)
    The INPUT FORMAT flags above apply to the startup graph directory.

    Routes: GET /health · GET /metrics[?format=json] · GET /graphs ·
    GET|POST|DELETE /graphs/NAME ·
    GET /graphs/NAME/backbone?method=nc&top_share=0.2[&output=...][&format=...]
    · GET /graphs/NAME/compare[?methods=...&top_share=...] · POST /shutdown
    (clean stop). Full reference: docs/API.md.

GEN MODE:
    backbone gen <SPEC> [--out PATH]

    Generate a synthetic scenario deterministically from a spec string and
    write it as a TSV edge list to stdout (or PATH). The same spec always
    produces byte-identical output. Spec grammar (see docs/GUIDE.md
    § Generating scenarios):

        <family>:n=<NODES>[,<key>=<value>...]

    Families: ba (m = attachment edges), er (e = edge count), geo
    (r = connection radius), sb (b = blocks, pin/pout = within/between edge
    probability). Shared keys: w = unit | uniform(MAX) | powerlaw(ALPHA) |
    lognormal(MU,SIGMA); noise = F in [0,1) (the paper's multiplicative
    noise model); seed = N (default 4242). Example:

        backbone gen \"sb:n=5000,b=8,pin=0.02,pout=0.0008,w=lognormal(0,1)\"

PATCH MODE:
    backbone patch <DELTA> [--out PATH] [--verify] [OPTIONS] [INPUT]

    Apply a batched delta to an edge list and write the patched edge list
    to stdout (or PATH). DELTA is a file of one op per line — the same
    wire format as the server's PATCH /graphs/NAME route:

        add SOURCE TARGET WEIGHT
        remove SOURCE TARGET
        reweight SOURCE TARGET WEIGHT

    The batch is transactional: any invalid line (unknown node, duplicate
    add, bad weight) rejects the whole delta, naming the line. With
    --verify, every method with an incremental delta path is additionally
    rescored both incrementally and from scratch on the patched graph and
    the run fails unless the two agree bit-for-bit — the churn-parity
    contract, runnable offline on real data.

    --out <PATH>           write the patched edge list to PATH (then stdout
                           gets a one-line summary instead)
    --verify               cross-check incremental vs from-scratch scores
    --threads <N>          worker threads for --verify scoring
    The INPUT FORMAT flags above apply; INPUT defaults to stdin.

BENCH-MATRIX MODE:
    backbone bench-matrix [OPTIONS]

    Sweep generated scenarios × methods × a top-share policy and upsert one
    structured row per cell into the \"matrix\" section of
    BENCH_backbones.json — the regression-tracked perf grid. Rows are keyed
    by spec × method × policy × threads and are deterministic apart from
    the median_ms / edges_per_sec timing fields.

    --specs <LIST>         semicolon-separated scenario specs (default: the
                           committed 4-family × 2-size grid)
    --methods <LIST>       comma-separated method names (default:
                           naive,mst,df,nc,hss-approx — the scalable set)
    --top-share <F>        matched edge coverage per backbone (default 0.1)
    --runs <N>             timed repetitions per cell, median recorded
                           (default 3)
    --threads <N>          worker threads (default 1, for comparable rows)
    --out <PATH>           snapshot file to upsert
                           (default BENCH_backbones.json)

    -h, --help             print this help
";

/// What kind of output the run writes to stdout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputKind {
    /// The backbone as a TSV edge list.
    Backbone,
    /// The full scored-edge table as TSV.
    Scores,
    /// A JSON run summary.
    Summary,
}

/// A fully parsed `backbone` invocation.
#[derive(Debug, Clone)]
pub struct CliConfig {
    /// Input path; `None` reads stdin.
    pub input: Option<PathBuf>,
    /// The backboning method.
    pub method: Method,
    /// The threshold policy.
    pub policy: ThresholdPolicy,
    /// Edge-list parsing options (direction, separator, header, comments).
    pub options: EdgeListOptions,
    /// What to write to stdout.
    pub output: OutputKind,
    /// Worker threads (`0` = automatic).
    pub threads: usize,
    /// Print a per-stage wall-time breakdown to stderr after the run.
    pub timings: bool,
}

/// What a `backbone compare` run writes to stdout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompareOutputKind {
    /// Human-readable comparison tables.
    Table,
    /// The stable JSON report ([`backboning_eval::ComparisonReport::to_json`]).
    Json,
}

/// A fully parsed `backbone compare` invocation.
#[derive(Debug, Clone)]
pub struct CompareCliConfig {
    /// Input path; `None` reads stdin.
    pub input: Option<PathBuf>,
    /// Edge-list parsing options (direction, separator, header, comments).
    pub options: EdgeListOptions,
    /// The comparison engine configuration (methods, matched share, noise
    /// Monte Carlo).
    pub comparison: ComparisonConfig,
    /// What to write to stdout.
    pub output: CompareOutputKind,
}

/// A fully parsed `backbone gen` invocation.
#[derive(Debug, Clone)]
pub struct GenCliConfig {
    /// The scenario to generate.
    pub spec: ScenarioSpec,
    /// Output path; `None` writes the edge list to stdout.
    pub out: Option<PathBuf>,
}

/// A fully parsed `backbone patch` invocation.
#[derive(Debug, Clone)]
pub struct PatchCliConfig {
    /// Graph input path; `None` reads stdin.
    pub input: Option<PathBuf>,
    /// The delta file (add/remove/reweight lines).
    pub delta: PathBuf,
    /// Output path for the patched edge list; `None` writes to stdout.
    pub out: Option<PathBuf>,
    /// Edge-list parsing options (direction, separator, header, comments).
    pub options: EdgeListOptions,
    /// Cross-check incremental against from-scratch rescoring.
    pub verify: bool,
    /// Worker threads for `--verify` scoring (`0` = automatic).
    pub threads: usize,
}

/// A fully parsed `backbone bench-matrix` invocation.
#[derive(Debug, Clone)]
pub struct MatrixCliConfig {
    /// The sweep configuration (specs, methods, policy, runs, threads).
    pub matrix: matrix::MatrixConfig,
    /// The snapshot file whose `"matrix"` section is upserted.
    pub out: PathBuf,
}

/// The parsed command: run the pipeline, compare methods, serve over HTTP,
/// generate a scenario, sweep the bench matrix, or print help.
#[derive(Debug, Clone)]
pub enum Command {
    /// Run the pipeline with this configuration.
    Run(CliConfig),
    /// Run the method comparison (`backbone compare`).
    Compare(CompareCliConfig),
    /// Start the HTTP serving subsystem (`backbone serve`).
    Serve(backboning_server::ServerConfig),
    /// Generate a scenario edge list (`backbone gen`).
    Gen(GenCliConfig),
    /// Sweep the scenario × method bench matrix (`backbone bench-matrix`).
    BenchMatrix(MatrixCliConfig),
    /// Apply a batched delta to an edge list (`backbone patch`).
    Patch(PatchCliConfig),
    /// Print the usage text and exit successfully.
    Help,
}

/// A usage error: the message to print alongside the usage hint (exit 2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UsageError(pub String);

impl std::fmt::Display for UsageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for UsageError {}

fn usage_error(message: impl Into<String>) -> UsageError {
    UsageError(message.into())
}

fn parse_number<T: std::str::FromStr>(flag: &str, value: &str) -> Result<T, UsageError> {
    value
        .parse::<T>()
        .map_err(|_| usage_error(format!("{flag}: cannot parse `{value}` as a number")))
}

fn parse_separator(flag: &str, value: &str) -> Result<char, UsageError> {
    let mut chars = value.chars();
    match (chars.next(), chars.next()) {
        (Some(c), None) => Ok(c),
        _ => Err(usage_error(format!(
            "{flag}: expected a single character, got `{value}`"
        ))),
    }
}

/// Apply one of the shared edge-list format flags (`--undirected`, `--csv`,
/// `--separator`, …) to `options`, consuming its value from `args` when the
/// flag takes one. Returns `false` when `flag` is not a format flag.
fn apply_format_flag(
    flag: &str,
    args: &mut impl Iterator<Item = String>,
    options: &mut EdgeListOptions,
) -> Result<bool, UsageError> {
    let mut value_for = |flag: &str| {
        args.next()
            .ok_or_else(|| usage_error(format!("{flag}: missing value")))
    };
    match flag {
        "--undirected" => options.direction = Direction::Undirected,
        "--directed" => options.direction = Direction::Directed,
        "--csv" => options.separator = Some(','),
        "--tsv" => options.separator = Some('\t'),
        "--separator" => {
            options.separator = Some(parse_separator(flag, &value_for(flag)?)?);
        }
        "--header" => options.has_header = true,
        "--comment" => {
            options.comment_prefix = Some(parse_separator(flag, &value_for(flag)?)?);
        }
        "--no-comment" => options.comment_prefix = None,
        _ => return Ok(false),
    }
    Ok(true)
}

/// Patch `--hss-roots` / `--hss-seed` overrides onto an `hss-approx` method.
///
/// The flags are rejected for any other method instead of being silently
/// ignored.
fn apply_hss_params(
    method: Method,
    hss_roots: Option<usize>,
    hss_seed: Option<u64>,
) -> Result<Method, UsageError> {
    match method {
        Method::HssApprox { roots, seed } => Ok(Method::HssApprox {
            roots: hss_roots.unwrap_or(roots),
            seed: hss_seed.unwrap_or(seed),
        }),
        _ if hss_roots.is_some() || hss_seed.is_some() => Err(usage_error(
            "--hss-roots/--hss-seed apply only to the hss-approx method",
        )),
        _ => Ok(method),
    }
}

/// Parse the flags of `backbone serve …` (after the `serve` word).
fn parse_serve_args(mut args: impl Iterator<Item = String>) -> Result<Command, UsageError> {
    let mut config = backboning_server::ServerConfig::default();
    while let Some(arg) = args.next() {
        if matches!(arg.as_str(), "-h" | "--help") {
            return Ok(Command::Help);
        }
        if apply_format_flag(&arg, &mut args, &mut config.options)? {
            continue;
        }
        let mut value_for = |flag: &str| {
            args.next()
                .ok_or_else(|| usage_error(format!("{flag}: missing value")))
        };
        match arg.as_str() {
            "--addr" => config.addr = value_for(&arg)?,
            "--graphs" => config.graphs_dir = Some(PathBuf::from(value_for(&arg)?)),
            "--threads" => config.threads = parse_number(&arg, &value_for(&arg)?)?,
            "--access-log" => config.access_log = true,
            flag if flag.starts_with('-') => {
                return Err(usage_error(format!("unknown serve flag `{flag}`")));
            }
            other => {
                return Err(usage_error(format!(
                    "serve takes no positional arguments, got `{other}`"
                )));
            }
        }
    }
    Ok(Command::Serve(config))
}

/// Parse the flags of `backbone compare …` (after the `compare` word).
fn parse_compare_args(mut args: impl Iterator<Item = String>) -> Result<Command, UsageError> {
    let mut config = CompareCliConfig {
        input: None,
        options: EdgeListOptions::default(),
        comparison: ComparisonConfig::default(),
        output: CompareOutputKind::Table,
    };
    let mut explicit_stdin = false;
    let mut hss_roots: Option<usize> = None;
    let mut hss_seed: Option<u64> = None;
    while let Some(arg) = args.next() {
        if matches!(arg.as_str(), "-h" | "--help") {
            return Ok(Command::Help);
        }
        if apply_format_flag(&arg, &mut args, &mut config.options)? {
            continue;
        }
        let mut value_for = |flag: &str| {
            args.next()
                .ok_or_else(|| usage_error(format!("{flag}: missing value")))
        };
        match arg.as_str() {
            "--methods" => {
                config.comparison.methods =
                    parse_method_list(&value_for(&arg)?).map_err(usage_error)?;
            }
            "--top-share" => config.comparison.top_share = parse_number(&arg, &value_for(&arg)?)?,
            "--noise" => config.comparison.noise_level = parse_number(&arg, &value_for(&arg)?)?,
            "--resamples" => {
                config.comparison.noise_resamples = parse_number(&arg, &value_for(&arg)?)?;
            }
            "--seed" => config.comparison.seed = parse_number(&arg, &value_for(&arg)?)?,
            "--hss-roots" => hss_roots = Some(parse_number(&arg, &value_for(&arg)?)?),
            "--hss-seed" => hss_seed = Some(parse_number(&arg, &value_for(&arg)?)?),
            "--threads" => config.comparison.threads = parse_number(&arg, &value_for(&arg)?)?,
            "-o" | "--output" => {
                let kind = value_for(&arg)?;
                config.output = match kind.as_str() {
                    "table" => CompareOutputKind::Table,
                    "json" => CompareOutputKind::Json,
                    other => {
                        return Err(usage_error(format!(
                            "unknown compare output kind `{other}` (expected table or json)"
                        )))
                    }
                };
            }
            "-" => {
                if config.input.is_some() || explicit_stdin {
                    return Err(usage_error(
                        "unexpected extra input `-` (one edge list per run)",
                    ));
                }
                explicit_stdin = true;
            }
            flag if flag.starts_with('-') => {
                return Err(usage_error(format!("unknown compare flag `{flag}`")));
            }
            path => {
                if config.input.is_some() || explicit_stdin {
                    return Err(usage_error(format!(
                        "unexpected extra input `{path}` (one edge list per run)"
                    )));
                }
                config.input = Some(PathBuf::from(path));
            }
        }
    }
    if hss_roots.is_some() || hss_seed.is_some() {
        if !config
            .comparison
            .methods
            .iter()
            .any(|m| matches!(m, Method::HssApprox { .. }))
        {
            return Err(usage_error(
                "--hss-roots/--hss-seed apply only when --methods includes hss-approx",
            ));
        }
        for method in &mut config.comparison.methods {
            if matches!(method, Method::HssApprox { .. }) {
                *method = apply_hss_params(*method, hss_roots, hss_seed)?;
            }
        }
    }
    Ok(Command::Compare(config))
}

/// Parse the flags of `backbone gen …` (after the `gen` word).
fn parse_gen_args(mut args: impl Iterator<Item = String>) -> Result<Command, UsageError> {
    let mut spec: Option<ScenarioSpec> = None;
    let mut out: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        let mut value_for = |flag: &str| {
            args.next()
                .ok_or_else(|| usage_error(format!("{flag}: missing value")))
        };
        match arg.as_str() {
            "-h" | "--help" => return Ok(Command::Help),
            "--out" => out = Some(PathBuf::from(value_for(&arg)?)),
            flag if flag.starts_with("--") => {
                return Err(usage_error(format!("unknown gen flag `{flag}`")));
            }
            text => {
                if spec.is_some() {
                    return Err(usage_error(format!(
                        "unexpected extra spec `{text}` (one scenario per run)"
                    )));
                }
                spec = Some(
                    ScenarioSpec::parse(text).map_err(|error| usage_error(error.to_string()))?,
                );
            }
        }
    }
    let spec = spec.ok_or_else(|| usage_error("gen requires a scenario spec argument"))?;
    Ok(Command::Gen(GenCliConfig { spec, out }))
}

/// Parse the flags of `backbone bench-matrix …` (after the `bench-matrix`
/// word).
fn parse_matrix_args(mut args: impl Iterator<Item = String>) -> Result<Command, UsageError> {
    let mut config = matrix::MatrixConfig::default();
    let mut out = PathBuf::from("BENCH_backbones.json");
    while let Some(arg) = args.next() {
        let mut value_for = |flag: &str| {
            args.next()
                .ok_or_else(|| usage_error(format!("{flag}: missing value")))
        };
        match arg.as_str() {
            "-h" | "--help" => return Ok(Command::Help),
            "--specs" => {
                config.specs = value_for(&arg)?
                    .split(';')
                    .filter(|text| !text.is_empty())
                    .map(|text| {
                        ScenarioSpec::parse(text).map_err(|error| usage_error(error.to_string()))
                    })
                    .collect::<Result<Vec<ScenarioSpec>, UsageError>>()?;
            }
            "--methods" => {
                config.methods = parse_method_list(&value_for(&arg)?).map_err(usage_error)?;
            }
            "--top-share" => config.top_share = parse_number(&arg, &value_for(&arg)?)?,
            "--runs" => config.runs = parse_number(&arg, &value_for(&arg)?)?,
            "--threads" => config.threads = parse_number(&arg, &value_for(&arg)?)?,
            "--out" => out = PathBuf::from(value_for(&arg)?),
            flag if flag.starts_with('-') => {
                return Err(usage_error(format!("unknown bench-matrix flag `{flag}`")));
            }
            other => {
                return Err(usage_error(format!(
                    "bench-matrix takes no positional arguments, got `{other}`"
                )));
            }
        }
    }
    Ok(Command::BenchMatrix(MatrixCliConfig {
        matrix: config,
        out,
    }))
}

/// Parse the flags of `backbone patch …` (after the `patch` word).
fn parse_patch_args(mut args: impl Iterator<Item = String>) -> Result<Command, UsageError> {
    let mut delta: Option<PathBuf> = None;
    let mut input: Option<PathBuf> = None;
    let mut explicit_stdin = false;
    let mut out: Option<PathBuf> = None;
    let mut options = EdgeListOptions::default();
    let mut verify = false;
    let mut threads = 0usize;
    while let Some(arg) = args.next() {
        if apply_format_flag(&arg, &mut args, &mut options)? {
            continue;
        }
        let mut value_for = |flag: &str| {
            args.next()
                .ok_or_else(|| usage_error(format!("{flag}: missing value")))
        };
        match arg.as_str() {
            "-h" | "--help" => return Ok(Command::Help),
            "--out" => out = Some(PathBuf::from(value_for(&arg)?)),
            "--verify" => verify = true,
            "--threads" => threads = parse_number(&arg, &value_for(&arg)?)?,
            flag if flag.starts_with("--") => {
                return Err(usage_error(format!("unknown patch flag `{flag}`")));
            }
            "-" => {
                if delta.is_none() {
                    return Err(usage_error("the delta argument cannot be stdin"));
                }
                explicit_stdin = true;
            }
            path => {
                if delta.is_none() {
                    delta = Some(PathBuf::from(path));
                } else if input.is_none() && !explicit_stdin {
                    input = Some(PathBuf::from(path));
                } else {
                    return Err(usage_error(format!(
                        "unexpected extra argument `{path}` (patch takes a delta file and one input)"
                    )));
                }
            }
        }
    }
    let delta = delta.ok_or_else(|| usage_error("patch requires a delta file argument"))?;
    Ok(Command::Patch(PatchCliConfig {
        input,
        delta,
        out,
        options,
        verify,
        threads,
    }))
}

/// Parse a `backbone` command line (without the program name).
pub fn parse_args<I>(args: I) -> Result<Command, UsageError>
where
    I: IntoIterator<Item = String>,
{
    let mut args = args.into_iter().peekable();
    if args.peek().map(String::as_str) == Some("serve") {
        args.next();
        return parse_serve_args(args);
    }
    if args.peek().map(String::as_str) == Some("compare") {
        args.next();
        return parse_compare_args(args);
    }
    if args.peek().map(String::as_str) == Some("gen") {
        args.next();
        return parse_gen_args(args);
    }
    if args.peek().map(String::as_str) == Some("bench-matrix") {
        args.next();
        return parse_matrix_args(args);
    }
    if args.peek().map(String::as_str) == Some("patch") {
        args.next();
        return parse_patch_args(args);
    }
    let mut method: Option<Method> = None;
    let mut policy: Option<ThresholdPolicy> = None;
    let mut input: Option<PathBuf> = None;
    let mut explicit_stdin = false;
    let mut options = EdgeListOptions::default();
    let mut output = OutputKind::Backbone;
    let mut threads = 0usize;
    let mut timings = false;
    let mut hss_roots: Option<usize> = None;
    let mut hss_seed: Option<u64> = None;

    let set_policy = |new: ThresholdPolicy, existing: &mut Option<ThresholdPolicy>| {
        if existing.is_some() {
            return Err(usage_error(
                "exactly one policy flag (--threshold, --top-k, --top-share, --coverage) may be given",
            ));
        }
        *existing = Some(new);
        Ok(())
    };

    while let Some(arg) = args.next() {
        if apply_format_flag(&arg, &mut args, &mut options)? {
            continue;
        }
        let mut value_for = |flag: &str| {
            args.next()
                .ok_or_else(|| usage_error(format!("{flag}: missing value")))
        };
        match arg.as_str() {
            "-h" | "--help" => return Ok(Command::Help),
            "-m" | "--method" => {
                let name = value_for(&arg)?;
                method = Some(Method::parse(&name).ok_or_else(|| {
                    usage_error(format!(
                        "unknown method `{name}` (expected one of: nc, ncb, df, hss, \
                         hss-approx, ds, mst, naive)"
                    ))
                })?);
            }
            "--hss-roots" => hss_roots = Some(parse_number(&arg, &value_for(&arg)?)?),
            "--hss-seed" => hss_seed = Some(parse_number(&arg, &value_for(&arg)?)?),
            "--threshold" => {
                let v: f64 = parse_number(&arg, &value_for(&arg)?)?;
                set_policy(ThresholdPolicy::Score(v), &mut policy)?;
            }
            "--top-k" => {
                let v: usize = parse_number(&arg, &value_for(&arg)?)?;
                set_policy(ThresholdPolicy::TopK(v), &mut policy)?;
            }
            "--top-share" => {
                let v: f64 = parse_number(&arg, &value_for(&arg)?)?;
                set_policy(ThresholdPolicy::TopShare(v), &mut policy)?;
            }
            "--coverage" => {
                let v: f64 = parse_number(&arg, &value_for(&arg)?)?;
                set_policy(ThresholdPolicy::Coverage(v), &mut policy)?;
            }
            "-o" | "--output" => {
                let kind = value_for(&arg)?;
                output = match kind.as_str() {
                    "backbone" => OutputKind::Backbone,
                    "scores" => OutputKind::Scores,
                    "summary" => OutputKind::Summary,
                    other => {
                        return Err(usage_error(format!(
                            "unknown output kind `{other}` (expected backbone, scores or summary)"
                        )))
                    }
                };
            }
            "--threads" => threads = parse_number(&arg, &value_for(&arg)?)?,
            "--timings" => timings = true,
            "-" => {
                if input.is_some() || explicit_stdin {
                    return Err(usage_error(
                        "unexpected extra input `-` (one edge list per run)",
                    ));
                }
                // Stdin is the default; an explicit `-` documents it.
                explicit_stdin = true;
            }
            flag if flag.starts_with('-') => {
                return Err(usage_error(format!("unknown flag `{flag}`")));
            }
            path => {
                if input.is_some() || explicit_stdin {
                    return Err(usage_error(format!(
                        "unexpected extra input `{path}` (one edge list per run)"
                    )));
                }
                input = Some(PathBuf::from(path));
            }
        }
    }

    let method = method.ok_or_else(|| usage_error("--method is required"))?;
    let method = apply_hss_params(method, hss_roots, hss_seed)?;
    let policy = policy.ok_or_else(|| {
        usage_error("a policy flag (--threshold, --top-k, --top-share or --coverage) is required")
    })?;
    Ok(Command::Run(CliConfig {
        input,
        method,
        policy,
        options,
        output,
        threads,
        timings,
    }))
}

/// Execute a parsed configuration, writing the requested output to `out`.
///
/// The input is streamed line by line — from the named file, or from stdin
/// when no path was given — so the full edge list is never buffered.
pub fn execute(config: &CliConfig, out: &mut dyn Write) -> Result<(), String> {
    // Parse straight into the compact u32/CSR core: the pipeline is generic
    // over both representations with bit-identical output, and the CSR form
    // is what keeps million-edge runs inside a laptop's memory.
    let ingest_start = std::time::Instant::now();
    let graph = match &config.input {
        Some(path) => backboning_graph::io::read_edge_list_csr_file(path, &config.options),
        None => {
            let stdin = std::io::stdin();
            read_edge_list_csr_named(BufReader::new(stdin.lock()), &config.options, "<stdin>")
        }
    }
    .map_err(|e| e.to_string())?;
    let ingest = ingest_start.elapsed();

    let run = Pipeline::new(config.method, config.policy)
        .with_threads(config.threads)
        .run(&graph)
        .map_err(|e| e.to_string())?;

    match config.output {
        OutputKind::Backbone => run.write_backbone(&mut *out).map_err(|e| e.to_string())?,
        OutputKind::Scores => run.write_scores(&mut *out).map_err(|e| e.to_string())?,
        OutputKind::Summary => {
            writeln!(out, "{}", run.summary_json()).map_err(|e| e.to_string())?
        }
    }
    if config.timings {
        eprint!("{}", render_timings_table(ingest, &run.stages));
    }
    Ok(())
}

/// The `--timings` stderr table: one row per pipeline stage (ingest, then
/// the [`backboning::StageTimings`] stages) plus a total.
fn render_timings_table(ingest: std::time::Duration, stages: &backboning::StageTimings) -> String {
    let ms = |d: std::time::Duration| d.as_secs_f64() * 1e3;
    let mut rows = vec![("ingest", ms(ingest))];
    if let Some(score) = stages.score {
        rows.push(("score", ms(score)));
    }
    rows.push(("select", ms(stages.select)));
    rows.push(("build", ms(stages.build)));
    let total: f64 = rows.iter().map(|(_, v)| v).sum();
    rows.push(("total", total));
    let mut table = String::from("stage         ms\n------  --------\n");
    for (stage, value) in rows {
        table.push_str(&format!("{stage:<6}  {value:>8.3}\n"));
    }
    table
}

/// Execute a parsed `backbone compare` configuration, writing the report to
/// `out`.
pub fn execute_compare(config: &CompareCliConfig, out: &mut dyn Write) -> Result<(), String> {
    let graph = match &config.input {
        Some(path) => backboning_graph::io::read_edge_list_csr_file(path, &config.options),
        None => {
            let stdin = std::io::stdin();
            read_edge_list_csr_named(BufReader::new(stdin.lock()), &config.options, "<stdin>")
        }
    }
    .map_err(|e| e.to_string())?;

    let report = Comparison::new(config.comparison.clone())
        .map_err(|e| e.to_string())?
        .run(&graph)
        .map_err(|e| e.to_string())?;

    let rendered = match config.output {
        CompareOutputKind::Table => report.render_table(),
        CompareOutputKind::Json => {
            let mut json = report.to_json();
            json.push('\n');
            json
        }
    };
    out.write_all(rendered.as_bytes())
        .map_err(|e| e.to_string())
}

/// Execute a parsed `backbone gen` configuration: generate the scenario and
/// write its edge list to stdout, or to `--out PATH` (then `out` gets a
/// one-line summary instead).
pub fn execute_gen(config: &GenCliConfig, out: &mut dyn Write) -> Result<(), String> {
    let graph = config.spec.generate().map_err(|e| e.to_string())?;
    match &config.out {
        Some(path) => {
            backboning_graph::io::write_edge_list_file(&graph, path).map_err(|e| e.to_string())?;
            writeln!(
                out,
                "{}: {} nodes, {} edges -> {}",
                config.spec.render(),
                graph.node_count(),
                graph.edge_count(),
                path.display()
            )
            .map_err(|e| e.to_string())
        }
        None => backboning_graph::io::write_edge_list(&graph, &mut *out).map_err(|e| e.to_string()),
    }
}

/// Execute a parsed `backbone patch` configuration: apply the delta batch
/// (transactionally — any bad line rejects the whole file with its line
/// number) and write the patched edge list. With `--verify`, every local
/// method is rescored through the incremental [`backboning::delta`] path
/// *and* from scratch on the patched graph, and the run fails unless the
/// two agree bit-for-bit.
pub fn execute_patch(config: &PatchCliConfig, out: &mut dyn Write) -> Result<(), String> {
    let graph = match &config.input {
        Some(path) => backboning_graph::io::read_edge_list_csr_file(path, &config.options),
        None => {
            let stdin = std::io::stdin();
            read_edge_list_csr_named(BufReader::new(stdin.lock()), &config.options, "<stdin>")
        }
    }
    .map_err(|e| e.to_string())?;

    let delta_text = std::fs::read_to_string(&config.delta)
        .map_err(|e| format!("{}: {e}", config.delta.display()))?;
    let batch = DeltaBatch::parse_tsv(&delta_text)
        .map_err(|e| format!("{}: {e}", config.delta.display()))?;
    if batch.is_empty() {
        return Err(format!(
            "{}: delta contains no operations",
            config.delta.display()
        ));
    }
    let (patched, effect) =
        apply_batch(&graph, &batch).map_err(|e| format!("{}: {e}", config.delta.display()))?;

    if config.verify {
        // The churn-parity cross-check, offline: chain the incremental path
        // off the pre-patch scores and compare against from-scratch scoring
        // of the patched graph. Methods that legitimately fail (e.g. a
        // doubly-stochastic scaling that stops converging) must fail on
        // *both* paths to count as parity.
        let methods = [
            Method::NaiveThreshold,
            Method::DisparityFilter,
            Method::NoiseCorrected,
            Method::DoublyStochastic,
        ];
        let mut verified = Vec::new();
        for method in methods {
            let incremental = match method.score_with_threads(&graph, config.threads) {
                Ok(previous) => {
                    delta_rescore(method, &patched, &previous, &effect, config.threads).ok()
                }
                // No pre-patch scores to chain from — the incremental path
                // would itself fall back to a full pass.
                Err(_) => method.score_with_threads(&patched, config.threads).ok(),
            };
            let fresh = method.score_with_threads(&patched, config.threads).ok();
            let agree = match (&incremental, &fresh) {
                (Some(incremental), Some(fresh)) => incremental == fresh,
                (None, None) => true,
                _ => false,
            };
            if !agree {
                return Err(format!(
                    "--verify: {} incremental scores differ from from-scratch scoring",
                    method.cli_name()
                ));
            }
            verified.push(method.cli_name());
        }
        eprintln!(
            "backbone patch --verify: incremental == from-scratch for {}",
            verified.join(", ")
        );
    }

    match &config.out {
        Some(path) => {
            backboning_graph::io::write_edge_list_file(&patched, path)
                .map_err(|e| format!("{}: {e}", path.display()))?;
            writeln!(
                out,
                "patched: {} nodes, {} edges ({} added, {} removed, {} reweighted) -> {}",
                patched.node_count(),
                patched.edge_count(),
                effect.added,
                effect.removed,
                effect.reweighted,
                path.display()
            )
            .map_err(|e| e.to_string())
        }
        None => {
            backboning_graph::io::write_edge_list(&patched, &mut *out).map_err(|e| e.to_string())
        }
    }
}

/// Execute a parsed `backbone bench-matrix` configuration: run the sweep,
/// upsert the rows into the snapshot file's `"matrix"` section, and echo
/// the rows (plus a summary line) to `out`.
pub fn execute_bench_matrix(config: &MatrixCliConfig, out: &mut dyn Write) -> Result<(), String> {
    let rows = matrix::run_matrix(&config.matrix)?;
    // Missing file and empty file (e.g. a fresh mktemp target) both start a
    // new snapshot document.
    let existing = std::fs::read_to_string(&config.out)
        .ok()
        .filter(|text| !text.trim().is_empty())
        .unwrap_or_else(|| "{\n}\n".to_string());
    if !existing.trim_end().ends_with('}') {
        return Err(format!(
            "{}: existing file is not a snapshot JSON document",
            config.out.display()
        ));
    }
    let merged = matrix::merge_rows(matrix::extract_rows(&existing), rows.clone());
    let updated = matrix::with_matrix_section(&existing, &merged);
    // Self-check before writing: every merged row must survive a re-parse of
    // the rendered section, or the upsert would silently drop cells. Timing
    // floats are compared after rendering (parse-back sees rounded values).
    let rendered: Vec<String> = merged.iter().map(matrix::render_row).collect();
    let reparsed: Vec<String> = matrix::extract_rows(&updated)
        .iter()
        .map(matrix::render_row)
        .collect();
    if reparsed != rendered {
        return Err(format!(
            "bench-matrix self-check failed: {} rows rendered, {} parsed back",
            rendered.len(),
            reparsed.len()
        ));
    }
    std::fs::write(&config.out, &updated).map_err(|e| format!("{}: {e}", config.out.display()))?;
    for row in &rows {
        writeln!(out, "{}", matrix::render_row(row)).map_err(|e| e.to_string())?;
    }
    writeln!(
        out,
        "bench-matrix: {} cell(s) swept, {} total in {}",
        rows.len(),
        merged.len(),
        config.out.display()
    )
    .map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Command, UsageError> {
        parse_args(args.iter().map(|s| s.to_string()))
    }

    fn config(args: &[&str]) -> CliConfig {
        match parse(args).unwrap() {
            Command::Run(config) => config,
            _ => panic!("expected a run command"),
        }
    }

    fn compare_config(args: &[&str]) -> CompareCliConfig {
        match parse(args).unwrap() {
            Command::Compare(config) => config,
            _ => panic!("expected a compare command"),
        }
    }

    #[test]
    fn minimal_invocation_reads_stdin() {
        let config = config(&["--method", "nc", "--top-k", "5"]);
        assert_eq!(config.method, Method::NoiseCorrected);
        assert_eq!(config.policy, ThresholdPolicy::TopK(5));
        assert!(config.input.is_none());
        assert_eq!(config.output, OutputKind::Backbone);
        assert_eq!(config.threads, 0);
        assert!(!config.timings);
    }

    #[test]
    fn timings_flag_parses_and_renders_a_stage_table() {
        assert!(config(&["-m", "nc", "--top-k", "5", "--timings"]).timings);

        let stages = backboning::StageTimings {
            score: Some(std::time::Duration::from_micros(1500)),
            select: std::time::Duration::from_micros(250),
            build: std::time::Duration::from_micros(250),
        };
        let table = render_timings_table(std::time::Duration::from_millis(2), &stages);
        assert_eq!(
            table,
            "stage         ms\n\
             ------  --------\n\
             ingest     2.000\n\
             score      1.500\n\
             select     0.250\n\
             build      0.250\n\
             total      4.000\n"
        );
        // Without a score stage the row disappears instead of reading 0.
        let cached = backboning::StageTimings {
            score: None,
            ..stages
        };
        let table = render_timings_table(std::time::Duration::ZERO, &cached);
        assert!(!table.contains("score"));
        assert!(table.contains("total      0.500\n"), "{table}");
    }

    #[test]
    fn full_invocation_parses_every_flag() {
        let config = config(&[
            "-m",
            "df",
            "--threshold",
            "0.95",
            "--undirected",
            "--csv",
            "--header",
            "--comment",
            "%",
            "-o",
            "summary",
            "--threads",
            "3",
            "edges.csv",
        ]);
        assert_eq!(config.method, Method::DisparityFilter);
        assert_eq!(config.policy, ThresholdPolicy::Score(0.95));
        assert_eq!(config.options.direction, Direction::Undirected);
        assert_eq!(config.options.separator, Some(','));
        assert!(config.options.has_header);
        assert_eq!(config.options.comment_prefix, Some('%'));
        assert_eq!(config.output, OutputKind::Summary);
        assert_eq!(config.threads, 3);
        assert_eq!(
            config.input.as_deref(),
            Some(std::path::Path::new("edges.csv"))
        );
    }

    #[test]
    fn every_method_name_is_accepted() {
        for method in Method::every() {
            let parsed = config(&["--method", method.cli_name(), "--top-k", "1"]);
            assert_eq!(parsed.method, method);
        }
    }

    #[test]
    fn hss_approx_flags_parse_and_are_scoped() {
        // Defaults without overrides.
        let parsed = config(&["--method", "hss-approx", "--top-k", "5"]);
        assert_eq!(parsed.method, Method::hss_approx_default());
        // Explicit overrides.
        let parsed = config(&[
            "--method",
            "hss-approx",
            "--hss-roots",
            "128",
            "--hss-seed",
            "9",
            "--top-k",
            "5",
        ]);
        assert_eq!(
            parsed.method,
            Method::HssApprox {
                roots: 128,
                seed: 9
            }
        );
        // Flag order does not matter: overrides before --method still apply.
        let parsed = config(&["--hss-roots", "64", "-m", "hss-approx", "--top-k", "1"]);
        assert_eq!(
            parsed.method,
            Method::HssApprox {
                roots: 64,
                seed: 4242
            }
        );
        // The flags are rejected for other methods instead of being ignored.
        let err = parse(&["-m", "nc", "--hss-roots", "64", "--top-k", "1"]).unwrap_err();
        assert!(err.0.contains("hss-approx"), "{}", err.0);

        // Compare mode: overrides patch every hss-approx in the list…
        let compare =
            compare_config(&["compare", "--methods", "nc,hss-approx", "--hss-roots", "32"]);
        assert!(compare.comparison.methods.contains(&Method::HssApprox {
            roots: 32,
            seed: 4242
        }));
        // …and error when the list has none.
        let err = parse(&["compare", "--methods", "nc,df", "--hss-seed", "1"]).unwrap_err();
        assert!(err.0.contains("hss-approx"), "{}", err.0);
    }

    #[test]
    fn each_policy_flag_maps_to_its_policy() {
        assert_eq!(
            config(&["-m", "nc", "--threshold", "1.64"]).policy,
            ThresholdPolicy::Score(1.64)
        );
        assert_eq!(
            config(&["-m", "nc", "--top-share", "0.25"]).policy,
            ThresholdPolicy::TopShare(0.25)
        );
        assert_eq!(
            config(&["-m", "nc", "--coverage", "0.9"]).policy,
            ThresholdPolicy::Coverage(0.9)
        );
    }

    #[test]
    fn help_flag_wins() {
        assert!(matches!(parse(&["--help"]), Ok(Command::Help)));
        assert!(matches!(parse(&["-m", "nc", "-h"]), Ok(Command::Help)));
        assert!(matches!(parse(&["serve", "--help"]), Ok(Command::Help)));
        assert!(matches!(parse(&["compare", "-h"]), Ok(Command::Help)));
    }

    #[test]
    fn compare_defaults_need_no_flags() {
        let config = compare_config(&["compare"]);
        assert!(config.input.is_none());
        assert_eq!(config.output, CompareOutputKind::Table);
        assert_eq!(
            config.comparison.methods,
            backboning_eval::comparison::DEFAULT_METHODS.to_vec()
        );
        assert_eq!(config.comparison.top_share, 0.1);
        assert_eq!(config.comparison.noise_level, 0.1);
        assert_eq!(config.comparison.noise_resamples, 8);
        assert_eq!(config.comparison.seed, 4242);
        assert_eq!(config.comparison.threads, 0);
    }

    #[test]
    fn compare_subcommand_parses_its_flags() {
        let config = compare_config(&[
            "compare",
            "--methods",
            "nc,mst,naive",
            "--top-share",
            "0.25",
            "--noise",
            "0.2",
            "--resamples",
            "16",
            "--seed",
            "7",
            "--threads",
            "2",
            "--undirected",
            "--header",
            "-o",
            "json",
            "edges.tsv",
        ]);
        assert_eq!(
            config.comparison.methods,
            vec![
                Method::NoiseCorrected,
                Method::MaximumSpanningTree,
                Method::NaiveThreshold
            ]
        );
        assert_eq!(config.comparison.top_share, 0.25);
        assert_eq!(config.comparison.noise_level, 0.2);
        assert_eq!(config.comparison.noise_resamples, 16);
        assert_eq!(config.comparison.seed, 7);
        assert_eq!(config.comparison.threads, 2);
        assert_eq!(config.options.direction, Direction::Undirected);
        assert!(config.options.has_header);
        assert_eq!(config.output, CompareOutputKind::Json);
        assert_eq!(
            config.input.as_deref(),
            Some(std::path::Path::new("edges.tsv"))
        );
        // `all` expands to the full registry.
        let all = compare_config(&["compare", "--methods", "all"]);
        assert_eq!(all.comparison.methods, Method::every().to_vec());
    }

    #[test]
    fn compare_usage_errors_are_reported() {
        for (args, needle) in [
            (&["compare", "--wat"][..], "unknown compare flag"),
            (&["compare", "--methods", "nc,zz"][..], "unknown method"),
            (&["compare", "--methods", "nc,nc"][..], "duplicate method"),
            (&["compare", "--methods"][..], "missing value"),
            (&["compare", "--top-share", "x"][..], "cannot parse"),
            (&["compare", "-o", "summary"][..], "unknown compare output"),
            (&["compare", "a.tsv", "b.tsv"][..], "extra input"),
            (&["compare", "-", "a.tsv"][..], "extra input"),
        ] {
            let err = parse(args).unwrap_err();
            assert!(
                err.0.contains(needle),
                "{args:?}: expected `{needle}` in `{}`",
                err.0
            );
        }
    }

    #[test]
    fn execute_compare_runs_a_file_end_to_end() {
        let dir = std::env::temp_dir().join("backboning_cli_compare_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("edges.tsv");
        std::fs::write(&path, "a b 5\nb c 4\nc d 3\nd a 2\na c 1\n").unwrap();

        let mut config = compare_config(&[
            "compare",
            "--methods",
            "naive,mst",
            "--top-share",
            "0.4",
            "--resamples",
            "2",
            "--undirected",
            "-o",
            "json",
        ]);
        config.input = Some(path.clone());
        let mut out = Vec::new();
        execute_compare(&config, &mut out).unwrap();
        let json = String::from_utf8(out).unwrap();
        assert!(json.contains("\"matched_edges\": 2"), "{json}");
        assert!(json.contains("\"method\": \"naive\""));
        assert!(json.contains("\"jaccard\""));
        // The CLI's JSON is the timed rendering: one score_wall_ms per method.
        assert_eq!(json.matches("\"score_wall_ms\"").count(), 2, "{json}");
        assert!(json.ends_with('\n'));

        let mut table_config = config.clone();
        table_config.output = CompareOutputKind::Table;
        let mut table_out = Vec::new();
        execute_compare(&table_config, &mut table_out).unwrap();
        let table = String::from_utf8(table_out).unwrap();
        assert!(table.contains("Pairwise Jaccard agreement"), "{table}");
        assert!(table.contains("score ms"), "{table}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn serve_subcommand_parses_its_flags() {
        let Command::Serve(config) = parse(&[
            "serve",
            "--addr",
            "0.0.0.0:9000",
            "--graphs",
            "data/graphs",
            "--threads",
            "2",
            "--undirected",
            "--header",
            "--access-log",
        ])
        .unwrap() else {
            panic!("expected a serve command")
        };
        assert_eq!(config.addr, "0.0.0.0:9000");
        assert_eq!(
            config.graphs_dir.as_deref(),
            Some(std::path::Path::new("data/graphs"))
        );
        assert_eq!(config.threads, 2);
        assert_eq!(config.options.direction, Direction::Undirected);
        assert!(config.options.has_header);
        assert!(config.access_log);
    }

    #[test]
    fn serve_defaults_need_no_flags() {
        let Command::Serve(config) = parse(&["serve"]).unwrap() else {
            panic!("expected a serve command")
        };
        assert_eq!(config.addr, "127.0.0.1:4817");
        assert!(config.graphs_dir.is_none());
        assert_eq!(config.threads, 0);
        assert!(!config.access_log);
    }

    #[test]
    fn serve_usage_errors_are_reported() {
        for (args, needle) in [
            (&["serve", "--wat"][..], "unknown serve flag"),
            (&["serve", "edges.tsv"][..], "no positional arguments"),
            (&["serve", "--addr"][..], "missing value"),
            (&["serve", "--threads", "x"][..], "cannot parse"),
            (&["serve", "--separator", "ab"][..], "single character"),
        ] {
            let err = parse(args).unwrap_err();
            assert!(
                err.0.contains(needle),
                "{args:?}: expected `{needle}` in `{}`",
                err.0
            );
        }
    }

    #[test]
    fn usage_errors_are_reported() {
        for (args, needle) in [
            (&["--top-k", "5"][..], "--method is required"),
            (&["-m", "nc"][..], "policy flag"),
            (&["-m", "zz", "--top-k", "1"][..], "unknown method"),
            (&["-m", "nc", "--top-k", "x"][..], "cannot parse"),
            (
                &["-m", "nc", "--top-k", "1", "--coverage", "0.5"][..],
                "exactly one policy",
            ),
            (&["-m", "nc", "--top-k", "1", "--wat"][..], "unknown flag"),
            (&["-m", "nc", "--top-k", "1", "a", "b"][..], "extra input"),
            (&["-m", "nc", "--top-k"][..], "missing value"),
            (
                &["-m", "nc", "--top-k", "1", "--separator", "ab"][..],
                "single character",
            ),
            (
                &["-m", "nc", "--top-k", "1", "-o", "wat"][..],
                "unknown output kind",
            ),
        ] {
            let err = parse(args).unwrap_err();
            assert!(
                err.0.contains(needle),
                "{args:?}: expected `{needle}` in `{}`",
                err.0
            );
        }
    }

    #[test]
    fn explicit_stdin_dash_conflicts_with_a_path() {
        // `-` alone is fine (stdin, the default).
        assert!(config(&["-m", "nc", "--top-k", "1", "-"]).input.is_none());
        // But mixing `-` with a path (in either order) is a usage error, not a
        // silent override.
        for args in [
            &["-m", "nc", "--top-k", "1", "edges.tsv", "-"][..],
            &["-m", "nc", "--top-k", "1", "-", "edges.tsv"][..],
            &["-m", "nc", "--top-k", "1", "-", "-"][..],
        ] {
            let err = parse(args).unwrap_err();
            assert!(err.0.contains("extra input"), "{args:?}: `{}`", err.0);
        }
    }

    #[test]
    fn no_comment_disables_comment_handling() {
        let config = config(&["-m", "nc", "--top-k", "1", "--no-comment"]);
        assert_eq!(config.options.comment_prefix, None);
    }

    #[test]
    fn execute_runs_a_file_end_to_end() {
        let dir = std::env::temp_dir().join("backboning_cli_lib_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("edges.tsv");
        std::fs::write(&path, "a b 5\nb c 4\nc d 1\n").unwrap();

        let mut config = config(&["-m", "naive", "--top-k", "2", "--undirected"]);
        config.input = Some(path.clone());
        let mut out = Vec::new();
        execute(&config, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("a\tb\t5"));
        assert!(text.contains("b\tc\t4"));
        assert!(!text.contains("c\td"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn gen_subcommand_parses_spec_and_out() {
        let Command::Gen(config) = parse(&["gen", "ba:n=100,m=2"]).unwrap() else {
            panic!("expected a gen command");
        };
        assert_eq!(config.spec.nodes, 100);
        assert!(config.out.is_none());

        let Command::Gen(config) =
            parse(&["gen", "geo:n=50,r=0.2", "--out", "scenario.tsv"]).unwrap()
        else {
            panic!("expected a gen command");
        };
        assert_eq!(config.spec.family.tag(), "geo");
        assert_eq!(
            config.out.as_deref(),
            Some(std::path::Path::new("scenario.tsv"))
        );
    }

    #[test]
    fn gen_usage_errors_are_reported() {
        for (args, needle) in [
            (&["gen"][..], "requires a scenario spec"),
            (&["gen", "zz:n=10"][..], "unknown family"),
            (&["gen", "ba:n=10", "er:n=10"][..], "extra spec"),
            (&["gen", "ba:n=10", "--wat"][..], "unknown gen flag"),
            (&["gen", "ba:n=10", "--out"][..], "missing value"),
        ] {
            let err = parse(args).unwrap_err();
            assert!(
                err.0.contains(needle),
                "{args:?}: `{needle}` not in `{}`",
                err.0
            );
        }
        assert!(matches!(parse(&["gen", "--help"]), Ok(Command::Help)));
    }

    #[test]
    fn bench_matrix_subcommand_parses_defaults_and_overrides() {
        let Command::BenchMatrix(config) = parse(&["bench-matrix"]).unwrap() else {
            panic!("expected a bench-matrix command");
        };
        assert_eq!(config.matrix.specs.len(), 8);
        assert_eq!(config.matrix.methods.len(), 5);
        assert_eq!(config.matrix.top_share, 0.1);
        assert_eq!(config.matrix.runs, 3);
        assert_eq!(config.matrix.threads, 1);
        assert_eq!(config.out, std::path::PathBuf::from("BENCH_backbones.json"));

        let Command::BenchMatrix(config) = parse(&[
            "bench-matrix",
            "--specs",
            "ba:n=100,m=2;sb:n=120,b=3,w=lognormal(0,1)",
            "--methods",
            "nc,df",
            "--top-share",
            "0.2",
            "--runs",
            "1",
            "--threads",
            "2",
            "--out",
            "grid.json",
        ])
        .unwrap() else {
            panic!("expected a bench-matrix command");
        };
        assert_eq!(config.matrix.specs.len(), 2);
        assert_eq!(config.matrix.specs[1].family.tag(), "sb");
        assert_eq!(
            config.matrix.methods,
            vec![Method::NoiseCorrected, Method::DisparityFilter]
        );
        assert_eq!(config.matrix.top_share, 0.2);
        assert_eq!(config.matrix.runs, 1);
        assert_eq!(config.matrix.threads, 2);
        assert_eq!(config.out, std::path::PathBuf::from("grid.json"));
    }

    #[test]
    fn bench_matrix_usage_errors_are_reported() {
        for (args, needle) in [
            (&["bench-matrix", "--specs", "zz:n=1"][..], "unknown family"),
            (&["bench-matrix", "--methods", "wat"][..], "wat"),
            (&["bench-matrix", "--wat"][..], "unknown bench-matrix flag"),
            (&["bench-matrix", "positional"][..], "no positional"),
            (&["bench-matrix", "--runs"][..], "missing value"),
        ] {
            let err = parse(args).unwrap_err();
            assert!(
                err.0.contains(needle),
                "{args:?}: `{needle}` not in `{}`",
                err.0
            );
        }
    }

    #[test]
    fn execute_gen_writes_deterministic_edge_list() {
        let Command::Gen(config) = parse(&["gen", "sb:n=60,b=3,pin=0.3,pout=0.05,seed=5"]).unwrap()
        else {
            panic!("expected a gen command");
        };
        let mut first = Vec::new();
        execute_gen(&config, &mut first).unwrap();
        let mut second = Vec::new();
        execute_gen(&config, &mut second).unwrap();
        assert_eq!(first, second);
        let text = String::from_utf8(first).unwrap();
        assert!(text.starts_with("# source\ttarget\tweight\n"));
        assert!(text.lines().count() > 10);
    }

    #[test]
    fn execute_bench_matrix_upserts_rows_into_fresh_file() {
        let dir =
            std::env::temp_dir().join(format!("backboning_cli_matrix_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("grid.json");
        let Command::BenchMatrix(mut config) = parse(&[
            "bench-matrix",
            "--specs",
            "ba:n=120,m=2,seed=5",
            "--methods",
            "nc,mst",
            "--runs",
            "1",
        ])
        .unwrap() else {
            panic!("expected a bench-matrix command");
        };
        config.out = out.clone();

        let mut echoed = Vec::new();
        execute_bench_matrix(&config, &mut echoed).unwrap();
        let first = std::fs::read_to_string(&out).unwrap();
        assert_eq!(matrix::extract_rows(&first).len(), 2);

        // A second identical run must upsert in place, not duplicate rows,
        // and keep the deterministic fields byte-identical.
        execute_bench_matrix(&config, &mut Vec::new()).unwrap();
        let second = std::fs::read_to_string(&out).unwrap();
        assert_eq!(matrix::extract_rows(&second).len(), 2);
        let strip = |text: &str| -> Vec<String> {
            matrix::extract_rows(text)
                .into_iter()
                .map(|mut row| {
                    row.median_ms = 0.0;
                    row.edges_per_sec = 0.0;
                    matrix::render_row(&row)
                })
                .collect()
        };
        assert_eq!(strip(&first), strip(&second));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn execute_bench_matrix_accepts_empty_file_and_rejects_non_json() {
        let dir = std::env::temp_dir().join(format!(
            "backboning_cli_matrix_empty_test_{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let Command::BenchMatrix(mut config) = parse(&[
            "bench-matrix",
            "--specs",
            "ba:n=120,m=2,seed=5",
            "--methods",
            "nc",
            "--runs",
            "1",
        ])
        .unwrap() else {
            panic!("expected a bench-matrix command");
        };

        // An existing zero-byte file (the mktemp idiom) starts a fresh
        // snapshot document instead of failing.
        let empty = dir.join("empty.json");
        std::fs::write(&empty, "").unwrap();
        config.out = empty.clone();
        execute_bench_matrix(&config, &mut Vec::new()).unwrap();
        let written = std::fs::read_to_string(&empty).unwrap();
        assert_eq!(matrix::extract_rows(&written).len(), 1);

        // A non-JSON file is refused, not clobbered.
        let bogus = dir.join("notes.txt");
        std::fs::write(&bogus, "not a snapshot\n").unwrap();
        config.out = bogus.clone();
        let err = execute_bench_matrix(&config, &mut Vec::new()).unwrap_err();
        assert!(err.contains("not a snapshot"), "unexpected error: {err}");
        assert_eq!(std::fs::read_to_string(&bogus).unwrap(), "not a snapshot\n");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn execute_surfaces_named_parse_errors() {
        let dir = std::env::temp_dir().join("backboning_cli_lib_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("broken.tsv");
        std::fs::write(&path, "a b heavy\n").unwrap();

        let mut config = config(&["-m", "nc", "--top-k", "2"]);
        config.input = Some(path.clone());
        let err = execute(&config, &mut Vec::new()).unwrap_err();
        assert!(err.contains("broken.tsv"), "missing path in `{err}`");
        assert!(err.contains("line 1"), "missing line in `{err}`");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn patch_arguments_parse() {
        let Command::Patch(config) = parse(&[
            "patch",
            "delta.tsv",
            "--undirected",
            "--verify",
            "--threads",
            "2",
            "--out",
            "patched.tsv",
            "graph.tsv",
        ])
        .unwrap() else {
            panic!("expected a patch command");
        };
        assert_eq!(config.delta, PathBuf::from("delta.tsv"));
        assert_eq!(config.input, Some(PathBuf::from("graph.tsv")));
        assert_eq!(config.out, Some(PathBuf::from("patched.tsv")));
        assert_eq!(config.options.direction, Direction::Undirected);
        assert!(config.verify);
        assert_eq!(config.threads, 2);

        // Stdin input, no flags.
        let Command::Patch(config) = parse(&["patch", "delta.tsv"]).unwrap() else {
            panic!("expected a patch command");
        };
        assert!(config.input.is_none());
        assert!(!config.verify);

        assert!(matches!(parse(&["patch", "-h"]), Ok(Command::Help)));
        assert!(parse(&["patch"]).is_err(), "delta file is required");
        assert!(parse(&["patch", "-", "g.tsv"]).is_err(), "delta from stdin");
        assert!(parse(&["patch", "d.tsv", "--wat"]).is_err());
        assert!(parse(&["patch", "d.tsv", "a", "b"]).is_err());
    }

    #[test]
    fn execute_patch_applies_and_verifies_end_to_end() {
        let dir =
            std::env::temp_dir().join(format!("backboning_cli_patch_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let graph_path = dir.join("graph.tsv");
        std::fs::write(&graph_path, "a b 5\nb c 4\nc d 1\nd a 3\n").unwrap();
        let delta_path = dir.join("delta.tsv");
        std::fs::write(&delta_path, "reweight c d 9\nadd a c 2\nremove d a\n").unwrap();

        let Command::Patch(mut config) =
            parse(&["patch", "placeholder.tsv", "--undirected", "--verify"]).unwrap()
        else {
            panic!("expected a patch command");
        };
        config.delta = delta_path.clone();
        config.input = Some(graph_path.clone());

        // Stdout mode: the patched edge list itself.
        let mut out = Vec::new();
        execute_patch(&config, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert_eq!(
            text,
            "# source\ttarget\tweight\na\tb\t5\nb\tc\t4\nc\td\t9\na\tc\t2\n"
        );

        // --out mode: the file gets the same bytes, stdout a summary line.
        let out_path = dir.join("patched.tsv");
        config.out = Some(out_path.clone());
        let mut summary = Vec::new();
        execute_patch(&config, &mut summary).unwrap();
        assert_eq!(std::fs::read_to_string(&out_path).unwrap(), text);
        let summary = String::from_utf8(summary).unwrap();
        assert!(
            summary.contains("4 nodes, 4 edges (1 added, 1 removed, 1 reweighted)"),
            "{summary}"
        );

        // A bad delta line fails transactionally, naming file and line.
        std::fs::write(&delta_path, "reweight a b 2\nremove a z\n").unwrap();
        config.out = None;
        let err = execute_patch(&config, &mut Vec::new()).unwrap_err();
        assert!(err.contains("delta.tsv"), "{err}");
        assert!(err.contains("line 2"), "{err}");

        // An empty delta is refused rather than silently writing the input.
        std::fs::write(&delta_path, "# nothing here\n").unwrap();
        let err = execute_patch(&config, &mut Vec::new()).unwrap_err();
        assert!(err.contains("no operations"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
