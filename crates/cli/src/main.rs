//! The `backbone` binary: parse the command line, stream the edge list,
//! run the shared [`backboning::Pipeline`], and write the result to stdout —
//! or, as `backbone compare`, run the matched-coverage method comparison
//! (`backboning_eval::Comparison`) — or, as `backbone serve`, start the
//! long-lived HTTP serving subsystem (`backboning_server`) with its
//! scored-graph cache — or, as `backbone gen` / `backbone bench-matrix`,
//! generate deterministic synthetic scenarios (`backboning_gen`) and sweep
//! the scenario × method perf grid into `BENCH_backbones.json` — or, as
//! `backbone patch`, apply a batched add/remove/reweight delta to an edge
//! list (optionally `--verify`-ing the incremental rescoring path).
//!
//! Exit codes: `0` success, `1` runtime failure (unreadable input, malformed
//! edge list, method error, bind failure), `2` usage error.

use std::io::Write;

use backboning_cli::{
    execute, execute_bench_matrix, execute_compare, execute_gen, execute_patch, parse_args,
    Command, USAGE,
};

fn main() {
    let args = std::env::args().skip(1);
    let command = match parse_args(args) {
        Ok(command) => command,
        Err(err) => {
            eprintln!("backbone: {err}");
            eprintln!("Run `backbone --help` for usage.");
            std::process::exit(2);
        }
    };
    match command {
        Command::Help => {
            print!("{USAGE}");
        }
        Command::Serve(config) => match backboning_server::Server::bind(config) {
            Ok(server) => {
                println!(
                    "backbone: serving on http://{} ({} graph(s) loaded, POST /shutdown to stop)",
                    server.addr(),
                    server.registry().graph_count()
                );
                let _ = std::io::stdout().flush();
                server.wait();
            }
            Err(err) => {
                eprintln!("backbone: serve: {err}");
                std::process::exit(1);
            }
        },
        Command::Run(config) => {
            let stdout = std::io::stdout();
            let mut out = stdout.lock();
            if let Err(err) = execute(&config, &mut out) {
                eprintln!("backbone: {err}");
                std::process::exit(1);
            }
            let _ = out.flush();
        }
        Command::Compare(config) => {
            let stdout = std::io::stdout();
            let mut out = stdout.lock();
            if let Err(err) = execute_compare(&config, &mut out) {
                eprintln!("backbone: {err}");
                std::process::exit(1);
            }
            let _ = out.flush();
        }
        Command::Gen(config) => {
            let stdout = std::io::stdout();
            let mut out = stdout.lock();
            if let Err(err) = execute_gen(&config, &mut out) {
                eprintln!("backbone: {err}");
                std::process::exit(1);
            }
            let _ = out.flush();
        }
        Command::BenchMatrix(config) => {
            let stdout = std::io::stdout();
            let mut out = stdout.lock();
            if let Err(err) = execute_bench_matrix(&config, &mut out) {
                eprintln!("backbone: {err}");
                std::process::exit(1);
            }
            let _ = out.flush();
        }
        Command::Patch(config) => {
            let stdout = std::io::stdout();
            let mut out = stdout.lock();
            if let Err(err) = execute_patch(&config, &mut out) {
                eprintln!("backbone: {err}");
                std::process::exit(1);
            }
            let _ = out.flush();
        }
    }
}
