//! End-to-end tests of the `backbone` binary: every method × policy on a
//! user-supplied edge list, from a file and from stdin, plus the three output
//! kinds and the error paths.

use std::io::Write;
use std::process::{Command, Output, Stdio};

const BACKBONE: &str = env!("CARGO_BIN_EXE_backbone");

/// The bundled example network from `docs/GUIDE.md`.
fn trade_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../docs/examples/trade.tsv")
}

fn run_with_stdin(args: &[&str], stdin: Option<&str>) -> Output {
    let mut child = Command::new(BACKBONE)
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn backbone");
    if let Some(text) = stdin {
        child
            .stdin
            .as_mut()
            .unwrap()
            .write_all(text.as_bytes())
            .unwrap();
    }
    drop(child.stdin.take());
    child.wait_with_output().expect("wait for backbone")
}

fn stdout_of(output: &Output) -> String {
    assert!(
        output.status.success(),
        "backbone failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout.clone()).unwrap()
}

#[test]
fn every_method_and_policy_runs_on_a_file() {
    let path = trade_path();
    let path = path.to_str().unwrap();
    for method in ["nc", "ncb", "df", "hss", "ds", "mst", "naive"] {
        for policy in [
            &["--threshold", "0.0"][..],
            &["--top-k", "10"][..],
            &["--top-share", "0.3"][..],
            &["--coverage", "0.9"][..],
        ] {
            let mut args = vec!["--method", method, "--undirected"];
            args.extend_from_slice(policy);
            args.push(path);
            let output = run_with_stdin(&args, None);
            let text = stdout_of(&output);
            assert!(
                text.starts_with("# source\ttarget\tweight"),
                "{method} {policy:?}: unexpected output `{}`",
                text.lines().next().unwrap_or_default()
            );
            assert!(
                text.lines().count() > 1,
                "{method} {policy:?}: empty backbone"
            );
        }
    }
}

#[test]
fn stdin_and_file_inputs_agree() {
    let path = trade_path();
    let text = std::fs::read_to_string(&path).unwrap();
    let args = ["--method", "nc", "--top-k", "12", "--undirected"];

    let mut file_args = args.to_vec();
    let path_str = path.to_str().unwrap();
    file_args.push(path_str);
    let from_file = stdout_of(&run_with_stdin(&file_args, None));
    let from_stdin = stdout_of(&run_with_stdin(&args, Some(&text)));
    assert_eq!(from_file, from_stdin);
    // 12 kept edges + header.
    assert_eq!(from_file.lines().count(), 13);
}

#[test]
fn scores_output_lists_every_edge() {
    let path = trade_path();
    let output = run_with_stdin(
        &[
            "--method",
            "nc",
            "--top-k",
            "5",
            "--undirected",
            "-o",
            "scores",
            path.to_str().unwrap(),
        ],
        None,
    );
    let text = stdout_of(&output);
    let mut lines = text.lines();
    assert_eq!(
        lines.next().unwrap(),
        "# source\ttarget\tweight\tscore\traw_score\tstd_dev\tp_value\tkept"
    );
    // 28 edges in the bundled network, each with a kept flag; exactly 5 kept.
    let rows: Vec<&str> = lines.collect();
    assert_eq!(rows.len(), 28);
    let kept = rows.iter().filter(|row| row.ends_with("\t1")).count();
    assert_eq!(kept, 5);
}

#[test]
fn summary_output_is_json_with_run_statistics() {
    let path = trade_path();
    let output = run_with_stdin(
        &[
            "--method",
            "df",
            "--top-share",
            "0.5",
            "--undirected",
            "--threads",
            "2",
            "-o",
            "summary",
            path.to_str().unwrap(),
        ],
        None,
    );
    let text = stdout_of(&output);
    for needle in [
        "\"method\": \"df\"",
        "\"kind\": \"top_share\"",
        "\"threads\": 2",
        "\"nodes\": 8",
        "\"edges\": 28",
        "\"coverage\":",
        "\"wall_ms\":",
    ] {
        assert!(text.contains(needle), "missing `{needle}` in `{text}`");
    }
}

#[test]
fn csv_separator_and_header_flags_work() {
    let csv = "src,dst,w\na,b,5\nb,c,4\nc,a,3\n";
    let output = run_with_stdin(
        &[
            "--method",
            "naive",
            "--top-k",
            "2",
            "--csv",
            "--header",
            "--undirected",
        ],
        Some(csv),
    );
    let text = stdout_of(&output);
    assert!(text.contains("a\tb\t5"));
    assert!(text.contains("b\tc\t4"));
    assert!(!text.contains("\tsrc"));
}

#[test]
fn malformed_input_fails_with_named_source_and_exit_1() {
    let output = run_with_stdin(
        &["--method", "nc", "--top-k", "2"],
        Some("a b 1.0\nb c heavy\n"),
    );
    assert_eq!(output.status.code(), Some(1));
    let err = String::from_utf8_lossy(&output.stderr);
    assert!(err.contains("<stdin>"), "missing source in `{err}`");
    assert!(err.contains("line 2"), "missing line in `{err}`");
}

#[test]
fn missing_file_fails_with_named_path_and_exit_1() {
    let output = run_with_stdin(
        &["--method", "nc", "--top-k", "2", "/no/such/file.tsv"],
        None,
    );
    assert_eq!(output.status.code(), Some(1));
    let err = String::from_utf8_lossy(&output.stderr);
    assert!(err.contains("/no/such/file.tsv"), "missing path in `{err}`");
}

#[test]
fn usage_errors_exit_2_and_hint_at_help() {
    for args in [
        &["--top-k", "2"][..],
        &["--method", "nc"][..],
        &["--method", "nc", "--top-k", "1", "--unknown-flag"][..],
    ] {
        let output = run_with_stdin(args, Some(""));
        assert_eq!(output.status.code(), Some(2), "{args:?}");
        let err = String::from_utf8_lossy(&output.stderr);
        assert!(err.contains("--help"), "{args:?}: no help hint in `{err}`");
    }
}

#[test]
fn help_prints_usage_and_exits_0() {
    let output = run_with_stdin(&["--help"], None);
    let text = stdout_of(&output);
    assert!(text.contains("USAGE"));
    assert!(text.contains("--coverage"));
    assert!(text.contains("compare"));
}

#[test]
fn compare_emits_tables_and_stable_json() {
    let path = trade_path();
    let path = path.to_str().unwrap();
    let table = stdout_of(&run_with_stdin(&["compare", "--undirected", path], None));
    assert!(table.contains("Backbone comparison"), "{table}");
    assert!(table.contains("Pairwise Jaccard agreement"), "{table}");
    for method in ["NC", "DF", "HSS"] {
        assert!(table.contains(method), "missing {method} in\n{table}");
    }

    let json_args = [
        "compare",
        "--methods",
        "nc,df,hss",
        "--top-share",
        "0.1",
        "--undirected",
        "-o",
        "json",
        path,
    ];
    let first = stdout_of(&run_with_stdin(&json_args, None));
    assert!(first.contains("\"matched_edges\": 3"), "{first}");
    assert!(first.contains("\"noise_stability\""), "{first}");
    assert!(first.contains("\"score_wall_ms\""), "{first}");
    // Everything except the per-method score_wall_ms timing is a pure
    // function of graph and config: re-running produces identical bytes
    // once the timings are stripped.
    let second = stdout_of(&run_with_stdin(&json_args, None));
    assert_eq!(strip_score_wall_ms(&first), strip_score_wall_ms(&second));

    // Stdin and file inputs agree for compare too.
    let text = std::fs::read_to_string(trade_path()).unwrap();
    let stdin_args: Vec<&str> = json_args[..json_args.len() - 1].to_vec();
    let from_stdin = stdout_of(&run_with_stdin(&stdin_args, Some(&text)));
    assert_eq!(
        strip_score_wall_ms(&first),
        strip_score_wall_ms(&from_stdin)
    );
}

/// Remove every `, "score_wall_ms": <number>` fragment — the one
/// run-dependent field of the compare JSON.
fn strip_score_wall_ms(json: &str) -> String {
    const MARKER: &str = ", \"score_wall_ms\": ";
    let mut out = String::new();
    let mut rest = json;
    while let Some(position) = rest.find(MARKER) {
        out.push_str(&rest[..position]);
        let after = &rest[position + MARKER.len()..];
        let end = after
            .find(|c: char| !(c.is_ascii_digit() || c == '.'))
            .unwrap_or(after.len());
        rest = &after[end..];
    }
    out.push_str(rest);
    out
}

#[test]
fn compare_usage_errors_exit_2() {
    let output = run_with_stdin(&["compare", "--methods", "nc,bogus"], Some(""));
    assert_eq!(output.status.code(), Some(2));
    let err = String::from_utf8_lossy(&output.stderr);
    assert!(err.contains("unknown method"), "{err}");
}

#[test]
fn compare_invalid_share_exits_1() {
    let path = trade_path();
    let output = run_with_stdin(
        &[
            "compare",
            "--top-share",
            "1.5",
            "--undirected",
            path.to_str().unwrap(),
        ],
        None,
    );
    assert_eq!(output.status.code(), Some(1));
    let err = String::from_utf8_lossy(&output.stderr);
    assert!(err.contains("top_share"), "{err}");
}

#[test]
fn gen_pipes_into_the_pipeline() {
    // `backbone gen` to stdout, then feed the edge list back through a
    // backbone run — the full scenario → backbone loop, via real processes.
    let spec = "sb:n=300,b=4,pin=0.1,pout=0.01,w=lognormal(0,1),noise=0.1,seed=7";
    let generated = stdout_of(&run_with_stdin(&["gen", spec], None));
    assert!(generated.starts_with("# source\ttarget\tweight\n"));

    // Deterministic: a second run emits identical bytes.
    let again = stdout_of(&run_with_stdin(&["gen", spec], None));
    assert_eq!(generated, again);

    let output = run_with_stdin(
        &[
            "--method",
            "nc",
            "--top-share",
            "0.1",
            "--undirected",
            "-o",
            "summary",
        ],
        Some(&generated),
    );
    let summary = stdout_of(&output);
    assert!(summary.contains("\"method\": \"nc\""), "{summary}");
}

#[test]
fn gen_writes_a_file_with_out_flag() {
    let dir = std::env::temp_dir().join(format!("backbone_gen_e2e_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("scenario.tsv");
    let output = run_with_stdin(
        &[
            "gen",
            "ba:n=200,m=2,seed=3",
            "--out",
            path.to_str().unwrap(),
        ],
        None,
    );
    let summary = stdout_of(&output);
    assert!(summary.contains("200 nodes"), "{summary}");
    let text = std::fs::read_to_string(&path).unwrap();
    assert!(text.starts_with("# source\ttarget\tweight\n"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn gen_usage_errors_exit_2() {
    let output = run_with_stdin(&["gen", "zz:n=10"], None);
    assert_eq!(output.status.code(), Some(2));
    let err = String::from_utf8_lossy(&output.stderr);
    assert!(err.contains("unknown family"), "{err}");
}

#[test]
fn bench_matrix_rows_are_stable_across_runs() {
    let dir = std::env::temp_dir().join(format!("backbone_matrix_e2e_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let out = dir.join("grid.json");
    let args = [
        "bench-matrix",
        "--specs",
        "ba:n=200,m=2,seed=5;er:n=200,e=600,w=uniform(10),seed=5",
        "--methods",
        "nc,df",
        "--runs",
        "1",
        "--out",
        out.to_str().unwrap(),
    ];
    let first_echo = stdout_of(&run_with_stdin(&args, None));
    assert!(first_echo.contains("4 cell(s) swept"), "{first_echo}");
    let first = std::fs::read_to_string(&out).unwrap();

    stdout_of(&run_with_stdin(&args, None));
    let second = std::fs::read_to_string(&out).unwrap();

    // The deterministic fields must be byte-identical across the two runs
    // (the same sed idiom ci.sh uses strips the timing fields).
    let strip = |text: &str| -> String {
        text.lines()
            .map(|line| {
                let line = regex_strip(line, ", \"median_ms\": ");
                regex_strip(&line, ", \"edges_per_sec\": ")
            })
            .collect::<Vec<String>>()
            .join("\n")
    };
    assert_eq!(strip(&first), strip(&second));
    assert_eq!(first.matches("\"spec\": ").count(), 4);
    std::fs::remove_dir_all(&dir).ok();
}

/// Drop `marker<number>` from a line (a tiny stand-in for the CI sed strip).
fn regex_strip(line: &str, marker: &str) -> String {
    let Some(start) = line.find(marker) else {
        return line.to_string();
    };
    let tail = &line[start + marker.len()..];
    let end = tail
        .find(|c: char| !(c.is_ascii_digit() || c == '.'))
        .unwrap_or(tail.len());
    format!("{}{}", &line[..start], &tail[end..])
}
