//! The synthetic world: countries with economic and geographic attributes.
//!
//! The country networks of the paper connect roughly two hundred countries.
//! This module generates a deterministic synthetic world whose attribute
//! distributions mirror the real ones where it matters for the experiments:
//! populations and GDPs are log-normally distributed (so gravity-model edge
//! weights become heavy-tailed), countries cluster geographically into
//! continents (so distance is a meaningful predictor), and language families
//! correlate with geography (so the migration predictors behave plausibly).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use backboning_stats::sampling::{sample_log_normal, sample_normal};

/// Number of continents in the synthetic world.
pub const CONTINENTS: usize = 6;
/// Number of language families in the synthetic world.
pub const LANGUAGE_FAMILIES: usize = 12;

/// A synthetic country.
#[derive(Debug, Clone, PartialEq)]
pub struct Country {
    /// Three-letter style code, e.g. `"C042"`.
    pub code: String,
    /// Continent index in `0..CONTINENTS`.
    pub continent: usize,
    /// Population (persons).
    pub population: f64,
    /// GDP per capita (synthetic dollars).
    pub gdp_per_capita: f64,
    /// Economic Complexity Index style score (roughly standard-normal).
    pub eci: f64,
    /// Latitude in degrees.
    pub latitude: f64,
    /// Longitude in degrees.
    pub longitude: f64,
    /// Language family index in `0..LANGUAGE_FAMILIES`.
    pub language: usize,
}

impl Country {
    /// Total GDP (population × GDP per capita).
    pub fn gdp(&self) -> f64 {
        self.population * self.gdp_per_capita
    }
}

/// The synthetic world: a list of countries plus pairwise geography helpers.
#[derive(Debug, Clone, PartialEq)]
pub struct World {
    countries: Vec<Country>,
}

impl World {
    /// Generate a world with `country_count` countries from a seed.
    pub fn generate(country_count: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        // Continent centres spread around the globe.
        let continent_centers: Vec<(f64, f64)> = (0..CONTINENTS)
            .map(|c| {
                let longitude = -150.0 + 60.0 * c as f64 + rng.random_range(-10.0..10.0);
                let latitude = rng.random_range(-35.0..55.0);
                (latitude, longitude)
            })
            .collect();

        let mut countries = Vec::with_capacity(country_count);
        for index in 0..country_count {
            let continent = index % CONTINENTS;
            let (center_lat, center_lon) = continent_centers[continent];
            // Richer continents (low index) have higher GDP per capita on average,
            // which creates the income gradients the migration and ownership
            // networks need.
            let gdp_mu = 10.0 - 0.35 * continent as f64;
            // Language families are tied to continents with occasional colonial spillover.
            let language = if rng.random::<f64>() < 0.8 {
                (continent * 2 + rng.random_range(0..2usize)) % LANGUAGE_FAMILIES
            } else {
                rng.random_range(0..LANGUAGE_FAMILIES)
            };
            let eci = sample_normal(&mut rng, 0.8 - 0.3 * continent as f64, 0.8);
            countries.push(Country {
                code: format!("C{index:03}"),
                continent,
                population: sample_log_normal(&mut rng, 16.0, 1.7).clamp(5e4, 1.6e9),
                gdp_per_capita: sample_log_normal(&mut rng, gdp_mu, 0.7).clamp(400.0, 150_000.0),
                eci,
                latitude: (center_lat + sample_normal(&mut rng, 0.0, 12.0)).clamp(-60.0, 70.0),
                longitude: center_lon + sample_normal(&mut rng, 0.0, 18.0),
                language,
            });
        }
        World { countries }
    }

    /// Number of countries.
    pub fn len(&self) -> usize {
        self.countries.len()
    }

    /// Whether the world is empty.
    pub fn is_empty(&self) -> bool {
        self.countries.is_empty()
    }

    /// The countries.
    pub fn countries(&self) -> &[Country] {
        &self.countries
    }

    /// A single country.
    pub fn country(&self, index: usize) -> &Country {
        &self.countries[index]
    }

    /// Great-circle (haversine) distance between two countries in kilometres.
    pub fn distance_km(&self, a: usize, b: usize) -> f64 {
        if a == b {
            return 0.0;
        }
        let earth_radius_km = 6_371.0;
        let ca = &self.countries[a];
        let cb = &self.countries[b];
        let lat_a = ca.latitude.to_radians();
        let lat_b = cb.latitude.to_radians();
        let d_lat = (cb.latitude - ca.latitude).to_radians();
        let d_lon = (cb.longitude - ca.longitude).to_radians();
        let haversine =
            (d_lat / 2.0).sin().powi(2) + lat_a.cos() * lat_b.cos() * (d_lon / 2.0).sin().powi(2);
        2.0 * earth_radius_km * haversine.sqrt().asin()
    }

    /// Whether two countries share a language family.
    pub fn common_language(&self, a: usize, b: usize) -> bool {
        self.countries[a].language == self.countries[b].language
    }

    /// Whether two countries share a continent (the "common history" proxy of
    /// the migration predictors).
    pub fn same_continent(&self, a: usize, b: usize) -> bool {
        self.countries[a].continent == self.countries[b].continent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = World::generate(50, 7);
        let b = World::generate(50, 7);
        assert_eq!(a, b);
        let c = World::generate(50, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn attributes_are_in_plausible_ranges() {
        let world = World::generate(120, 1);
        assert_eq!(world.len(), 120);
        for country in world.countries() {
            assert!(country.population >= 5e4 && country.population <= 1.6e9);
            assert!(country.gdp_per_capita >= 400.0 && country.gdp_per_capita <= 150_000.0);
            assert!(country.latitude >= -60.0 && country.latitude <= 70.0);
            assert!(country.continent < CONTINENTS);
            assert!(country.language < LANGUAGE_FAMILIES);
            assert!(country.gdp() > 0.0);
        }
    }

    #[test]
    fn populations_are_heavy_tailed() {
        let world = World::generate(150, 3);
        let mut populations: Vec<f64> = world.countries().iter().map(|c| c.population).collect();
        populations.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = populations[populations.len() / 2];
        let max = populations[populations.len() - 1];
        assert!(max / median > 15.0, "max/median = {}", max / median);
    }

    #[test]
    fn distance_is_a_metric_like_quantity() {
        let world = World::generate(60, 5);
        assert_eq!(world.distance_km(3, 3), 0.0);
        for a in 0..10 {
            for b in 0..10 {
                let d = world.distance_km(a, b);
                assert!((d - world.distance_km(b, a)).abs() < 1e-9);
                assert!(d >= 0.0);
                assert!(
                    d < 21_000.0,
                    "distance {d} exceeds half the Earth circumference"
                );
            }
        }
    }

    #[test]
    fn same_continent_countries_are_closer_on_average() {
        let world = World::generate(120, 11);
        let mut same = Vec::new();
        let mut different = Vec::new();
        for a in 0..world.len() {
            for b in (a + 1)..world.len() {
                if world.same_continent(a, b) {
                    same.push(world.distance_km(a, b));
                } else {
                    different.push(world.distance_km(a, b));
                }
            }
        }
        let mean_same: f64 = same.iter().sum::<f64>() / same.len() as f64;
        let mean_different: f64 = different.iter().sum::<f64>() / different.len() as f64;
        assert!(mean_same < mean_different);
    }

    #[test]
    fn languages_correlate_with_continents() {
        let world = World::generate(180, 13);
        let mut same_continent_same_language = 0usize;
        let mut same_continent_pairs = 0usize;
        let mut cross_continent_same_language = 0usize;
        let mut cross_continent_pairs = 0usize;
        for a in 0..world.len() {
            for b in (a + 1)..world.len() {
                if world.same_continent(a, b) {
                    same_continent_pairs += 1;
                    if world.common_language(a, b) {
                        same_continent_same_language += 1;
                    }
                } else {
                    cross_continent_pairs += 1;
                    if world.common_language(a, b) {
                        cross_continent_same_language += 1;
                    }
                }
            }
        }
        let within = same_continent_same_language as f64 / same_continent_pairs as f64;
        let across = cross_continent_same_language as f64 / cross_continent_pairs as f64;
        assert!(within > across);
    }

    #[test]
    fn codes_are_unique() {
        let world = World::generate(100, 2);
        let mut codes: Vec<&str> = world.countries().iter().map(|c| c.code.as_str()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), 100);
    }

    #[test]
    fn empty_world() {
        let world = World::generate(0, 0);
        assert!(world.is_empty());
        assert_eq!(world.len(), 0);
    }
}
