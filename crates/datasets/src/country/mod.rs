//! Synthetic country–country networks.
//!
//! The six networks of the paper's evaluation (Section V-B) are rebuilt here
//! from a synthetic world, because the originals come from proprietary data
//! providers. Each network is generated from a *latent* gravity-model
//! intensity per country pair — persistent across years — observed through
//! Poisson count noise in every year. This reproduces the properties the
//! evaluation depends on: heavy-tailed weights, weights locally correlated
//! with node sizes, count-data noise, and year-on-year stability of the latent
//! structure.
//!
//! | Network | Type | Latent intensity driven by |
//! |---|---|---|
//! | Business | directed flow | economic affinity (shared with Trade), GDP of both ends, distance |
//! | Country Space | undirected co-occurrence | number of products both countries export competitively |
//! | Flight | directed flow | populations, incomes and distance (a classic gravity model) |
//! | Migration | directed stock | origin population, destination income, distance, common language/continent |
//! | Ownership | directed stock | origin GDP, destination GDP, distance; proportional to greenfield FDI |
//! | Trade | directed flow | economic affinity, GDP of both ends, distance |

mod generator;

pub use generator::{CountryData, CountryDataConfig};

/// The six country-network types of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CountryNetworkKind {
    /// Corporate credit-card expenditure flows (directed flow network).
    Business,
    /// Product-export co-occurrences (undirected co-occurrence network).
    CountrySpace,
    /// Airline passenger capacity (directed flow network).
    Flight,
    /// Migrant stocks by origin and destination (directed stock network).
    Migration,
    /// Foreign establishments reporting to a global headquarter (directed stock network).
    Ownership,
    /// Dollar value of exports (directed flow network).
    Trade,
}

impl CountryNetworkKind {
    /// All six kinds, in the paper's alphabetical discussion order.
    pub fn all() -> [CountryNetworkKind; 6] {
        [
            CountryNetworkKind::Business,
            CountryNetworkKind::CountrySpace,
            CountryNetworkKind::Flight,
            CountryNetworkKind::Migration,
            CountryNetworkKind::Ownership,
            CountryNetworkKind::Trade,
        ]
    }

    /// Human-readable name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            CountryNetworkKind::Business => "Business",
            CountryNetworkKind::CountrySpace => "Country Space",
            CountryNetworkKind::Flight => "Flight",
            CountryNetworkKind::Migration => "Migration",
            CountryNetworkKind::Ownership => "Ownership",
            CountryNetworkKind::Trade => "Trade",
        }
    }

    /// Whether the network is directed.
    pub fn is_directed(&self) -> bool {
        !matches!(self, CountryNetworkKind::CountrySpace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_kinds_with_stable_names() {
        let all = CountryNetworkKind::all();
        assert_eq!(all.len(), 6);
        let names: Vec<&str> = all.iter().map(|k| k.name()).collect();
        assert_eq!(
            names,
            vec![
                "Business",
                "Country Space",
                "Flight",
                "Migration",
                "Ownership",
                "Trade"
            ]
        );
    }

    #[test]
    fn only_country_space_is_undirected() {
        for kind in CountryNetworkKind::all() {
            assert_eq!(
                kind.is_directed(),
                kind != CountryNetworkKind::CountrySpace,
                "direction mismatch for {}",
                kind.name()
            );
        }
    }
}
