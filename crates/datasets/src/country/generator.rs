//! Generator for the synthetic country networks.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use backboning_graph::{Direction, WeightedGraph};
use backboning_stats::sampling::{sample_normal, sample_poisson};

use crate::country::CountryNetworkKind;
use crate::world::World;

/// Configuration of the synthetic country dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct CountryDataConfig {
    /// Number of countries in the synthetic world.
    pub country_count: usize,
    /// Number of yearly observations per network (the paper uses 2–4).
    pub years: usize,
    /// Number of synthetic products backing the Country Space network.
    pub product_count: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for CountryDataConfig {
    fn default() -> Self {
        CountryDataConfig {
            country_count: 120,
            years: 3,
            product_count: 250,
            seed: 2017,
        }
    }
}

impl CountryDataConfig {
    /// A smaller configuration for fast tests.
    pub fn small() -> Self {
        CountryDataConfig {
            country_count: 50,
            years: 3,
            product_count: 120,
            seed: 99,
        }
    }
}

/// The synthetic country dataset: the world, the six networks observed over
/// several years, and the auxiliary greenfield-FDI matrix used as a predictor
/// for the Ownership network.
#[derive(Debug, Clone)]
pub struct CountryData {
    /// The synthetic world the networks are built on.
    pub world: World,
    networks: BTreeMap<CountryNetworkKind, Vec<WeightedGraph>>,
    /// Dense `n × n` matrix (row = origin, column = destination) of greenfield
    /// foreign direct investment, the Table II predictor for Ownership.
    fdi: Vec<f64>,
    years: usize,
}

/// Persistent latent state shared by all yearly observations.
struct LatentState {
    /// Economic affinity shock per ordered pair, shared by Trade and Business.
    economic_affinity: Vec<f64>,
    /// Migration-specific diaspora shock per ordered pair.
    diaspora: Vec<f64>,
    /// Ownership-specific corporate-linkage shock per ordered pair.
    corporate: Vec<f64>,
    /// Mobility shock per ordered pair (flights).
    mobility: Vec<f64>,
    /// Export portfolio per country: `exports[c][p]` is true when country `c`
    /// exports product `p` with revealed comparative advantage.
    exports: Vec<Vec<bool>>,
}

impl CountryData {
    /// Generate the dataset.
    pub fn generate(config: &CountryDataConfig) -> Self {
        let world = World::generate(config.country_count, config.seed);
        let mut rng = StdRng::seed_from_u64(config.seed.wrapping_mul(0x9E37_79B9).wrapping_add(7));
        let latent = Self::latent_state(&world, config, &mut rng);

        let mut networks: BTreeMap<CountryNetworkKind, Vec<WeightedGraph>> = BTreeMap::new();
        for kind in CountryNetworkKind::all() {
            let mut yearly = Vec::with_capacity(config.years);
            for year in 0..config.years {
                yearly.push(Self::observe_network(&world, &latent, kind, year, &mut rng));
            }
            networks.insert(kind, yearly);
        }

        // Greenfield FDI: proportional to the latent ownership intensity with
        // its own multiplicative noise (measured in synthetic dollars).
        let n = world.len();
        let mut fdi = vec![0.0; n * n];
        for origin in 0..n {
            for destination in 0..n {
                if origin == destination {
                    continue;
                }
                let latent_ownership = Self::latent_intensity(
                    &world,
                    &latent,
                    CountryNetworkKind::Ownership,
                    origin,
                    destination,
                );
                if latent_ownership > 0.0 {
                    let noise = sample_normal(&mut rng, 0.0, 0.3).exp();
                    fdi[origin * n + destination] = latent_ownership
                        * 2.5e6
                        * world.country(destination).gdp_per_capita.sqrt()
                        * noise;
                }
            }
        }

        CountryData {
            world,
            networks,
            fdi,
            years: config.years,
        }
    }

    /// Generate with the default configuration.
    pub fn generate_default() -> Self {
        Self::generate(&CountryDataConfig::default())
    }

    /// Number of yearly observations per network.
    pub fn years(&self) -> usize {
        self.years
    }

    /// The network of the given kind in the given year (0-based).
    pub fn network(&self, kind: CountryNetworkKind, year: usize) -> &WeightedGraph {
        &self.networks[&kind][year]
    }

    /// All yearly observations of a network.
    pub fn yearly_networks(&self, kind: CountryNetworkKind) -> &[WeightedGraph] {
        &self.networks[&kind]
    }

    /// Greenfield FDI from `origin` to `destination`.
    pub fn fdi_between(&self, origin: usize, destination: usize) -> f64 {
        self.fdi[origin * self.world.len() + destination]
    }

    fn pair_index(n: usize, a: usize, b: usize) -> usize {
        a * n + b
    }

    fn latent_state(world: &World, config: &CountryDataConfig, rng: &mut StdRng) -> LatentState {
        let n = world.len();
        let mut economic_affinity = vec![1.0; n * n];
        let mut diaspora = vec![1.0; n * n];
        let mut corporate = vec![1.0; n * n];
        let mut mobility = vec![1.0; n * n];
        for a in 0..n {
            for b in 0..n {
                if a == b {
                    continue;
                }
                let index = Self::pair_index(n, a, b);
                economic_affinity[index] = sample_normal(rng, 0.0, 0.9).exp();
                diaspora[index] = sample_normal(rng, 0.0, 1.1).exp();
                corporate[index] = sample_normal(rng, 0.0, 1.0).exp();
                mobility[index] = sample_normal(rng, 0.0, 0.7).exp();
            }
        }

        // Product space: each product has a complexity level; countries export
        // the products whose complexity they can reach (plus idiosyncratic luck).
        let product_complexity: Vec<f64> = (0..config.product_count)
            .map(|_| sample_normal(rng, 0.0, 1.0))
            .collect();
        let mut exports = vec![vec![false; config.product_count]; n];
        for (country_index, portfolio) in exports.iter_mut().enumerate() {
            let eci = world.country(country_index).eci;
            let diversity_bias = sample_normal(rng, 0.0, 0.5);
            for (product, &complexity) in product_complexity.iter().enumerate() {
                let logit = 1.4 * (eci - complexity) + diversity_bias - 0.6;
                let probability = 1.0 / (1.0 + (-logit).exp());
                portfolio[product] = rng.random::<f64>() < probability;
            }
        }

        LatentState {
            economic_affinity,
            diaspora,
            corporate,
            mobility,
            exports,
        }
    }

    /// The latent (noise-free) intensity of an ordered pair under one network kind.
    fn latent_intensity(
        world: &World,
        latent: &LatentState,
        kind: CountryNetworkKind,
        origin: usize,
        destination: usize,
    ) -> f64 {
        if origin == destination {
            return 0.0;
        }
        let n = world.len();
        let index = Self::pair_index(n, origin, destination);
        let o = world.country(origin);
        let d = world.country(destination);
        // Scaled units keep the Poisson means in a numerically comfortable range.
        let gdp_o = o.gdp() / 1e9; // billions
        let gdp_d = d.gdp() / 1e9;
        let pop_o = o.population / 1e6; // millions
        let pop_d = d.population / 1e6;
        let distance = (world.distance_km(origin, destination) / 1000.0).max(0.1); // thousands of km

        match kind {
            CountryNetworkKind::Trade => {
                0.4 * gdp_o.powf(0.85) * gdp_d.powf(0.75) / distance.powf(1.4)
                    * latent.economic_affinity[index]
            }
            CountryNetworkKind::Business => {
                0.8 * gdp_o.powf(0.55) * gdp_d.powf(0.5) / distance.powf(1.1)
                    * latent.economic_affinity[index].powf(0.7)
                    * latent.mobility[index].powf(0.3)
            }
            CountryNetworkKind::Flight => {
                0.15 * (pop_o * o.gdp_per_capita / 1e4).powf(0.7)
                    * (pop_d * d.gdp_per_capita / 1e4).powf(0.7)
                    / distance.powf(1.6)
                    * latent.mobility[index]
                    * 40.0
            }
            CountryNetworkKind::Migration => {
                let income_pull = (d.gdp_per_capita / o.gdp_per_capita).powf(0.8);
                let language_boost = if world.common_language(origin, destination) {
                    3.0
                } else {
                    1.0
                };
                let history_boost = if world.same_continent(origin, destination) {
                    1.8
                } else {
                    1.0
                };
                0.3 * pop_o.powf(0.9)
                    * pop_d.powf(0.45)
                    * income_pull
                    * language_boost
                    * history_boost
                    / distance.powf(1.2)
                    * latent.diaspora[index]
            }
            CountryNetworkKind::Ownership => {
                0.02 * gdp_o.powf(0.8) * gdp_d.powf(0.45) / distance.powf(0.7)
                    * (o.gdp_per_capita / 1e4).powf(0.6)
                    * latent.corporate[index]
            }
            CountryNetworkKind::CountrySpace => {
                // Handled separately (product co-occurrences); this path is only
                // used by the FDI helper, never for CountrySpace.
                0.0
            }
        }
    }

    /// Observe a network for one year: latent intensity × year drift, pushed
    /// through Poisson count noise. Zero-count pairs are omitted.
    fn observe_network(
        world: &World,
        latent: &LatentState,
        kind: CountryNetworkKind,
        year: usize,
        rng: &mut StdRng,
    ) -> WeightedGraph {
        let n = world.len();
        let direction = if kind.is_directed() {
            Direction::Directed
        } else {
            Direction::Undirected
        };
        let mut graph = WeightedGraph::new(direction);
        for country in world.countries() {
            graph
                .add_labeled_node(country.code.clone())
                .expect("country codes are unique");
        }
        // Mild global growth plus a small pair-level transient each year.
        let growth = 1.0 + 0.04 * year as f64;

        if kind == CountryNetworkKind::CountrySpace {
            // Co-occurrence counts with a small yearly re-measurement of the
            // export portfolios (a few percent of entries flip).
            let flip_probability = 0.02 * year as f64;
            let mut portfolios = latent.exports.clone();
            if flip_probability > 0.0 {
                for portfolio in &mut portfolios {
                    for entry in portfolio.iter_mut() {
                        if rng.random::<f64>() < flip_probability {
                            *entry = !*entry;
                        }
                    }
                }
            }
            for a in 0..n {
                for b in (a + 1)..n {
                    let shared = portfolios[a]
                        .iter()
                        .zip(&portfolios[b])
                        .filter(|(&x, &y)| x && y)
                        .count();
                    if shared > 0 {
                        graph.add_edge(a, b, shared as f64).expect("valid edge");
                    }
                }
            }
            return graph;
        }

        for origin in 0..n {
            for destination in 0..n {
                if origin == destination {
                    continue;
                }
                let intensity = Self::latent_intensity(world, latent, kind, origin, destination);
                if intensity <= 0.0 {
                    continue;
                }
                let transient = sample_normal(rng, 0.0, 0.08).exp();
                let expected = intensity * growth * transient;
                // Cap the Poisson mean to keep the synthetic totals finite while
                // preserving ~7 orders of magnitude of weight heterogeneity.
                let observed = sample_poisson(rng, expected.min(2.0e8));
                if observed > 0 {
                    graph
                        .add_edge(origin, destination, observed as f64)
                        .expect("valid edge");
                }
            }
        }
        graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use backboning_graph::algorithms::degree::{edge_neighbor_weight_pairs, edge_weights};
    use backboning_stats::correlation::{log_log_pearson, spearman};

    fn small_data() -> CountryData {
        CountryData::generate(&CountryDataConfig::small())
    }

    #[test]
    fn all_networks_and_years_are_generated() {
        let data = small_data();
        assert_eq!(data.years(), 3);
        for kind in CountryNetworkKind::all() {
            assert_eq!(data.yearly_networks(kind).len(), 3);
            for year in 0..3 {
                let graph = data.network(kind, year);
                assert_eq!(graph.node_count(), data.world.len());
                assert!(
                    graph.edge_count() > 0,
                    "{} year {year} has no edges",
                    kind.name()
                );
                assert_eq!(graph.is_directed(), kind.is_directed());
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let config = CountryDataConfig::small();
        let a = CountryData::generate(&config);
        let b = CountryData::generate(&config);
        for kind in CountryNetworkKind::all() {
            let weights_a = edge_weights(a.network(kind, 0));
            let weights_b = edge_weights(b.network(kind, 0));
            assert_eq!(weights_a, weights_b, "{} not deterministic", kind.name());
        }
    }

    #[test]
    fn trade_weights_are_heavy_tailed() {
        let data = small_data();
        let weights = edge_weights(data.network(CountryNetworkKind::Trade, 0));
        let max = weights.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut sorted = weights.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        let min = sorted[0];
        // The paper's Trade network spans ~10 orders of magnitude; the synthetic
        // stand-in must span several orders end to end even in the small test
        // configuration (the default 120-country configuration spans more) and
        // keep a heavy upper tail relative to the median.
        assert!(max / min > 3e4, "span = {} too narrow", max / min);
        assert!(
            max / median > 500.0,
            "max/median = {} not heavy-tailed",
            max / median
        );
    }

    #[test]
    fn edge_weights_are_locally_correlated() {
        // The Figure 6 property: an edge's weight correlates (in log-log space)
        // with the average weight of neighbouring edges.
        let data = small_data();
        for kind in [CountryNetworkKind::Trade, CountryNetworkKind::Flight] {
            let graph = data.network(kind, 0);
            let pairs = edge_neighbor_weight_pairs(graph);
            let own: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let neighbor: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            let (correlation, used) = log_log_pearson(&own, &neighbor).unwrap();
            assert!(used > 100);
            assert!(
                correlation > 0.2,
                "{}: local weight correlation {correlation} too low",
                kind.name()
            );
        }
    }

    #[test]
    fn consecutive_years_are_strongly_correlated() {
        // The latent structure changes slowly; year-on-year Spearman correlation
        // of common edges must be high (the paper's stability floor is ~0.84).
        let data = small_data();
        for kind in CountryNetworkKind::all() {
            let year0 = data.network(kind, 0);
            let year1 = data.network(kind, 1);
            let mut weights0 = Vec::new();
            let mut weights1 = Vec::new();
            for edge in year0.edges() {
                if let Some(other) = year1.edge_weight(edge.source, edge.target) {
                    weights0.push(edge.weight);
                    weights1.push(other);
                }
            }
            assert!(weights0.len() > 50, "{}: too few common edges", kind.name());
            let rho = spearman(&weights0, &weights1).unwrap();
            assert!(
                rho > 0.7,
                "{}: year-on-year Spearman {rho} too low",
                kind.name()
            );
        }
    }

    #[test]
    fn country_space_is_undirected_cooccurrence() {
        let data = small_data();
        let graph = data.network(CountryNetworkKind::CountrySpace, 0);
        assert!(!graph.is_directed());
        for edge in graph.edges() {
            assert!(
                edge.weight.fract() == 0.0,
                "co-occurrence counts must be integers"
            );
            assert!(edge.weight >= 1.0);
        }
    }

    #[test]
    fn fdi_is_positive_and_correlates_with_ownership() {
        let data = small_data();
        let ownership = data.network(CountryNetworkKind::Ownership, 0);
        let mut fdi_values = Vec::new();
        let mut ownership_values = Vec::new();
        for edge in ownership.edges() {
            let fdi = data.fdi_between(edge.source, edge.target);
            if fdi > 0.0 {
                fdi_values.push(fdi);
                ownership_values.push(edge.weight);
            }
        }
        assert!(fdi_values.len() > 50);
        let (correlation, _) = log_log_pearson(&fdi_values, &ownership_values).unwrap();
        assert!(
            correlation > 0.5,
            "FDI/ownership correlation {correlation} too weak"
        );
    }

    #[test]
    fn migration_prefers_common_language() {
        let data = small_data();
        let graph = data.network(CountryNetworkKind::Migration, 0);
        let world = &data.world;
        let mut same_language = Vec::new();
        let mut different_language = Vec::new();
        for edge in graph.edges() {
            if world.common_language(edge.source, edge.target) {
                same_language.push(edge.weight.ln());
            } else {
                different_language.push(edge.weight.ln());
            }
        }
        let mean = |v: &Vec<f64>| v.iter().sum::<f64>() / v.len() as f64;
        assert!(!same_language.is_empty() && !different_language.is_empty());
        assert!(mean(&same_language) > mean(&different_language));
    }

    #[test]
    fn node_labels_match_country_codes() {
        let data = small_data();
        let graph = data.network(CountryNetworkKind::Trade, 0);
        for (index, country) in data.world.countries().iter().enumerate() {
            assert_eq!(graph.label(index), Some(country.code.as_str()));
        }
    }
}
