//! Synthetic noisy networks (paper, Sections V-A and V-G).
//!
//! * [`noisy_barabasi_albert`] reproduces the Figure 4 workload: a
//!   Barabási–Albert network whose true edges carry weight
//!   `(k_i + k_j) · U(η, 1)` while every *non*-edge of the original topology is
//!   filled with a noisy weight `(k_i + k_j) · U(0, η)`. The noise parameter
//!   `η ∈ [0, 1]` controls how much the noise floor overlaps the true weights.
//! * [`scalability_workload`] reproduces the Figure 9 workload: Erdős–Rényi
//!   graphs with average degree 3 and uniform random weights, scaled up to
//!   millions of edges.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use backboning_graph::generators::{barabasi_albert, erdos_renyi};
use backboning_graph::{Direction, GraphError, GraphResult, WeightedGraph};

/// A synthetic network with known ground truth: the full noisy graph plus the
/// set of edges that belong to the true underlying network.
#[derive(Debug, Clone)]
pub struct NoisySyntheticNetwork {
    /// The observed graph: true edges plus noise edges filling the rest of the
    /// adjacency matrix.
    pub graph: WeightedGraph,
    /// For every edge index of [`NoisySyntheticNetwork::graph`], whether the
    /// edge belongs to the true underlying network.
    pub is_true_edge: Vec<bool>,
    /// Number of true edges.
    pub true_edge_count: usize,
}

impl NoisySyntheticNetwork {
    /// The edge indices of the true underlying network.
    pub fn true_edge_indices(&self) -> Vec<usize> {
        self.is_true_edge
            .iter()
            .enumerate()
            .filter_map(|(index, &is_true)| if is_true { Some(index) } else { None })
            .collect()
    }
}

/// Generate the Figure 4 workload: a Barabási–Albert network with `nodes`
/// nodes and `edges_per_node` attachments, whose complement is filled with
/// noise controlled by `eta ∈ [0, 1]`.
///
/// * True edge `(i, j)`: weight `(k_i + k_j) · U(eta, 1)`.
/// * Noise edge `(i, j)` (any pair not connected in the BA network): weight
///   `(k_i + k_j) · U(0, eta)`.
///
/// With `eta = 0` the noise disappears entirely; at `eta = 0.3` (the paper's
/// maximum) noise weights overlap substantially with true weights.
pub fn noisy_barabasi_albert(
    nodes: usize,
    edges_per_node: usize,
    eta: f64,
    seed: u64,
) -> GraphResult<NoisySyntheticNetwork> {
    if !(0.0..=1.0).contains(&eta) {
        return Err(GraphError::InvalidParameter {
            parameter: "eta",
            message: format!("noise level must lie in [0, 1], got {eta}"),
        });
    }
    let skeleton = barabasi_albert(nodes, edges_per_node, seed)?;
    let degrees: Vec<usize> = skeleton.nodes().map(|n| skeleton.degree(n)).collect();
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(0xABCD_EF01));

    let mut graph = WeightedGraph::with_nodes(Direction::Undirected, nodes);
    let mut is_true_edge = Vec::new();
    let mut true_edge_count = 0usize;

    for i in 0..nodes {
        for j in (i + 1)..nodes {
            let degree_sum = (degrees[i] + degrees[j]) as f64;
            if skeleton.has_edge(i, j) {
                // True edge: a fraction of at least eta of the degree sum.
                let factor = if eta < 1.0 {
                    rng.random_range(eta..1.0)
                } else {
                    1.0
                };
                graph.add_edge(i, j, degree_sum * factor)?;
                is_true_edge.push(true);
                true_edge_count += 1;
            } else {
                // Noise edge: at most a fraction eta of the degree sum.
                let factor = if eta > 0.0 {
                    rng.random_range(0.0..eta)
                } else {
                    0.0
                };
                let weight = degree_sum * factor;
                if weight > 0.0 {
                    graph.add_edge(i, j, weight)?;
                    is_true_edge.push(false);
                }
            }
        }
    }

    Ok(NoisySyntheticNetwork {
        graph,
        is_true_edge,
        true_edge_count,
    })
}

/// Generate the Figure 9 scalability workload: an Erdős–Rényi graph with
/// `edges` edges over `edges / 3 × 2` nodes (average degree ≈ 3) and uniform
/// random weights in `(0, 100]`.
pub fn scalability_workload(edges: usize, seed: u64) -> GraphResult<WeightedGraph> {
    let nodes = (edges * 2 / 3).max(4);
    erdos_renyi(nodes, edges, 100.0, Direction::Undirected, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn true_edges_match_ba_skeleton_size() {
        let network = noisy_barabasi_albert(200, 3, 0.1, 42).unwrap();
        // BA with m = 3 over 200 nodes: 6 seed edges + 3·196 attachments.
        assert_eq!(network.true_edge_count, 3 * 196 + 6);
        assert_eq!(network.true_edge_indices().len(), network.true_edge_count);
        assert_eq!(network.is_true_edge.len(), network.graph.edge_count());
    }

    #[test]
    fn zero_noise_contains_only_true_edges() {
        let network = noisy_barabasi_albert(100, 3, 0.0, 1).unwrap();
        assert_eq!(network.graph.edge_count(), network.true_edge_count);
        assert!(network.is_true_edge.iter().all(|&b| b));
    }

    #[test]
    fn noise_fills_the_complement() {
        let network = noisy_barabasi_albert(100, 3, 0.2, 1).unwrap();
        let possible_pairs = 100 * 99 / 2;
        // With eta = 0.2 essentially every non-edge receives a positive weight.
        assert!(network.graph.edge_count() > possible_pairs * 9 / 10);
        assert!(network.graph.edge_count() > network.true_edge_count);
    }

    #[test]
    fn true_edges_are_heavier_than_noise_on_average() {
        let network = noisy_barabasi_albert(150, 3, 0.25, 5).unwrap();
        let mut true_sum = 0.0;
        let mut true_count = 0usize;
        let mut noise_sum = 0.0;
        let mut noise_count = 0usize;
        for edge in network.graph.edges() {
            if network.is_true_edge[edge.index] {
                true_sum += edge.weight;
                true_count += 1;
            } else {
                noise_sum += edge.weight;
                noise_count += 1;
            }
        }
        assert!(true_count > 0 && noise_count > 0);
        assert!(true_sum / true_count as f64 > 2.0 * noise_sum / noise_count as f64);
    }

    #[test]
    fn weights_scale_with_degree_sums() {
        let network = noisy_barabasi_albert(120, 3, 0.1, 9).unwrap();
        // True edge weights are bounded by the degree sum of their endpoints.
        let skeleton_degrees: Vec<f64> = {
            // Recover effective degrees from the true subgraph.
            let true_graph = network
                .graph
                .subgraph_with_edges(&network.true_edge_indices())
                .unwrap();
            true_graph
                .nodes()
                .map(|n| true_graph.degree(n) as f64)
                .collect()
        };
        for edge in network.graph.edges() {
            if network.is_true_edge[edge.index] {
                let bound = skeleton_degrees[edge.source] + skeleton_degrees[edge.target];
                assert!(edge.weight <= bound + 1e-9);
            }
        }
    }

    #[test]
    fn eta_is_validated() {
        assert!(noisy_barabasi_albert(50, 3, -0.1, 0).is_err());
        assert!(noisy_barabasi_albert(50, 3, 1.5, 0).is_err());
    }

    #[test]
    fn determinism_per_seed() {
        let a = noisy_barabasi_albert(80, 3, 0.15, 77).unwrap();
        let b = noisy_barabasi_albert(80, 3, 0.15, 77).unwrap();
        assert_eq!(a.graph.edge_count(), b.graph.edge_count());
        assert_eq!(a.is_true_edge, b.is_true_edge);
    }

    #[test]
    fn scalability_workload_has_requested_edges() {
        let graph = scalability_workload(3000, 3).unwrap();
        assert_eq!(graph.edge_count(), 3000);
        // Average degree ≈ 3 by construction.
        let average_degree = 2.0 * graph.edge_count() as f64 / graph.node_count() as f64;
        assert!((average_degree - 3.0).abs() < 0.5);
    }
}
