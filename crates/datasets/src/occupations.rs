//! Synthetic occupation/skill data for the case study (paper, Section VI).
//!
//! The paper measures skill relatedness between occupations from O*NET
//! (which skills matter for which occupation) and validates it against
//! occupation-switching flows from the Current Population Survey. Those
//! datasets are public but large and require cleaning; this module generates a
//! synthetic equivalent with the properties the case study needs:
//!
//! * occupations are organised in *major groups* (the first digit of the
//!   classification code) — the expert ground truth the backbones are judged
//!   against;
//! * every occupation uses a mix of *generic* skills (shared by most
//!   occupations — the source of noisy co-occurrence edges the paper talks
//!   about) and *group-specific* skills (the latent structure);
//! * labor flows between occupations grow with skill similarity and with the
//!   sizes of the two occupations, plus count noise.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use backboning_graph::{Direction, WeightedGraph};
use backboning_stats::sampling::{sample_log_normal, sample_poisson};

/// Configuration of the synthetic occupation dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct OccupationDataConfig {
    /// Number of occupations.
    pub occupation_count: usize,
    /// Number of major groups (first classification digit).
    pub major_groups: usize,
    /// Number of distinct skills and tasks.
    pub skill_count: usize,
    /// Share of skills that are generic (used by most occupations regardless of group).
    pub generic_skill_share: f64,
    /// Master seed.
    pub seed: u64,
}

impl Default for OccupationDataConfig {
    fn default() -> Self {
        OccupationDataConfig {
            occupation_count: 120,
            major_groups: 10,
            skill_count: 250,
            generic_skill_share: 0.3,
            seed: 2009,
        }
    }
}

impl OccupationDataConfig {
    /// A smaller configuration for fast tests.
    pub fn small() -> Self {
        OccupationDataConfig {
            occupation_count: 60,
            major_groups: 6,
            skill_count: 120,
            generic_skill_share: 0.3,
            seed: 7,
        }
    }
}

/// The synthetic occupation dataset.
#[derive(Debug, Clone)]
pub struct OccupationData {
    /// Occupation titles (synthetic codes such as `"31-0042"`, where the
    /// leading digits encode the major group).
    pub titles: Vec<String>,
    /// Major group (first digit of the classification) of every occupation.
    pub major_group: Vec<usize>,
    /// Employment size of every occupation (number of workers).
    pub sizes: Vec<f64>,
    /// Binary occupation × skill matrix: `skills[o][s]` is true when skill `s`
    /// is important for occupation `o`.
    pub skills: Vec<Vec<bool>>,
    /// The undirected skill co-occurrence network: the weight of `(i, j)` is
    /// the number of skills occupations `i` and `j` share.
    pub co_occurrence: WeightedGraph,
    /// The directed labor-flow network: the weight of `(i, j)` is the number of
    /// workers switching from occupation `i` to occupation `j` in one year.
    pub flows: WeightedGraph,
}

impl OccupationData {
    /// Generate the dataset.
    pub fn generate(config: &OccupationDataConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let n = config.occupation_count;
        let groups = config.major_groups.max(1);
        let generic_skills = (config.skill_count as f64 * config.generic_skill_share) as usize;
        let specific_skills = config.skill_count - generic_skills;
        let skills_per_group = (specific_skills / groups).max(1);

        let mut titles = Vec::with_capacity(n);
        let mut major_group = Vec::with_capacity(n);
        let mut sizes = Vec::with_capacity(n);
        let mut skills = Vec::with_capacity(n);

        for occupation in 0..n {
            let group = occupation % groups;
            titles.push(format!(
                "{}{}-{:04}",
                group / 10 + 1,
                group % 10,
                occupation
            ));
            major_group.push(group);
            sizes.push(sample_log_normal(&mut rng, 11.0, 0.9).clamp(2_000.0, 8_000_000.0));

            let mut portfolio = vec![false; config.skill_count];
            // Generic skills: most occupations use most of them.
            for slot in portfolio.iter_mut().take(generic_skills) {
                *slot = rng.random::<f64>() < 0.6;
            }
            // Group-specific skills: high probability within the own group's
            // block, low probability elsewhere (cross-group skill overlap).
            for skill in 0..specific_skills {
                let skill_group = (skill / skills_per_group).min(groups - 1);
                let probability = if skill_group == group { 0.7 } else { 0.04 };
                portfolio[generic_skills + skill] = rng.random::<f64>() < probability;
            }
            skills.push(portfolio);
        }

        // Skill co-occurrence network.
        let mut co_occurrence = WeightedGraph::new(Direction::Undirected);
        for title in &titles {
            co_occurrence
                .add_labeled_node(title.clone())
                .expect("titles are unique");
        }
        for a in 0..n {
            for b in (a + 1)..n {
                let shared = skills[a]
                    .iter()
                    .zip(&skills[b])
                    .filter(|(&x, &y)| x && y)
                    .count();
                if shared > 0 {
                    co_occurrence
                        .add_edge(a, b, shared as f64)
                        .expect("valid edge");
                }
            }
        }

        // Labor flows: driven by the *latent* similarity (specific-skill overlap)
        // plus origin/destination sizes, observed through Poisson noise.
        let mut flows = WeightedGraph::new(Direction::Directed);
        for title in &titles {
            flows
                .add_labeled_node(title.clone())
                .expect("titles are unique");
        }
        for origin in 0..n {
            for destination in 0..n {
                if origin == destination {
                    continue;
                }
                let specific_overlap = skills[origin][generic_skills..]
                    .iter()
                    .zip(&skills[destination][generic_skills..])
                    .filter(|(&x, &y)| x && y)
                    .count() as f64;
                let size_effect =
                    (sizes[origin] / 1e5).powf(0.6) * (sizes[destination] / 1e5).powf(0.5);
                let expected = 0.6 * size_effect * (0.15 + specific_overlap).powf(1.3);
                let observed = sample_poisson(&mut rng, expected.min(1.0e6));
                if observed > 0 {
                    flows
                        .add_edge(origin, destination, observed as f64)
                        .expect("valid edge");
                }
            }
        }

        OccupationData {
            titles,
            major_group,
            sizes,
            skills,
            co_occurrence,
            flows,
        }
    }

    /// Generate with the default configuration.
    pub fn generate_default() -> Self {
        Self::generate(&OccupationDataConfig::default())
    }

    /// Number of occupations.
    pub fn occupation_count(&self) -> usize {
        self.titles.len()
    }

    /// Total outgoing switches of every occupation (the `S_i.` size control of
    /// the case-study regression).
    pub fn outgoing_switches(&self) -> Vec<f64> {
        (0..self.occupation_count())
            .map(|o| self.flows.out_strength(o))
            .collect()
    }

    /// Total incoming switches of every occupation (the `S_.j` size control).
    pub fn incoming_switches(&self) -> Vec<f64> {
        (0..self.occupation_count())
            .map(|o| self.flows.in_strength(o))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use backboning_stats::correlation::pearson;

    fn small_data() -> OccupationData {
        OccupationData::generate(&OccupationDataConfig::small())
    }

    #[test]
    fn basic_shape() {
        let data = small_data();
        assert_eq!(data.occupation_count(), 60);
        assert_eq!(data.major_group.len(), 60);
        assert_eq!(data.sizes.len(), 60);
        assert_eq!(data.skills.len(), 60);
        assert_eq!(data.co_occurrence.node_count(), 60);
        assert_eq!(data.flows.node_count(), 60);
        assert!(data.co_occurrence.edge_count() > 0);
        assert!(data.flows.edge_count() > 0);
        assert!(!data.co_occurrence.is_directed());
        assert!(data.flows.is_directed());
    }

    #[test]
    fn generation_is_deterministic() {
        let config = OccupationDataConfig::small();
        let a = OccupationData::generate(&config);
        let b = OccupationData::generate(&config);
        assert_eq!(a.titles, b.titles);
        assert_eq!(a.co_occurrence.edge_count(), b.co_occurrence.edge_count());
        assert_eq!(a.flows.edge_count(), b.flows.edge_count());
    }

    #[test]
    fn co_occurrence_is_dense_and_noisy() {
        // Generic skills make almost every pair of occupations share something:
        // this is the "hairball" that motivates backboning in the first place.
        let data = small_data();
        let n = data.occupation_count();
        let possible = n * (n - 1) / 2;
        let density = data.co_occurrence.edge_count() as f64 / possible as f64;
        assert!(
            density > 0.8,
            "co-occurrence density {density} too low to be a hairball"
        );
    }

    #[test]
    fn within_group_pairs_share_more_skills() {
        let data = small_data();
        let mut within = Vec::new();
        let mut across = Vec::new();
        for edge in data.co_occurrence.edges() {
            if data.major_group[edge.source] == data.major_group[edge.target] {
                within.push(edge.weight);
            } else {
                across.push(edge.weight);
            }
        }
        let mean = |v: &Vec<f64>| v.iter().sum::<f64>() / v.len() as f64;
        assert!(mean(&within) > mean(&across) * 1.2);
    }

    #[test]
    fn flows_correlate_with_skill_overlap() {
        // The case study's premise: common skills predict switching flows.
        let data = small_data();
        let mut overlaps = Vec::new();
        let mut flow_weights = Vec::new();
        for edge in data.flows.edges() {
            let overlap = data
                .co_occurrence
                .edge_weight(edge.source, edge.target)
                .unwrap_or(0.0);
            overlaps.push(overlap);
            flow_weights.push(edge.weight);
        }
        let correlation = pearson(&overlaps, &flow_weights).unwrap();
        assert!(
            correlation > 0.2,
            "flow/skill correlation {correlation} too weak"
        );
    }

    #[test]
    fn switch_totals_are_consistent_with_flows() {
        let data = small_data();
        let outgoing = data.outgoing_switches();
        let incoming = data.incoming_switches();
        let total_out: f64 = outgoing.iter().sum();
        let total_in: f64 = incoming.iter().sum();
        assert!((total_out - total_in).abs() < 1e-9);
        assert!((total_out - data.flows.total_weight()).abs() < 1e-9);
    }

    #[test]
    fn titles_encode_major_groups() {
        let data = small_data();
        for (occupation, title) in data.titles.iter().enumerate() {
            assert!(title.contains('-'));
            assert_eq!(data.major_group[occupation], occupation % 6);
        }
    }
}
