//! # backboning-data
//!
//! Dataset substrate for the `backboning-rs` workspace, a Rust reproduction of
//! *Network Backboning with Noisy Data* (Coscia & Neffke, ICDE 2017).
//!
//! The paper's evaluation uses six country–country networks built from
//! proprietary sources (Mastercard corporate-card flows, OAG flight capacity,
//! Dun & Bradstreet ownership records, UN migration stocks, BACI trade data,
//! Atlas of Economic Complexity product data) plus public O*NET/CPS data for
//! the occupation case study. None of those datasets can be redistributed, so
//! this crate generates **synthetic equivalents** that reproduce the
//! structural properties the paper's claims rest on:
//!
//! * broad, heavy-tailed edge-weight distributions spanning several orders of
//!   magnitude (Figure 5);
//! * edge weights locally correlated with topology — the weight of an edge
//!   correlates with the weights of neighbouring edges (Figure 6);
//! * count-data measurement noise on top of a slowly changing latent structure,
//!   observed in several consecutive years (Table I, Figure 8);
//! * a mix of directed flows, directed stocks and undirected co-occurrences;
//! * an occupation–skill co-occurrence network whose latent block structure
//!   matches an expert classification, together with labor flows driven by
//!   skill similarity (Section VI).
//!
//! Everything is deterministic given a seed. See `DESIGN.md` at the repository
//! root for the full substitution rationale.
//!
//! Modules:
//!
//! * [`world`] — the synthetic world: countries with population, GDP, economic
//!   complexity, coordinates, continents and language families.
//! * [`country`] — gravity-model generators for the six country networks,
//!   observed over several years with count noise.
//! * [`occupations`] — the O*NET-like occupation/skill model and labor flows
//!   for the case study.
//! * [`synthetic`] — the Barabási–Albert-plus-noise generator of the paper's
//!   synthetic recovery experiment (Figure 4) and the Erdős–Rényi workloads of
//!   the scalability experiment (Figure 9).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod country;
pub mod occupations;
pub mod synthetic;
pub mod world;

pub use country::{CountryData, CountryDataConfig, CountryNetworkKind};
pub use occupations::{OccupationData, OccupationDataConfig};
pub use synthetic::{noisy_barabasi_albert, scalability_workload, NoisySyntheticNetwork};
pub use world::{Country, World};
