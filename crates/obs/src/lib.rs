//! Lock-free observability primitives for the backboning stack.
//!
//! This crate is intentionally tiny and dependency-free. It provides the
//! measurement substrate the server and benchmark tooling report through:
//!
//! - [`Counter`] and [`Gauge`]: single atomics with relaxed ordering, safe to
//!   hammer from any number of threads.
//! - [`LatencyHistogram`]: a log-bucketed (HDR-style) histogram with **fixed**
//!   bucket boundaries — roughly two buckets per octave from 1 µs to 60 s —
//!   so snapshots taken on different threads or machines always line up and
//!   merges are deterministic. Quantile readout walks exact bucket counts;
//!   the reported value is the bucket upper bound, so the relative error is
//!   bounded by one bucket (a factor of √2).
//! - [`Timer`]: an RAII span guard that records its elapsed time into a
//!   histogram on drop.
//! - [`MetricsRegistry`]: a process-wide, label-aware registry of named
//!   metrics that can be snapshotted without stopping writers and rendered
//!   as Prometheus text exposition or JSON.
//!
//! Everything records with `Ordering::Relaxed`: individual metric updates
//! never need to synchronize with each other, and snapshots are advisory
//! reads. Once writers quiesce (e.g. after a load test joins its clients),
//! counts read back exactly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod histogram;
mod registry;

pub use histogram::{
    bucket_bounds_micros, bucket_index_micros, HistogramSnapshot, LatencyHistogram, Timer,
    MAX_TRACKED_MICROS,
};
pub use registry::{Counter, Gauge, MetricSample, MetricsRegistry, MetricsSnapshot, SampleValue};
