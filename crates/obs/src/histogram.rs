//! Log-bucketed latency histogram with fixed, deterministic bucket bounds.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Largest latency (in microseconds) tracked with log-bucket resolution.
/// Values beyond this land in a single overflow bucket; the exact maximum is
/// still reported via the histogram's max tracker.
pub const MAX_TRACKED_MICROS: u64 = 60_000_000;

/// Builds the shared bucket upper bounds: every power of two from 1 µs up,
/// interleaved with its √2 midpoint (~2 buckets per octave), capped at
/// [`MAX_TRACKED_MICROS`]. Strictly increasing by construction.
fn build_bounds() -> Vec<u64> {
    let mut bounds = Vec::new();
    let mut power: u64 = 1;
    while power < MAX_TRACKED_MICROS {
        bounds.push(power);
        let midpoint = ((power as f64) * std::f64::consts::SQRT_2).round() as u64;
        if midpoint > power && midpoint < MAX_TRACKED_MICROS && midpoint < power * 2 {
            bounds.push(midpoint);
        }
        power = power.saturating_mul(2);
    }
    bounds.push(MAX_TRACKED_MICROS);
    bounds
}

/// The fixed bucket upper bounds (inclusive), in microseconds, shared by every
/// [`LatencyHistogram`] in the process. Bucket `i` counts values `v` with
/// `bounds[i-1] < v <= bounds[i]` (bucket 0 starts at zero); one extra
/// overflow bucket past the last bound catches everything larger.
pub fn bucket_bounds_micros() -> &'static [u64] {
    static BOUNDS: OnceLock<Vec<u64>> = OnceLock::new();
    BOUNDS.get_or_init(build_bounds)
}

/// Maps a value in microseconds to its bucket index. Values past the last
/// bound map to the overflow bucket `bucket_bounds_micros().len()`.
pub fn bucket_index_micros(micros: u64) -> usize {
    bucket_bounds_micros().partition_point(|&bound| bound < micros)
}

/// A lock-free, atomics-only latency histogram.
///
/// Recording is wait-free: one `fetch_add` on the bucket counter plus two
/// relaxed updates for the running sum and maximum. All instances share the
/// same bucket boundaries (see [`bucket_bounds_micros`]), so snapshots merge
/// deterministically regardless of which thread recorded what.
pub struct LatencyHistogram {
    counts: Box<[AtomicU64]>,
    sum_micros: AtomicU64,
    max_micros: AtomicU64,
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        let buckets = bucket_bounds_micros().len() + 1;
        let counts = (0..buckets).map(|_| AtomicU64::new(0)).collect();
        LatencyHistogram {
            counts,
            sum_micros: AtomicU64::new(0),
            max_micros: AtomicU64::new(0),
        }
    }

    /// Records one latency observation.
    pub fn record(&self, elapsed: Duration) {
        self.record_micros(u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX));
    }

    /// Records one latency observation given directly in microseconds.
    pub fn record_micros(&self, micros: u64) {
        let index = bucket_index_micros(micros);
        self.counts[index].fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
        self.max_micros.fetch_max(micros, Ordering::Relaxed);
    }

    /// Takes a point-in-time copy of the bucket counts without blocking
    /// writers. Concurrent recordings may or may not be included; once
    /// writers quiesce the snapshot is exact.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: self
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            sum_micros: self.sum_micros.load(Ordering::Relaxed),
            max_micros: self.max_micros.load(Ordering::Relaxed),
        }
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snapshot = self.snapshot();
        f.debug_struct("LatencyHistogram")
            .field("count", &snapshot.count())
            .field("sum_micros", &snapshot.sum_micros())
            .field("max_micros", &snapshot.max_micros())
            .finish()
    }
}

/// An immutable copy of a histogram's state, with quantile readout and
/// deterministic merging.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    counts: Vec<u64>,
    sum_micros: u64,
    max_micros: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot (useful as a merge accumulator).
    pub fn empty() -> Self {
        HistogramSnapshot {
            counts: vec![0; bucket_bounds_micros().len() + 1],
            sum_micros: 0,
            max_micros: 0,
        }
    }

    /// Total number of recorded observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Sum of all recorded values, in microseconds.
    pub fn sum_micros(&self) -> u64 {
        self.sum_micros
    }

    /// The exact largest recorded value, in microseconds (0 when empty).
    pub fn max_micros(&self) -> u64 {
        self.max_micros
    }

    /// Mean of all recorded values, in microseconds (0.0 when empty).
    pub fn mean_micros(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum_micros as f64 / count as f64
        }
    }

    /// The per-bucket counts, aligned with [`bucket_bounds_micros`] plus one
    /// trailing overflow bucket.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Reads the `q`-quantile (`0.0 < q <= 1.0`) in microseconds.
    ///
    /// Walks exact bucket counts to the observation of rank `ceil(q * count)`
    /// and reports that bucket's upper bound, clamped to the exact recorded
    /// maximum — so the result never understates the true quantile and
    /// overstates it by at most one bucket (a factor of √2). Returns 0 for an
    /// empty histogram.
    pub fn quantile_micros(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let bounds = bucket_bounds_micros();
        let mut seen = 0u64;
        for (index, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                let upper = bounds.get(index).copied().unwrap_or(self.max_micros);
                return upper.min(self.max_micros);
            }
        }
        self.max_micros
    }

    /// [`Self::quantile_micros`] converted to seconds.
    pub fn quantile_seconds(&self, q: f64) -> f64 {
        self.quantile_micros(q) as f64 / 1e6
    }

    /// Adds another snapshot's counts into this one. Because all histograms
    /// share the same fixed bounds, merging is associative and commutative:
    /// any merge order over the same snapshots yields identical results.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        assert_eq!(
            self.counts.len(),
            other.counts.len(),
            "histogram snapshots always share the fixed global bucket layout",
        );
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.sum_micros += other.sum_micros;
        self.max_micros = self.max_micros.max(other.max_micros);
    }
}

/// RAII span guard: records the time from construction to drop into the
/// histogram it was started on.
#[derive(Debug)]
pub struct Timer {
    histogram: Arc<LatencyHistogram>,
    start: Instant,
    recorded: bool,
}

impl Timer {
    /// Starts timing a span against `histogram`.
    pub fn start(histogram: Arc<LatencyHistogram>) -> Self {
        Timer {
            histogram,
            start: Instant::now(),
            recorded: false,
        }
    }

    /// Stops the span early, records it, and returns the elapsed time.
    pub fn stop(mut self) -> Duration {
        let elapsed = self.start.elapsed();
        self.histogram.record(elapsed);
        self.recorded = true;
        elapsed
    }
}

impl Drop for Timer {
    fn drop(&mut self) {
        if !self.recorded {
            self.histogram.record(self.start.elapsed());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_are_strictly_increasing_and_capped() {
        let bounds = bucket_bounds_micros();
        assert_eq!(bounds[0], 1);
        assert_eq!(*bounds.last().unwrap(), MAX_TRACKED_MICROS);
        for window in bounds.windows(2) {
            assert!(window[0] < window[1], "bounds must strictly increase");
        }
        // ~2 buckets per octave over 1 µs..60 s is a little over 50 bounds.
        assert!(bounds.len() > 45 && bounds.len() < 60, "{}", bounds.len());
    }

    #[test]
    fn bucket_relative_width_is_at_most_sqrt2() {
        let bounds = bucket_bounds_micros();
        for window in bounds.windows(2) {
            let ratio = window[1] as f64 / window[0] as f64;
            // Integer rounding at the small end makes some ratios exactly 2
            // (1→2) or slightly above √2; all stay at or below one octave.
            assert!(ratio <= 2.0, "ratio {} too wide", ratio);
        }
    }

    #[test]
    fn records_land_in_the_right_buckets() {
        let histogram = LatencyHistogram::new();
        histogram.record_micros(0);
        histogram.record_micros(1);
        histogram.record_micros(2);
        histogram.record_micros(3);
        let snapshot = histogram.snapshot();
        assert_eq!(snapshot.bucket_counts()[0], 2); // 0 and 1 both ≤ 1 µs
        assert_eq!(snapshot.bucket_counts()[1], 1); // 2 µs
        assert_eq!(snapshot.bucket_counts()[2], 1); // 3 µs
        assert_eq!(snapshot.count(), 4);
        assert_eq!(snapshot.sum_micros(), 6);
        assert_eq!(snapshot.max_micros(), 3);
    }

    #[test]
    fn overflow_values_go_to_the_overflow_bucket_with_exact_max() {
        let histogram = LatencyHistogram::new();
        histogram.record_micros(MAX_TRACKED_MICROS + 123);
        let snapshot = histogram.snapshot();
        assert_eq!(*snapshot.bucket_counts().last().unwrap(), 1);
        assert_eq!(snapshot.max_micros(), MAX_TRACKED_MICROS + 123);
        assert_eq!(snapshot.quantile_micros(0.5), MAX_TRACKED_MICROS + 123);
    }

    #[test]
    fn quantiles_of_a_point_mass_are_exactly_the_bucket_bound() {
        let histogram = LatencyHistogram::new();
        for _ in 0..1000 {
            histogram.record_micros(500);
        }
        let snapshot = histogram.snapshot();
        // 500 µs falls in the bucket with upper bound 512; the exact max (500)
        // clamps the readout.
        for q in [0.5, 0.9, 0.99, 1.0] {
            assert_eq!(snapshot.quantile_micros(q), 500);
        }
    }

    #[test]
    fn quantile_walk_matches_rank_semantics() {
        let histogram = LatencyHistogram::new();
        // 90 fast observations, 10 slow ones.
        for _ in 0..90 {
            histogram.record_micros(100);
        }
        for _ in 0..10 {
            histogram.record_micros(10_000);
        }
        let snapshot = histogram.snapshot();
        // p50 and p90 sit in the fast mass; p99 in the slow mass.
        assert!(snapshot.quantile_micros(0.5) <= 128);
        assert!(snapshot.quantile_micros(0.9) <= 128);
        assert!(snapshot.quantile_micros(0.99) >= 10_000);
    }

    #[test]
    fn timer_records_on_drop_and_on_stop() {
        let histogram = Arc::new(LatencyHistogram::new());
        {
            let _span = Timer::start(Arc::clone(&histogram));
        }
        let elapsed = Timer::start(Arc::clone(&histogram)).stop();
        let snapshot = histogram.snapshot();
        assert_eq!(snapshot.count(), 2);
        assert!(elapsed.as_secs() < 60);
    }

    #[test]
    fn merge_is_elementwise_with_max_of_maxes() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        a.record_micros(10);
        a.record_micros(20);
        b.record_micros(5_000);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.count(), 3);
        assert_eq!(merged.sum_micros(), 5_030);
        assert_eq!(merged.max_micros(), 5_000);
    }

    #[test]
    fn empty_snapshot_reads_zero_everywhere() {
        let snapshot = HistogramSnapshot::empty();
        assert_eq!(snapshot.count(), 0);
        assert_eq!(snapshot.quantile_micros(0.99), 0);
        assert_eq!(snapshot.mean_micros(), 0.0);
    }
}
