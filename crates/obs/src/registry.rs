//! Counters, gauges, and the label-aware process-wide metrics registry.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use crate::histogram::{HistogramSnapshot, LatencyHistogram};

/// A monotonically increasing counter. All operations use relaxed atomics.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Reads the current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down. All operations use relaxed
/// atomics.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts one.
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Overwrites the value.
    pub fn set(&self, value: i64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Reads the current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Sorted `(key, value)` label pairs identifying one time series.
type LabelSet = Vec<(String, String)>;

fn label_set(labels: &[(&str, &str)]) -> LabelSet {
    let mut set: LabelSet = labels
        .iter()
        .map(|&(key, value)| (key.to_string(), value.to_string()))
        .collect();
    set.sort();
    set
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<LatencyHistogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A process-wide registry of named, labelled metrics.
///
/// Lookup takes a read lock; registering a series seen for the first time
/// takes a short write lock. The returned `Arc` handles are the hot path —
/// callers cache them and record through plain atomics, never touching the
/// lock again. [`MetricsRegistry::snapshot`] copies current values without
/// stopping writers.
#[derive(Default)]
pub struct MetricsRegistry {
    metrics: RwLock<BTreeMap<(String, LabelSet), Metric>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Returns the counter for `name` + `labels`, registering it on first use.
    ///
    /// # Panics
    /// If the same series was previously registered as a different kind.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let key = (name.to_string(), label_set(labels));
        if let Some(metric) = self.metrics.read().unwrap().get(&key) {
            return match metric {
                Metric::Counter(counter) => Arc::clone(counter),
                other => panic!("metric {name} already registered as a {}", other.kind()),
            };
        }
        let mut metrics = self.metrics.write().unwrap();
        match metrics
            .entry(key)
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())))
        {
            Metric::Counter(counter) => Arc::clone(counter),
            other => panic!("metric {name} already registered as a {}", other.kind()),
        }
    }

    /// Returns the gauge for `name` + `labels`, registering it on first use.
    ///
    /// # Panics
    /// If the same series was previously registered as a different kind.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let key = (name.to_string(), label_set(labels));
        if let Some(metric) = self.metrics.read().unwrap().get(&key) {
            return match metric {
                Metric::Gauge(gauge) => Arc::clone(gauge),
                other => panic!("metric {name} already registered as a {}", other.kind()),
            };
        }
        let mut metrics = self.metrics.write().unwrap();
        match metrics
            .entry(key)
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new())))
        {
            Metric::Gauge(gauge) => Arc::clone(gauge),
            other => panic!("metric {name} already registered as a {}", other.kind()),
        }
    }

    /// Returns the latency histogram for `name` + `labels`, registering it on
    /// first use.
    ///
    /// # Panics
    /// If the same series was previously registered as a different kind.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<LatencyHistogram> {
        let key = (name.to_string(), label_set(labels));
        if let Some(metric) = self.metrics.read().unwrap().get(&key) {
            return match metric {
                Metric::Histogram(histogram) => Arc::clone(histogram),
                other => panic!("metric {name} already registered as a {}", other.kind()),
            };
        }
        let mut metrics = self.metrics.write().unwrap();
        match metrics
            .entry(key)
            .or_insert_with(|| Metric::Histogram(Arc::new(LatencyHistogram::new())))
        {
            Metric::Histogram(histogram) => Arc::clone(histogram),
            other => panic!("metric {name} already registered as a {}", other.kind()),
        }
    }

    /// Takes a point-in-time copy of every registered series. Writers keep
    /// recording while the snapshot is taken; each series is read atomically.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let metrics = self.metrics.read().unwrap();
        let samples = metrics
            .iter()
            .map(|((name, labels), metric)| MetricSample {
                name: name.clone(),
                labels: labels.clone(),
                value: match metric {
                    Metric::Counter(counter) => SampleValue::Counter(counter.get()),
                    Metric::Gauge(gauge) => SampleValue::Gauge(gauge.get()),
                    Metric::Histogram(histogram) => SampleValue::Histogram(histogram.snapshot()),
                },
            })
            .collect();
        MetricsSnapshot { samples }
    }
}

/// The recorded value of one series at snapshot time.
#[derive(Debug, Clone)]
pub enum SampleValue {
    /// A monotonic counter value.
    Counter(u64),
    /// A gauge value.
    Gauge(i64),
    /// A full histogram snapshot.
    Histogram(HistogramSnapshot),
}

/// One named, labelled series captured in a [`MetricsSnapshot`].
#[derive(Debug, Clone)]
pub struct MetricSample {
    /// Metric family name, e.g. `http_requests_total`.
    pub name: String,
    /// Sorted label pairs, e.g. `[("method", "GET"), ("route", "/health")]`.
    pub labels: Vec<(String, String)>,
    /// The value at snapshot time.
    pub value: SampleValue,
}

/// A point-in-time copy of a registry, renderable as Prometheus text
/// exposition or JSON. Extra scrape-time samples (values owned outside the
/// registry, like cache counters) can be appended before rendering.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    samples: Vec<MetricSample>,
}

impl MetricsSnapshot {
    /// Appends a counter sample gathered outside the registry.
    pub fn push_counter(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.samples.push(MetricSample {
            name: name.to_string(),
            labels: label_set(labels),
            value: SampleValue::Counter(value),
        });
    }

    /// Appends a gauge sample gathered outside the registry.
    pub fn push_gauge(&mut self, name: &str, labels: &[(&str, &str)], value: i64) {
        self.samples.push(MetricSample {
            name: name.to_string(),
            labels: label_set(labels),
            value: SampleValue::Gauge(value),
        });
    }

    /// The captured samples, sorted by name and label set.
    pub fn samples(&self) -> Vec<&MetricSample> {
        let mut samples: Vec<&MetricSample> = self.samples.iter().collect();
        samples.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        samples
    }

    /// Finds a counter sample by name and exact label set.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let wanted = label_set(labels);
        self.samples.iter().find_map(|sample| {
            match (
                &sample.value,
                sample.name == name && sample.labels == wanted,
            ) {
                (SampleValue::Counter(value), true) => Some(*value),
                _ => None,
            }
        })
    }

    /// Finds a histogram sample by name and exact label set.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&HistogramSnapshot> {
        let wanted = label_set(labels);
        self.samples.iter().find_map(|sample| {
            match (
                &sample.value,
                sample.name == name && sample.labels == wanted,
            ) {
                (SampleValue::Histogram(histogram), true) => Some(histogram),
                _ => None,
            }
        })
    }

    /// Renders the snapshot in Prometheus text exposition format.
    ///
    /// Counters and gauges render as plain samples; histograms render as
    /// Prometheus *summaries* — `quantile="0.5" / "0.9" / "0.99"` samples in
    /// seconds plus `_sum` and `_count` — followed by a `{name}_max` gauge
    /// family carrying the exact recorded maximum.
    pub fn to_prometheus(&self) -> String {
        let samples = self.samples();
        let mut out = String::new();
        let mut histogram_families: Vec<(&str, Vec<&MetricSample>)> = Vec::new();
        let mut previous_name: Option<&str> = None;
        for sample in &samples {
            let name = sample.name.as_str();
            match &sample.value {
                SampleValue::Counter(value) => {
                    if previous_name != Some(name) {
                        out.push_str(&format!("# TYPE {name} counter\n"));
                    }
                    out.push_str(&format!(
                        "{name}{} {value}\n",
                        prometheus_labels(&sample.labels, None)
                    ));
                }
                SampleValue::Gauge(value) => {
                    if previous_name != Some(name) {
                        out.push_str(&format!("# TYPE {name} gauge\n"));
                    }
                    out.push_str(&format!(
                        "{name}{} {value}\n",
                        prometheus_labels(&sample.labels, None)
                    ));
                }
                SampleValue::Histogram(histogram) => {
                    if previous_name != Some(name) {
                        out.push_str(&format!("# TYPE {name} summary\n"));
                        histogram_families.push((name, Vec::new()));
                    }
                    histogram_families.last_mut().unwrap().1.push(sample);
                    for quantile in ["0.5", "0.9", "0.99"] {
                        let q: f64 = quantile.parse().unwrap();
                        out.push_str(&format!(
                            "{name}{} {}\n",
                            prometheus_labels(&sample.labels, Some(quantile)),
                            histogram.quantile_seconds(q)
                        ));
                    }
                    let labels = prometheus_labels(&sample.labels, None);
                    out.push_str(&format!(
                        "{name}_sum{labels} {}\n",
                        histogram.sum_micros() as f64 / 1e6
                    ));
                    out.push_str(&format!("{name}_count{labels} {}\n", histogram.count()));
                }
            }
            previous_name = Some(name);
        }
        // Exact maxima go last, one gauge family per histogram family, so
        // every family's samples stay contiguous as the format requires.
        for (name, family) in histogram_families {
            out.push_str(&format!("# TYPE {name}_max gauge\n"));
            for sample in family {
                if let SampleValue::Histogram(histogram) = &sample.value {
                    out.push_str(&format!(
                        "{name}_max{} {}\n",
                        prometheus_labels(&sample.labels, None),
                        histogram.max_micros() as f64 / 1e6
                    ));
                }
            }
        }
        out
    }

    /// Renders the snapshot as JSON: three arrays (`counters`, `gauges`,
    /// `histograms`), each entry carrying `name`, a `labels` object, and its
    /// value(s). Histogram quantiles and sums are in seconds; `count` is the
    /// exact number of observations.
    pub fn to_json(&self) -> String {
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut histograms = Vec::new();
        for sample in self.samples() {
            let head = format!(
                "{{ \"name\": {}, \"labels\": {}",
                json_string(&sample.name),
                json_labels(&sample.labels)
            );
            match &sample.value {
                SampleValue::Counter(value) => {
                    counters.push(format!("{head}, \"value\": {value} }}"));
                }
                SampleValue::Gauge(value) => {
                    gauges.push(format!("{head}, \"value\": {value} }}"));
                }
                SampleValue::Histogram(histogram) => {
                    histograms.push(format!(
                        "{head}, \"count\": {}, \"sum_seconds\": {}, \"p50_seconds\": {}, \
                         \"p90_seconds\": {}, \"p99_seconds\": {}, \"max_seconds\": {} }}",
                        histogram.count(),
                        histogram.sum_micros() as f64 / 1e6,
                        histogram.quantile_seconds(0.5),
                        histogram.quantile_seconds(0.9),
                        histogram.quantile_seconds(0.99),
                        histogram.max_micros() as f64 / 1e6,
                    ));
                }
            }
        }
        let mut out = String::from("{\n");
        for (index, (key, entries)) in [
            ("counters", counters),
            ("gauges", gauges),
            ("histograms", histograms),
        ]
        .into_iter()
        .enumerate()
        {
            if index > 0 {
                out.push_str(",\n");
            }
            out.push_str(&format!("  \"{key}\": [\n"));
            for (entry_index, entry) in entries.iter().enumerate() {
                if entry_index > 0 {
                    out.push_str(",\n");
                }
                out.push_str("    ");
                out.push_str(entry);
            }
            if !entries.is_empty() {
                out.push('\n');
            }
            out.push_str("  ]");
        }
        out.push_str("\n}\n");
        out
    }
}

/// Renders a label set (plus an optional `quantile` label) in Prometheus
/// exposition syntax; empty label sets render as nothing.
fn prometheus_labels(labels: &[(String, String)], quantile: Option<&str>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(key, value)| format!("{key}=\"{}\"", prometheus_escape(value)))
        .collect();
    if let Some(q) = quantile {
        parts.push(format!("quantile=\"{q}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

fn prometheus_escape(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn json_string(value: &str) -> String {
    let mut out = String::with_capacity(value.len() + 2);
    out.push('"');
    for character in value.chars() {
        match character {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_labels(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return "{}".to_string();
    }
    let parts: Vec<String> = labels
        .iter()
        .map(|(key, value)| format!("{}: {}", json_string(key), json_string(value)))
        .collect();
    format!("{{ {} }}", parts.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn counter_and_gauge_basics() {
        let counter = Counter::new();
        counter.inc();
        counter.add(41);
        assert_eq!(counter.get(), 42);

        let gauge = Gauge::new();
        gauge.inc();
        gauge.inc();
        gauge.dec();
        assert_eq!(gauge.get(), 1);
        gauge.set(-7);
        assert_eq!(gauge.get(), -7);
    }

    #[test]
    fn registry_returns_the_same_series_for_the_same_key() {
        let registry = MetricsRegistry::new();
        let a = registry.counter("hits", &[("route", "/health")]);
        let b = registry.counter("hits", &[("route", "/health")]);
        a.inc();
        assert_eq!(b.get(), 1);
        // Label order does not matter: sets are sorted on registration.
        let c = registry.counter("pair", &[("a", "1"), ("b", "2")]);
        let d = registry.counter("pair", &[("b", "2"), ("a", "1")]);
        c.inc();
        assert_eq!(d.get(), 1);
        // Different labels are a different series.
        let e = registry.counter("hits", &[("route", "/graphs")]);
        assert_eq!(e.get(), 0);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn registering_the_same_series_as_a_different_kind_panics() {
        let registry = MetricsRegistry::new();
        registry.counter("clash", &[]);
        registry.gauge("clash", &[]);
    }

    #[test]
    fn snapshot_is_queryable_and_extendable() {
        let registry = MetricsRegistry::new();
        registry.counter("requests", &[("route", "/health")]).add(3);
        registry.gauge("in_flight", &[]).set(2);
        registry
            .histogram("latency_seconds", &[("route", "/health")])
            .record(Duration::from_micros(800));

        let mut snapshot = registry.snapshot();
        snapshot.push_counter("cache_hits_total", &[], 9);
        assert_eq!(
            snapshot.counter("requests", &[("route", "/health")]),
            Some(3)
        );
        assert_eq!(snapshot.counter("cache_hits_total", &[]), Some(9));
        assert_eq!(snapshot.counter("requests", &[("route", "/nope")]), None);
        let histogram = snapshot
            .histogram("latency_seconds", &[("route", "/health")])
            .unwrap();
        assert_eq!(histogram.count(), 1);
        assert_eq!(histogram.max_micros(), 800);
    }

    #[test]
    fn prometheus_rendering_has_type_lines_and_quantiles() {
        let registry = MetricsRegistry::new();
        registry
            .counter(
                "http_requests_total",
                &[("route", "/health"), ("status", "200")],
            )
            .add(5);
        registry.gauge("http_requests_in_flight", &[]).set(1);
        let histogram =
            registry.histogram("http_request_duration_seconds", &[("route", "/health")]);
        histogram.record_micros(1_000);
        histogram.record_micros(2_000);

        let text = registry.snapshot().to_prometheus();
        assert!(text.contains("# TYPE http_requests_total counter\n"));
        assert!(text.contains("http_requests_total{route=\"/health\",status=\"200\"} 5\n"));
        assert!(text.contains("# TYPE http_requests_in_flight gauge\n"));
        assert!(text.contains("http_requests_in_flight 1\n"));
        assert!(text.contains("# TYPE http_request_duration_seconds summary\n"));
        // 1000 µs rounds up to its bucket's upper bound (1024 µs).
        assert!(text.contains(
            "http_request_duration_seconds{route=\"/health\",quantile=\"0.5\"} 0.001024\n"
        ));
        assert!(text.contains("http_request_duration_seconds_sum{route=\"/health\"} 0.003\n"));
        assert!(text.contains("http_request_duration_seconds_count{route=\"/health\"} 2\n"));
        assert!(text.contains("# TYPE http_request_duration_seconds_max gauge\n"));
        assert!(text.contains("http_request_duration_seconds_max{route=\"/health\"} 0.002\n"));
    }

    #[test]
    fn json_rendering_is_grouped_by_kind() {
        let registry = MetricsRegistry::new();
        registry.counter("requests", &[("route", "/x")]).add(2);
        registry.gauge("in_flight", &[]).set(0);
        registry
            .histogram("latency_seconds", &[])
            .record_micros(512);
        let json = registry.snapshot().to_json();
        assert!(json.contains("\"counters\": ["));
        assert!(json.contains(
            "{ \"name\": \"requests\", \"labels\": { \"route\": \"/x\" }, \"value\": 2 }"
        ));
        assert!(json.contains("\"gauges\": ["));
        assert!(json.contains("\"histograms\": ["));
        assert!(json.contains("\"count\": 1"));
        assert!(json.contains("\"p50_seconds\": 0.000512"));
        assert!(json.ends_with("}\n"));
    }

    #[test]
    fn snapshots_do_not_block_writers() {
        let registry = Arc::new(MetricsRegistry::new());
        let counter = registry.counter("spins", &[]);
        let writer = {
            let counter = Arc::clone(&counter);
            std::thread::spawn(move || {
                for _ in 0..10_000 {
                    counter.inc();
                }
            })
        };
        for _ in 0..50 {
            let _ = registry.snapshot().to_prometheus();
        }
        writer.join().unwrap();
        assert_eq!(counter.get(), 10_000);
    }
}
