//! Property tests for the latency histogram: quantile accuracy against exact
//! sort-based quantiles, concurrent-recording totals, and snapshot-merge
//! determinism.

use proptest::prelude::*;

use std::sync::Arc;

use backboning_obs::{
    bucket_bounds_micros, bucket_index_micros, HistogramSnapshot, LatencyHistogram,
};

/// The exact rank-based quantile the histogram approximates: the value of
/// rank `ceil(q * n)` in the sorted sample.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Latency samples spanning the histogram's full tracked range (1 µs .. 60 s)
/// plus a sliver of overflow values.
fn samples() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..70_000_000, 1..400)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The histogram quantile never understates the exact quantile and
    /// overstates it by at most one bucket's relative error: the reported
    /// value lives in the same bucket as the exact value (it is the bucket's
    /// upper bound, clamped to the recorded maximum).
    #[test]
    fn quantiles_are_within_one_bucket_of_exact(values in samples()) {
        let histogram = LatencyHistogram::new();
        for &value in &values {
            histogram.record_micros(value);
        }
        let snapshot = histogram.snapshot();
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for q in [0.5, 0.9, 0.99, 1.0] {
            let exact = exact_quantile(&sorted, q);
            let reported = snapshot.quantile_micros(q);
            prop_assert!(
                reported >= exact,
                "q={}: reported {} understates exact {}",
                q, reported, exact
            );
            prop_assert!(
                bucket_index_micros(reported) <= bucket_index_micros(exact) + 1,
                "q={}: reported {} is more than one bucket above exact {}",
                q, reported, exact
            );
            // The upper bound of exact's bucket caps the error at √2 + the
            // max clamp keeps the readout within the recorded range.
            prop_assert!(reported <= *sorted.last().unwrap());
        }
    }

    /// Concurrent recording from several threads loses nothing: total count,
    /// sum, and max all match the single-threaded ground truth.
    #[test]
    fn concurrent_recording_preserves_totals(values in samples(), threads in 1usize..9) {
        let histogram = Arc::new(LatencyHistogram::new());
        let chunk = values.len().div_ceil(threads);
        std::thread::scope(|scope| {
            for part in values.chunks(chunk.max(1)) {
                let histogram = Arc::clone(&histogram);
                scope.spawn(move || {
                    for &value in part {
                        histogram.record_micros(value);
                    }
                });
            }
        });
        let snapshot = histogram.snapshot();
        prop_assert_eq!(snapshot.count(), values.len() as u64);
        prop_assert_eq!(snapshot.sum_micros(), values.iter().sum::<u64>());
        prop_assert_eq!(snapshot.max_micros(), values.iter().copied().max().unwrap_or(0));
    }

    /// Splitting the same sample across 1, 2, 3, or 8 threads — each with its
    /// own histogram — and merging the per-thread snapshots yields exactly
    /// the same snapshot as recording everything into one histogram, in any
    /// merge order. Fixed global bucket bounds make this deterministic.
    #[test]
    fn snapshot_merge_is_deterministic_across_thread_splits(values in samples()) {
        let reference = LatencyHistogram::new();
        for &value in &values {
            reference.record_micros(value);
        }
        let expected = reference.snapshot();

        for threads in [1usize, 2, 3, 8] {
            let partials: Vec<HistogramSnapshot> = std::thread::scope(|scope| {
                let chunk = values.len().div_ceil(threads).max(1);
                let handles: Vec<_> = values
                    .chunks(chunk)
                    .map(|part| {
                        scope.spawn(move || {
                            let local = LatencyHistogram::new();
                            for &value in part {
                                local.record_micros(value);
                            }
                            local.snapshot()
                        })
                    })
                    .collect();
                handles.into_iter().map(|handle| handle.join().unwrap()).collect()
            });

            let mut forward = HistogramSnapshot::empty();
            for partial in &partials {
                forward.merge(partial);
            }
            let mut backward = HistogramSnapshot::empty();
            for partial in partials.iter().rev() {
                backward.merge(partial);
            }
            prop_assert!(forward == expected, "forward merge diverged at {} threads", threads);
            prop_assert!(backward == expected, "merge order changed the result at {} threads", threads);
        }
    }

    /// Bucket index lookup agrees with a linear scan of the bounds table.
    #[test]
    fn bucket_index_matches_linear_scan(value in 0u64..100_000_000) {
        let bounds = bucket_bounds_micros();
        let linear = bounds.iter().position(|&bound| value <= bound).unwrap_or(bounds.len());
        prop_assert_eq!(bucket_index_micros(value), linear);
    }
}
