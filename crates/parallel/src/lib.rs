//! # backboning-parallel
//!
//! Std-only data-parallel primitives for the scoring hot paths of the
//! `backboning-rs` workspace. The container building this workspace has no
//! crates.io access, so instead of rayon the workspace carries this small
//! engine built on [`std::thread::scope`].
//!
//! ## Threading model
//!
//! Work is always split into **contiguous index ranges**, one per worker, and
//! results are merged **in range order** on the calling thread. Two
//! consequences:
//!
//! * **Determinism** — [`par_map`] and [`par_chunks`] return element `i`'s
//!   result at position `i` no matter how many threads ran, and
//!   [`par_accumulate`] merges the per-worker accumulators in ascending range
//!   order. Callers whose per-item work is a pure function therefore get
//!   *bit-identical* output at 1, 2 or N threads; callers that accumulate
//!   floats must either merge exactly (integers, index lists) or perform the
//!   order-sensitive reduction sequentially on the returned per-item values.
//!   Every extractor in `crates/core` follows one of those two patterns, which
//!   is what the parity test suite pins down.
//! * **No work stealing** — ranges are equal-sized, which is the right shape
//!   for the homogeneous per-edge and per-root workloads here (edge scoring,
//!   one Dijkstra per root, one Monte Carlo trial per seed).
//!
//! The worker count defaults to [`std::thread::available_parallelism`] and can
//! be overridden with the `BACKBONING_THREADS` environment variable (a
//! positive integer; `BACKBONING_THREADS=1` forces the sequential path, which
//! runs inline on the calling thread without spawning).
//!
//! ## Example
//!
//! ```
//! use backboning_parallel::{par_map, par_accumulate};
//!
//! // Order-preserving parallel map: result `i` is `map(i, &items[i])`,
//! // bit-identical at any worker count.
//! let squares = par_map(&[1u64, 2, 3, 4], 2, |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//!
//! // Accumulate-then-merge over an index range: each worker folds its own
//! // contiguous range, and the partials merge in ascending range order.
//! let sum = par_accumulate(
//!     100,
//!     4,
//!     || 0u64,
//!     |acc, i| *acc += i as u64,
//!     |acc, partial| *acc += partial,
//! );
//! assert_eq!(sum, 4950);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// Environment variable overriding the default worker count.
pub const THREADS_ENV: &str = "BACKBONING_THREADS";

/// The default number of worker threads: the `BACKBONING_THREADS` environment
/// variable when set to a positive integer, otherwise
/// [`std::thread::available_parallelism`] (1 when unknown).
pub fn available_threads() -> usize {
    match std::env::var(THREADS_ENV) {
        Ok(value) => match value.trim().parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => default_parallelism(),
        },
        Err(_) => default_parallelism(),
    }
}

fn default_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Resolve an explicit thread request: `0` means "use [`available_threads`]",
/// anything else is taken literally.
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        available_threads()
    } else {
        requested
    }
}

/// Resolve a thread request and clamp it so every worker gets at least
/// `min_items_per_worker` of the `items` to process.
///
/// Spawning an OS thread costs far more than scoring a handful of edges, so
/// cheap per-item workloads should stay inline on small inputs; expensive
/// per-item workloads (a full Dijkstra per item) pass a small minimum. The
/// clamp only changes *which* worker computes an item, never the result.
pub fn clamped_threads(requested: usize, items: usize, min_items_per_worker: usize) -> usize {
    resolve_threads(requested)
        .min(items.div_ceil(min_items_per_worker.max(1)))
        .max(1)
}

/// Split `0..total` into at most `threads` contiguous equal-sized ranges, run
/// `work` on each range (in parallel when `threads > 1`), and return the
/// per-range results in ascending range order.
///
/// The partition is a pure function of `(total, threads)`, so repeated calls
/// are deterministic. With one thread (or at most one item) `work` runs inline
/// on the calling thread.
pub fn par_ranges<R, F>(total: usize, threads: usize, work: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    let threads = threads.max(1).min(total.max(1));
    if threads == 1 {
        return vec![work(0..total)];
    }
    // `ceil(total / chunk)` ranges cover `0..total`; never spawn a worker for
    // an empty tail range (e.g. total = 5, threads = 4 needs only 3 chunks).
    let chunk = total.div_ceil(threads);
    let ranges: Vec<Range<usize>> = (0..threads)
        .map(|i| (i * chunk).min(total)..((i + 1) * chunk).min(total))
        .filter(|range| !range.is_empty())
        .collect();
    let mut results: Vec<Option<R>> = Vec::new();
    results.resize_with(ranges.len(), || None);
    std::thread::scope(|scope| {
        for (range, slot) in ranges.into_iter().zip(results.iter_mut()) {
            let work = &work;
            scope.spawn(move || *slot = Some(work(range)));
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("scoped worker completed"))
        .collect()
}

/// Apply `map` to every item of `items` across `threads` workers, preserving
/// order: the result at position `i` is `map(i, &items[i])`.
///
/// The output is identical for every thread count; parallelism only changes
/// which worker computed each element.
pub fn par_map<T, R, F>(items: &[T], threads: usize, map: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let chunks = par_ranges(items.len(), threads, |range| {
        range.map(|i| map(i, &items[i])).collect::<Vec<R>>()
    });
    let mut out = Vec::with_capacity(items.len());
    for chunk in chunks {
        out.extend(chunk);
    }
    out
}

/// Apply `work` to contiguous chunks of `items` (one chunk per worker) and
/// return the per-chunk results in chunk order. `work` receives the absolute
/// start index of its chunk alongside the chunk slice.
pub fn par_chunks<T, R, F>(items: &[T], threads: usize, work: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    par_ranges(items.len(), threads, |range| {
        work(range.start, &items[range])
    })
}

/// Accumulate-then-merge over the index range `0..total`.
///
/// Each worker builds a private accumulator with `init`, folds its contiguous
/// index range into it with `fold`, and the per-worker accumulators are merged
/// **in ascending range order** on the calling thread with `merge`. When the
/// fold performs only order-insensitive updates (integer counters, disjoint
/// slots), the result is bit-identical for every thread count.
///
/// The accumulator may carry per-worker scratch (e.g. a reusable Dijkstra
/// workspace) alongside the data being reduced; `merge` simply drops the
/// absorbed worker's scratch.
pub fn par_accumulate<A, I, F, M>(total: usize, threads: usize, init: I, fold: F, merge: M) -> A
where
    A: Send,
    I: Fn() -> A + Sync,
    F: Fn(&mut A, usize) + Sync,
    M: Fn(&mut A, A),
{
    let partials = par_ranges(total, threads, |range| {
        let mut accumulator = init();
        for index in range {
            fold(&mut accumulator, index);
        }
        accumulator
    });
    let mut iter = partials.into_iter();
    let mut merged = iter.next().expect("par_ranges yields at least one range");
    for partial in iter {
        merge(&mut merged, partial);
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order_at_any_thread_count() {
        let items: Vec<usize> = (0..103).collect();
        let expected: Vec<usize> = items.iter().map(|&x| x * 2 + 1).collect();
        for threads in [1, 2, 3, 7, 16, 200] {
            let got = par_map(&items, threads, |i, &x| {
                assert_eq!(i, x);
                x * 2 + 1
            });
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn par_map_handles_empty_and_tiny_inputs() {
        let empty: Vec<u8> = Vec::new();
        assert!(par_map(&empty, 4, |_, &x| x).is_empty());
        assert_eq!(par_map(&[9u8], 4, |_, &x| x), vec![9]);
    }

    #[test]
    fn par_ranges_covers_every_index_exactly_once() {
        for total in [0usize, 1, 2, 5, 17, 64] {
            for threads in [1usize, 2, 3, 5, 32] {
                let ranges = par_ranges(total, threads, |r| r);
                let mut seen = vec![0usize; total];
                for range in &ranges {
                    for i in range.clone() {
                        seen[i] += 1;
                    }
                }
                assert!(
                    seen.iter().all(|&c| c == 1),
                    "total {total}, threads {threads}: {ranges:?}"
                );
            }
        }
    }

    #[test]
    fn par_chunks_passes_absolute_offsets() {
        let items: Vec<usize> = (100..150).collect();
        let chunks = par_chunks(&items, 4, |start, chunk| {
            for (i, &value) in chunk.iter().enumerate() {
                assert_eq!(value, 100 + start + i);
            }
            chunk.len()
        });
        assert_eq!(chunks.iter().sum::<usize>(), items.len());
    }

    #[test]
    fn par_accumulate_counts_exactly() {
        for threads in [1, 2, 5, 8] {
            let (sum, hits) = par_accumulate(
                1000,
                threads,
                || (0u64, vec![0u32; 10]),
                |(sum, hits), i| {
                    *sum += i as u64;
                    hits[i % 10] += 1;
                },
                |(sum, hits), (other_sum, other_hits)| {
                    *sum += other_sum;
                    for (h, o) in hits.iter_mut().zip(other_hits) {
                        *h += o;
                    }
                },
            );
            assert_eq!(sum, 499_500, "threads = {threads}");
            assert!(hits.iter().all(|&h| h == 100));
        }
    }

    #[test]
    fn par_accumulate_on_empty_range_returns_init() {
        let acc = par_accumulate(0, 8, || 42usize, |_, _| panic!("no work"), |_, _| {});
        assert_eq!(acc, 42);
    }

    #[test]
    fn resolve_threads_zero_means_auto() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }

    #[test]
    fn clamped_threads_keeps_workers_busy() {
        // 100 items at min 2048 per worker: stay inline.
        assert_eq!(clamped_threads(8, 100, 2048), 1);
        // 5000 items at min 2048: at most 3 workers.
        assert_eq!(clamped_threads(8, 5000, 2048), 3);
        // Plenty of items: the request wins.
        assert_eq!(clamped_threads(4, 1_000_000, 2048), 4);
        // Degenerate inputs stay sane.
        assert_eq!(clamped_threads(8, 0, 2048), 1);
        assert_eq!(clamped_threads(8, 10, 0), 8);
    }

    #[test]
    fn available_threads_is_positive() {
        assert!(available_threads() >= 1);
    }
}
