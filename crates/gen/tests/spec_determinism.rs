//! Property tests pinning the two guarantees the scenario subsystem is
//! built on: a spec string round-trips exactly (`parse(render(s)) == s`, so
//! rendered specs are safe cache keys), and the same spec produces a
//! bit-identical edge list on every run and from every thread count.

use backboning_gen::{Family, ScenarioSpec, WeightDist};
use backboning_graph::io::write_edge_list_string;
use proptest::prelude::*;

/// Strategy over valid specs covering all four families and all four weight
/// distributions. The vendored proptest has no `prop_oneof`, so variants are
/// chosen by an integer selector.
fn arb_spec() -> impl Strategy<Value = ScenarioSpec> {
    (
        (0usize..4, 20usize..200, 1usize..5),
        (0usize..4, (1u32..100, 1u32..40)),
        0u32..10,
        0u64..1_000_000,
    )
        .prop_map(
            |((family_ix, nodes, shape), (weight_ix, (wa, wb)), noise_tenths, seed)| {
                let family = match family_ix {
                    0 => Family::BarabasiAlbert {
                        edges_per_node: shape.min(nodes - 1),
                    },
                    1 => Family::ErdosRenyi {
                        edges: (nodes * shape).min(nodes * (nodes - 1) / 2),
                    },
                    2 => Family::Geometric {
                        radius: 0.02 * shape as f64,
                    },
                    _ => Family::StochasticBlock {
                        blocks: shape.min(nodes),
                        p_within: 0.02 * shape as f64,
                        p_between: 0.001 * shape as f64,
                    },
                };
                let weights = match weight_ix {
                    0 => WeightDist::Unit,
                    1 => WeightDist::Uniform {
                        max: wa as f64 / 7.0,
                    },
                    2 => WeightDist::PowerLaw {
                        alpha: 1.0 + wa as f64 / 10.0,
                    },
                    _ => WeightDist::LogNormal {
                        mu: wa as f64 / 25.0 - 2.0,
                        sigma: wb as f64 / 20.0,
                    },
                };
                ScenarioSpec {
                    family,
                    nodes,
                    weights,
                    noise: noise_tenths as f64 / 10.0,
                    seed,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `parse(render(s)) == s` for every generatable spec — floats included,
    /// thanks to Rust's shortest-round-trip `Display`.
    #[test]
    fn spec_string_round_trips(spec in arb_spec()) {
        spec.validate().expect("strategy emits valid specs");
        let rendered = spec.render();
        let reparsed = ScenarioSpec::parse(&rendered).expect("rendered spec parses");
        prop_assert_eq!(reparsed, spec);
        // Render is canonical: a second round trip is a fixed point.
        prop_assert_eq!(reparsed.render(), rendered);
    }

    /// Same spec ⇒ bit-identical edge-list text across repeated runs.
    #[test]
    fn generation_is_deterministic_across_runs(spec in arb_spec()) {
        let first = write_edge_list_string(&spec.generate().unwrap()).unwrap();
        let second = write_edge_list_string(&spec.generate().unwrap()).unwrap();
        prop_assert_eq!(first, second);
    }
}

/// Generation is seed-addressed and sequential, so its output cannot depend
/// on available parallelism. Pin that: generate the same specs from spawned
/// thread pools of size 1/2/3/8 (and under a `BACKBONING_THREADS` override)
/// and require bit-identical edge lists everywhere.
#[test]
fn generation_is_identical_across_thread_counts() {
    let specs = [
        "ba:n=500,m=3,w=unit,noise=0,seed=4242",
        "er:n=500,e=1500,w=uniform(10),noise=0.2,seed=99",
        "geo:n=500,r=0.06,w=powerlaw(2.5),noise=0.1,seed=7",
        "sb:n=500,b=5,pin=0.08,pout=0.004,w=lognormal(0,1),noise=0.3,seed=11",
    ];
    for text in specs {
        let spec = ScenarioSpec::parse(text).unwrap();
        let reference = write_edge_list_string(&spec.generate().unwrap()).unwrap();
        for threads in [1usize, 2, 3, 8] {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    std::thread::spawn(move || {
                        let spec = ScenarioSpec::parse(text).unwrap();
                        write_edge_list_string(&spec.generate().unwrap()).unwrap()
                    })
                })
                .collect();
            for handle in handles {
                assert_eq!(
                    handle.join().unwrap(),
                    reference,
                    "{text} diverged when generated from {threads} threads"
                );
            }
        }
    }
}
