//! The scenario specification: a compact, canonical, round-trippable string
//! form describing one generated graph.
//!
//! Grammar (whitespace-free; keys in any order, each at most once):
//!
//! ```text
//! <family>:<key>=<value>[,<key>=<value>...]
//!
//! ba:n=2000,m=3,w=unit,noise=0,seed=4242            Barabási–Albert
//! er:n=2000,e=6000,w=uniform(10),noise=0,seed=99    Erdős–Rényi
//! geo:n=2000,r=0.04,w=powerlaw(2.5),noise=0,seed=7  random geometric
//! sb:n=2000,b=8,pin=0.05,pout=0.002,w=lognormal(0,1),noise=0.1,seed=7
//! ```
//!
//! Shared keys: `n` (nodes, required), `w` (weight distribution, default
//! `unit`), `noise` (multiplicative noise level in `[0, 1)`, default `0`),
//! `seed` (default `4242`). Family keys: `m` (BA attachment edges, default
//! 3), `e` (ER edge count, default `3·n`), `r` (geometric radius, default
//! `0.05`), `b`/`pin`/`pout` (block count and within/between edge
//! probabilities, defaults `8`/`0.05`/`0.002`).
//!
//! [`ScenarioSpec::render`] emits the canonical form with every key
//! explicit, in a fixed order, with Rust's shortest-round-trip float
//! formatting — so `parse(render(s)) == s` exactly (pinned by proptest) and
//! the rendered string doubles as a cache key.

use std::fmt;
use std::str::FromStr;

/// Default sampling seed shared with the rest of the workspace's substrate
/// generators.
pub const DEFAULT_SEED: u64 = 4242;

/// A malformed or out-of-range scenario specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError(pub String);

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid scenario spec: {}", self.0)
    }
}

impl std::error::Error for SpecError {}

fn spec_error(message: impl Into<String>) -> SpecError {
    SpecError(message.into())
}

/// The topology family of a generated scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Family {
    /// Barabási–Albert preferential attachment: heavy-tailed degrees, hubs.
    BarabasiAlbert {
        /// Edges each new node attaches with (`m`).
        edges_per_node: usize,
    },
    /// Erdős–Rényi with a fixed edge count: homogeneous degrees.
    ErdosRenyi {
        /// Number of sampled edges (`e`).
        edges: usize,
    },
    /// Random geometric graph on the unit square: spatial clustering, high
    /// transitivity.
    Geometric {
        /// Connection radius (`r`): nodes closer than this are linked.
        radius: f64,
    },
    /// Stochastic block model: planted community structure.
    StochasticBlock {
        /// Number of equal-sized blocks (`b`).
        blocks: usize,
        /// Within-block edge probability (`pin`).
        p_within: f64,
        /// Between-block edge probability (`pout`).
        p_between: f64,
    },
}

impl Family {
    /// The family tag leading the spec string.
    pub fn tag(&self) -> &'static str {
        match self {
            Family::BarabasiAlbert { .. } => "ba",
            Family::ErdosRenyi { .. } => "er",
            Family::Geometric { .. } => "geo",
            Family::StochasticBlock { .. } => "sb",
        }
    }
}

/// The edge-weight distribution layered onto the generated topology.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WeightDist {
    /// Every edge weighs exactly 1.
    Unit,
    /// Weights uniform in `(0, max]` — the classic bench-substrate weights.
    Uniform {
        /// Upper bound of the uniform draw.
        max: f64,
    },
    /// Pareto (power-law) weights with minimum 1:
    /// `w = (1 − u)^(−1 / (alpha − 1))`, heavy-tailed for small `alpha`.
    PowerLaw {
        /// Tail exponent (`> 1`; smaller means heavier tail).
        alpha: f64,
    },
    /// Log-normal weights `exp(mu + sigma·z)` with standard-normal `z`.
    LogNormal {
        /// Mean of the underlying normal.
        mu: f64,
        /// Standard deviation of the underlying normal (`≥ 0`).
        sigma: f64,
    },
}

impl WeightDist {
    fn render(&self) -> String {
        match self {
            WeightDist::Unit => "unit".to_string(),
            WeightDist::Uniform { max } => format!("uniform({max})"),
            WeightDist::PowerLaw { alpha } => format!("powerlaw({alpha})"),
            WeightDist::LogNormal { mu, sigma } => format!("lognormal({mu},{sigma})"),
        }
    }

    fn parse(text: &str) -> Result<WeightDist, SpecError> {
        if text == "unit" {
            return Ok(WeightDist::Unit);
        }
        let (name, args) = split_call(text)?;
        match (name, args.as_slice()) {
            ("uniform", [max]) => Ok(WeightDist::Uniform { max: *max }),
            ("powerlaw", [alpha]) => Ok(WeightDist::PowerLaw { alpha: *alpha }),
            ("lognormal", [mu, sigma]) => Ok(WeightDist::LogNormal {
                mu: *mu,
                sigma: *sigma,
            }),
            _ => Err(spec_error(format!(
                "unknown weight distribution `{text}` (expected unit, uniform(MAX), \
                 powerlaw(ALPHA) or lognormal(MU,SIGMA))"
            ))),
        }
    }
}

/// Parse `name(arg[,arg...])` into the name and its float arguments.
fn split_call(text: &str) -> Result<(&str, Vec<f64>), SpecError> {
    let open = text
        .find('(')
        .ok_or_else(|| spec_error(format!("unknown weight distribution `{text}`")))?;
    let inner = text[open..]
        .strip_prefix('(')
        .and_then(|rest| rest.strip_suffix(')'))
        .ok_or_else(|| spec_error(format!("unbalanced parentheses in `{text}`")))?;
    let args = inner
        .split(',')
        .map(|arg| parse_float(text, arg))
        .collect::<Result<Vec<f64>, SpecError>>()?;
    Ok((&text[..open], args))
}

fn parse_float(context: &str, value: &str) -> Result<f64, SpecError> {
    let parsed = value
        .parse::<f64>()
        .map_err(|_| spec_error(format!("`{context}`: cannot parse `{value}` as a number")))?;
    if parsed.is_finite() {
        Ok(parsed)
    } else {
        Err(spec_error(format!(
            "`{context}`: `{value}` is not a finite number"
        )))
    }
}

fn parse_int<T: FromStr>(key: &str, value: &str) -> Result<T, SpecError> {
    value
        .parse::<T>()
        .map_err(|_| spec_error(format!("`{key}`: cannot parse `{value}` as an integer")))
}

/// A fully resolved scenario: family, size, weights, noise level and seed.
///
/// The canonical string form ([`ScenarioSpec::render`] / [`fmt::Display`])
/// round-trips exactly through [`ScenarioSpec::parse`] / [`FromStr`], so it
/// is usable as a cache key.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioSpec {
    /// Topology family and its parameters.
    pub family: Family,
    /// Number of nodes (`n`).
    pub nodes: usize,
    /// Edge-weight distribution (`w`).
    pub weights: WeightDist,
    /// Multiplicative noise level in `[0, 1)` — the paper's noise model:
    /// each weight is scaled by a factor uniform in
    /// `[1 − noise, 1 + noise)`. `0` disables the layer.
    pub noise: f64,
    /// Seed of every random stream the scenario consumes.
    pub seed: u64,
}

/// Split a key-value list on commas, ignoring commas inside parentheses
/// (so `w=lognormal(0,1),noise=0.1` splits into two pairs).
fn split_pairs(text: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (index, ch) in text.char_indices() {
        match ch {
            '(' => depth += 1,
            ')' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                parts.push(&text[start..index]);
                start = index + 1;
            }
            _ => {}
        }
    }
    parts.push(&text[start..]);
    parts
}

impl ScenarioSpec {
    /// Parse a spec string — see the [module docs](self) for the grammar.
    pub fn parse(text: &str) -> Result<ScenarioSpec, SpecError> {
        let (tag, rest) = match text.split_once(':') {
            Some((tag, rest)) => (tag, rest),
            None => (text, ""),
        };

        let mut nodes: Option<usize> = None;
        let mut weights: Option<WeightDist> = None;
        let mut noise: Option<f64> = None;
        let mut seed: Option<u64> = None;
        // Family parameters, collected untyped and resolved per family below.
        let mut m: Option<usize> = None;
        let mut e: Option<usize> = None;
        let mut r: Option<f64> = None;
        let mut b: Option<usize> = None;
        let mut pin: Option<f64> = None;
        let mut pout: Option<f64> = None;

        fn set<T>(key: &str, slot: &mut Option<T>, value: T) -> Result<(), SpecError> {
            if slot.is_some() {
                return Err(spec_error(format!("duplicate key `{key}`")));
            }
            *slot = Some(value);
            Ok(())
        }

        for pair in split_pairs(rest) {
            if pair.is_empty() {
                continue;
            }
            let (key, value) = pair
                .split_once('=')
                .ok_or_else(|| spec_error(format!("expected `key=value`, got `{pair}`")))?;
            match key {
                "n" => set(key, &mut nodes, parse_int(key, value)?)?,
                "w" => set(key, &mut weights, WeightDist::parse(value)?)?,
                "noise" => set(key, &mut noise, parse_float(key, value)?)?,
                "seed" => set(key, &mut seed, parse_int(key, value)?)?,
                "m" => set(key, &mut m, parse_int(key, value)?)?,
                "e" => set(key, &mut e, parse_int(key, value)?)?,
                "r" => set(key, &mut r, parse_float(key, value)?)?,
                "b" => set(key, &mut b, parse_int(key, value)?)?,
                "pin" => set(key, &mut pin, parse_float(key, value)?)?,
                "pout" => set(key, &mut pout, parse_float(key, value)?)?,
                other => return Err(spec_error(format!("unknown key `{other}`"))),
            }
        }

        let nodes = nodes.ok_or_else(|| spec_error("`n` (node count) is required"))?;
        let reject_foreign = |tag: &str, foreign: &[(&str, bool)]| -> Result<(), SpecError> {
            for (key, present) in foreign {
                if *present {
                    return Err(spec_error(format!(
                        "key `{key}` does not apply to family `{tag}`"
                    )));
                }
            }
            Ok(())
        };
        let family = match tag {
            "ba" => {
                reject_foreign(
                    tag,
                    &[
                        ("e", e.is_some()),
                        ("r", r.is_some()),
                        ("b", b.is_some()),
                        ("pin", pin.is_some()),
                        ("pout", pout.is_some()),
                    ],
                )?;
                Family::BarabasiAlbert {
                    edges_per_node: m.unwrap_or(3),
                }
            }
            "er" => {
                reject_foreign(
                    tag,
                    &[
                        ("m", m.is_some()),
                        ("r", r.is_some()),
                        ("b", b.is_some()),
                        ("pin", pin.is_some()),
                        ("pout", pout.is_some()),
                    ],
                )?;
                Family::ErdosRenyi {
                    edges: e.unwrap_or(nodes.saturating_mul(3)),
                }
            }
            "geo" => {
                reject_foreign(
                    tag,
                    &[
                        ("m", m.is_some()),
                        ("e", e.is_some()),
                        ("b", b.is_some()),
                        ("pin", pin.is_some()),
                        ("pout", pout.is_some()),
                    ],
                )?;
                Family::Geometric {
                    radius: r.unwrap_or(0.05),
                }
            }
            "sb" => {
                reject_foreign(
                    tag,
                    &[("m", m.is_some()), ("e", e.is_some()), ("r", r.is_some())],
                )?;
                Family::StochasticBlock {
                    blocks: b.unwrap_or(8),
                    p_within: pin.unwrap_or(0.05),
                    p_between: pout.unwrap_or(0.002),
                }
            }
            other => {
                return Err(spec_error(format!(
                    "unknown family `{other}` (expected ba, er, geo or sb)"
                )))
            }
        };

        let spec = ScenarioSpec {
            family,
            nodes,
            weights: weights.unwrap_or(WeightDist::Unit),
            noise: noise.unwrap_or(0.0),
            seed: seed.unwrap_or(DEFAULT_SEED),
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Check every parameter is in range; [`ScenarioSpec::parse`] calls this,
    /// and [`ScenarioSpec::generate`](crate::ScenarioSpec::generate) re-checks
    /// specs constructed directly.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.nodes < 2 {
            return Err(spec_error(format!(
                "`n` must be at least 2, got {}",
                self.nodes
            )));
        }
        match self.family {
            Family::BarabasiAlbert { edges_per_node } => {
                if edges_per_node == 0 {
                    return Err(spec_error("`m` must be at least 1"));
                }
                if self.nodes <= edges_per_node {
                    return Err(spec_error(format!(
                        "`n` ({}) must exceed `m` ({edges_per_node})",
                        self.nodes
                    )));
                }
            }
            Family::ErdosRenyi { edges } => {
                if edges == 0 {
                    return Err(spec_error("`e` must be at least 1"));
                }
                let max_pairs = self.nodes as u64 * (self.nodes as u64 - 1) / 2;
                if edges as u64 > max_pairs {
                    return Err(spec_error(format!(
                        "`e` ({edges}) exceeds the {max_pairs} distinct pairs of n={}",
                        self.nodes
                    )));
                }
            }
            Family::Geometric { radius } => {
                if !(radius > 0.0 && radius <= 1.5) {
                    return Err(spec_error(format!(
                        "`r` must lie in (0, 1.5], got {radius}"
                    )));
                }
            }
            Family::StochasticBlock {
                blocks,
                p_within,
                p_between,
            } => {
                if blocks == 0 || blocks > self.nodes {
                    return Err(spec_error(format!(
                        "`b` must lie in [1, n], got {blocks} for n={}",
                        self.nodes
                    )));
                }
                for (key, p) in [("pin", p_within), ("pout", p_between)] {
                    if !(0.0..=1.0).contains(&p) {
                        return Err(spec_error(format!("`{key}` must lie in [0, 1], got {p}")));
                    }
                }
            }
        }
        match self.weights {
            WeightDist::Unit => {}
            WeightDist::Uniform { max } => {
                if max <= 0.0 {
                    return Err(spec_error(format!(
                        "uniform max must be positive, got {max}"
                    )));
                }
            }
            WeightDist::PowerLaw { alpha } => {
                if alpha <= 1.0 {
                    return Err(spec_error(format!(
                        "powerlaw alpha must exceed 1, got {alpha}"
                    )));
                }
            }
            WeightDist::LogNormal { mu: _, sigma } => {
                if sigma < 0.0 {
                    return Err(spec_error(format!(
                        "lognormal sigma must be non-negative, got {sigma}"
                    )));
                }
            }
        }
        if !(0.0..1.0).contains(&self.noise) {
            return Err(spec_error(format!(
                "`noise` must lie in [0, 1), got {}",
                self.noise
            )));
        }
        Ok(())
    }

    /// The canonical string form: every key explicit, fixed order, shortest
    /// round-trip float formatting. Usable verbatim as a cache key.
    pub fn render(&self) -> String {
        let family = match self.family {
            Family::BarabasiAlbert { edges_per_node } => format!("m={edges_per_node}"),
            Family::ErdosRenyi { edges } => format!("e={edges}"),
            Family::Geometric { radius } => format!("r={radius}"),
            Family::StochasticBlock {
                blocks,
                p_within,
                p_between,
            } => format!("b={blocks},pin={p_within},pout={p_between}"),
        };
        format!(
            "{}:n={},{},w={},noise={},seed={}",
            self.family.tag(),
            self.nodes,
            family,
            self.weights.render(),
            self.noise,
            self.seed
        )
    }
}

impl fmt::Display for ScenarioSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

impl FromStr for ScenarioSpec {
    type Err = SpecError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ScenarioSpec::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_family_with_defaults() {
        let ba = ScenarioSpec::parse("ba:n=100").unwrap();
        assert_eq!(ba.family, Family::BarabasiAlbert { edges_per_node: 3 });
        assert_eq!(ba.nodes, 100);
        assert_eq!(ba.weights, WeightDist::Unit);
        assert_eq!(ba.noise, 0.0);
        assert_eq!(ba.seed, DEFAULT_SEED);

        let er = ScenarioSpec::parse("er:n=100").unwrap();
        assert_eq!(er.family, Family::ErdosRenyi { edges: 300 });

        let geo = ScenarioSpec::parse("geo:n=100").unwrap();
        assert_eq!(geo.family, Family::Geometric { radius: 0.05 });

        let sb = ScenarioSpec::parse("sb:n=100").unwrap();
        assert_eq!(
            sb.family,
            Family::StochasticBlock {
                blocks: 8,
                p_within: 0.05,
                p_between: 0.002
            }
        );
    }

    #[test]
    fn parses_explicit_keys_in_any_order() {
        let spec = ScenarioSpec::parse(
            "sb:seed=7,pout=0.001,n=500,w=lognormal(0,1),b=4,pin=0.1,noise=0.2",
        )
        .unwrap();
        assert_eq!(spec.nodes, 500);
        assert_eq!(spec.seed, 7);
        assert_eq!(spec.noise, 0.2);
        assert_eq!(
            spec.family,
            Family::StochasticBlock {
                blocks: 4,
                p_within: 0.1,
                p_between: 0.001
            }
        );
        assert_eq!(
            spec.weights,
            WeightDist::LogNormal {
                mu: 0.0,
                sigma: 1.0
            }
        );
    }

    #[test]
    fn render_is_canonical_and_round_trips() {
        for text in [
            "ba:n=2000,m=3,w=unit,noise=0,seed=4242",
            "er:n=2000,e=6000,w=uniform(10),noise=0,seed=99",
            "geo:n=1000,r=0.04,w=powerlaw(2.5),noise=0.1,seed=1",
            "sb:n=500,b=4,pin=0.1,pout=0.001,w=lognormal(0,1),noise=0.25,seed=7",
        ] {
            let spec = ScenarioSpec::parse(text).unwrap();
            assert_eq!(spec.render(), text);
            assert_eq!(ScenarioSpec::parse(&spec.render()).unwrap(), spec);
            assert_eq!(text.parse::<ScenarioSpec>().unwrap().to_string(), text);
        }
    }

    #[test]
    fn rejects_malformed_specs() {
        for (text, needle) in [
            ("zz:n=10", "unknown family"),
            ("ba", "`n` (node count) is required"),
            ("ba:n=10,n=20", "duplicate key"),
            ("ba:n=10,wat=1", "unknown key"),
            ("ba:n=10,m", "key=value"),
            ("ba:n=x", "integer"),
            ("ba:n=10,w=gauss(1)", "unknown weight distribution"),
            ("ba:n=10,w=uniform(1", "unbalanced parentheses"),
            ("ba:n=10,w=uniform(a)", "as a number"),
            ("ba:n=10,w=uniform(inf)", "finite"),
            ("er:n=10,m=3", "does not apply"),
            ("ba:n=10,pin=0.5", "does not apply"),
        ] {
            let err = ScenarioSpec::parse(text).unwrap_err();
            assert!(err.to_string().contains(needle), "{text}: {err}");
        }
    }

    #[test]
    fn rejects_out_of_range_parameters() {
        for (text, needle) in [
            ("ba:n=1", "at least 2"),
            ("ba:n=3,m=0", "at least 1"),
            ("ba:n=3,m=3", "must exceed"),
            ("er:n=10,e=0", "at least 1"),
            ("er:n=10,e=46", "distinct pairs"),
            ("geo:n=10,r=0", "(0, 1.5]"),
            ("geo:n=10,r=2", "(0, 1.5]"),
            ("sb:n=10,b=0", "[1, n]"),
            ("sb:n=10,b=11", "[1, n]"),
            ("sb:n=10,pin=1.5", "[0, 1]"),
            ("sb:n=10,pout=-0.1", "[0, 1]"),
            ("ba:n=10,w=uniform(0)", "positive"),
            ("ba:n=10,w=powerlaw(1)", "exceed 1"),
            ("ba:n=10,w=lognormal(0,-1)", "non-negative"),
            ("ba:n=10,noise=1", "[0, 1)"),
            ("ba:n=10,noise=-0.1", "[0, 1)"),
        ] {
            let err = ScenarioSpec::parse(text).unwrap_err();
            assert!(err.to_string().contains(needle), "{text}: {err}");
        }
    }

    #[test]
    fn er_at_the_pair_limit_is_accepted() {
        // e == n(n-1)/2 exactly is a complete graph: valid.
        assert!(ScenarioSpec::parse("er:n=10,e=45").is_ok());
    }
}
