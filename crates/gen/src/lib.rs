//! # backboning-gen
//!
//! Seeded, deterministic scenario generation for the `backboning-rs`
//! workspace: parameterised graph families (Barabási–Albert, Erdős–Rényi,
//! random geometric, stochastic block) × weight distributions (unit,
//! uniform, power-law, log-normal) × an optional multiplicative-noise layer
//! matching the noise model of *Network Backboning with Noisy Data*
//! (Coscia & Neffke, ICDE 2017).
//!
//! Every scenario is described by a [`ScenarioSpec`] that round-trips
//! through a compact string form — the same string is the CLI argument of
//! `backbone gen`, the row key of `backbone bench-matrix`, and a cache key:
//!
//! ```
//! use backboning_gen::ScenarioSpec;
//!
//! let spec = ScenarioSpec::parse("sb:n=200,b=4,pin=0.1,pout=0.01,w=lognormal(0,1)").unwrap();
//! assert_eq!(
//!     spec.render(),
//!     "sb:n=200,b=4,pin=0.1,pout=0.01,w=lognormal(0,1),noise=0,seed=4242",
//! );
//! assert_eq!(ScenarioSpec::parse(&spec.render()).unwrap(), spec);
//!
//! let graph = spec.generate().unwrap();
//! assert_eq!(graph.node_count(), 200);
//! // Same spec, same bytes: generation is deterministic.
//! let again = spec.generate().unwrap();
//! assert_eq!(graph.edge_count(), again.edge_count());
//! ```
//!
//! Graphs are emitted straight into the workspace's canonical compact
//! [`CsrGraph`](backboning_graph::CsrGraph) representation; BA and ER specs
//! consume the exact random streams of the pre-existing bench substrate
//! generators, so historical substrate files are reproducible byte-for-byte
//! from their specs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod generate;
pub mod spec;

pub use spec::{Family, ScenarioSpec, SpecError, WeightDist, DEFAULT_SEED};
