//! Turning a [`ScenarioSpec`] into a concrete [`CsrGraph`].
//!
//! Generation is a three-stage pipeline, each stage on its own decorrelated
//! random stream derived from the spec seed:
//!
//! 1. **Topology** — the family generator emits the edge set. BA and ER
//!    reuse the existing `backboning_graph` CSR generators verbatim (same
//!    stream, same bytes as the historical bench substrates); geometric and
//!    stochastic-block are implemented here.
//! 2. **Weights** — the weight distribution overwrites (or, for the
//!    ER×uniform fast path, keeps) the topology's edge weights, drawn in
//!    edge-id order.
//! 3. **Noise** — the paper's multiplicative noise model scales each weight
//!    by a factor uniform in `[1 − noise, 1 + noise)`.
//!
//! Every stage is sequential and seed-addressed, so the output is
//! bit-identical across runs, machines and thread counts.

use backboning_graph::generators::{barabasi_albert_csr, erdos_renyi_csr};
use backboning_graph::{CsrBuilder, CsrGraph, Direction, GraphResult, NodeId};
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::spec::{Family, ScenarioSpec, SpecError, WeightDist};

/// Salt XORed into the seed for the weight-drawing stream, so weights are
/// decorrelated from the topology draws made with the raw seed.
const WEIGHT_STREAM: u64 = 0x5745_4947_4854_u64; // "WEIGHT"

/// Salt XORed into the seed for the noise stream.
const NOISE_STREAM: u64 = 0x004e_4f49_5345_u64; // "NOISE"

impl ScenarioSpec {
    /// Generate the scenario as a compact CSR graph.
    ///
    /// Deterministic: the same spec yields a bit-identical graph (node ids,
    /// edge ids, weights) on every call. Specs built directly (not via
    /// [`ScenarioSpec::parse`]) are validated first.
    pub fn generate(&self) -> Result<CsrGraph, SpecError> {
        self.validate()?;
        self.generate_validated().map_err(|error| {
            // Validation precludes generator-side parameter rejections, so
            // any surviving error is a capacity overflow worth surfacing.
            SpecError(format!(
                "generation failed for `{}`: {error}",
                self.render()
            ))
        })
    }

    fn generate_validated(&self) -> GraphResult<CsrGraph> {
        let base = match self.family {
            Family::BarabasiAlbert { edges_per_node } => {
                barabasi_albert_csr(self.nodes, edges_per_node, self.seed)?
            }
            Family::ErdosRenyi { edges } => {
                // The uniform distribution is drawn inline by the shared ER
                // generator — the historical bench-substrate stream. Other
                // distributions take unit weights and reweigh below.
                let max = match self.weights {
                    WeightDist::Uniform { max } => max,
                    _ => 1.0,
                };
                erdos_renyi_csr(self.nodes, edges, max, Direction::Undirected, self.seed)?
            }
            Family::Geometric { radius } => geometric_csr(self.nodes, radius, self.seed)?,
            Family::StochasticBlock {
                blocks,
                p_within,
                p_between,
            } => stochastic_block_csr(self.nodes, blocks, p_within, p_between, self.seed)?,
        };

        // Weight pass. ER draws uniform weights inline above; every other
        // family leaves unit weights, which is already what `Unit` means.
        let reweigh = !matches!(
            (self.family, self.weights),
            (_, WeightDist::Unit) | (Family::ErdosRenyi { .. }, WeightDist::Uniform { .. })
        );
        if !reweigh && self.noise == 0.0 {
            return Ok(base);
        }

        let mut triples: Vec<(NodeId, NodeId, f64)> = base
            .edges()
            .map(|edge| (edge.source, edge.target, edge.weight))
            .collect();
        if reweigh {
            let mut rng = StdRng::seed_from_u64(self.seed ^ WEIGHT_STREAM);
            for triple in &mut triples {
                triple.2 = draw_weight(&mut rng, self.weights);
            }
        }
        if self.noise > 0.0 {
            let mut rng = StdRng::seed_from_u64(self.seed ^ NOISE_STREAM);
            for triple in &mut triples {
                // The paper's multiplicative noise model (Section V): scale
                // by a factor uniform in [1 - noise, 1 + noise).
                triple.2 *= 1.0 - self.noise + 2.0 * self.noise * rng.random::<f64>();
            }
        }
        CsrGraph::from_edges(Direction::Undirected, base.node_count(), triples)
    }
}

/// Draw one edge weight from `dist` (never `Unit` on the reweigh path, but
/// handled for completeness).
fn draw_weight(rng: &mut StdRng, dist: WeightDist) -> f64 {
    match dist {
        WeightDist::Unit => 1.0,
        WeightDist::Uniform { max } => {
            // Same open-interval nudge as the shared ER generator: weights
            // must be strictly positive.
            rng.random_range(0.0..max) + f64::MIN_POSITIVE
        }
        WeightDist::PowerLaw { alpha } => {
            // Inverse-CDF Pareto with minimum 1: u in [0,1) keeps the base
            // 1 - u in (0,1], so the weight lies in [1, inf).
            let u: f64 = rng.random();
            (1.0 - u).powf(-1.0 / (alpha - 1.0))
        }
        WeightDist::LogNormal { mu, sigma } => {
            // Box–Muller; 1 - u keeps the log argument strictly positive.
            let u1 = 1.0 - rng.random::<f64>();
            let u2: f64 = rng.random();
            let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            (mu + sigma * z).exp()
        }
    }
}

/// Random geometric graph on the unit square: `nodes` points uniform in
/// `[0,1)²`, an edge between every pair closer than `radius`.
///
/// Points are drawn in node-id order (two draws each), then pairs are found
/// with a grid of cells no smaller than the radius — only the 3×3 cell
/// neighbourhood can contain a partner. Candidate partners of each node are
/// sorted, so the edge order is a pure function of the point set.
fn geometric_csr(nodes: usize, radius: f64, seed: u64) -> GraphResult<CsrGraph> {
    let mut rng = StdRng::seed_from_u64(seed);
    let points: Vec<(f64, f64)> = (0..nodes)
        .map(|_| (rng.random::<f64>(), rng.random::<f64>()))
        .collect();

    // Cell side >= radius (dim <= 1/radius), capped so tiny radii on small
    // graphs don't allocate a huge empty grid.
    let dim = ((1.0 / radius) as usize).clamp(1, 2048);
    let cell_of = |coord: f64| ((coord * dim as f64) as usize).min(dim - 1);
    let mut cells: Vec<Vec<u32>> = vec![Vec::new(); dim * dim];
    for (id, &(x, y)) in points.iter().enumerate() {
        cells[cell_of(y) * dim + cell_of(x)].push(id as u32);
    }

    let mut builder = CsrBuilder::with_nodes(Direction::Undirected, nodes)?;
    let radius_sq = radius * radius;
    let mut partners: Vec<usize> = Vec::new();
    for (id, &(x, y)) in points.iter().enumerate() {
        let (cx, cy) = (cell_of(x), cell_of(y));
        partners.clear();
        for gy in cy.saturating_sub(1)..=(cy + 1).min(dim - 1) {
            for gx in cx.saturating_sub(1)..=(cx + 1).min(dim - 1) {
                for &other in &cells[gy * dim + gx] {
                    let other = other as usize;
                    if other > id {
                        let (dx, dy) = (points[other].0 - x, points[other].1 - y);
                        if dx * dx + dy * dy <= radius_sq {
                            partners.push(other);
                        }
                    }
                }
            }
        }
        partners.sort_unstable();
        for &other in &partners {
            builder.add_edge(id, other, 1.0)?;
        }
    }
    builder.finish()
}

/// Stochastic block model with `blocks` contiguous, balanced blocks (block
/// `k` covers node ids `[k·n/b, (k+1)·n/b)`): each within-block pair is an
/// edge with probability `p_within`, each cross-block pair with `p_between`.
///
/// Pairs are visited in a fixed row-major order per block pair, and the
/// Bernoulli trials are compressed into geometric gap draws — O(edges)
/// instead of the O(n²) loop of the adjacency-map SBM generator, and still
/// a single sequential stream.
fn stochastic_block_csr(
    nodes: usize,
    blocks: usize,
    p_within: f64,
    p_between: f64,
    seed: u64,
) -> GraphResult<CsrGraph> {
    let mut rng = StdRng::seed_from_u64(seed);
    let bounds: Vec<usize> = (0..=blocks).map(|k| k * nodes / blocks).collect();
    let mut builder = CsrBuilder::with_nodes(Direction::Undirected, nodes)?;
    for a in 0..blocks {
        sample_triangle(&mut rng, bounds[a], bounds[a + 1], p_within, &mut builder)?;
        for b in (a + 1)..blocks {
            sample_rectangle(
                &mut rng,
                (bounds[a], bounds[a + 1]),
                (bounds[b], bounds[b + 1]),
                p_between,
                &mut builder,
            )?;
        }
    }
    builder.finish()
}

/// Number of candidates skipped before the next Bernoulli(`p`) success,
/// via the inverse geometric CDF. Caller handles `p <= 0` and `p >= 1`.
fn geometric_gap(rng: &mut StdRng, p: f64) -> u64 {
    let u: f64 = rng.random();
    let gap = ((1.0 - u).ln() / (1.0 - p).ln()).floor();
    if gap.is_finite() && gap >= 0.0 {
        gap as u64
    } else {
        0
    }
}

/// Bernoulli-sample the ordered pairs `start <= i < j < end`.
fn sample_triangle(
    rng: &mut StdRng,
    start: usize,
    end: usize,
    p: f64,
    builder: &mut CsrBuilder,
) -> GraphResult<()> {
    if end - start < 2 || p <= 0.0 {
        return Ok(());
    }
    if p >= 1.0 {
        for i in start..end {
            for j in (i + 1)..end {
                builder.add_edge(i, j, 1.0)?;
            }
        }
        return Ok(());
    }
    let (mut i, mut j) = (start, start + 1);
    loop {
        let mut gap = geometric_gap(rng, p);
        loop {
            let row_left = (end - j) as u64;
            if gap < row_left {
                j += gap as usize;
                break;
            }
            gap -= row_left;
            i += 1;
            if i + 1 >= end {
                return Ok(());
            }
            j = i + 1;
        }
        builder.add_edge(i, j, 1.0)?;
        j += 1;
        if j >= end {
            i += 1;
            if i + 1 >= end {
                return Ok(());
            }
            j = i + 1;
        }
    }
}

/// Bernoulli-sample the cross pairs of two disjoint id ranges.
fn sample_rectangle(
    rng: &mut StdRng,
    (a_start, a_end): (usize, usize),
    (b_start, b_end): (usize, usize),
    p: f64,
    builder: &mut CsrBuilder,
) -> GraphResult<()> {
    let width = (b_end - b_start) as u64;
    if width == 0 || a_start >= a_end || p <= 0.0 {
        return Ok(());
    }
    if p >= 1.0 {
        for i in a_start..a_end {
            for j in b_start..b_end {
                builder.add_edge(i, j, 1.0)?;
            }
        }
        return Ok(());
    }
    let (mut i, mut offset) = (a_start, 0u64);
    loop {
        let mut gap = geometric_gap(rng, p);
        loop {
            let row_left = width - offset;
            if gap < row_left {
                offset += gap;
                break;
            }
            gap -= row_left;
            i += 1;
            offset = 0;
            if i >= a_end {
                return Ok(());
            }
        }
        builder.add_edge(i, b_start + offset as usize, 1.0)?;
        offset += 1;
        if offset >= width {
            i += 1;
            offset = 0;
            if i >= a_end {
                return Ok(());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generate(text: &str) -> CsrGraph {
        ScenarioSpec::parse(text).unwrap().generate().unwrap()
    }

    fn weights(graph: &CsrGraph) -> Vec<f64> {
        graph.edges().map(|edge| edge.weight).collect()
    }

    #[test]
    fn ba_spec_matches_shared_generator_stream() {
        let via_spec = generate("ba:n=300,m=3,seed=4242");
        let direct = barabasi_albert_csr(300, 3, 4242).unwrap();
        assert_eq!(via_spec.edge_count(), direct.edge_count());
        let direct_edges: Vec<(u32, u32, f64)> = direct
            .edges()
            .map(|edge| (edge.source as u32, edge.target as u32, edge.weight))
            .collect();
        let spec_edges: Vec<(u32, u32, f64)> = via_spec
            .edges()
            .map(|edge| (edge.source as u32, edge.target as u32, edge.weight))
            .collect();
        assert_eq!(spec_edges, direct_edges);
    }

    #[test]
    fn er_uniform_spec_matches_shared_generator_stream() {
        let via_spec = generate("er:n=300,e=900,w=uniform(10),seed=99");
        let direct = erdos_renyi_csr(300, 900, 10.0, Direction::Undirected, 99).unwrap();
        let direct_edges: Vec<(u32, u32, f64)> = direct
            .edges()
            .map(|edge| (edge.source as u32, edge.target as u32, edge.weight))
            .collect();
        let spec_edges: Vec<(u32, u32, f64)> = via_spec
            .edges()
            .map(|edge| (edge.source as u32, edge.target as u32, edge.weight))
            .collect();
        assert_eq!(spec_edges, direct_edges);
    }

    #[test]
    fn geometric_edges_respect_the_radius() {
        let spec = ScenarioSpec::parse("geo:n=400,r=0.08,seed=7").unwrap();
        let graph = spec.generate().unwrap();
        assert!(
            graph.edge_count() > 0,
            "radius 0.08 on 400 nodes links some pairs"
        );
        // Re-derive the point set from the same stream and check every edge.
        let mut rng = StdRng::seed_from_u64(7);
        let points: Vec<(f64, f64)> = (0..400)
            .map(|_| (rng.random::<f64>(), rng.random::<f64>()))
            .collect();
        for edge in graph.edges() {
            let (x1, y1) = points[edge.source];
            let (x2, y2) = points[edge.target];
            let dist_sq = (x1 - x2).powi(2) + (y1 - y2).powi(2);
            assert!(dist_sq <= 0.08f64 * 0.08, "edge beyond the radius");
            assert!(edge.source < edge.target);
        }
    }

    #[test]
    fn geometric_brute_force_parity_on_small_graph() {
        // The gridded generator must find exactly the pairs a full O(n²)
        // scan finds.
        let spec = ScenarioSpec::parse("geo:n=120,r=0.15,seed=11").unwrap();
        let graph = spec.generate().unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let points: Vec<(f64, f64)> = (0..120)
            .map(|_| (rng.random::<f64>(), rng.random::<f64>()))
            .collect();
        let mut expected = Vec::new();
        for i in 0..points.len() {
            for j in (i + 1)..points.len() {
                let (dx, dy) = (points[j].0 - points[i].0, points[j].1 - points[i].1);
                if dx * dx + dy * dy <= 0.15 * 0.15 {
                    expected.push((i, j));
                }
            }
        }
        let mut actual: Vec<(usize, usize)> = graph
            .edges()
            .map(|edge| (edge.source, edge.target))
            .collect();
        actual.sort_unstable();
        expected.sort_unstable();
        assert_eq!(actual, expected);
    }

    #[test]
    fn stochastic_block_respects_planted_structure() {
        let spec = ScenarioSpec::parse("sb:n=800,b=4,pin=0.1,pout=0.002,seed=5").unwrap();
        let graph = spec.generate().unwrap();
        let block_of = |id: usize| id * 4 / 800;
        let (mut within, mut between) = (0usize, 0usize);
        for edge in graph.edges() {
            assert!(edge.source < edge.target, "pairs are canonical");
            if block_of(edge.source) == block_of(edge.target) {
                within += 1;
            } else {
                between += 1;
            }
        }
        // Expectations: within ≈ 4 * C(200,2) * 0.1 ≈ 7960,
        // between ≈ 6 * 200 * 200 * 0.002 = 480. Loose factor-of-2 bands.
        assert!(
            (4000..12000).contains(&within),
            "within-block edges: {within}"
        );
        assert!(
            (200..1000).contains(&between),
            "between-block edges: {between}"
        );
    }

    #[test]
    fn stochastic_block_extreme_probabilities() {
        let complete = ScenarioSpec::parse("sb:n=12,b=3,pin=1,pout=1,seed=1")
            .unwrap()
            .generate()
            .unwrap();
        assert_eq!(complete.edge_count(), 12 * 11 / 2);

        let cliques_only = ScenarioSpec::parse("sb:n=12,b=3,pin=1,pout=0,seed=1")
            .unwrap()
            .generate()
            .unwrap();
        assert_eq!(cliques_only.edge_count(), 3 * (4 * 3 / 2));

        let empty = ScenarioSpec::parse("sb:n=12,b=3,pin=0,pout=0,seed=1")
            .unwrap()
            .generate()
            .unwrap();
        assert_eq!(empty.edge_count(), 0);
    }

    #[test]
    fn weight_distributions_have_expected_support() {
        let powerlaw = generate("ba:n=500,m=2,w=powerlaw(2.5),seed=3");
        assert!(weights(&powerlaw).iter().all(|&w| w >= 1.0));

        let lognormal = generate("ba:n=500,m=2,w=lognormal(0,1),seed=3");
        assert!(weights(&lognormal).iter().all(|&w| w > 0.0));

        let uniform = generate("geo:n=500,r=0.06,w=uniform(10),seed=3");
        assert!(weights(&uniform).iter().all(|&w| w > 0.0 && w <= 10.0));

        // Same topology, different weight distribution: weights differ,
        // structure does not.
        let unit = generate("ba:n=500,m=2,seed=3");
        assert_eq!(unit.edge_count(), powerlaw.edge_count());
        assert_ne!(weights(&unit), weights(&powerlaw));
    }

    #[test]
    fn noise_layer_scales_weights_within_the_paper_band() {
        let clean = generate("er:n=400,e=1200,w=uniform(10),seed=17");
        let noisy = generate("er:n=400,e=1200,w=uniform(10),noise=0.3,seed=17");
        assert_eq!(clean.edge_count(), noisy.edge_count());
        let mut saw_change = false;
        for (before, after) in weights(&clean).iter().zip(weights(&noisy)) {
            let factor = after / before;
            assert!(
                (0.7..1.3 + 1e-12).contains(&factor),
                "factor {factor} outside [1-noise, 1+noise)"
            );
            saw_change |= (factor - 1.0).abs() > 1e-9;
        }
        assert!(saw_change, "noise=0.3 must actually perturb weights");
    }

    #[test]
    fn weight_and_noise_streams_are_decorrelated_from_topology() {
        // Changing only the weight distribution must not change which draws
        // the topology makes, and vice versa: same seed, same edges.
        let a = generate("sb:n=300,b=3,pin=0.1,pout=0.01,w=powerlaw(3),seed=9");
        let b = generate("sb:n=300,b=3,pin=0.1,pout=0.01,w=lognormal(1,0.5),seed=9");
        let pairs = |g: &CsrGraph| -> Vec<(usize, usize)> {
            g.edges().map(|e| (e.source, e.target)).collect()
        };
        assert_eq!(pairs(&a), pairs(&b));
        assert_ne!(weights(&a), weights(&b));
    }
}
