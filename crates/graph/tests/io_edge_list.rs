//! Regression tests for edge-list parsing: error reporting (source name +
//! line number), malformed weights, blank lines, and duplicate-edge
//! accumulation semantics.

use backboning_graph::io::{
    read_edge_list_file, read_edge_list_named, read_edge_list_str, EdgeListOptions,
};
use backboning_graph::Direction;

fn temp_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("backboning_graph_io_edge_list");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn file_parse_errors_name_the_offending_path() {
    let path = temp_path("malformed_weight.tsv");
    std::fs::write(&path, "A B 1.0\nB C twelve\n").unwrap();
    let err = read_edge_list_file(&path, &EdgeListOptions::default()).unwrap_err();
    let message = err.to_string();
    assert!(
        message.contains("malformed_weight.tsv"),
        "missing path in `{message}`"
    );
    assert!(message.contains("line 2"), "missing line in `{message}`");
    assert!(message.contains("twelve"), "missing token in `{message}`");
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn open_errors_name_the_missing_path() {
    let path = temp_path("does_not_exist.tsv");
    let err = read_edge_list_file(&path, &EdgeListOptions::default()).unwrap_err();
    assert!(
        err.to_string().contains("does_not_exist.tsv"),
        "missing path in `{err}`"
    );
}

#[test]
fn named_reader_reports_custom_source() {
    let err = read_edge_list_named(
        "A B 1.0\nlonely\n".as_bytes(),
        &EdgeListOptions::default(),
        "<stdin>",
    )
    .unwrap_err();
    let message = err.to_string();
    assert!(message.contains("<stdin>"), "missing source in `{message}`");
    assert!(message.contains("line 2"), "missing line in `{message}`");
}

#[test]
fn malformed_weight_variants_are_rejected_with_line_numbers() {
    for (text, bad_line) in [
        ("A B x\n", 1),
        ("A B 1.0\nB C 2.0\nC D 1..5\n", 3),
        ("A B 1.0\n\n\nB C nan_but_worse\n", 4),
    ] {
        let err = read_edge_list_str(text, &EdgeListOptions::default()).unwrap_err();
        assert!(
            err.to_string().contains(&format!("line {bad_line}")),
            "`{text:?}` should fail on line {bad_line}, got `{err}`"
        );
    }
}

#[test]
fn negative_weights_are_rejected_with_line_numbers() {
    let err = read_edge_list_str("A B 1.0\nB C -3.5\n", &EdgeListOptions::default()).unwrap_err();
    let message = err.to_string();
    assert!(message.contains("line 2"), "missing line in `{message}`");
    assert!(message.contains("-3.5"), "missing weight in `{message}`");
}

#[test]
fn empty_lines_and_whitespace_only_lines_are_skipped() {
    let text = "\n  \nA B 1.0\n\t\nB C 2.0\n\n";
    let graph = read_edge_list_str(text, &EdgeListOptions::default()).unwrap();
    assert_eq!(graph.node_count(), 3);
    assert_eq!(graph.edge_count(), 2);
}

#[test]
fn entirely_empty_input_yields_an_empty_graph() {
    for text in ["", "\n\n", "# only comments\n"] {
        let graph = read_edge_list_str(text, &EdgeListOptions::default()).unwrap();
        assert_eq!(graph.node_count(), 0, "input {text:?}");
        assert_eq!(graph.edge_count(), 0, "input {text:?}");
    }
}

#[test]
fn duplicate_directed_edges_accumulate_weights() {
    let text = "A B 1.5\nA B 2.5\nA B\n";
    let graph = read_edge_list_str(text, &EdgeListOptions::default()).unwrap();
    assert_eq!(graph.edge_count(), 1);
    let a = graph.node_by_label("A").unwrap();
    let b = graph.node_by_label("B").unwrap();
    // 1.5 + 2.5 + the implicit weight 1 of the weightless line.
    assert_eq!(graph.edge_weight(a, b), Some(5.0));
}

#[test]
fn duplicate_undirected_edges_accumulate_across_orientations() {
    let options = EdgeListOptions::with_direction(Direction::Undirected);
    let graph = read_edge_list_str("A B 1.0\nB A 2.0\nA B 4.0\n", &options).unwrap();
    assert_eq!(graph.edge_count(), 1);
    let a = graph.node_by_label("A").unwrap();
    let b = graph.node_by_label("B").unwrap();
    assert_eq!(graph.edge_weight(a, b), Some(7.0));
    assert_eq!(graph.edge_weight(b, a), Some(7.0));
}

#[test]
fn directed_reader_keeps_orientations_distinct() {
    let graph = read_edge_list_str("A B 1.0\nB A 2.0\n", &EdgeListOptions::default()).unwrap();
    assert_eq!(graph.edge_count(), 2);
    let a = graph.node_by_label("A").unwrap();
    let b = graph.node_by_label("B").unwrap();
    assert_eq!(graph.edge_weight(a, b), Some(1.0));
    assert_eq!(graph.edge_weight(b, a), Some(2.0));
}
