//! Property tests for the compact-core refactor seams in this crate:
//!
//! * the streaming CSR edge-list reader must agree with the in-memory
//!   adjacency reader on **every** input — well-formed, malformed, and
//!   degenerate alike (same graph on success, same error message on failure);
//! * union-find connectivity (the engine behind `algorithms::components` and
//!   the comparison report) must match an independent BFS reference, on both
//!   the adjacency graph and its CSR image.

use proptest::prelude::*;

use backboning_graph::algorithms::components::{component_count, largest_component_size};
use backboning_graph::algorithms::union_find::UnionFind;
use backboning_graph::io::{read_edge_list_csr_named, read_edge_list_named, EdgeListOptions};
use backboning_graph::{CsrGraph, Direction, GraphView, WeightedGraph};

const LABELS: [&str; 6] = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta"];

/// Strategy: raw edge-list text mixing valid weighted lines, weightless
/// lines, duplicate edges (the same label pair recurs freely), comments,
/// blank lines, malformed weights, and negative weights.
fn edge_list_text() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        ((0usize..8), (0usize..6), (0usize..6), 0.05f64..50.0),
        0..40,
    )
    .prop_map(|lines| {
        let mut text = String::new();
        for (kind, a, b, weight) in lines {
            let a = LABELS[a];
            let b = LABELS[b];
            match kind {
                0..=2 => text.push_str(&format!("{a} {b} {weight}\n")),
                3 => text.push_str(&format!("{a}\t{b}\n")),
                4 => text.push_str("# interleaved comment\n"),
                5 => text.push_str("   \n"),
                6 => text.push_str(&format!("{a} {b} not-a-number\n")),
                _ => text.push_str(&format!("{a} {b} -{weight}\n")),
            }
        }
        text
    })
}

/// Strategy: a small random graph of either direction with duplicate edges
/// accumulated and isolated nodes possible (same shape as the core crate's
/// parity harnesses).
fn random_graph() -> impl Strategy<Value = WeightedGraph> {
    (
        proptest::collection::vec(((0usize..12), (0usize..12), 0.05f64..50.0), 0..60),
        0usize..2,
    )
        .prop_map(|(edges, directed)| {
            let direction = if directed == 0 {
                Direction::Directed
            } else {
                Direction::Undirected
            };
            let mut graph = WeightedGraph::with_nodes(direction, 12);
            for (source, target, weight) in edges {
                if source != target {
                    graph.add_edge(source, target, weight).unwrap();
                }
            }
            graph
        })
}

/// Independent reference: weak connectivity via BFS over an adjacency list
/// built from scratch, ignoring edge direction.
fn bfs_component_sizes<G: GraphView>(graph: &G) -> Vec<usize> {
    let node_count = graph.node_count();
    let mut neighbors = vec![Vec::new(); node_count];
    for edge in graph.edges() {
        neighbors[edge.source].push(edge.target);
        neighbors[edge.target].push(edge.source);
    }
    let mut visited = vec![false; node_count];
    let mut sizes = Vec::new();
    for start in 0..node_count {
        if visited[start] {
            continue;
        }
        visited[start] = true;
        let mut queue = std::collections::VecDeque::from([start]);
        let mut size = 0usize;
        while let Some(node) = queue.pop_front() {
            size += 1;
            for &next in &neighbors[node] {
                if !visited[next] {
                    visited[next] = true;
                    queue.push_back(next);
                }
            }
        }
        sizes.push(size);
    }
    sizes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Streaming CSR ingestion is a drop-in replacement for the adjacency
    /// reader: identical graphs on success, identical diagnostics on failure.
    #[test]
    fn streaming_reader_matches_adjacency_reader(
        (text, directed) in (edge_list_text(), 0usize..2)
    ) {
        let direction = if directed == 0 {
            Direction::Directed
        } else {
            Direction::Undirected
        };
        let options = EdgeListOptions::with_direction(direction);
        let adjacency = read_edge_list_named(text.as_bytes(), &options, "<prop>");
        let streamed = read_edge_list_csr_named(text.as_bytes(), &options, "<prop>");
        match (adjacency, streamed) {
            (Ok(graph), Ok(csr)) => {
                let compact = CsrGraph::from_graph(&graph).unwrap();
                prop_assert!(
                    compact == csr,
                    "graphs differ for input {text:?} ({direction:?})"
                );
            }
            (Err(expected), Err(got)) => {
                prop_assert_eq!(expected.to_string(), got.to_string());
            }
            (adjacency, streamed) => prop_assert!(
                false,
                "readers disagree on success for {:?}: adjacency ok={}, streamed ok={}",
                text,
                adjacency.is_ok(),
                streamed.is_ok()
            ),
        }
    }

    /// Union-find connectivity agrees with an independent BFS reference, and
    /// is view-invariant: the CSR image reports the same components as the
    /// adjacency graph it was built from.
    #[test]
    fn union_find_connectivity_matches_bfs(graph in random_graph()) {
        let bfs_sizes = bfs_component_sizes(&graph);
        let bfs_components = bfs_sizes.len();
        let bfs_largest = bfs_sizes.iter().copied().max().unwrap_or(0);

        prop_assert_eq!(component_count(&graph), bfs_components);
        prop_assert_eq!(largest_component_size(&graph), bfs_largest);

        // Raw union-find, driven the same way the comparison report drives it.
        let mut union_find = UnionFind::new(graph.node_count());
        for edge in graph.edges() {
            union_find.union(edge.source, edge.target);
        }
        prop_assert_eq!(union_find.component_count(), bfs_components);

        let csr = CsrGraph::from_graph(&graph).unwrap();
        prop_assert_eq!(component_count(&csr), bfs_components);
        prop_assert_eq!(largest_component_size(&csr), bfs_largest);
    }
}
