//! The read-only graph abstraction shared by both representations.
//!
//! Every backboning method consumes a graph through the same narrow,
//! edge-id-ordered surface: the edge list in dense-id order, per-node
//! degrees, direction semantics and a way to materialize a backbone
//! subgraph. [`GraphView`] captures exactly that surface, so the scoring and
//! selection pipeline is written once and monomorphizes over both the
//! mutable adjacency-map [`WeightedGraph`] (builder/compat shim) and the
//! compact [`CsrGraph`] core — with *identical* floating-point evaluation
//! order, which is what makes the two paths bit-identical (pinned by the
//! parity suite).
//!
//! Backbone outputs are always a [`WeightedGraph`]: a backbone is small by
//! construction, so the mutable, label-preserving representation is the
//! right type regardless of what the input was.

use std::borrow::Cow;
use std::ops::Range;

use crate::csr::CsrGraph;
use crate::error::GraphResult;
use crate::graph::{Direction, EdgeRef, NodeId, WeightedGraph};

/// Read-only access to a weighted graph in dense edge-id order.
///
/// Implementors guarantee:
///
/// * [`edge`](GraphView::edge) returns `Some` exactly for
///   `0..edge_count()`, and undirected edges carry canonical
///   `(min, max)` endpoints;
/// * [`edges`](GraphView::edges) yields every edge in ascending dense-id
///   order (the insertion/first-occurrence order);
/// * degree semantics match [`WeightedGraph`]: for undirected graphs
///   `degree` counts incident edges (self-loops once) and equals both
///   `out_degree` and `in_degree`; for directed graphs `degree` is
///   `out_degree + in_degree`.
pub trait GraphView {
    /// Direction semantics of the graph.
    fn direction(&self) -> Direction;

    /// Number of nodes.
    fn node_count(&self) -> usize;

    /// Number of edges.
    fn edge_count(&self) -> usize;

    /// The edge with dense id `index`, if it exists.
    fn edge(&self, index: usize) -> Option<EdgeRef>;

    /// Out-degree of `node`.
    fn out_degree(&self, node: NodeId) -> usize;

    /// In-degree of `node`.
    fn in_degree(&self, node: NodeId) -> usize;

    /// Degree of `node` (see the trait docs for the exact semantics).
    fn degree(&self, node: NodeId) -> usize;

    /// The label of `node`, if it has one.
    fn label(&self, node: NodeId) -> Option<&str>;

    /// Sum of all edge weights (each edge once).
    fn total_weight(&self) -> f64;

    /// Number of nodes with at least one incident edge.
    fn non_isolated_node_count(&self) -> usize;

    /// Materialize the subgraph keeping only the listed dense edge ids,
    /// with the full node set and labels preserved.
    fn subgraph_with_edges(&self, edge_indices: &[usize]) -> GraphResult<WeightedGraph>;

    /// The compact CSR form of this graph — borrowed when the graph already
    /// is one, built on the fly otherwise.
    fn to_csr(&self) -> GraphResult<Cow<'_, CsrGraph>>;

    /// Whether the graph is directed.
    fn is_directed(&self) -> bool {
        self.direction() == Direction::Directed
    }

    /// Iterator over all node ids.
    fn nodes(&self) -> Range<NodeId> {
        0..self.node_count()
    }

    /// Iterate over all edges in dense-id order.
    fn edges(&self) -> ViewEdges<'_, Self>
    where
        Self: Sized,
    {
        ViewEdges {
            graph: self,
            range: 0..self.edge_count(),
        }
    }
}

/// The edge iterator of [`GraphView::edges`].
#[derive(Debug, Clone)]
pub struct ViewEdges<'a, G: GraphView> {
    graph: &'a G,
    range: Range<usize>,
}

impl<G: GraphView> Iterator for ViewEdges<'_, G> {
    type Item = EdgeRef;

    fn next(&mut self) -> Option<EdgeRef> {
        self.range
            .next()
            .map(|index| self.graph.edge(index).expect("edge index in range"))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.range.size_hint()
    }
}

impl<G: GraphView> ExactSizeIterator for ViewEdges<'_, G> {}

impl GraphView for WeightedGraph {
    fn direction(&self) -> Direction {
        WeightedGraph::direction(self)
    }

    fn node_count(&self) -> usize {
        WeightedGraph::node_count(self)
    }

    fn edge_count(&self) -> usize {
        WeightedGraph::edge_count(self)
    }

    fn edge(&self, index: usize) -> Option<EdgeRef> {
        WeightedGraph::edge(self, index)
    }

    fn out_degree(&self, node: NodeId) -> usize {
        WeightedGraph::out_degree(self, node)
    }

    fn in_degree(&self, node: NodeId) -> usize {
        WeightedGraph::in_degree(self, node)
    }

    fn degree(&self, node: NodeId) -> usize {
        WeightedGraph::degree(self, node)
    }

    fn label(&self, node: NodeId) -> Option<&str> {
        WeightedGraph::label(self, node)
    }

    fn total_weight(&self) -> f64 {
        WeightedGraph::total_weight(self)
    }

    fn non_isolated_node_count(&self) -> usize {
        WeightedGraph::non_isolated_node_count(self)
    }

    fn subgraph_with_edges(&self, edge_indices: &[usize]) -> GraphResult<WeightedGraph> {
        WeightedGraph::subgraph_with_edges(self, edge_indices)
    }

    fn to_csr(&self) -> GraphResult<Cow<'_, CsrGraph>> {
        CsrGraph::from_graph(self).map(Cow::Owned)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Direction;

    fn triangle() -> WeightedGraph {
        WeightedGraph::from_labeled_edges(
            Direction::Undirected,
            vec![("a", "b", 1.0), ("b", "c", 2.0), ("c", "a", 3.0)],
        )
        .unwrap()
    }

    /// The same generic function run through both implementations.
    fn summarize<G: GraphView>(graph: &G) -> (usize, usize, f64, Vec<(usize, usize, f64)>) {
        (
            graph.node_count(),
            graph.edge_count(),
            graph.total_weight(),
            graph
                .edges()
                .map(|edge| (edge.source, edge.target, edge.weight))
                .collect(),
        )
    }

    #[test]
    fn both_representations_expose_the_same_view() {
        let graph = triangle();
        let csr = CsrGraph::from_graph(&graph).unwrap();
        assert_eq!(summarize(&graph), summarize(&csr));
        for node in GraphView::nodes(&graph) {
            assert_eq!(
                GraphView::degree(&graph, node),
                GraphView::degree(&csr, node)
            );
            assert_eq!(GraphView::label(&graph, node), GraphView::label(&csr, node));
        }
    }

    #[test]
    fn to_csr_borrows_when_already_compact() {
        let graph = triangle();
        let csr = CsrGraph::from_graph(&graph).unwrap();
        assert!(matches!(GraphView::to_csr(&csr).unwrap(), Cow::Borrowed(_)));
        assert!(matches!(GraphView::to_csr(&graph).unwrap(), Cow::Owned(_)));
    }

    #[test]
    fn view_edges_is_exact_size() {
        let graph = triangle();
        let edges = GraphView::edges(&graph);
        assert_eq!(edges.len(), 3);
        assert_eq!(edges.count(), 3);
    }
}
