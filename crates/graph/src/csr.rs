//! Compact compressed-sparse-row (CSR) graph core.
//!
//! This is the canonical large-graph representation of the workspace: `u32`
//! node ids, a flat prefix-offset adjacency (one cache-friendly entry array
//! instead of a `Vec` per node) and parallel dense edge arrays in edge-id
//! order. A 10M-edge undirected graph costs ~48 bytes per edge here versus
//! several hundred in the adjacency-map [`WeightedGraph`], which remains as a
//! mutable builder/compat shim for small graphs and backbone outputs.
//!
//! Structure invariants (shared with [`WeightedGraph`], pinned by the parity
//! suite):
//!
//! * edge ids are dense `0..edge_count` in first-occurrence order; duplicate
//!   `(source, target)` pairs accumulate their weights into the first
//!   occurrence, left to right;
//! * undirected edges store canonical `(min, max)` endpoints and appear in
//!   the adjacency rows of **both** endpoints under the same edge id
//!   (self-loops appear once);
//! * per-row adjacency order equals [`WeightedGraph`]'s insertion order, so
//!   any algorithm walking rows (e.g. [`CsrDijkstra`]) is bit-identical on
//!   either representation.
//!
//! Every constructor returns a structured [`GraphError::CapacityExceeded`]
//! (never a panic or a silent truncation) when the node, edge or adjacency
//! entry count would overflow the `u32` index space.
//!
//! [`CsrDijkstra`]: crate::algorithms::shortest_path::CsrDijkstra

use std::collections::HashMap;
use std::mem::size_of;
use std::ops::Range;

use crate::error::{GraphError, GraphResult};
use crate::graph::{Direction, EdgeRef, NodeId, WeightedGraph};
use crate::view::GraphView;

/// The maximum node/edge/entry count the compact core can address.
pub const CSR_INDEX_LIMIT: u64 = u32::MAX as u64;

pub(crate) fn check_capacity(what: &'static str, requested: u64) -> GraphResult<()> {
    if requested > CSR_INDEX_LIMIT {
        Err(GraphError::CapacityExceeded {
            what,
            requested,
            limit: CSR_INDEX_LIMIT,
        })
    } else {
        Ok(())
    }
}

/// An immutable compact CSR graph — see the [module docs](self).
#[derive(Debug, Clone, PartialEq)]
pub struct CsrGraph {
    direction: Direction,
    node_count: usize,
    /// Row boundaries: node `n`'s adjacency entries live at
    /// `offsets[n]..offsets[n + 1]`.
    offsets: Vec<u32>,
    /// Neighbor node id per adjacency entry.
    targets: Vec<u32>,
    /// Dense edge id per adjacency entry (undirected edges share one id
    /// across both endpoint rows).
    entry_edge_ids: Vec<u32>,
    /// Edge weight per adjacency entry.
    entry_weights: Vec<f64>,
    /// Canonical source per edge, in edge-id order.
    edge_sources: Vec<u32>,
    /// Canonical target per edge, in edge-id order.
    edge_targets: Vec<u32>,
    /// Weight per edge, in edge-id order.
    edge_weights: Vec<f64>,
    /// In-degree per node (directed graphs only; empty for undirected, where
    /// in-degree equals the row length).
    in_degrees: Vec<u32>,
    /// Node labels (empty when the graph is unlabeled).
    labels: Vec<Option<String>>,
}

impl CsrGraph {
    /// Build the compact CSR form of an adjacency-map graph, preserving node
    /// labels, edge ids and per-row adjacency order exactly.
    pub fn from_graph(graph: &WeightedGraph) -> GraphResult<CsrGraph> {
        check_capacity("nodes", graph.node_count() as u64)?;
        check_capacity("edges", graph.edge_count() as u64)?;

        let node_count = graph.node_count();
        let mut edge_sources = Vec::with_capacity(graph.edge_count());
        let mut edge_targets = Vec::with_capacity(graph.edge_count());
        let mut edge_weights = Vec::with_capacity(graph.edge_count());
        for edge in graph.edges() {
            edge_sources.push(edge.source as u32);
            edge_targets.push(edge.target as u32);
            edge_weights.push(edge.weight);
        }

        let mut entry_total = 0u64;
        for node in graph.nodes() {
            entry_total += graph.out_degree(node) as u64;
        }
        check_capacity("adjacency entries", entry_total)?;

        let mut offsets = Vec::with_capacity(node_count + 1);
        let mut targets = Vec::with_capacity(entry_total as usize);
        let mut entry_edge_ids = Vec::with_capacity(entry_total as usize);
        let mut entry_weights = Vec::with_capacity(entry_total as usize);
        offsets.push(0);
        for node in graph.nodes() {
            for ((neighbor, weight), edge_id) in
                graph.out_neighbors(node).zip(graph.out_edge_indices(node))
            {
                targets.push(neighbor as u32);
                entry_edge_ids.push(edge_id as u32);
                entry_weights.push(weight);
            }
            offsets.push(targets.len() as u32);
        }

        let in_degrees = match graph.direction() {
            Direction::Undirected => Vec::new(),
            Direction::Directed => graph.nodes().map(|n| graph.in_degree(n) as u32).collect(),
        };
        let mut labels: Vec<Option<String>> = graph
            .nodes()
            .map(|n| graph.label(n).map(str::to_string))
            .collect();
        if labels.iter().all(Option::is_none) {
            labels = Vec::new();
        }

        Ok(CsrGraph {
            direction: graph.direction(),
            node_count,
            offsets,
            targets,
            entry_edge_ids,
            entry_weights,
            edge_sources,
            edge_targets,
            edge_weights,
            in_degrees,
            labels,
        })
    }

    /// Build a compact graph on `node_count` unlabeled nodes from
    /// `(source, target, weight)` triples, accumulating duplicate edges —
    /// the streaming equivalent of [`WeightedGraph::from_edges`].
    pub fn from_edges(
        direction: Direction,
        node_count: usize,
        triples: impl IntoIterator<Item = (NodeId, NodeId, f64)>,
    ) -> GraphResult<CsrGraph> {
        let mut builder = CsrBuilder::with_nodes(direction, node_count)?;
        for (source, target, weight) in triples {
            builder.add_edge(source, target, weight)?;
        }
        builder.finish()
    }

    /// A copy of this graph with the listed edges' weights replaced —
    /// `(edge id, new weight)` pairs. Structure (node ids, edge ids,
    /// adjacency order) is untouched, so the result is bit-identical to
    /// rebuilding the graph from the reweighted edge list.
    pub fn with_reweighted_edges(&self, updates: &[(usize, f64)]) -> GraphResult<CsrGraph> {
        let mut graph = self.clone();
        for &(edge, weight) in updates {
            if !weight.is_finite() || weight < 0.0 {
                return Err(GraphError::InvalidWeight { weight });
            }
            if edge >= graph.edge_weights.len() {
                return Err(GraphError::InvalidParameter {
                    parameter: "edge",
                    message: format!(
                        "edge id {edge} is out of range (graph has {} edges)",
                        graph.edge_weights.len()
                    ),
                });
            }
            graph.edge_weights[edge] = weight;
            let source = graph.edge_sources[edge] as usize;
            let target = graph.edge_targets[edge] as usize;
            let mut rows = vec![source];
            if graph.direction == Direction::Undirected && source != target {
                rows.push(target);
            }
            for node in rows {
                let range = graph.entry_range(node);
                for slot in range {
                    if graph.entry_edge_ids[slot] as usize == edge {
                        graph.entry_weights[slot] = weight;
                    }
                }
            }
        }
        Ok(graph)
    }

    /// Direction semantics of the graph.
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// Whether the graph is directed.
    pub fn is_directed(&self) -> bool {
        self.direction == Direction::Directed
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of adjacency entries (each undirected edge contributes two
    /// except self-loops, which contribute one).
    pub fn entry_count(&self) -> usize {
        self.targets.len()
    }

    /// Number of distinct edges.
    pub fn edge_count(&self) -> usize {
        self.edge_weights.len()
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> Range<NodeId> {
        0..self.node_count
    }

    /// The label of `node`, if it has one.
    pub fn label(&self, node: NodeId) -> Option<&str> {
        self.labels.get(node).and_then(|label| label.as_deref())
    }

    /// The entry range of `node`'s adjacency row.
    #[inline]
    pub fn entry_range(&self, node: NodeId) -> Range<usize> {
        self.offsets[node] as usize..self.offsets[node + 1] as usize
    }

    /// The neighbor ids of `node`, in insertion order.
    #[inline]
    pub fn neighbors(&self, node: NodeId) -> &[u32] {
        &self.targets[self.entry_range(node)]
    }

    /// The dense edge ids of `node`'s adjacency row.
    #[inline]
    pub fn edge_ids(&self, node: NodeId) -> &[u32] {
        &self.entry_edge_ids[self.entry_range(node)]
    }

    /// The edge weights of `node`'s adjacency row.
    #[inline]
    pub fn weights(&self, node: NodeId) -> &[f64] {
        &self.entry_weights[self.entry_range(node)]
    }

    /// The neighbor id of one adjacency entry.
    #[inline]
    pub fn entry_target(&self, entry: usize) -> NodeId {
        self.targets[entry] as NodeId
    }

    /// The dense edge id of one adjacency entry.
    #[inline]
    pub fn entry_edge_id(&self, entry: usize) -> usize {
        self.entry_edge_ids[entry] as usize
    }

    /// The flat per-entry weight array (parallel to the entry array).
    #[inline]
    pub fn entry_weights(&self) -> &[f64] {
        &self.entry_weights
    }

    /// Out-degree of `node` (row length).
    #[inline]
    pub fn out_degree(&self, node: NodeId) -> usize {
        (self.offsets[node + 1] - self.offsets[node]) as usize
    }

    /// In-degree of `node` (equals the out-degree for undirected graphs).
    #[inline]
    pub fn in_degree(&self, node: NodeId) -> usize {
        match self.direction {
            Direction::Undirected => self.out_degree(node),
            Direction::Directed => self.in_degrees[node] as usize,
        }
    }

    /// Degree of `node`: incident edge count for undirected graphs,
    /// out-degree plus in-degree for directed ones.
    pub fn degree(&self, node: NodeId) -> usize {
        match self.direction {
            Direction::Undirected => self.out_degree(node),
            Direction::Directed => self.out_degree(node) + self.in_degree(node),
        }
    }

    /// Sum of the weights in `node`'s adjacency row.
    pub fn strength(&self, node: NodeId) -> f64 {
        self.weights(node).iter().sum()
    }

    /// Sum of all entry weights (undirected edges count twice, except
    /// self-loops).
    pub fn total_entry_weight(&self) -> f64 {
        self.entry_weights.iter().sum()
    }

    /// Sum of all edge weights (each edge once) — matches
    /// [`WeightedGraph::total_weight`].
    pub fn total_weight(&self) -> f64 {
        self.edge_weights.iter().sum()
    }

    /// The edge with dense id `index`, if it exists.
    pub fn edge(&self, index: usize) -> Option<EdgeRef> {
        if index < self.edge_count() {
            Some(EdgeRef {
                index,
                source: self.edge_sources[index] as NodeId,
                target: self.edge_targets[index] as NodeId,
                weight: self.edge_weights[index],
            })
        } else {
            None
        }
    }

    /// Iterate over all edges in edge-id order.
    pub fn edges(&self) -> impl Iterator<Item = EdgeRef> + '_ {
        (0..self.edge_count()).map(|index| EdgeRef {
            index,
            source: self.edge_sources[index] as NodeId,
            target: self.edge_targets[index] as NodeId,
            weight: self.edge_weights[index],
        })
    }

    /// Iterate over the adjacency entries as `(source, target, weight)`.
    pub fn entries(&self) -> impl Iterator<Item = (NodeId, NodeId, f64)> + '_ {
        self.nodes().flat_map(move |node| {
            self.neighbors(node)
                .iter()
                .zip(self.weights(node))
                .map(move |(&target, &weight)| (node, target as NodeId, weight))
        })
    }

    /// Number of nodes with at least one incident edge.
    pub fn non_isolated_node_count(&self) -> usize {
        self.nodes().filter(|&n| self.degree(n) > 0).count()
    }

    /// Build an adjacency-map graph with the same node set (and labels)
    /// containing only the edges whose dense ids are listed in
    /// `edge_indices` — semantics identical to
    /// [`WeightedGraph::subgraph_with_edges`]. Backbones are small, so the
    /// mutable representation is the right output type.
    pub fn subgraph_with_edges(&self, edge_indices: &[usize]) -> GraphResult<WeightedGraph> {
        let mut subgraph = WeightedGraph::new(self.direction);
        for node in self.nodes() {
            match self.label(node) {
                Some(label) => {
                    subgraph.add_labeled_node(label.to_string())?;
                }
                None => {
                    subgraph.add_node();
                }
            }
        }
        for &index in edge_indices {
            let edge = self.edge(index).ok_or(GraphError::InvalidParameter {
                parameter: "edge_indices",
                message: format!("edge index {index} out of bounds"),
            })?;
            subgraph.set_edge_weight(edge.source, edge.target, edge.weight)?;
        }
        Ok(subgraph)
    }

    /// Expand back into a mutable adjacency-map graph (labels preserved).
    pub fn to_weighted_graph(&self) -> GraphResult<WeightedGraph> {
        self.subgraph_with_edges(&(0..self.edge_count()).collect::<Vec<_>>())
    }

    /// Precise heap footprint of the compact arrays in bytes (labels
    /// excluded): the number reported by the scaling benchmarks.
    pub fn memory_bytes(&self) -> usize {
        self.offsets.len() * size_of::<u32>()
            + self.targets.len() * size_of::<u32>()
            + self.entry_edge_ids.len() * size_of::<u32>()
            + self.entry_weights.len() * size_of::<f64>()
            + self.edge_sources.len() * size_of::<u32>()
            + self.edge_targets.len() * size_of::<u32>()
            + self.edge_weights.len() * size_of::<f64>()
            + self.in_degrees.len() * size_of::<u32>()
    }
}

/// Streaming builder for [`CsrGraph`]: push `(source, target, weight)` edges
/// one at a time (by index or by label) and [`CsrBuilder::finish`] into the
/// compact form. No intermediate [`WeightedGraph`] and no per-edge hash
/// lookup is involved: duplicate detection is a post-hoc sort over the
/// collected triples, which reproduces [`WeightedGraph::add_edge`]'s
/// left-to-right duplicate accumulation bit-exactly (pinned by the ingestion
/// parity suite).
#[derive(Debug, Clone)]
pub struct CsrBuilder {
    direction: Direction,
    node_count: usize,
    sources: Vec<u32>,
    targets: Vec<u32>,
    weights: Vec<f64>,
    labels: Vec<Option<String>>,
    label_index: HashMap<String, u32>,
}

impl CsrBuilder {
    /// Start a builder with no declared nodes (node count grows with the
    /// pushed edges and labels).
    pub fn new(direction: Direction) -> CsrBuilder {
        CsrBuilder {
            direction,
            node_count: 0,
            sources: Vec::new(),
            targets: Vec::new(),
            weights: Vec::new(),
            labels: Vec::new(),
            label_index: HashMap::new(),
        }
    }

    /// Start a builder with `node_count` pre-declared unlabeled nodes.
    /// Fails fast (before any allocation) when the count overflows the
    /// `u32` index space.
    pub fn with_nodes(direction: Direction, node_count: usize) -> GraphResult<CsrBuilder> {
        check_capacity("nodes", node_count as u64)?;
        let mut builder = CsrBuilder::new(direction);
        builder.node_count = node_count;
        Ok(builder)
    }

    /// Start a builder with `node_count` pre-declared nodes carrying an
    /// existing label table (shorter tables are padded with unlabeled
    /// nodes; an empty table declares every node unlabeled). Used to
    /// rebuild a compact graph without re-interning labels.
    pub fn with_labeled_nodes(
        direction: Direction,
        node_count: usize,
        labels: Vec<Option<String>>,
    ) -> GraphResult<CsrBuilder> {
        if labels.len() > node_count {
            return Err(GraphError::InvalidParameter {
                parameter: "labels",
                message: format!("{} labels supplied for {node_count} nodes", labels.len()),
            });
        }
        let mut builder = CsrBuilder::with_nodes(direction, node_count)?;
        for (id, label) in labels.iter().enumerate() {
            if let Some(label) = label {
                if builder
                    .label_index
                    .insert(label.clone(), id as u32)
                    .is_some()
                {
                    return Err(GraphError::InvalidParameter {
                        parameter: "labels",
                        message: format!("duplicate node label `{label}`"),
                    });
                }
            }
        }
        builder.labels = labels;
        Ok(builder)
    }

    /// Direction semantics of the graph being built.
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// Current node count.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of pushed (pre-deduplication) edges.
    pub fn pushed_edges(&self) -> usize {
        self.weights.len()
    }

    /// The node id for `label`, interning a new node on first appearance —
    /// the same first-appearance id assignment as
    /// [`WeightedGraph::ensure_node`].
    pub fn ensure_node(&mut self, label: &str) -> GraphResult<NodeId> {
        if let Some(&id) = self.label_index.get(label) {
            return Ok(id as NodeId);
        }
        check_capacity("nodes", self.node_count as u64 + 1)?;
        let id = self.node_count as u32;
        // Pad any pre-declared unlabeled nodes so label slots line up.
        while self.labels.len() < self.node_count {
            self.labels.push(None);
        }
        self.labels.push(Some(label.to_string()));
        self.label_index.insert(label.to_string(), id);
        self.node_count += 1;
        Ok(id as NodeId)
    }

    /// Push an edge by node index, growing the node count as needed.
    /// Validates the weight exactly like [`WeightedGraph::add_edge`]
    /// (finite, non-negative).
    pub fn add_edge(&mut self, source: NodeId, target: NodeId, weight: f64) -> GraphResult<()> {
        if !weight.is_finite() || weight < 0.0 {
            return Err(GraphError::InvalidWeight { weight });
        }
        let max_id = source.max(target);
        check_capacity("nodes", max_id as u64 + 1)?;
        check_capacity("edges", self.weights.len() as u64 + 1)?;
        if max_id >= self.node_count {
            self.node_count = max_id + 1;
        }
        let (a, b) = match self.direction {
            Direction::Directed => (source, target),
            Direction::Undirected => (source.min(target), source.max(target)),
        };
        self.sources.push(a as u32);
        self.targets.push(b as u32);
        self.weights.push(weight);
        Ok(())
    }

    /// Push an edge by node labels, interning nodes on first appearance.
    pub fn add_labeled_edge(&mut self, source: &str, target: &str, weight: f64) -> GraphResult<()> {
        let source = self.ensure_node(source)?;
        let target = self.ensure_node(target)?;
        self.add_edge(source, target, weight)
    }

    /// Deduplicate and pack the pushed edges into the compact form.
    pub fn finish(self) -> GraphResult<CsrGraph> {
        let CsrBuilder {
            direction,
            node_count,
            sources,
            targets,
            weights,
            mut labels,
            label_index,
        } = self;
        drop(label_index);
        while labels.len() < node_count && !labels.is_empty() {
            labels.push(None);
        }

        // Sort push-order indices by canonical endpoint key, ties by push
        // order; equal-key runs then list every occurrence of one edge in
        // arrival order.
        let key = |i: usize| (u64::from(sources[i]) << 32) | u64::from(targets[i]);
        let mut order: Vec<usize> = (0..weights.len()).collect();
        order.sort_unstable_by_key(|&i| (key(i), i));

        // Merge each run: the first occurrence fixes the edge's identity and
        // later occurrences accumulate left to right, exactly like repeated
        // `WeightedGraph::add_edge` calls.
        let mut merged: Vec<(usize, u32, u32, f64)> = Vec::with_capacity(order.len());
        let mut cursor = 0;
        while cursor < order.len() {
            let first = order[cursor];
            let run_key = key(first);
            let mut weight = weights[first];
            cursor += 1;
            while cursor < order.len() && key(order[cursor]) == run_key {
                weight += weights[order[cursor]];
                cursor += 1;
            }
            merged.push((first, sources[first], targets[first], weight));
        }
        // Dense edge ids follow first-occurrence order.
        merged.sort_unstable_by_key(|&(first, _, _, _)| first);
        check_capacity("edges", merged.len() as u64)?;
        drop(order);
        drop(sources);
        drop(targets);
        drop(weights);

        let edge_count = merged.len();
        let mut edge_sources = Vec::with_capacity(edge_count);
        let mut edge_targets = Vec::with_capacity(edge_count);
        let mut edge_weights = Vec::with_capacity(edge_count);
        for &(_, source, target, weight) in &merged {
            edge_sources.push(source);
            edge_targets.push(target);
            edge_weights.push(weight);
        }
        drop(merged);

        // Row sizes, then a counting sort appending the edges in id order:
        // this reproduces the adjacency-map push order (source row first,
        // then — for a non-loop undirected edge — the target row).
        let mut row_len = vec![0u32; node_count];
        let mut in_degrees = match direction {
            Direction::Directed => vec![0u32; node_count],
            Direction::Undirected => Vec::new(),
        };
        let mut entry_total = 0u64;
        for index in 0..edge_count {
            let source = edge_sources[index] as usize;
            let target = edge_targets[index] as usize;
            row_len[source] += 1;
            entry_total += 1;
            match direction {
                Direction::Directed => in_degrees[target] += 1,
                Direction::Undirected => {
                    if source != target {
                        row_len[target] += 1;
                        entry_total += 1;
                    }
                }
            }
        }
        check_capacity("adjacency entries", entry_total)?;

        let mut offsets = Vec::with_capacity(node_count + 1);
        offsets.push(0u32);
        let mut running = 0u32;
        for &len in &row_len {
            running += len;
            offsets.push(running);
        }
        drop(row_len);
        let entry_count = running as usize;
        let mut next_slot: Vec<u32> = offsets[..node_count].to_vec();
        let mut entry_targets = vec![0u32; entry_count];
        let mut entry_edge_ids = vec![0u32; entry_count];
        let mut entry_weights = vec![0.0f64; entry_count];
        for index in 0..edge_count {
            let source = edge_sources[index] as usize;
            let target = edge_targets[index] as usize;
            let weight = edge_weights[index];
            let slot = next_slot[source] as usize;
            entry_targets[slot] = target as u32;
            entry_edge_ids[slot] = index as u32;
            entry_weights[slot] = weight;
            next_slot[source] += 1;
            if direction == Direction::Undirected && source != target {
                let slot = next_slot[target] as usize;
                entry_targets[slot] = source as u32;
                entry_edge_ids[slot] = index as u32;
                entry_weights[slot] = weight;
                next_slot[target] += 1;
            }
        }

        Ok(CsrGraph {
            direction,
            node_count,
            offsets,
            targets: entry_targets,
            entry_edge_ids,
            entry_weights,
            edge_sources,
            edge_targets,
            edge_weights,
            in_degrees,
            labels,
        })
    }
}

impl GraphView for CsrGraph {
    fn direction(&self) -> Direction {
        self.direction
    }

    fn node_count(&self) -> usize {
        self.node_count
    }

    fn edge_count(&self) -> usize {
        CsrGraph::edge_count(self)
    }

    fn edge(&self, index: usize) -> Option<EdgeRef> {
        CsrGraph::edge(self, index)
    }

    fn out_degree(&self, node: NodeId) -> usize {
        CsrGraph::out_degree(self, node)
    }

    fn in_degree(&self, node: NodeId) -> usize {
        CsrGraph::in_degree(self, node)
    }

    fn degree(&self, node: NodeId) -> usize {
        CsrGraph::degree(self, node)
    }

    fn label(&self, node: NodeId) -> Option<&str> {
        CsrGraph::label(self, node)
    }

    fn total_weight(&self) -> f64 {
        CsrGraph::total_weight(self)
    }

    fn non_isolated_node_count(&self) -> usize {
        CsrGraph::non_isolated_node_count(self)
    }

    fn subgraph_with_edges(&self, edge_indices: &[usize]) -> GraphResult<WeightedGraph> {
        CsrGraph::subgraph_with_edges(self, edge_indices)
    }

    fn to_csr(&self) -> GraphResult<std::borrow::Cow<'_, CsrGraph>> {
        Ok(std::borrow::Cow::Borrowed(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Direction;

    fn sample_undirected() -> WeightedGraph {
        let mut g = WeightedGraph::with_nodes(Direction::Undirected, 4);
        g.add_edge(0, 1, 1.0).unwrap();
        g.add_edge(1, 2, 2.0).unwrap();
        g.add_edge(2, 3, 3.0).unwrap();
        g.add_edge(0, 3, 4.0).unwrap();
        g
    }

    #[test]
    fn csr_matches_graph_structure() {
        let g = sample_undirected();
        let csr = CsrGraph::from_graph(&g).unwrap();
        assert_eq!(csr.node_count(), 4);
        assert_eq!(csr.edge_count(), 4);
        assert_eq!(csr.entry_count(), 8);
        assert_eq!(csr.neighbors(0), &[1, 3]);
        assert_eq!(csr.weights(2), &[2.0, 3.0]);
        assert_eq!(csr.degree(1), 2);
        assert!((csr.total_entry_weight() - 20.0).abs() < 1e-12);
        assert!((csr.total_weight() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn undirected_entries_double_edges() {
        let g = sample_undirected();
        let csr = CsrGraph::from_graph(&g).unwrap();
        assert_eq!(csr.entry_count(), 2 * g.edge_count());
        assert!((csr.total_entry_weight() - 2.0 * g.total_weight()).abs() < 1e-12);
    }

    #[test]
    fn entries_iterator_visits_every_entry() {
        let g = sample_undirected();
        let csr = CsrGraph::from_graph(&g).unwrap();
        let entries: Vec<(usize, usize, f64)> = csr.entries().collect();
        assert_eq!(entries.len(), csr.entry_count());
        assert!(entries.contains(&(0, 1, 1.0)));
        assert!(entries.contains(&(1, 0, 1.0)));
    }

    #[test]
    fn rows_mirror_adjacency_insertion_order() {
        let g = sample_undirected();
        let csr = CsrGraph::from_graph(&g).unwrap();
        for node in g.nodes() {
            let adjacency: Vec<(usize, usize, f64)> = g
                .out_neighbors(node)
                .zip(g.out_edge_indices(node))
                .map(|((neighbor, weight), edge_id)| (neighbor, edge_id, weight))
                .collect();
            for (slot, &(neighbor, edge_id, weight)) in adjacency.iter().enumerate() {
                assert_eq!(neighbor as u32, csr.neighbors(node)[slot]);
                assert_eq!(edge_id as u32, csr.edge_ids(node)[slot]);
                assert_eq!(weight, csr.weights(node)[slot]);
                let entry = csr.entry_range(node).start + slot;
                assert_eq!(csr.entry_target(entry), neighbor);
                assert_eq!(csr.entry_edge_id(entry), edge_id);
            }
        }
    }

    #[test]
    fn undirected_endpoints_share_edge_ids() {
        let mut g = WeightedGraph::with_nodes(Direction::Undirected, 3);
        g.add_edge(0, 1, 1.0).unwrap();
        g.add_edge(1, 2, 2.0).unwrap();
        let csr = CsrGraph::from_graph(&g).unwrap();
        assert_eq!(csr.edge_ids(0), &[0]);
        assert!(csr.edge_ids(1).contains(&0));
        assert!(csr.edge_ids(1).contains(&1));
    }

    #[test]
    fn self_loops_appear_once_and_zero_weights_survive() {
        let mut g = WeightedGraph::with_nodes(Direction::Undirected, 2);
        g.add_edge(0, 0, 0.0).unwrap();
        g.add_edge(0, 1, 2.0).unwrap();
        let csr = CsrGraph::from_graph(&g).unwrap();
        assert_eq!(csr.out_degree(0), 2);
        assert_eq!(csr.weights(0), &[0.0, 2.0]);
        assert_eq!(csr.out_degree(1), 1);
        assert!((csr.total_entry_weight() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn directed_rows_are_out_edges_only() {
        let mut g = WeightedGraph::with_nodes(Direction::Directed, 3);
        g.add_edge(0, 1, 1.0).unwrap();
        g.add_edge(1, 2, 2.0).unwrap();
        g.add_edge(2, 0, 3.0).unwrap();
        let csr = CsrGraph::from_graph(&g).unwrap();
        assert_eq!(csr.neighbors(0), &[1]);
        assert_eq!(csr.neighbors(1), &[2]);
        assert_eq!(csr.out_degree(0), 1);
        assert_eq!(csr.in_degree(0), 1);
        assert_eq!(csr.degree(0), 2);
    }

    #[test]
    fn empty_graph_and_isolated_nodes() {
        let empty = WeightedGraph::undirected();
        let csr = CsrGraph::from_graph(&empty).unwrap();
        assert_eq!(csr.node_count(), 0);
        assert_eq!(csr.entry_count(), 0);

        let mut g = WeightedGraph::with_nodes(Direction::Undirected, 3);
        g.add_edge(0, 1, 7.5).unwrap();
        let csr = CsrGraph::from_graph(&g).unwrap();
        assert_eq!(csr.out_degree(2), 0);
        assert_eq!(csr.neighbors(2), &[] as &[u32]);
        assert_eq!(csr.weights(0), &[7.5]);
        assert_eq!(
            csr.entries().collect::<Vec<_>>(),
            vec![(0, 1, 7.5), (1, 0, 7.5)]
        );
        assert_eq!(csr.non_isolated_node_count(), 2);
    }

    #[test]
    fn builder_matches_weighted_graph_on_duplicates() {
        // Duplicate edges (in both orientations for the undirected case)
        // accumulate into the first occurrence, preserving edge-id order.
        let triples = vec![
            (0usize, 1usize, 1.0),
            (2, 3, 4.0),
            (1, 0, 2.5),
            (0, 1, 0.5),
            (3, 3, 1.0),
        ];
        for direction in [Direction::Undirected, Direction::Directed] {
            let reference = WeightedGraph::from_edges(direction, 4, triples.clone()).unwrap();
            let compact = CsrGraph::from_edges(direction, 4, triples.clone()).unwrap();
            let converted = CsrGraph::from_graph(&reference).unwrap();
            assert_eq!(compact, converted, "{direction:?}");
        }
    }

    #[test]
    fn builder_labels_follow_first_appearance() {
        let mut builder = CsrBuilder::new(Direction::Undirected);
        builder.add_labeled_edge("b", "a", 1.0).unwrap();
        builder.add_labeled_edge("a", "c", 2.0).unwrap();
        let csr = builder.finish().unwrap();
        assert_eq!(csr.label(0), Some("b"));
        assert_eq!(csr.label(1), Some("a"));
        assert_eq!(csr.label(2), Some("c"));

        let reference = WeightedGraph::from_labeled_edges(
            Direction::Undirected,
            vec![("b", "a", 1.0), ("a", "c", 2.0)],
        )
        .unwrap();
        assert_eq!(csr, CsrGraph::from_graph(&reference).unwrap());
    }

    #[test]
    fn builder_rejects_invalid_weights() {
        let mut builder = CsrBuilder::new(Direction::Directed);
        assert_eq!(
            builder.add_edge(0, 1, -1.0),
            Err(GraphError::InvalidWeight { weight: -1.0 })
        );
        assert!(builder.add_edge(0, 1, f64::NAN).is_err());
        assert!(builder.add_edge(0, 1, f64::INFINITY).is_err());
    }

    #[test]
    fn capacity_overflow_is_a_structured_error() {
        // Declaring too many nodes fails before any allocation.
        let oversized = u32::MAX as usize + 1;
        match CsrBuilder::with_nodes(Direction::Undirected, oversized) {
            Err(GraphError::CapacityExceeded {
                what, requested, ..
            }) => {
                assert_eq!(what, "nodes");
                assert_eq!(requested, oversized as u64);
            }
            other => panic!("expected CapacityExceeded, got {other:?}"),
        }
        // A single edge endpoint beyond the id space is rejected too.
        let mut builder = CsrBuilder::new(Direction::Directed);
        assert!(matches!(
            builder.add_edge(0, oversized, 1.0),
            Err(GraphError::CapacityExceeded { what: "nodes", .. })
        ));
        // And the error has a readable message.
        let error = CsrBuilder::with_nodes(Direction::Undirected, oversized).unwrap_err();
        assert!(error.to_string().contains("capacity"));
    }

    #[test]
    fn subgraph_round_trips_like_weighted_graph() {
        let g = sample_undirected();
        let csr = CsrGraph::from_graph(&g).unwrap();
        let kept = vec![0usize, 2];
        let from_csr = csr.subgraph_with_edges(&kept).unwrap();
        let from_graph = g.subgraph_with_edges(&kept).unwrap();
        assert_eq!(from_csr.node_count(), from_graph.node_count());
        assert_eq!(from_csr.edge_count(), from_graph.edge_count());
        for (a, b) in from_csr.edges().zip(from_graph.edges()) {
            assert_eq!(
                (a.source, a.target, a.weight),
                (b.source, b.target, b.weight)
            );
        }
        assert!(csr.subgraph_with_edges(&[99]).is_err());
    }

    #[test]
    fn memory_bytes_counts_the_flat_arrays() {
        let g = sample_undirected();
        let csr = CsrGraph::from_graph(&g).unwrap();
        // 5 offsets + 8 entry targets/ids ×2 + 8 entry weights
        // + 4 edge sources/targets ×2 + 4 edge weights.
        let expected = 5 * 4 + 8 * 4 + 8 * 4 + 8 * 8 + 4 * 4 + 4 * 4 + 4 * 8;
        assert_eq!(csr.memory_bytes(), expected);
    }
}
