//! Compressed sparse row (CSR) graph representation.
//!
//! The scalability experiment of the paper (Figure 9) runs the backboning
//! methods on networks with millions of edges. The adjacency-list
//! [`WeightedGraph`] is convenient to mutate but has
//! poor cache locality; [`CsrGraph`] is an immutable, densely packed view that
//! the hot loops (strength computation, per-node neighbourhood scans) operate
//! on.

use crate::graph::{Direction, NodeId, WeightedGraph};

/// An immutable compressed-sparse-row view of a weighted graph.
///
/// Outgoing edges of node `v` occupy the slice
/// `offsets[v]..offsets[v + 1]` of `targets` / `weights`.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrGraph {
    direction: Direction,
    node_count: usize,
    edge_count: usize,
    offsets: Vec<usize>,
    targets: Vec<NodeId>,
    weights: Vec<f64>,
    /// Dense index (in the originating [`WeightedGraph`]) of the edge behind
    /// each adjacency entry; both orientations of an undirected edge share one
    /// id. This is what lets the High Salience Skeleton accumulate tree-edge
    /// counts without hash lookups.
    edge_ids: Vec<usize>,
}

impl CsrGraph {
    /// Build a CSR view from an adjacency-list graph.
    ///
    /// For undirected graphs every edge appears in the row of *both*
    /// endpoints, so row sums equal node strengths in both cases.
    pub fn from_graph(graph: &WeightedGraph) -> Self {
        let node_count = graph.node_count();
        let mut degree = vec![0usize; node_count];
        for node in graph.nodes() {
            degree[node] = graph.out_degree(node);
        }
        let mut offsets = Vec::with_capacity(node_count + 1);
        offsets.push(0);
        for node in 0..node_count {
            offsets.push(offsets[node] + degree[node]);
        }
        let total = offsets[node_count];
        let mut targets = vec![0; total];
        let mut weights = vec![0.0; total];
        let mut edge_ids = vec![0; total];
        let mut cursor = offsets.clone();
        for node in graph.nodes() {
            // `out_neighbors` and `out_edge_indices` walk the same adjacency
            // list, so zipping them pairs each entry with its edge id.
            for ((neighbor, weight), edge_id) in
                graph.out_neighbors(node).zip(graph.out_edge_indices(node))
            {
                let slot = cursor[node];
                targets[slot] = neighbor;
                weights[slot] = weight;
                edge_ids[slot] = edge_id;
                cursor[node] += 1;
            }
        }
        CsrGraph {
            direction: graph.direction(),
            node_count,
            edge_count: graph.edge_count(),
            offsets,
            targets,
            weights,
            edge_ids,
        }
    }

    /// Direction semantics of the underlying graph.
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of stored adjacency entries. For undirected graphs each edge is
    /// stored twice (once per endpoint), except self-loops which appear once.
    pub fn entry_count(&self) -> usize {
        self.targets.len()
    }

    /// Number of distinct edges in the originating graph (each undirected edge
    /// counted once, unlike [`Self::entry_count`]).
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// The adjacency-entry range of a node: its outgoing entries occupy
    /// `self.entry_range(node)` within the flat entry arrays.
    pub fn entry_range(&self, node: NodeId) -> std::ops::Range<usize> {
        self.offsets[node]..self.offsets[node + 1]
    }

    /// Outgoing neighbor slice of a node.
    pub fn neighbors(&self, node: NodeId) -> &[NodeId] {
        &self.targets[self.entry_range(node)]
    }

    /// Original-graph edge ids of a node's outgoing entries (parallel to
    /// [`Self::neighbors`]).
    pub fn edge_ids(&self, node: NodeId) -> &[usize] {
        &self.edge_ids[self.entry_range(node)]
    }

    /// The target node of a flat adjacency entry.
    pub fn entry_target(&self, entry: usize) -> NodeId {
        self.targets[entry]
    }

    /// The original-graph edge id behind a flat adjacency entry.
    pub fn entry_edge_id(&self, entry: usize) -> usize {
        self.edge_ids[entry]
    }

    /// All entry weights as one flat slice (entry order: node by node).
    pub fn entry_weights(&self) -> &[f64] {
        &self.weights
    }

    /// Outgoing weight slice of a node (parallel to [`Self::neighbors`]).
    pub fn weights(&self, node: NodeId) -> &[f64] {
        &self.weights[self.entry_range(node)]
    }

    /// Outgoing strength (row sum) of a node.
    pub fn strength(&self, node: NodeId) -> f64 {
        self.weights(node).iter().sum()
    }

    /// Out-degree (row length) of a node.
    pub fn degree(&self, node: NodeId) -> usize {
        self.offsets[node + 1] - self.offsets[node]
    }

    /// Total weight of all stored adjacency entries. Note that for undirected
    /// graphs this counts every edge twice (minus self-loops), unlike
    /// [`WeightedGraph::total_weight`].
    pub fn total_entry_weight(&self) -> f64 {
        self.weights.iter().sum()
    }

    /// Iterate over `(source, target, weight)` adjacency entries.
    pub fn entries(&self) -> impl Iterator<Item = (NodeId, NodeId, f64)> + '_ {
        (0..self.node_count).flat_map(move |node| {
            self.neighbors(node)
                .iter()
                .zip(self.weights(node))
                .map(move |(&target, &weight)| (node, target, weight))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Direction;

    fn sample_directed() -> WeightedGraph {
        let mut g = WeightedGraph::with_nodes(Direction::Directed, 4);
        g.add_edge(0, 1, 1.0).unwrap();
        g.add_edge(0, 2, 2.0).unwrap();
        g.add_edge(2, 3, 3.0).unwrap();
        g.add_edge(3, 0, 4.0).unwrap();
        g
    }

    #[test]
    fn csr_matches_adjacency_list() {
        let g = sample_directed();
        let csr = CsrGraph::from_graph(&g);
        assert_eq!(csr.node_count(), 4);
        assert_eq!(csr.entry_count(), 4);
        assert_eq!(csr.degree(0), 2);
        assert_eq!(csr.degree(1), 0);
        assert_eq!(csr.neighbors(0), &[1, 2]);
        assert_eq!(csr.weights(2), &[3.0]);
        assert!((csr.strength(0) - 3.0).abs() < 1e-12);
        assert!((csr.total_entry_weight() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn csr_undirected_duplicates_entries() {
        let mut g = WeightedGraph::with_nodes(Direction::Undirected, 3);
        g.add_edge(0, 1, 1.0).unwrap();
        g.add_edge(1, 2, 2.0).unwrap();
        let csr = CsrGraph::from_graph(&g);
        assert_eq!(csr.entry_count(), 4);
        assert_eq!(csr.degree(1), 2);
        assert!((csr.strength(1) - 3.0).abs() < 1e-12);
        // Every adjacency entry appears from both endpoints.
        assert!((csr.total_entry_weight() - 2.0 * g.total_weight()).abs() < 1e-12);
    }

    #[test]
    fn entries_iterator_covers_all_rows() {
        let g = sample_directed();
        let csr = CsrGraph::from_graph(&g);
        let entries: Vec<(usize, usize, f64)> = csr.entries().collect();
        assert_eq!(entries.len(), 4);
        assert!(entries.contains(&(3, 0, 4.0)));
    }

    #[test]
    fn entry_edge_ids_round_trip_to_original_edges() {
        let g = sample_directed();
        let csr = CsrGraph::from_graph(&g);
        assert_eq!(csr.edge_count(), 4);
        for node in 0..csr.node_count() {
            for (slot, entry) in csr.entry_range(node).enumerate() {
                let edge_id = csr.entry_edge_id(entry);
                assert_eq!(edge_id, csr.edge_ids(node)[slot]);
                let edge = g.edge(edge_id).unwrap();
                let target = csr.entry_target(entry);
                assert_eq!((edge.source, edge.target), (node, target));
                assert_eq!(edge.weight, csr.weights(node)[slot]);
            }
        }
    }

    #[test]
    fn undirected_orientations_share_one_edge_id() {
        let mut g = WeightedGraph::with_nodes(Direction::Undirected, 3);
        g.add_edge(0, 1, 1.0).unwrap();
        g.add_edge(1, 2, 2.0).unwrap();
        let csr = CsrGraph::from_graph(&g);
        assert_eq!(csr.edge_count(), 2);
        assert_eq!(csr.entry_count(), 4);
        // The 0–1 edge appears from node 0 and node 1 with the same id.
        assert_eq!(csr.edge_ids(0), &[0]);
        assert!(csr.edge_ids(1).contains(&0));
        assert!(csr.edge_ids(1).contains(&1));
        assert_eq!(csr.entry_weights().len(), 4);
    }

    #[test]
    fn empty_graph_produces_empty_csr() {
        let g = WeightedGraph::directed();
        let csr = CsrGraph::from_graph(&g);
        assert_eq!(csr.node_count(), 0);
        assert_eq!(csr.entry_count(), 0);
    }

    #[test]
    fn zero_weight_edges_are_preserved() {
        let mut g = WeightedGraph::with_nodes(Direction::Directed, 3);
        g.add_edge(0, 1, 0.0).unwrap();
        g.add_edge(1, 2, 2.0).unwrap();
        let csr = CsrGraph::from_graph(&g);
        assert_eq!(csr.entry_count(), 2);
        assert_eq!(csr.weights(0), &[0.0]);
        assert_eq!(csr.strength(0), 0.0);
        assert!((csr.total_entry_weight() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn undirected_self_loops_appear_once() {
        let mut g = WeightedGraph::with_nodes(Direction::Undirected, 2);
        g.add_edge(0, 0, 3.0).unwrap();
        g.add_edge(0, 1, 1.0).unwrap();
        let csr = CsrGraph::from_graph(&g);
        // The self-loop contributes a single adjacency entry; the ordinary
        // edge contributes one per endpoint.
        assert_eq!(csr.entry_count(), 3);
        assert_eq!(csr.degree(0), 2);
        assert!((csr.strength(0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn single_edge_graph_round_trips() {
        let mut g = WeightedGraph::with_nodes(Direction::Directed, 2);
        g.add_edge(0, 1, 7.5).unwrap();
        let csr = CsrGraph::from_graph(&g);
        assert_eq!(csr.entry_count(), 1);
        assert_eq!(csr.neighbors(0), &[1]);
        assert_eq!(csr.weights(0), &[7.5]);
        assert_eq!(csr.entries().collect::<Vec<_>>(), vec![(0, 1, 7.5)]);
    }

    #[test]
    fn isolated_nodes_have_empty_rows() {
        let mut g = WeightedGraph::with_nodes(Direction::Directed, 3);
        g.add_edge(0, 1, 1.0).unwrap();
        let csr = CsrGraph::from_graph(&g);
        assert_eq!(csr.degree(2), 0);
        assert!(csr.neighbors(2).is_empty());
        assert_eq!(csr.strength(2), 0.0);
    }
}
