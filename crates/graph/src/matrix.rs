//! Dense adjacency-matrix view and the Sinkhorn–Knopp doubly-stochastic
//! normalisation.
//!
//! The Doubly-Stochastic backbone (Slater, 2009; paper Section III-B) first
//! transforms the adjacency matrix into a doubly-stochastic matrix by
//! alternately normalising rows and columns. That transformation lives here,
//! next to the dense matrix view it operates on.

use crate::error::{GraphError, GraphResult};
use crate::graph::{Direction, NodeId};
use crate::view::GraphView;

/// A dense adjacency matrix of a weighted graph.
///
/// For undirected graphs the matrix is symmetric (each stored edge fills both
/// `(i, j)` and `(j, i)`).
#[derive(Debug, Clone, PartialEq)]
pub struct AdjacencyMatrix {
    size: usize,
    values: Vec<f64>,
}

impl AdjacencyMatrix {
    /// Build the dense adjacency matrix of a graph (either representation).
    pub fn from_graph<G: GraphView>(graph: &G) -> Self {
        let size = graph.node_count();
        let mut values = vec![0.0; size * size];
        for edge in graph.edges() {
            values[edge.source * size + edge.target] = edge.weight;
            if graph.direction() == Direction::Undirected {
                values[edge.target * size + edge.source] = edge.weight;
            }
        }
        AdjacencyMatrix { size, values }
    }

    /// Matrix dimension (number of nodes).
    pub fn size(&self) -> usize {
        self.size
    }

    /// Element access.
    #[inline]
    pub fn get(&self, row: NodeId, col: NodeId) -> f64 {
        self.values[row * self.size + col]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, row: NodeId, col: NodeId, value: f64) {
        self.values[row * self.size + col] = value;
    }

    /// Sum of a row.
    pub fn row_sum(&self, row: NodeId) -> f64 {
        self.values[row * self.size..(row + 1) * self.size]
            .iter()
            .sum()
    }

    /// Sum of a column.
    pub fn col_sum(&self, col: NodeId) -> f64 {
        (0..self.size).map(|row| self.get(row, col)).sum()
    }

    /// Iterate over the non-zero entries as `(row, col, value)`.
    pub fn non_zero_entries(&self) -> impl Iterator<Item = (NodeId, NodeId, f64)> + '_ {
        (0..self.size).flat_map(move |row| {
            (0..self.size).filter_map(move |col| {
                let value = self.get(row, col);
                if value != 0.0 {
                    Some((row, col, value))
                } else {
                    None
                }
            })
        })
    }

    /// Transform the matrix into a doubly-stochastic matrix with the
    /// Sinkhorn–Knopp algorithm: alternately normalise rows and columns until
    /// both row and column sums are within `tolerance` of one, or fail after
    /// `max_iterations` sweeps.
    ///
    /// Fails when a row or column is entirely zero, or when the iteration does
    /// not converge — the paper notes (citing Sinkhorn 1964) that not every
    /// square non-negative matrix admits a doubly-stochastic scaling, which is
    /// why the Doubly-Stochastic backbone is "n/a" for some networks in
    /// Tables and Figures.
    pub fn sinkhorn_knopp(
        &self,
        tolerance: f64,
        max_iterations: usize,
    ) -> GraphResult<AdjacencyMatrix> {
        let n = self.size;
        if n == 0 {
            return Err(GraphError::InvalidParameter {
                parameter: "matrix",
                message: "cannot normalise an empty matrix".to_string(),
            });
        }
        for row in 0..n {
            if self.row_sum(row) == 0.0 {
                return Err(GraphError::InvalidParameter {
                    parameter: "matrix",
                    message: format!(
                        "row {row} sums to zero; doubly-stochastic scaling impossible"
                    ),
                });
            }
        }
        for col in 0..n {
            if self.col_sum(col) == 0.0 {
                return Err(GraphError::InvalidParameter {
                    parameter: "matrix",
                    message: format!(
                        "column {col} sums to zero; doubly-stochastic scaling impossible"
                    ),
                });
            }
        }

        let mut work = self.clone();
        for _ in 0..max_iterations {
            // Normalise rows.
            for row in 0..n {
                let sum = work.row_sum(row);
                if sum > 0.0 {
                    for col in 0..n {
                        let value = work.get(row, col) / sum;
                        work.set(row, col, value);
                    }
                }
            }
            // Normalise columns.
            for col in 0..n {
                let sum = work.col_sum(col);
                if sum > 0.0 {
                    for row in 0..n {
                        let value = work.get(row, col) / sum;
                        work.set(row, col, value);
                    }
                }
            }
            // Check convergence.
            let row_error = (0..n)
                .map(|row| (work.row_sum(row) - 1.0).abs())
                .fold(0.0, f64::max);
            let col_error = (0..n)
                .map(|col| (work.col_sum(col) - 1.0).abs())
                .fold(0.0, f64::max);
            if row_error < tolerance && col_error < tolerance {
                return Ok(work);
            }
        }
        Err(GraphError::InvalidParameter {
            parameter: "matrix",
            message: format!("Sinkhorn-Knopp did not converge within {max_iterations} iterations"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Direction, WeightedGraph};

    #[test]
    fn matrix_from_directed_graph() {
        let mut g = WeightedGraph::with_nodes(Direction::Directed, 3);
        g.add_edge(0, 1, 2.0).unwrap();
        g.add_edge(2, 0, 3.0).unwrap();
        let m = AdjacencyMatrix::from_graph(&g);
        assert_eq!(m.size(), 3);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(1, 0), 0.0);
        assert_eq!(m.get(2, 0), 3.0);
        assert_eq!(m.row_sum(0), 2.0);
        assert_eq!(m.col_sum(0), 3.0);
    }

    #[test]
    fn matrix_from_undirected_graph_is_symmetric() {
        let mut g = WeightedGraph::with_nodes(Direction::Undirected, 3);
        g.add_edge(0, 1, 2.0).unwrap();
        g.add_edge(1, 2, 5.0).unwrap();
        let m = AdjacencyMatrix::from_graph(&g);
        assert_eq!(m.get(0, 1), m.get(1, 0));
        assert_eq!(m.get(1, 2), m.get(2, 1));
    }

    #[test]
    fn non_zero_entries_iteration() {
        let mut g = WeightedGraph::with_nodes(Direction::Directed, 3);
        g.add_edge(0, 1, 2.0).unwrap();
        g.add_edge(1, 2, 3.0).unwrap();
        let m = AdjacencyMatrix::from_graph(&g);
        let entries: Vec<_> = m.non_zero_entries().collect();
        assert_eq!(entries.len(), 2);
        assert!(entries.contains(&(0, 1, 2.0)));
        assert!(entries.contains(&(1, 2, 3.0)));
    }

    #[test]
    fn sinkhorn_converges_on_positive_matrix() {
        // Fully connected weighted graph → scaling always exists.
        let mut g = WeightedGraph::with_nodes(Direction::Directed, 3);
        for i in 0..3 {
            for j in 0..3 {
                g.add_edge(i, j, (1 + i + 2 * j) as f64).unwrap();
            }
        }
        let m = AdjacencyMatrix::from_graph(&g);
        let ds = m.sinkhorn_knopp(1e-9, 1000).unwrap();
        for i in 0..3 {
            assert!((ds.row_sum(i) - 1.0).abs() < 1e-6);
            assert!((ds.col_sum(i) - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn sinkhorn_preserves_zero_pattern() {
        let mut g = WeightedGraph::with_nodes(Direction::Directed, 2);
        g.add_edge(0, 0, 1.0).unwrap();
        g.add_edge(0, 1, 1.0).unwrap();
        g.add_edge(1, 0, 1.0).unwrap();
        g.add_edge(1, 1, 1.0).unwrap();
        let m = AdjacencyMatrix::from_graph(&g);
        let ds = m.sinkhorn_knopp(1e-9, 100).unwrap();
        assert!(ds.get(0, 0) > 0.0);
        assert!((ds.get(0, 0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn sinkhorn_fails_on_zero_row_or_column() {
        // Node 2 has no outgoing edges → zero row.
        let mut g = WeightedGraph::with_nodes(Direction::Directed, 3);
        g.add_edge(0, 1, 1.0).unwrap();
        g.add_edge(1, 2, 1.0).unwrap();
        g.add_edge(0, 2, 1.0).unwrap();
        let m = AdjacencyMatrix::from_graph(&g);
        assert!(m.sinkhorn_knopp(1e-9, 100).is_err());
    }

    #[test]
    fn sinkhorn_rejects_empty_matrix() {
        let g = WeightedGraph::directed();
        let m = AdjacencyMatrix::from_graph(&g);
        assert!(m.sinkhorn_knopp(1e-9, 100).is_err());
    }
}
