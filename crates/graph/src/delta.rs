//! Batched edge deltas over the compact CSR core.
//!
//! The paper's measures are defined on a static weighted graph, but served
//! workloads mutate: edges appear, disappear and change weight. This module
//! is the mutable overlay that makes those mutations cheap while keeping the
//! immutable [`CsrGraph`] canonical:
//!
//! * [`DeltaBatch`] — a parsed batch of [`DeltaOp`]s (`add` / `remove` /
//!   `reweight`), each carrying the 1-based line it came from so validation
//!   errors point at the offending input line.
//! * [`DeltaGraph`] — a dense edge log seeded from a [`CsrGraph`]
//!   ([`DeltaGraph::from_csr`]) that applies batches **transactionally**:
//!   every op in a batch is validated against a staged view before anything
//!   mutates, so a failed batch leaves the graph untouched.
//! * [`PatchEffect`] — what a committed batch did: counts, the touched
//!   nodes, the (post-patch) ids of changed edges, and the survivor remap
//!   when edges were removed. This is exactly the input the incremental
//!   rescoring path in `backboning::delta` needs.
//!
//! ## Compaction preserves bits
//!
//! [`DeltaGraph::to_csr`] compacts the log back to a flat [`CsrGraph`]. The
//! log keeps live edges in first-occurrence order (surviving base edges in
//! base-id order, then additions in arrival order) with canonical endpoint
//! pairs already unique, so the builder's sort-merge is the identity
//! permutation: edge ids follow the log order and every adjacency row lists
//! a node's incident edges in ascending edge-id order — the same order a
//! from-scratch ingest of the patched edge list would produce. Per-node
//! strength sums therefore accumulate in the same order and keep identical
//! `f64` bits, which is what makes node-local incremental rescoring *exact*
//! rather than approximate (pinned by the churn-parity suite).
//!
//! ```
//! use backboning_graph::delta::{DeltaBatch, DeltaGraph};
//! use backboning_graph::io::{read_edge_list_csr_str, EdgeListOptions};
//! use backboning_graph::Direction;
//!
//! let options = EdgeListOptions::with_direction(Direction::Undirected);
//! let base = read_edge_list_csr_str("a b 2\nb c 1\n", &options).unwrap();
//!
//! let mut delta = DeltaGraph::from_csr(&base);
//! let batch = DeltaBatch::parse_tsv("add a c 4\nreweight a b 3\n").unwrap();
//! let effect = delta.apply(&batch).unwrap();
//! assert_eq!((effect.added, effect.reweighted), (1, 1));
//!
//! let patched = delta.to_csr().unwrap();
//! assert_eq!(patched.edge_count(), 3);
//! ```

use std::collections::{BTreeSet, HashMap};
use std::fmt;

use crate::csr::{check_capacity, CsrBuilder, CsrGraph};
use crate::error::{GraphError, GraphResult};
use crate::graph::{Direction, NodeId};

/// One edge mutation, tagged with the 1-based input line it came from.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaOp {
    /// 1-based line (or op index) in the delta body, used in error messages.
    pub line: usize,
    /// The mutation itself.
    pub kind: DeltaOpKind,
}

/// The three supported edge mutations. Node tokens are labels on labeled
/// graphs and numeric ids on unlabeled ones; resolution happens at apply
/// time against the target graph.
#[derive(Debug, Clone, PartialEq)]
pub enum DeltaOpKind {
    /// Insert a new edge; fails if the edge already exists.
    Add {
        /// Source node token.
        source: String,
        /// Target node token.
        target: String,
        /// Edge weight (finite, non-negative).
        weight: f64,
    },
    /// Delete an existing edge; fails if the edge is absent.
    Remove {
        /// Source node token.
        source: String,
        /// Target node token.
        target: String,
    },
    /// Replace an existing edge's weight; fails if the edge is absent.
    Reweight {
        /// Source node token.
        source: String,
        /// Target node token.
        target: String,
        /// The new weight (finite, non-negative).
        weight: f64,
    },
}

/// A parsed batch of delta ops, applied atomically by [`DeltaGraph::apply`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeltaBatch {
    /// The ops in application order.
    pub ops: Vec<DeltaOp>,
}

fn line_error(line: usize, message: impl fmt::Display) -> GraphError {
    GraphError::Io {
        message: format!("line {line}: {message}"),
    }
}

impl DeltaBatch {
    /// Parse the TSV delta format: one op per line,
    /// `add SOURCE TARGET WEIGHT`, `remove SOURCE TARGET` or
    /// `reweight SOURCE TARGET WEIGHT`, whitespace-separated. Blank lines
    /// and `#` comments are skipped; errors carry the 1-based line number.
    pub fn parse_tsv(text: &str) -> GraphResult<DeltaBatch> {
        let mut ops = Vec::new();
        for (index, raw) in text.lines().enumerate() {
            let line = index + 1;
            let trimmed = raw.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = trimmed.split_whitespace().collect();
            let kind = match fields[0] {
                op @ ("add" | "reweight") => {
                    if fields.len() != 4 {
                        return Err(line_error(
                            line,
                            format!("expected `{op} SOURCE TARGET WEIGHT`, got `{trimmed}`"),
                        ));
                    }
                    let weight = fields[3].parse::<f64>().map_err(|_| {
                        line_error(line, format!("cannot parse weight `{}`", fields[3]))
                    })?;
                    if op == "add" {
                        DeltaOpKind::Add {
                            source: fields[1].to_string(),
                            target: fields[2].to_string(),
                            weight,
                        }
                    } else {
                        DeltaOpKind::Reweight {
                            source: fields[1].to_string(),
                            target: fields[2].to_string(),
                            weight,
                        }
                    }
                }
                "remove" => {
                    if fields.len() != 3 {
                        return Err(line_error(
                            line,
                            format!("expected `remove SOURCE TARGET`, got `{trimmed}`"),
                        ));
                    }
                    DeltaOpKind::Remove {
                        source: fields[1].to_string(),
                        target: fields[2].to_string(),
                    }
                }
                other => {
                    return Err(line_error(
                        line,
                        format!("unknown op `{other}` (expected add, remove or reweight)"),
                    ));
                }
            };
            ops.push(DeltaOp { line, kind });
        }
        Ok(DeltaBatch { ops })
    }

    /// Number of ops in the batch.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the batch has no ops.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// What a committed batch did to the graph — the contract between the
/// overlay and the incremental rescoring path.
#[derive(Debug, Clone, PartialEq)]
pub struct PatchEffect {
    /// Number of `add` ops committed.
    pub added: usize,
    /// Number of `remove` ops committed.
    pub removed: usize,
    /// Number of `reweight` ops committed.
    pub reweighted: usize,
    /// Whether the edge set changed (any add or remove). When false the
    /// patch was reweight-only and edge ids are stable.
    pub structure_changed: bool,
    /// Every node incident to a mutated edge, sorted ascending.
    pub touched_nodes: Vec<NodeId>,
    /// Post-patch ids of added and reweighted edges (sorted, deduplicated;
    /// edges mutated and then removed in the same batch are dropped).
    pub changed_edges: Vec<usize>,
    /// For each pre-patch edge id, its post-patch id (`None` if removed).
    /// Only present when edges were removed; the mapping is monotone.
    pub remap: Option<Vec<Option<u32>>>,
    /// The edge count before the batch was applied.
    pub old_edge_count: usize,
}

#[derive(Clone, Copy, PartialEq)]
enum Staged {
    Present,
    Absent,
}

/// A mutable edge log seeded from a [`CsrGraph`] — see the
/// [module docs](self) for the ordering invariants it maintains.
#[derive(Debug, Clone)]
pub struct DeltaGraph {
    direction: Direction,
    node_count: usize,
    sources: Vec<u32>,
    targets: Vec<u32>,
    weights: Vec<f64>,
    /// Canonical packed endpoint pair → live edge id.
    index: HashMap<u64, u32>,
    labels: Vec<Option<String>>,
    label_index: HashMap<String, u32>,
    patches: u64,
    ops_applied: u64,
}

fn pair_key(source: u32, target: u32) -> u64 {
    (u64::from(source) << 32) | u64::from(target)
}

impl DeltaGraph {
    /// Seed the overlay from a compact graph: live edges in edge-id order,
    /// plus the label table for token resolution.
    pub fn from_csr(graph: &CsrGraph) -> DeltaGraph {
        let edge_count = graph.edge_count();
        let mut sources = Vec::with_capacity(edge_count);
        let mut targets = Vec::with_capacity(edge_count);
        let mut weights = Vec::with_capacity(edge_count);
        let mut index = HashMap::with_capacity(edge_count);
        for edge in graph.edges() {
            let source = edge.source as u32;
            let target = edge.target as u32;
            index.insert(pair_key(source, target), sources.len() as u32);
            sources.push(source);
            targets.push(target);
            weights.push(edge.weight);
        }
        let mut labels: Vec<Option<String>> = graph
            .nodes()
            .map(|node| graph.label(node).map(str::to_string))
            .collect();
        if labels.iter().all(Option::is_none) {
            labels = Vec::new();
        }
        let label_index = labels
            .iter()
            .enumerate()
            .filter_map(|(id, label)| label.as_ref().map(|l| (l.clone(), id as u32)))
            .collect();
        DeltaGraph {
            direction: graph.direction(),
            node_count: graph.node_count(),
            sources,
            targets,
            weights,
            index,
            labels,
            label_index,
            patches: 0,
            ops_applied: 0,
        }
    }

    /// Direction semantics of the overlay.
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// Current node count.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Current live edge count.
    pub fn edge_count(&self) -> usize {
        self.weights.len()
    }

    /// Number of batches committed so far.
    pub fn patches(&self) -> u64 {
        self.patches
    }

    /// Number of individual ops committed so far.
    pub fn ops_applied(&self) -> u64 {
        self.ops_applied
    }

    /// The weight of the live edge with the given id, if any.
    pub fn edge_weight(&self, edge: usize) -> Option<f64> {
        self.weights.get(edge).copied()
    }

    fn has_labels(&self) -> bool {
        !self.labels.is_empty()
    }

    fn canonical(&self, source: u32, target: u32) -> (u32, u32) {
        match self.direction {
            Direction::Directed => (source, target),
            Direction::Undirected => (source.min(target), source.max(target)),
        }
    }

    fn describe(&self, node: u32) -> String {
        self.labels
            .get(node as usize)
            .and_then(|l| l.clone())
            .unwrap_or_else(|| node.to_string())
    }

    /// Resolve a node token against the staged view (validation phase).
    fn resolve_staged(
        &self,
        token: &str,
        line: usize,
        allow_new: bool,
        staged_nodes: &mut usize,
        staged_labels: &mut HashMap<String, u32>,
    ) -> GraphResult<u32> {
        if self.has_labels() {
            if let Some(&id) = self.label_index.get(token) {
                return Ok(id);
            }
            if let Some(&id) = staged_labels.get(token) {
                return Ok(id);
            }
            if !allow_new {
                return Err(line_error(line, format!("unknown node `{token}`")));
            }
            check_capacity("nodes", *staged_nodes as u64 + 1)?;
            let id = *staged_nodes as u32;
            staged_labels.insert(token.to_string(), id);
            *staged_nodes += 1;
            Ok(id)
        } else {
            let id: u64 = token
                .parse()
                .map_err(|_| line_error(line, format!("cannot parse node id `{token}`")))?;
            check_capacity("nodes", id + 1)?;
            if allow_new {
                *staged_nodes = (*staged_nodes).max(id as usize + 1);
            } else if id as usize >= *staged_nodes {
                return Err(line_error(
                    line,
                    format!("node {id} is out of bounds (graph has {staged_nodes} nodes)"),
                ));
            }
            Ok(id as u32)
        }
    }

    /// Resolve a node token for real (commit phase) — validation has
    /// already guaranteed success.
    fn resolve_commit(&mut self, token: &str, allow_new: bool) -> u32 {
        if self.has_labels() {
            if let Some(&id) = self.label_index.get(token) {
                return id;
            }
            debug_assert!(allow_new);
            let id = self.node_count as u32;
            self.labels.push(Some(token.to_string()));
            self.label_index.insert(token.to_string(), id);
            self.node_count += 1;
            id
        } else {
            let id: u32 = token.parse().expect("validated node token");
            if allow_new {
                self.node_count = self.node_count.max(id as usize + 1);
            }
            id
        }
    }

    /// Apply a batch transactionally: every op is validated against a
    /// staged view first, so an `Err` leaves the overlay untouched. Errors
    /// carry the offending op's line number, except capacity overflows,
    /// which surface as structured [`GraphError::CapacityExceeded`].
    pub fn apply(&mut self, batch: &DeltaBatch) -> GraphResult<PatchEffect> {
        // Phase 1: validate everything against staged state.
        let mut staged: HashMap<u64, Staged> = HashMap::new();
        let mut staged_nodes = self.node_count;
        let mut staged_labels: HashMap<String, u32> = HashMap::new();
        let mut staged_edge_count = self.weights.len();
        for op in &batch.ops {
            let line = op.line;
            let (source, target, weight, allow_new) = match &op.kind {
                DeltaOpKind::Add {
                    source,
                    target,
                    weight,
                } => (source, target, Some(*weight), true),
                DeltaOpKind::Remove { source, target } => (source, target, None, false),
                DeltaOpKind::Reweight {
                    source,
                    target,
                    weight,
                } => (source, target, Some(*weight), false),
            };
            let source = self.resolve_staged(
                source,
                line,
                allow_new,
                &mut staged_nodes,
                &mut staged_labels,
            )?;
            let target = self.resolve_staged(
                target,
                line,
                allow_new,
                &mut staged_nodes,
                &mut staged_labels,
            )?;
            if let Some(weight) = weight {
                if !weight.is_finite() || weight < 0.0 {
                    return Err(line_error(line, format!("invalid weight {weight}")));
                }
            }
            let (a, b) = self.canonical(source, target);
            let key = pair_key(a, b);
            let present = match staged.get(&key) {
                Some(Staged::Present) => true,
                Some(Staged::Absent) => false,
                None => self.index.contains_key(&key),
            };
            match &op.kind {
                DeltaOpKind::Add { .. } => {
                    if present {
                        return Err(line_error(
                            line,
                            format!(
                                "edge `{}` -> `{}` already exists (use reweight)",
                                self.describe(a),
                                self.describe(b)
                            ),
                        ));
                    }
                    check_capacity("edges", staged_edge_count as u64 + 1)?;
                    staged_edge_count += 1;
                    staged.insert(key, Staged::Present);
                }
                DeltaOpKind::Remove { .. } => {
                    if !present {
                        return Err(line_error(
                            line,
                            format!(
                                "cannot remove absent edge `{}` -> `{}`",
                                self.describe(a),
                                self.describe(b)
                            ),
                        ));
                    }
                    staged_edge_count -= 1;
                    staged.insert(key, Staged::Absent);
                }
                DeltaOpKind::Reweight { .. } => {
                    if !present {
                        return Err(line_error(
                            line,
                            format!(
                                "cannot reweight absent edge `{}` -> `{}`",
                                self.describe(a),
                                self.describe(b)
                            ),
                        ));
                    }
                    staged.insert(key, Staged::Present);
                }
            }
        }

        // Phase 2: commit — cannot fail.
        let old_edge_count = self.weights.len();
        let mut removed_flags = vec![false; old_edge_count];
        let mut any_removed = false;
        let mut added_ids: Vec<u32> = Vec::new();
        let mut reweighted_ids: Vec<u32> = Vec::new();
        let mut touched: BTreeSet<NodeId> = BTreeSet::new();
        let (mut added, mut removed, mut reweighted) = (0usize, 0usize, 0usize);
        for op in &batch.ops {
            match &op.kind {
                DeltaOpKind::Add {
                    source,
                    target,
                    weight,
                } => {
                    let source = self.resolve_commit(source, true);
                    let target = self.resolve_commit(target, true);
                    let (a, b) = self.canonical(source, target);
                    let id = self.weights.len() as u32;
                    self.sources.push(a);
                    self.targets.push(b);
                    self.weights.push(*weight);
                    removed_flags.push(false);
                    self.index.insert(pair_key(a, b), id);
                    added_ids.push(id);
                    added += 1;
                    touched.insert(a as NodeId);
                    touched.insert(b as NodeId);
                }
                DeltaOpKind::Remove { source, target } => {
                    let source = self.resolve_commit(source, false);
                    let target = self.resolve_commit(target, false);
                    let (a, b) = self.canonical(source, target);
                    let id = self
                        .index
                        .remove(&pair_key(a, b))
                        .expect("validated edge presence");
                    removed_flags[id as usize] = true;
                    any_removed = true;
                    removed += 1;
                    touched.insert(a as NodeId);
                    touched.insert(b as NodeId);
                }
                DeltaOpKind::Reweight {
                    source,
                    target,
                    weight,
                } => {
                    let source = self.resolve_commit(source, false);
                    let target = self.resolve_commit(target, false);
                    let (a, b) = self.canonical(source, target);
                    let id = *self
                        .index
                        .get(&pair_key(a, b))
                        .expect("validated edge presence");
                    self.weights[id as usize] = *weight;
                    reweighted_ids.push(id);
                    reweighted += 1;
                    touched.insert(a as NodeId);
                    touched.insert(b as NodeId);
                }
            }
        }

        // Order-preserving sweep of removed slots; survivors keep their
        // relative order so the remap is monotone.
        let (remap, changed_edges) = if any_removed {
            let total = self.weights.len();
            let mut full_remap: Vec<Option<u32>> = vec![None; total];
            let mut write = 0usize;
            for read in 0..total {
                if removed_flags[read] {
                    continue;
                }
                if write != read {
                    self.sources[write] = self.sources[read];
                    self.targets[write] = self.targets[read];
                    self.weights[write] = self.weights[read];
                }
                full_remap[read] = Some(write as u32);
                write += 1;
            }
            self.sources.truncate(write);
            self.targets.truncate(write);
            self.weights.truncate(write);
            self.index.clear();
            for id in 0..write {
                self.index
                    .insert(pair_key(self.sources[id], self.targets[id]), id as u32);
            }
            let changed: BTreeSet<usize> = added_ids
                .iter()
                .chain(reweighted_ids.iter())
                .filter_map(|&id| full_remap[id as usize].map(|new| new as usize))
                .collect();
            (
                Some(full_remap[..old_edge_count].to_vec()),
                changed.into_iter().collect(),
            )
        } else {
            let changed: BTreeSet<usize> = added_ids
                .iter()
                .chain(reweighted_ids.iter())
                .map(|&id| id as usize)
                .collect();
            (None, changed.into_iter().collect())
        };

        self.patches += 1;
        self.ops_applied += batch.ops.len() as u64;
        Ok(PatchEffect {
            added,
            removed,
            reweighted,
            structure_changed: added > 0 || any_removed,
            touched_nodes: touched.into_iter().collect(),
            changed_edges,
            remap,
            old_edge_count,
        })
    }

    /// Compact the log back to a flat [`CsrGraph`]. Edge ids follow the
    /// log's first-occurrence order, so the result is identical (including
    /// `f64` bits of every per-node strength sum) to ingesting the patched
    /// edge list from scratch.
    pub fn to_csr(&self) -> GraphResult<CsrGraph> {
        let mut builder = if self.has_labels() {
            CsrBuilder::with_labeled_nodes(self.direction, self.node_count, self.labels.clone())?
        } else {
            CsrBuilder::with_nodes(self.direction, self.node_count)?
        };
        for id in 0..self.weights.len() {
            builder.add_edge(
                self.sources[id] as NodeId,
                self.targets[id] as NodeId,
                self.weights[id],
            )?;
        }
        builder.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{read_edge_list_csr_str, EdgeListOptions};

    fn base() -> CsrGraph {
        let options = EdgeListOptions::with_direction(Direction::Undirected);
        read_edge_list_csr_str("a b 2\nb c 1\nc d 4\na d 0.5\n", &options).unwrap()
    }

    #[test]
    fn parse_tsv_reads_all_three_ops() {
        let batch = DeltaBatch::parse_tsv("# comment\n\nadd a e 2.5\nremove b c\nreweight a b 7\n")
            .unwrap();
        assert_eq!(batch.len(), 3);
        assert_eq!(batch.ops[0].line, 3);
        assert_eq!(
            batch.ops[1].kind,
            DeltaOpKind::Remove {
                source: "b".to_string(),
                target: "c".to_string(),
            }
        );
        assert_eq!(batch.ops[2].line, 5);
    }

    #[test]
    fn parse_tsv_errors_carry_line_numbers() {
        for (text, needle) in [
            ("add a b\n", "line 1: expected `add SOURCE TARGET WEIGHT`"),
            ("\nremove a\n", "line 2: expected `remove SOURCE TARGET`"),
            ("add a b x\n", "line 1: cannot parse weight `x`"),
            ("frobnicate a b\n", "line 1: unknown op `frobnicate`"),
        ] {
            let err = DeltaBatch::parse_tsv(text).unwrap_err().to_string();
            assert!(err.contains(needle), "{text:?}: {err}");
        }
    }

    #[test]
    fn apply_is_transactional() {
        let mut delta = DeltaGraph::from_csr(&base());
        let batch = DeltaBatch::parse_tsv("add a c 1\nremove a zz\n").unwrap();
        let err = delta.apply(&batch).unwrap_err().to_string();
        assert!(err.contains("line 2: unknown node `zz`"), "{err}");
        // Nothing from line 1 leaked.
        assert_eq!(delta.edge_count(), 4);
        assert_eq!(delta.patches(), 0);
        assert_eq!(delta.to_csr().unwrap(), base());
    }

    #[test]
    fn validation_errors_are_line_numbered() {
        let mut delta = DeltaGraph::from_csr(&base());
        for (text, needle) in [
            ("add a b 1\n", "line 1: edge `a` -> `b` already exists"),
            (
                "remove a c\n",
                "line 1: cannot remove absent edge `a` -> `c`",
            ),
            (
                "reweight a c 2\n",
                "line 1: cannot reweight absent edge `a` -> `c`",
            ),
            ("add a e -3\n", "line 1: invalid weight -3"),
            ("reweight a b NaN\n", "line 1: invalid weight NaN"),
            ("remove e f\n", "line 1: unknown node `e`"),
        ] {
            let batch = DeltaBatch::parse_tsv(text).unwrap();
            let err = delta.apply(&batch).unwrap_err().to_string();
            assert!(err.contains(needle), "{text:?}: {err}");
        }
    }

    #[test]
    fn effect_reports_what_happened() {
        let mut delta = DeltaGraph::from_csr(&base());
        // Base edges in id order: a-b (0), b-c (1), c-d (2), a-d (3).
        let batch = DeltaBatch::parse_tsv("add b d 9\nremove b c\nreweight c d 5\n").unwrap();
        let effect = delta.apply(&batch).unwrap();
        assert_eq!((effect.added, effect.removed, effect.reweighted), (1, 1, 1));
        assert!(effect.structure_changed);
        assert_eq!(effect.old_edge_count, 4);
        // Survivors: 0 -> 0, 2 -> 1, 3 -> 2; the add lands at 3.
        assert_eq!(effect.remap, Some(vec![Some(0), None, Some(1), Some(2)]));
        assert_eq!(effect.changed_edges, vec![1, 3]);
        // Touched: b (1), c (2), d (3).
        assert_eq!(effect.touched_nodes, vec![1, 2, 3]);
    }

    #[test]
    fn reweight_only_batches_keep_structure() {
        let mut delta = DeltaGraph::from_csr(&base());
        let batch = DeltaBatch::parse_tsv("reweight a b 10\nreweight c d 0\n").unwrap();
        let effect = delta.apply(&batch).unwrap();
        assert!(!effect.structure_changed);
        assert_eq!(effect.remap, None);
        assert_eq!(effect.changed_edges, vec![0, 2]);
        assert_eq!(delta.edge_weight(0), Some(10.0));
        // The cheap reweight path must match a full compaction bit-for-bit.
        let updates: Vec<(usize, f64)> = effect
            .changed_edges
            .iter()
            .map(|&id| (id, delta.edge_weight(id).unwrap()))
            .collect();
        let poked = base().with_reweighted_edges(&updates).unwrap();
        assert_eq!(poked, delta.to_csr().unwrap());
    }

    #[test]
    fn intra_batch_remove_then_add_gets_a_fresh_id() {
        let mut delta = DeltaGraph::from_csr(&base());
        let batch = DeltaBatch::parse_tsv("remove a b\nadd a b 6\n").unwrap();
        let effect = delta.apply(&batch).unwrap();
        assert_eq!((effect.added, effect.removed), (1, 1));
        // The re-added edge moves to the end of the id space.
        let patched = delta.to_csr().unwrap();
        let last = patched.edge(patched.edge_count() - 1).unwrap();
        assert_eq!(patched.label(last.source), Some("a"));
        assert_eq!(last.weight, 6.0);
        assert_eq!(effect.changed_edges, vec![3]);
    }

    #[test]
    fn add_then_remove_in_one_batch_nets_out() {
        let mut delta = DeltaGraph::from_csr(&base());
        let batch = DeltaBatch::parse_tsv("add a c 1\nremove a c\n").unwrap();
        let effect = delta.apply(&batch).unwrap();
        assert!(effect.changed_edges.is_empty());
        assert_eq!(delta.to_csr().unwrap().edge_count(), 4);
    }

    #[test]
    fn compaction_matches_from_scratch_ingest() {
        let mut delta = DeltaGraph::from_csr(&base());
        let batch =
            DeltaBatch::parse_tsv("remove b c\nadd a e 2\nreweight a b 3\nadd e b 1.5\n").unwrap();
        delta.apply(&batch).unwrap();
        let patched = delta.to_csr().unwrap();
        // The patched edge list, written in survivor order then adds.
        let options = EdgeListOptions::with_direction(Direction::Undirected);
        let fresh =
            read_edge_list_csr_str("a b 3\nc d 4\na d 0.5\na e 2\ne b 1.5\n", &options).unwrap();
        assert_eq!(patched, fresh);
    }

    #[test]
    fn unlabeled_graphs_resolve_numeric_ids() {
        let csr =
            CsrGraph::from_edges(Direction::Undirected, 4, vec![(0, 1, 2.0), (1, 2, 1.0)]).unwrap();
        let mut delta = DeltaGraph::from_csr(&csr);
        let batch = DeltaBatch::parse_tsv("add 2 3 4\nreweight 0 1 5\n").unwrap();
        delta.apply(&batch).unwrap();
        let patched = delta.to_csr().unwrap();
        assert_eq!(patched.edge_count(), 3);
        assert_eq!(patched.edge(0).unwrap().weight, 5.0);

        let bad = DeltaBatch::parse_tsv("remove x y\n").unwrap();
        let err = delta.apply(&bad).unwrap_err().to_string();
        assert!(err.contains("line 1: cannot parse node id `x`"), "{err}");
    }

    #[test]
    fn capacity_overflow_is_structured_not_a_panic() {
        let csr = CsrGraph::from_edges(Direction::Undirected, 2, vec![(0, 1, 1.0)]).unwrap();
        let mut delta = DeltaGraph::from_csr(&csr);
        let batch = DeltaBatch::parse_tsv("add 0 4294967295 1\n").unwrap();
        match delta.apply(&batch).unwrap_err() {
            GraphError::CapacityExceeded {
                what, requested, ..
            } => {
                assert_eq!(what, "nodes");
                assert_eq!(requested, u64::from(u32::MAX) + 1);
            }
            other => panic!("expected CapacityExceeded, got {other:?}"),
        }
        // Transactional: the overlay is untouched.
        assert_eq!(delta.edge_count(), 1);
        assert_eq!(delta.node_count(), 2);
    }

    #[test]
    fn directed_graphs_keep_orientation() {
        let options = EdgeListOptions::default();
        let csr = read_edge_list_csr_str("a b 2\nb a 3\n", &options).unwrap();
        let mut delta = DeltaGraph::from_csr(&csr);
        // a->b and b->a are distinct edges.
        let batch = DeltaBatch::parse_tsv("remove b a\nreweight a b 7\n").unwrap();
        let effect = delta.apply(&batch).unwrap();
        assert_eq!((effect.removed, effect.reweighted), (1, 1));
        let patched = delta.to_csr().unwrap();
        assert_eq!(patched.edge_count(), 1);
        assert_eq!(patched.edge(0).unwrap().weight, 7.0);
    }

    #[test]
    fn counters_accumulate_across_batches() {
        let mut delta = DeltaGraph::from_csr(&base());
        delta
            .apply(&DeltaBatch::parse_tsv("reweight a b 1\n").unwrap())
            .unwrap();
        delta
            .apply(&DeltaBatch::parse_tsv("add a c 1\nremove a c\n").unwrap())
            .unwrap();
        assert_eq!(delta.patches(), 2);
        assert_eq!(delta.ops_applied(), 3);
    }
}
