//! Plain-text edge-list input/output.
//!
//! The reference Python implementation of the paper exchanges networks as
//! whitespace- or tab-separated edge lists (`source target weight`, one edge
//! per line, optional header). This module reads and writes the same format so
//! that networks can be moved between this crate and external tools.
//!
//! Reading is **streaming**: lines are consumed one at a time from any
//! [`BufRead`] source (a file, stdin, a byte slice), so arbitrarily large
//! edge lists are ingested without buffering the whole file or materializing
//! an intermediate `Vec` of parsed lines. Parse failures report the offending
//! source name and line number.
//!
//! Two families of readers share one parser:
//!
//! * `read_edge_list*` build the mutable adjacency-map [`WeightedGraph`]
//!   (small graphs, fixtures, compat);
//! * `read_edge_list_csr*` stream straight into a [`CsrBuilder`] and return
//!   the compact [`CsrGraph`] — the canonical ingestion path of the CLI and
//!   the HTTP server. Both produce bit-identical structures (same node ids,
//!   edge ids and accumulated weights; pinned by the ingestion parity suite).
//!
//! ```
//! use backboning_graph::io::{read_edge_list_str, write_edge_list_string, EdgeListOptions};
//! use backboning_graph::Direction;
//!
//! // Comments and blank lines are skipped; duplicate edges accumulate.
//! let text = "# world trade, USD\nNLD DEU 4.0\nNLD DEU 1.5\nDEU FRA 2.0\n";
//! let options = EdgeListOptions::with_direction(Direction::Undirected);
//! let graph = read_edge_list_str(text, &options).unwrap();
//! assert_eq!(graph.edge_count(), 2);
//!
//! let nld = graph.node_by_label("NLD").unwrap();
//! let deu = graph.node_by_label("DEU").unwrap();
//! assert_eq!(graph.edge_weight(nld, deu), Some(5.5));
//!
//! // Errors carry the source name and the line number.
//! let err = read_edge_list_str("A B not_a_number", &options).unwrap_err();
//! assert!(err.to_string().contains("line 1"));
//!
//! // Writing round-trips through the same format.
//! let round = write_edge_list_string(&graph).unwrap();
//! assert!(round.contains("NLD\tDEU\t5.5"));
//! ```

use std::io::{BufRead, BufWriter, Write};
use std::path::Path;

use crate::csr::{CsrBuilder, CsrGraph};
use crate::error::{GraphError, GraphResult};
use crate::graph::{Direction, WeightedGraph};
use crate::view::GraphView;

/// The source name used in error messages when none is supplied.
const ANONYMOUS_SOURCE: &str = "<edge list>";

/// Options controlling edge-list parsing.
#[derive(Debug, Clone)]
pub struct EdgeListOptions {
    /// Direction semantics of the resulting graph.
    pub direction: Direction,
    /// Field separator (`None` splits on arbitrary whitespace).
    pub separator: Option<char>,
    /// Whether the first non-comment line is a header to skip.
    pub has_header: bool,
    /// Lines starting with this prefix are ignored.
    pub comment_prefix: Option<char>,
}

impl Default for EdgeListOptions {
    fn default() -> Self {
        EdgeListOptions {
            direction: Direction::Directed,
            separator: None,
            has_header: false,
            comment_prefix: Some('#'),
        }
    }
}

impl EdgeListOptions {
    /// Default options with the given direction.
    pub fn with_direction(direction: Direction) -> Self {
        EdgeListOptions {
            direction,
            ..Default::default()
        }
    }
}

/// The shared streaming parser: feed every data line's
/// `(source, target, weight)` to `sink`, wrapping both parse failures and
/// sink errors with `source_name` and the 1-based line number.
fn parse_edge_lines<R, F>(
    reader: R,
    options: &EdgeListOptions,
    source_name: &str,
    mut sink: F,
) -> GraphResult<()>
where
    R: BufRead,
    F: FnMut(&str, &str, f64) -> GraphResult<()>,
{
    let mut skipped_header = !options.has_header;
    for (line_index, line) in reader.lines().enumerate() {
        let line_number = line_index + 1;
        let line = line.map_err(|e| GraphError::Io {
            message: format!("{source_name}: line {line_number}: {e}"),
        })?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(prefix) = options.comment_prefix {
            if trimmed.starts_with(prefix) {
                continue;
            }
        }
        if !skipped_header {
            skipped_header = true;
            continue;
        }
        let fields: Vec<&str> = match options.separator {
            Some(separator) => trimmed.split(separator).map(str::trim).collect(),
            None => trimmed.split_whitespace().collect(),
        };
        if fields.len() < 2 {
            return Err(GraphError::Io {
                message: format!(
                    "{source_name}: line {line_number}: expected at least `source target`, got `{trimmed}`"
                ),
            });
        }
        let weight = if fields.len() >= 3 {
            fields[2].parse::<f64>().map_err(|_| GraphError::Io {
                message: format!(
                    "{source_name}: line {line_number}: cannot parse weight `{}`",
                    fields[2]
                ),
            })?
        } else {
            1.0
        };
        sink(fields[0], fields[1], weight).map_err(|e| GraphError::Io {
            message: format!("{source_name}: line {line_number}: {e}"),
        })?;
    }
    Ok(())
}

/// Parse a weighted edge list from any reader.
///
/// Each data line must contain `source target [weight]`; when the weight
/// column is missing the edge gets weight 1. Node names are arbitrary strings
/// and become node labels. Duplicate edges accumulate their weights.
///
/// Error messages use a generic source name; use [`read_edge_list_named`]
/// (or [`read_edge_list_file`], which names the file automatically) to report
/// where a malformed line came from.
pub fn read_edge_list<R: BufRead>(
    reader: R,
    options: &EdgeListOptions,
) -> GraphResult<WeightedGraph> {
    read_edge_list_named(reader, options, ANONYMOUS_SOURCE)
}

/// [`read_edge_list`], reporting `source_name` (a file path, `<stdin>`, …) in
/// every parse error alongside the 1-based line number.
pub fn read_edge_list_named<R: BufRead>(
    reader: R,
    options: &EdgeListOptions,
    source_name: &str,
) -> GraphResult<WeightedGraph> {
    let mut graph = WeightedGraph::new(options.direction);
    parse_edge_lines(reader, options, source_name, |source, target, weight| {
        let source = graph.ensure_node(source);
        let target = graph.ensure_node(target);
        graph.add_edge(source, target, weight).map(|_| ())
    })?;
    Ok(graph)
}

/// Parse a weighted edge list from a string.
pub fn read_edge_list_str(text: &str, options: &EdgeListOptions) -> GraphResult<WeightedGraph> {
    read_edge_list(text.as_bytes(), options)
}

/// Read a weighted edge list from a file.
///
/// Both open failures and parse failures name the offending path.
pub fn read_edge_list_file(
    path: impl AsRef<Path>,
    options: &EdgeListOptions,
) -> GraphResult<WeightedGraph> {
    let path = path.as_ref();
    let file = std::fs::File::open(path).map_err(|e| GraphError::Io {
        message: format!("{}: {e}", path.display()),
    })?;
    read_edge_list_named(
        std::io::BufReader::new(file),
        options,
        &path.display().to_string(),
    )
}

/// Parse a weighted edge list straight into the compact [`CsrGraph`] — the
/// large-scale ingestion path. Parse semantics, error messages, node-id
/// assignment and duplicate-edge accumulation are identical to
/// [`read_edge_list`]; the difference is that no adjacency-map graph is ever
/// materialized.
pub fn read_edge_list_csr<R: BufRead>(
    reader: R,
    options: &EdgeListOptions,
) -> GraphResult<CsrGraph> {
    read_edge_list_csr_named(reader, options, ANONYMOUS_SOURCE)
}

/// [`read_edge_list_csr`], reporting `source_name` in every parse error.
pub fn read_edge_list_csr_named<R: BufRead>(
    reader: R,
    options: &EdgeListOptions,
    source_name: &str,
) -> GraphResult<CsrGraph> {
    let mut builder = CsrBuilder::new(options.direction);
    parse_edge_lines(reader, options, source_name, |source, target, weight| {
        builder.add_labeled_edge(source, target, weight)
    })?;
    builder.finish()
}

/// Parse a weighted edge list string into the compact [`CsrGraph`].
pub fn read_edge_list_csr_str(text: &str, options: &EdgeListOptions) -> GraphResult<CsrGraph> {
    read_edge_list_csr(text.as_bytes(), options)
}

/// Read a weighted edge list file into the compact [`CsrGraph`].
pub fn read_edge_list_csr_file(
    path: impl AsRef<Path>,
    options: &EdgeListOptions,
) -> GraphResult<CsrGraph> {
    let path = path.as_ref();
    let file = std::fs::File::open(path).map_err(|e| GraphError::Io {
        message: format!("{}: {e}", path.display()),
    })?;
    read_edge_list_csr_named(
        std::io::BufReader::new(file),
        options,
        &path.display().to_string(),
    )
}

/// Write a graph as a tab-separated edge list (`source<TAB>target<TAB>weight`).
///
/// Accepts either representation through [`GraphView`]. Nodes without labels
/// are written as their numeric id.
pub fn write_edge_list<G: GraphView, W: Write>(graph: &G, writer: W) -> GraphResult<()> {
    let mut writer = BufWriter::new(writer);
    writeln!(writer, "# source\ttarget\tweight")?;
    for edge in graph.edges() {
        let source = graph
            .label(edge.source)
            .map(str::to_string)
            .unwrap_or_else(|| edge.source.to_string());
        let target = graph
            .label(edge.target)
            .map(str::to_string)
            .unwrap_or_else(|| edge.target.to_string());
        writeln!(writer, "{source}\t{target}\t{}", edge.weight)?;
    }
    writer.flush()?;
    Ok(())
}

/// Write a graph as a tab-separated edge list to a file.
pub fn write_edge_list_file<G: GraphView>(graph: &G, path: impl AsRef<Path>) -> GraphResult<()> {
    let file = std::fs::File::create(path)?;
    write_edge_list(graph, file)
}

/// Serialise a graph to an edge-list string.
pub fn write_edge_list_string<G: GraphView>(graph: &G) -> GraphResult<String> {
    let mut buffer = Vec::new();
    write_edge_list(graph, &mut buffer)?;
    String::from_utf8(buffer).map_err(|e| GraphError::Io {
        message: format!("generated edge list is not valid UTF-8: {e}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrGraph;

    #[test]
    fn reads_whitespace_separated_edges() {
        let text = "A B 2.0\nB C 3.5\n";
        let graph = read_edge_list_str(text, &EdgeListOptions::default()).unwrap();
        assert_eq!(graph.node_count(), 3);
        assert_eq!(graph.edge_count(), 2);
        let a = graph.node_by_label("A").unwrap();
        let b = graph.node_by_label("B").unwrap();
        assert_eq!(graph.edge_weight(a, b), Some(2.0));
    }

    #[test]
    fn missing_weight_defaults_to_one() {
        let graph = read_edge_list_str("A B\n", &EdgeListOptions::default()).unwrap();
        let a = graph.node_by_label("A").unwrap();
        let b = graph.node_by_label("B").unwrap();
        assert_eq!(graph.edge_weight(a, b), Some(1.0));
    }

    #[test]
    fn skips_comments_blank_lines_and_header() {
        let text = "# a comment\n\nsource target weight\nA B 1\nB C 2\n";
        let options = EdgeListOptions {
            has_header: true,
            ..Default::default()
        };
        let graph = read_edge_list_str(text, &options).unwrap();
        assert_eq!(graph.edge_count(), 2);
        assert!(graph.node_by_label("source").is_none());
    }

    #[test]
    fn custom_separator() {
        let text = "A,B,4.5\nB,C,1.0\n";
        let options = EdgeListOptions {
            separator: Some(','),
            ..Default::default()
        };
        let graph = read_edge_list_str(text, &options).unwrap();
        assert_eq!(graph.edge_count(), 2);
    }

    #[test]
    fn undirected_option_merges_orientations() {
        let text = "A B 1.0\nB A 2.0\n";
        let options = EdgeListOptions::with_direction(Direction::Undirected);
        let graph = read_edge_list_str(text, &options).unwrap();
        assert_eq!(graph.edge_count(), 1);
        let a = graph.node_by_label("A").unwrap();
        let b = graph.node_by_label("B").unwrap();
        assert_eq!(graph.edge_weight(a, b), Some(3.0));
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(read_edge_list_str("just_one_field\n", &EdgeListOptions::default()).is_err());
        assert!(read_edge_list_str("A B not_a_number\n", &EdgeListOptions::default()).is_err());
    }

    #[test]
    fn csr_reader_matches_adjacency_reader() {
        // Duplicates, both orientations, comments, header, missing weights.
        let text = "# trade\nsrc dst w\nA B 2.0\nB A 1.5\nB C\nA B 0.5\nC C 3.0\n";
        for direction in [Direction::Directed, Direction::Undirected] {
            let options = EdgeListOptions {
                direction,
                has_header: true,
                ..Default::default()
            };
            let graph = read_edge_list_str(text, &options).unwrap();
            let streamed = read_edge_list_csr_str(text, &options).unwrap();
            assert_eq!(
                streamed,
                CsrGraph::from_graph(&graph).unwrap(),
                "{direction:?}"
            );
        }
    }

    #[test]
    fn csr_reader_reports_identical_errors() {
        for bad in ["just_one_field\n", "A B not_a_number\n", "A B -2.0\n"] {
            let adjacency =
                read_edge_list_named(bad.as_bytes(), &EdgeListOptions::default(), "input.tsv")
                    .unwrap_err();
            let csr =
                read_edge_list_csr_named(bad.as_bytes(), &EdgeListOptions::default(), "input.tsv")
                    .unwrap_err();
            assert_eq!(adjacency, csr, "{bad:?}");
        }
    }

    #[test]
    fn write_then_read_round_trips() {
        let original = WeightedGraph::from_labeled_edges(
            Direction::Directed,
            vec![("A", "B", 1.5), ("B", "C", 2.5), ("C", "A", 3.0)],
        )
        .unwrap();
        let text = write_edge_list_string(&original).unwrap();
        let restored = read_edge_list_str(&text, &EdgeListOptions::default()).unwrap();
        assert_eq!(restored.node_count(), original.node_count());
        assert_eq!(restored.edge_count(), original.edge_count());
        for edge in original.edges() {
            let source_label = original.label(edge.source).unwrap();
            let target_label = original.label(edge.target).unwrap();
            let restored_source = restored.node_by_label(source_label).unwrap();
            let restored_target = restored.node_by_label(target_label).unwrap();
            assert_eq!(
                restored.edge_weight(restored_source, restored_target),
                Some(edge.weight)
            );
        }
    }

    #[test]
    fn csr_graphs_serialize_identically() {
        let graph = WeightedGraph::from_labeled_edges(
            Direction::Undirected,
            vec![("X", "Y", 1.0), ("Y", "Z", 2.0)],
        )
        .unwrap();
        let csr = CsrGraph::from_graph(&graph).unwrap();
        assert_eq!(
            write_edge_list_string(&graph).unwrap(),
            write_edge_list_string(&csr).unwrap()
        );
    }

    #[test]
    fn unlabeled_nodes_are_written_as_ids() {
        let graph = WeightedGraph::from_edges(Direction::Directed, 2, vec![(0, 1, 7.0)]).unwrap();
        let text = write_edge_list_string(&graph).unwrap();
        assert!(text.contains("0\t1\t7"));
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("backboning_graph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("edges.tsv");
        let graph = WeightedGraph::from_labeled_edges(
            Direction::Undirected,
            vec![("X", "Y", 1.0), ("Y", "Z", 2.0)],
        )
        .unwrap();
        write_edge_list_file(&graph, &path).unwrap();
        let options = EdgeListOptions::with_direction(Direction::Undirected);
        let restored = read_edge_list_file(&path, &options).unwrap();
        assert_eq!(restored.edge_count(), 2);
        let compact = read_edge_list_csr_file(&path, &options).unwrap();
        assert_eq!(compact, CsrGraph::from_graph(&restored).unwrap());
        std::fs::remove_file(&path).unwrap();
    }
}
