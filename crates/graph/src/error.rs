//! Error types for the graph substrate.

use std::fmt;

/// Errors produced by graph operations.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// A node index was out of bounds.
    NodeOutOfBounds {
        /// The offending node index.
        node: usize,
        /// The number of nodes in the graph.
        node_count: usize,
    },
    /// A node label was not found in the graph.
    UnknownLabel {
        /// The label that was looked up.
        label: String,
    },
    /// An edge weight was invalid (negative, NaN or infinite).
    InvalidWeight {
        /// The offending weight.
        weight: f64,
    },
    /// A self-loop was supplied where the operation does not allow one.
    SelfLoop {
        /// The node on which the self-loop was attempted.
        node: usize,
    },
    /// An operation required a directed (or undirected) graph but got the other kind.
    WrongDirection {
        /// Description of the requirement that was violated.
        message: String,
    },
    /// A generator or algorithm received inconsistent parameters.
    InvalidParameter {
        /// Name of the offending parameter.
        parameter: &'static str,
        /// Description of the constraint that was violated.
        message: String,
    },
    /// An I/O or parsing problem while reading or writing an edge list.
    Io {
        /// Description of the failure.
        message: String,
    },
    /// The graph exceeds the capacity of the compact `u32`/CSR core (more
    /// nodes, edges or adjacency entries than a `u32` index can address).
    CapacityExceeded {
        /// What overflowed: `"nodes"`, `"edges"` or `"adjacency entries"`.
        what: &'static str,
        /// The requested count.
        requested: u64,
        /// The maximum representable count.
        limit: u64,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfBounds { node, node_count } => {
                write!(
                    f,
                    "node {node} out of bounds for graph with {node_count} nodes"
                )
            }
            GraphError::UnknownLabel { label } => write!(f, "unknown node label `{label}`"),
            GraphError::InvalidWeight { weight } => {
                write!(
                    f,
                    "invalid edge weight {weight}: must be finite and non-negative"
                )
            }
            GraphError::SelfLoop { node } => {
                write!(f, "self-loop on node {node} is not allowed here")
            }
            GraphError::WrongDirection { message } => write!(f, "{message}"),
            GraphError::InvalidParameter { parameter, message } => {
                write!(f, "invalid parameter `{parameter}`: {message}")
            }
            GraphError::Io { message } => write!(f, "edge list I/O error: {message}"),
            GraphError::CapacityExceeded {
                what,
                requested,
                limit,
            } => {
                write!(
                    f,
                    "graph exceeds the compact core's capacity: {requested} {what} \
                     (limit {limit})"
                )
            }
        }
    }
}

impl std::error::Error for GraphError {}

impl From<std::io::Error> for GraphError {
    fn from(err: std::io::Error) -> Self {
        GraphError::Io {
            message: err.to_string(),
        }
    }
}

/// Convenience result alias for graph operations.
pub type GraphResult<T> = Result<T, GraphError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let err = GraphError::NodeOutOfBounds {
            node: 7,
            node_count: 3,
        };
        assert!(err.to_string().contains('7'));
        assert!(err.to_string().contains('3'));

        let err = GraphError::UnknownLabel {
            label: "USA".to_string(),
        };
        assert!(err.to_string().contains("USA"));

        let err = GraphError::InvalidWeight { weight: -1.0 };
        assert!(err.to_string().contains("-1"));
    }

    #[test]
    fn io_error_conversion() {
        let io_err = std::io::Error::new(std::io::ErrorKind::NotFound, "missing file");
        let graph_err: GraphError = io_err.into();
        assert!(matches!(graph_err, GraphError::Io { .. }));
        assert!(graph_err.to_string().contains("missing file"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_error<E: std::error::Error>() {}
        assert_error::<GraphError>();
    }
}
