//! Random and deterministic graph generators.
//!
//! * [`barabasi_albert`] — preferential-attachment networks; the synthetic
//!   experiment of the paper (Figure 4) uses Barabási–Albert topologies with
//!   200 nodes and average degree 3.
//! * [`erdos_renyi`] — G(n, m)-style random graphs; the scalability experiment
//!   (Figure 9) uses Erdős–Rényi graphs with average degree 3 and uniform
//!   random weights.
//! * [`barabasi_albert_csr`] / [`erdos_renyi_csr`] — the same generators
//!   emitting the compact [`crate::CsrGraph`] directly, for the 100k–1M-node
//!   benchmark substrates where the adjacency-map form would dominate memory.
//! * [`stochastic_block_model`] — planted community structure, used to test
//!   that backbones preserve community-recoverable structure (Figure 1's
//!   motivating example).
//! * Small deterministic topologies ([`complete_graph`], [`star_graph`],
//!   [`path_graph`], [`cycle_graph`]) used throughout the test suites.

mod random;

pub use random::{
    barabasi_albert, barabasi_albert_csr, erdos_renyi, erdos_renyi_csr, stochastic_block_model,
};

use crate::error::{GraphError, GraphResult};
use crate::graph::{Direction, WeightedGraph};

/// Complete undirected graph on `n` nodes with all edge weights equal to `weight`.
pub fn complete_graph(n: usize, weight: f64) -> GraphResult<WeightedGraph> {
    let mut graph = WeightedGraph::with_nodes(Direction::Undirected, n);
    for i in 0..n {
        for j in (i + 1)..n {
            graph.add_edge(i, j, weight)?;
        }
    }
    Ok(graph)
}

/// Star graph: node 0 is connected to every other node with weight `weight`.
pub fn star_graph(n: usize, weight: f64) -> GraphResult<WeightedGraph> {
    if n == 0 {
        return Err(GraphError::InvalidParameter {
            parameter: "n",
            message: "star graph needs at least one node".to_string(),
        });
    }
    let mut graph = WeightedGraph::with_nodes(Direction::Undirected, n);
    for leaf in 1..n {
        graph.add_edge(0, leaf, weight)?;
    }
    Ok(graph)
}

/// Path graph `0 - 1 - 2 - ... - (n-1)` with uniform edge weight.
pub fn path_graph(n: usize, weight: f64) -> GraphResult<WeightedGraph> {
    let mut graph = WeightedGraph::with_nodes(Direction::Undirected, n);
    for i in 1..n {
        graph.add_edge(i - 1, i, weight)?;
    }
    Ok(graph)
}

/// Cycle graph on `n ≥ 3` nodes with uniform edge weight.
pub fn cycle_graph(n: usize, weight: f64) -> GraphResult<WeightedGraph> {
    if n < 3 {
        return Err(GraphError::InvalidParameter {
            parameter: "n",
            message: format!("cycle graph needs at least 3 nodes, got {n}"),
        });
    }
    let mut graph = path_graph(n, weight)?;
    graph.add_edge(n - 1, 0, weight)?;
    Ok(graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::components::is_connected;

    #[test]
    fn complete_graph_edge_count() {
        let g = complete_graph(6, 1.0).unwrap();
        assert_eq!(g.node_count(), 6);
        assert_eq!(g.edge_count(), 15);
        assert!(is_connected(&g));
        assert_eq!(g.degree(3), 5);
    }

    #[test]
    fn star_graph_shape() {
        let g = star_graph(5, 2.0).unwrap();
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.degree(0), 4);
        assert_eq!(g.degree(1), 1);
        assert!((g.out_strength(0) - 8.0).abs() < 1e-12);
        assert!(star_graph(0, 1.0).is_err());
    }

    #[test]
    fn path_and_cycle_shapes() {
        let p = path_graph(4, 1.0).unwrap();
        assert_eq!(p.edge_count(), 3);
        assert_eq!(p.degree(0), 1);
        assert_eq!(p.degree(1), 2);

        let c = cycle_graph(4, 1.0).unwrap();
        assert_eq!(c.edge_count(), 4);
        assert_eq!(c.degree(0), 2);
        assert!(cycle_graph(2, 1.0).is_err());
    }

    #[test]
    fn degenerate_sizes() {
        assert_eq!(complete_graph(0, 1.0).unwrap().node_count(), 0);
        assert_eq!(complete_graph(1, 1.0).unwrap().edge_count(), 0);
        assert_eq!(path_graph(1, 1.0).unwrap().edge_count(), 0);
        assert_eq!(star_graph(1, 1.0).unwrap().edge_count(), 0);
    }
}
