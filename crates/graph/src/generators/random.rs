//! Seeded random graph generators.

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::csr::{CsrBuilder, CsrGraph};
use crate::error::{GraphError, GraphResult};
use crate::graph::{Direction, WeightedGraph};

/// Generate a Barabási–Albert preferential-attachment graph.
///
/// Starts from a small seed clique and attaches each new node to
/// `edges_per_node` existing nodes chosen with probability proportional to
/// their current degree. All edges carry weight 1; callers that need weighted
/// edges (such as the paper's synthetic noise experiment) assign weights
/// afterwards.
///
/// The Figure 4 experiment uses `nodes = 200` and `edges_per_node = 3`
/// (yielding average degree ≈ 3 when counting each undirected edge once per
/// endpoint pair, as the paper does informally).
pub fn barabasi_albert(
    nodes: usize,
    edges_per_node: usize,
    seed: u64,
) -> GraphResult<WeightedGraph> {
    if edges_per_node == 0 {
        return Err(GraphError::InvalidParameter {
            parameter: "edges_per_node",
            message: "each new node must attach with at least one edge".to_string(),
        });
    }
    if nodes <= edges_per_node {
        return Err(GraphError::InvalidParameter {
            parameter: "nodes",
            message: format!("need more nodes ({nodes}) than edges per node ({edges_per_node})"),
        });
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut graph = WeightedGraph::with_nodes(Direction::Undirected, nodes);

    // `attachment_pool` contains each node once per unit of degree, so sampling
    // uniformly from it implements preferential attachment.
    let mut attachment_pool: Vec<usize> = Vec::new();

    // Seed: a small clique over the first `edges_per_node + 1` nodes.
    let seed_size = edges_per_node + 1;
    for i in 0..seed_size {
        for j in (i + 1)..seed_size {
            graph.add_edge(i, j, 1.0)?;
            attachment_pool.push(i);
            attachment_pool.push(j);
        }
    }

    for new_node in seed_size..nodes {
        let mut chosen: Vec<usize> = Vec::with_capacity(edges_per_node);
        let mut guard = 0;
        while chosen.len() < edges_per_node && guard < 10_000 {
            guard += 1;
            let candidate = attachment_pool[rng.random_range(0..attachment_pool.len())];
            if candidate != new_node && !chosen.contains(&candidate) {
                chosen.push(candidate);
            }
        }
        for &target in &chosen {
            graph.add_edge(new_node, target, 1.0)?;
            attachment_pool.push(new_node);
            attachment_pool.push(target);
        }
    }
    Ok(graph)
}

/// [`barabasi_albert`], generating straight into the compact [`CsrGraph`].
///
/// Consumes the random stream identically to the adjacency-map version, so
/// for any `(nodes, edges_per_node, seed)` that fits both representations
/// the two produce the same graph (same node ids, edge ids and weights).
/// This is the substrate generator of the large-scale benchmarks, where the
/// adjacency-map representation would dominate the memory high-water mark.
pub fn barabasi_albert_csr(
    nodes: usize,
    edges_per_node: usize,
    seed: u64,
) -> GraphResult<CsrGraph> {
    if edges_per_node == 0 {
        return Err(GraphError::InvalidParameter {
            parameter: "edges_per_node",
            message: "each new node must attach with at least one edge".to_string(),
        });
    }
    if nodes <= edges_per_node {
        return Err(GraphError::InvalidParameter {
            parameter: "nodes",
            message: format!("need more nodes ({nodes}) than edges per node ({edges_per_node})"),
        });
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = CsrBuilder::with_nodes(Direction::Undirected, nodes)?;

    let mut attachment_pool: Vec<usize> = Vec::new();
    let seed_size = edges_per_node + 1;
    for i in 0..seed_size {
        for j in (i + 1)..seed_size {
            builder.add_edge(i, j, 1.0)?;
            attachment_pool.push(i);
            attachment_pool.push(j);
        }
    }

    for new_node in seed_size..nodes {
        let mut chosen: Vec<usize> = Vec::with_capacity(edges_per_node);
        let mut guard = 0;
        while chosen.len() < edges_per_node && guard < 10_000 {
            guard += 1;
            let candidate = attachment_pool[rng.random_range(0..attachment_pool.len())];
            if candidate != new_node && !chosen.contains(&candidate) {
                chosen.push(candidate);
            }
        }
        for &target in &chosen {
            builder.add_edge(new_node, target, 1.0)?;
            attachment_pool.push(new_node);
            attachment_pool.push(target);
        }
    }
    builder.finish()
}

/// Generate an Erdős–Rényi style random graph with a target number of edges.
///
/// `expected_edges` distinct node pairs are sampled uniformly at random
/// (without replacement) and connected with a weight drawn uniformly from
/// `(0, max_weight]`. This matches the scalability setup of the paper's
/// Figure 9: average degree 3 with uniform random weights.
pub fn erdos_renyi(
    nodes: usize,
    expected_edges: usize,
    max_weight: f64,
    direction: Direction,
    seed: u64,
) -> GraphResult<WeightedGraph> {
    if nodes < 2 {
        return Err(GraphError::InvalidParameter {
            parameter: "nodes",
            message: format!("need at least 2 nodes, got {nodes}"),
        });
    }
    if max_weight <= 0.0 {
        return Err(GraphError::InvalidParameter {
            parameter: "max_weight",
            message: format!("must be positive, got {max_weight}"),
        });
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut graph = WeightedGraph::with_nodes(direction, nodes);
    let mut created = 0usize;
    let mut attempts = 0usize;
    let attempt_limit = expected_edges.saturating_mul(20).max(1000);
    while created < expected_edges && attempts < attempt_limit {
        attempts += 1;
        let source = rng.random_range(0..nodes);
        let target = rng.random_range(0..nodes);
        if source == target || graph.has_edge(source, target) {
            continue;
        }
        let weight = rng.random_range(0.0..max_weight) + f64::MIN_POSITIVE;
        graph.add_edge(source, target, weight)?;
        created += 1;
    }
    Ok(graph)
}

/// [`erdos_renyi`], generating straight into the compact [`CsrGraph`].
///
/// Sampled-pair rejection (self-loops, already-present pairs) consumes the
/// random stream identically to the adjacency-map version — duplicate
/// detection uses a packed-pair hash set instead of graph lookups — so both
/// versions produce the same graph for the same parameters. This is the
/// 1M-node / 10M-edge substrate generator of the scalability benchmarks.
pub fn erdos_renyi_csr(
    nodes: usize,
    expected_edges: usize,
    max_weight: f64,
    direction: Direction,
    seed: u64,
) -> GraphResult<CsrGraph> {
    if nodes < 2 {
        return Err(GraphError::InvalidParameter {
            parameter: "nodes",
            message: format!("need at least 2 nodes, got {nodes}"),
        });
    }
    if max_weight <= 0.0 {
        return Err(GraphError::InvalidParameter {
            parameter: "max_weight",
            message: format!("must be positive, got {max_weight}"),
        });
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = CsrBuilder::with_nodes(direction, nodes)?;
    let mut present: HashSet<u64> = HashSet::with_capacity(expected_edges * 2);
    let mut created = 0usize;
    let mut attempts = 0usize;
    let attempt_limit = expected_edges.saturating_mul(20).max(1000);
    while created < expected_edges && attempts < attempt_limit {
        attempts += 1;
        let source = rng.random_range(0..nodes);
        let target = rng.random_range(0..nodes);
        if source == target {
            continue;
        }
        let (a, b) = if direction == Direction::Undirected && source > target {
            (target, source)
        } else {
            (source, target)
        };
        let key = ((a as u64) << 32) | b as u64;
        if !present.insert(key) {
            continue;
        }
        let weight = rng.random_range(0.0..max_weight) + f64::MIN_POSITIVE;
        builder.add_edge(source, target, weight)?;
        created += 1;
    }
    builder.finish()
}

/// Generate a weighted stochastic block model.
///
/// Nodes are split into `blocks.len()` groups of the given sizes. A pair of
/// nodes in the same group is connected with probability `p_within`, a pair in
/// different groups with probability `p_between`. Within-group edges receive
/// weights around `weight_within`, between-group edges around `weight_between`
/// (both multiplied by a uniform factor in `[0.5, 1.5)` for variety).
///
/// Returns the graph together with the ground-truth block label of every node,
/// which the community-recovery tests compare against.
pub fn stochastic_block_model(
    blocks: &[usize],
    p_within: f64,
    p_between: f64,
    weight_within: f64,
    weight_between: f64,
    seed: u64,
) -> GraphResult<(WeightedGraph, Vec<usize>)> {
    if blocks.is_empty() {
        return Err(GraphError::InvalidParameter {
            parameter: "blocks",
            message: "need at least one block".to_string(),
        });
    }
    for &probability in &[p_within, p_between] {
        if !(0.0..=1.0).contains(&probability) {
            return Err(GraphError::InvalidParameter {
                parameter: "p_within/p_between",
                message: format!("probabilities must lie in [0, 1], got {probability}"),
            });
        }
    }
    let node_count: usize = blocks.iter().sum();
    let mut labels = Vec::with_capacity(node_count);
    for (block_index, &size) in blocks.iter().enumerate() {
        labels.extend(std::iter::repeat_n(block_index, size));
    }

    let mut rng = StdRng::seed_from_u64(seed);
    let mut graph = WeightedGraph::with_nodes(Direction::Undirected, node_count);
    for i in 0..node_count {
        for j in (i + 1)..node_count {
            let same_block = labels[i] == labels[j];
            let probability = if same_block { p_within } else { p_between };
            if rng.random::<f64>() < probability {
                let base = if same_block {
                    weight_within
                } else {
                    weight_between
                };
                let weight = base * rng.random_range(0.5..1.5);
                graph.add_edge(i, j, weight)?;
            }
        }
    }
    Ok((graph, labels))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::components::is_connected;
    use crate::algorithms::degree::{average_degree, degree_sequence};

    #[test]
    fn barabasi_albert_basic_shape() {
        let g = barabasi_albert(200, 3, 42).unwrap();
        assert_eq!(g.node_count(), 200);
        assert!(is_connected(&g));
        // m = 3 attachment yields roughly 3 edges per non-seed node.
        let expected_edges = 3 * (200 - 4) + 6;
        assert_eq!(g.edge_count(), expected_edges);
        assert!(average_degree(&g) > 5.0); // ≈ 2m for undirected counting
    }

    #[test]
    fn barabasi_albert_has_hubs() {
        let g = barabasi_albert(300, 2, 7).unwrap();
        let degrees = degree_sequence(&g);
        let max_degree = degrees.iter().copied().max().unwrap();
        let median_degree = {
            let mut sorted = degrees.clone();
            sorted.sort_unstable();
            sorted[sorted.len() / 2]
        };
        // Preferential attachment produces hubs far above the median degree.
        assert!(max_degree >= 4 * median_degree);
    }

    #[test]
    fn barabasi_albert_is_deterministic_per_seed() {
        let a = barabasi_albert(100, 3, 5).unwrap();
        let b = barabasi_albert(100, 3, 5).unwrap();
        let edges_a: Vec<_> = a.edges().map(|e| (e.source, e.target)).collect();
        let edges_b: Vec<_> = b.edges().map(|e| (e.source, e.target)).collect();
        assert_eq!(edges_a, edges_b);
        let c = barabasi_albert(100, 3, 6).unwrap();
        let edges_c: Vec<_> = c.edges().map(|e| (e.source, e.target)).collect();
        assert_ne!(edges_a, edges_c);
    }

    #[test]
    fn barabasi_albert_rejects_bad_parameters() {
        assert!(barabasi_albert(3, 3, 0).is_err());
        assert!(barabasi_albert(10, 0, 0).is_err());
    }

    #[test]
    fn erdos_renyi_edge_count_and_weights() {
        let g = erdos_renyi(1000, 1500, 10.0, Direction::Undirected, 11).unwrap();
        assert_eq!(g.node_count(), 1000);
        assert_eq!(g.edge_count(), 1500);
        for edge in g.edges() {
            assert!(edge.weight > 0.0);
            assert!(edge.weight <= 10.0);
        }
    }

    #[test]
    fn erdos_renyi_directed_variant() {
        let g = erdos_renyi(50, 200, 1.0, Direction::Directed, 3).unwrap();
        assert!(g.is_directed());
        assert_eq!(g.edge_count(), 200);
    }

    #[test]
    fn erdos_renyi_rejects_bad_parameters() {
        assert!(erdos_renyi(1, 10, 1.0, Direction::Undirected, 0).is_err());
        assert!(erdos_renyi(10, 10, 0.0, Direction::Undirected, 0).is_err());
    }

    #[test]
    fn csr_generators_match_adjacency_generators() {
        let ba = barabasi_albert(300, 3, 42).unwrap();
        let ba_csr = barabasi_albert_csr(300, 3, 42).unwrap();
        assert_eq!(ba_csr, CsrGraph::from_graph(&ba).unwrap());

        for direction in [Direction::Undirected, Direction::Directed] {
            let er = erdos_renyi(200, 400, 10.0, direction, 7).unwrap();
            let er_csr = erdos_renyi_csr(200, 400, 10.0, direction, 7).unwrap();
            assert_eq!(er_csr, CsrGraph::from_graph(&er).unwrap(), "{direction:?}");
        }
    }

    #[test]
    fn csr_generators_reject_bad_parameters() {
        assert!(barabasi_albert_csr(3, 3, 0).is_err());
        assert!(erdos_renyi_csr(10, 10, 0.0, Direction::Undirected, 0).is_err());
    }

    #[test]
    fn sbm_produces_planted_structure() {
        let (g, labels) = stochastic_block_model(&[30, 30, 30], 0.5, 0.02, 10.0, 1.0, 19).unwrap();
        assert_eq!(g.node_count(), 90);
        assert_eq!(labels.len(), 90);
        assert_eq!(labels[0], 0);
        assert_eq!(labels[89], 2);

        // Count within- vs between-block edges: within must dominate heavily.
        let mut within = 0usize;
        let mut between = 0usize;
        for edge in g.edges() {
            if labels[edge.source] == labels[edge.target] {
                within += 1;
            } else {
                between += 1;
            }
        }
        assert!(within > between * 2);
    }

    #[test]
    fn sbm_rejects_bad_parameters() {
        assert!(stochastic_block_model(&[], 0.5, 0.1, 1.0, 1.0, 0).is_err());
        assert!(stochastic_block_model(&[10], 1.5, 0.1, 1.0, 1.0, 0).is_err());
    }
}
