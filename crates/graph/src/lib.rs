//! # backboning-graph
//!
//! Weighted-graph substrate for the `backboning-rs` workspace, a Rust
//! reproduction of *Network Backboning with Noisy Data* (Coscia & Neffke,
//! ICDE 2017).
//!
//! The paper's data structure is a weighted graph `G = (V, E, N)` with
//! non-negative real edge weights, either directed or undirected. This crate
//! provides:
//!
//! * [`CsrGraph`] — the canonical compact representation: `u32` node ids,
//!   flat prefix-offset CSR adjacency and dense edge arrays, built by the
//!   streaming [`csr::CsrBuilder`]. This is what the pipeline, server and
//!   scalability experiments (Figure 9) operate on.
//! * [`WeightedGraph`] — the mutable adjacency-list builder/compat shim with
//!   node labels and O(1) edge lookup, used for small graphs, fixtures and
//!   backbone outputs.
//! * [`GraphView`] — the read-only trait both implement, over which the
//!   scoring pipeline is generic (bit-identical results on either
//!   representation).
//! * Graph [`generators`] — Barabási–Albert, Erdős–Rényi, stochastic block
//!   model and small deterministic topologies, used by the synthetic
//!   experiments (Figure 4) and the test suites.
//! * Graph [`algorithms`] — union–find, connected components, BFS/DFS,
//!   Dijkstra shortest-path trees (the building block of the High Salience
//!   Skeleton), and Kruskal maximum spanning trees.
//! * Edge-list [`io`] for plain-text interchange of weighted networks.
//! * A dense [`matrix`] adjacency view used by the
//!   Doubly-Stochastic backbone's Sinkhorn normalisation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithms;
pub mod builder;
pub mod csr;
pub mod delta;
pub mod error;
pub mod generators;
pub mod graph;
pub mod io;
pub mod matrix;
pub mod view;

pub use builder::GraphBuilder;
pub use csr::{CsrBuilder, CsrGraph};
pub use delta::{DeltaBatch, DeltaGraph, DeltaOp, DeltaOpKind, PatchEffect};
pub use error::{GraphError, GraphResult};
pub use graph::{Direction, Edge, EdgeRef, InNeighbors, NodeId, WeightedGraph};
pub use view::GraphView;
