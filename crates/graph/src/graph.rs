//! The central weighted-graph representation.

use std::collections::HashMap;

use crate::error::{GraphError, GraphResult};

/// Node identifier: a dense index in `0..node_count()`.
pub type NodeId = usize;

/// Whether a graph's edges are directed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Edges `(i, j)` and `(j, i)` are distinct.
    Directed,
    /// Edges `(i, j)` and `(j, i)` are the same edge.
    Undirected,
}

/// A stored edge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// Source endpoint (for undirected graphs: the smaller endpoint).
    pub source: NodeId,
    /// Target endpoint (for undirected graphs: the larger endpoint).
    pub target: NodeId,
    /// Non-negative, finite edge weight.
    pub weight: f64,
}

/// A lightweight copyable reference to an edge, including its dense index.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeRef {
    /// Dense index of the edge in insertion order.
    pub index: usize,
    /// Source endpoint.
    pub source: NodeId,
    /// Target endpoint.
    pub target: NodeId,
    /// Edge weight.
    pub weight: f64,
}

/// Concrete iterator over a node's incoming `(neighbor, weight)` pairs.
///
/// Returned by [`WeightedGraph::in_neighbors`]. Both direction variants share
/// one representation: an adjacency slice (the in-list for directed graphs,
/// the incident list for undirected ones) resolved against the edge store.
#[derive(Debug, Clone)]
pub struct InNeighbors<'a> {
    edges: &'a [Edge],
    adjacency: std::slice::Iter<'a, (NodeId, usize)>,
}

impl Iterator for InNeighbors<'_> {
    type Item = (NodeId, f64);

    fn next(&mut self) -> Option<Self::Item> {
        self.adjacency
            .next()
            .map(|&(neighbor, index)| (neighbor, self.edges[index].weight))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.adjacency.size_hint()
    }
}

impl ExactSizeIterator for InNeighbors<'_> {}

/// A weighted graph `G = (V, E, N)` with non-negative real edge weights,
/// stored as adjacency lists with an auxiliary hash index for O(1) edge
/// lookup.
///
/// Nodes are dense indices; an optional string label can be attached to each
/// node (country codes, occupation titles, ...). For undirected graphs each
/// edge is stored once with its endpoints in canonical (smaller, larger)
/// order, and adjacency lists are symmetric.
#[derive(Debug, Clone)]
pub struct WeightedGraph {
    direction: Direction,
    labels: Vec<Option<String>>,
    label_index: HashMap<String, NodeId>,
    edges: Vec<Edge>,
    /// For each node, the list of (neighbor, edge index) pairs for outgoing
    /// edges (or all incident edges in the undirected case).
    out_adjacency: Vec<Vec<(NodeId, usize)>>,
    /// For each node, the list of (neighbor, edge index) pairs for incoming
    /// edges. Unused (empty lists) in the undirected case.
    in_adjacency: Vec<Vec<(NodeId, usize)>>,
    edge_lookup: HashMap<(NodeId, NodeId), usize>,
}

impl WeightedGraph {
    /// Create an empty graph with the given edge direction semantics.
    pub fn new(direction: Direction) -> Self {
        WeightedGraph {
            direction,
            labels: Vec::new(),
            label_index: HashMap::new(),
            edges: Vec::new(),
            out_adjacency: Vec::new(),
            in_adjacency: Vec::new(),
            edge_lookup: HashMap::new(),
        }
    }

    /// Create an empty directed graph.
    pub fn directed() -> Self {
        Self::new(Direction::Directed)
    }

    /// Create an empty undirected graph.
    pub fn undirected() -> Self {
        Self::new(Direction::Undirected)
    }

    /// Create a graph with `n` unlabeled nodes and no edges.
    pub fn with_nodes(direction: Direction, n: usize) -> Self {
        let mut graph = Self::new(direction);
        for _ in 0..n {
            graph.add_node();
        }
        graph
    }

    /// The graph's direction semantics.
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// Whether the graph is directed.
    pub fn is_directed(&self) -> bool {
        self.direction == Direction::Directed
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of stored edges (each undirected edge counts once).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        0..self.node_count()
    }

    /// Add an unlabeled node and return its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = self.labels.len();
        self.labels.push(None);
        self.out_adjacency.push(Vec::new());
        self.in_adjacency.push(Vec::new());
        id
    }

    /// Add a labeled node and return its id.
    ///
    /// Returns an error if the label already exists.
    pub fn add_labeled_node(&mut self, label: impl Into<String>) -> GraphResult<NodeId> {
        let label = label.into();
        if self.label_index.contains_key(&label) {
            return Err(GraphError::InvalidParameter {
                parameter: "label",
                message: format!("label `{label}` already exists"),
            });
        }
        let id = self.add_node();
        self.labels[id] = Some(label.clone());
        self.label_index.insert(label, id);
        Ok(id)
    }

    /// Return the node with the given label, creating it if necessary.
    pub fn ensure_node(&mut self, label: &str) -> NodeId {
        if let Some(&id) = self.label_index.get(label) {
            return id;
        }
        let id = self.add_node();
        self.labels[id] = Some(label.to_string());
        self.label_index.insert(label.to_string(), id);
        id
    }

    /// The label of a node, if it has one.
    pub fn label(&self, node: NodeId) -> Option<&str> {
        self.labels.get(node).and_then(|l| l.as_deref())
    }

    /// Look up a node by label.
    pub fn node_by_label(&self, label: &str) -> Option<NodeId> {
        self.label_index.get(label).copied()
    }

    fn check_node(&self, node: NodeId) -> GraphResult<()> {
        if node >= self.node_count() {
            Err(GraphError::NodeOutOfBounds {
                node,
                node_count: self.node_count(),
            })
        } else {
            Ok(())
        }
    }

    fn check_weight(weight: f64) -> GraphResult<()> {
        if !weight.is_finite() || weight < 0.0 {
            Err(GraphError::InvalidWeight { weight })
        } else {
            Ok(())
        }
    }

    fn canonical_key(&self, source: NodeId, target: NodeId) -> (NodeId, NodeId) {
        match self.direction {
            Direction::Directed => (source, target),
            Direction::Undirected => {
                if source <= target {
                    (source, target)
                } else {
                    (target, source)
                }
            }
        }
    }

    /// Add weight to the edge `(source, target)`, creating the edge if it does
    /// not exist yet. Returns the edge's dense index.
    ///
    /// Accumulation (rather than replacement) matches the count-data semantics
    /// of the paper: edge weights are sums of unitary interactions.
    pub fn add_edge(&mut self, source: NodeId, target: NodeId, weight: f64) -> GraphResult<usize> {
        self.check_node(source)?;
        self.check_node(target)?;
        Self::check_weight(weight)?;
        let key = self.canonical_key(source, target);
        if let Some(&index) = self.edge_lookup.get(&key) {
            self.edges[index].weight += weight;
            return Ok(index);
        }
        self.insert_new_edge(key, weight)
    }

    /// Set the weight of the edge `(source, target)`, creating the edge if it
    /// does not exist yet. Returns the edge's dense index.
    pub fn set_edge_weight(
        &mut self,
        source: NodeId,
        target: NodeId,
        weight: f64,
    ) -> GraphResult<usize> {
        self.check_node(source)?;
        self.check_node(target)?;
        Self::check_weight(weight)?;
        let key = self.canonical_key(source, target);
        if let Some(&index) = self.edge_lookup.get(&key) {
            self.edges[index].weight = weight;
            return Ok(index);
        }
        self.insert_new_edge(key, weight)
    }

    fn insert_new_edge(&mut self, key: (NodeId, NodeId), weight: f64) -> GraphResult<usize> {
        let (source, target) = key;
        let index = self.edges.len();
        self.edges.push(Edge {
            source,
            target,
            weight,
        });
        self.edge_lookup.insert(key, index);
        match self.direction {
            Direction::Directed => {
                self.out_adjacency[source].push((target, index));
                self.in_adjacency[target].push((source, index));
            }
            Direction::Undirected => {
                self.out_adjacency[source].push((target, index));
                if source != target {
                    self.out_adjacency[target].push((source, index));
                }
            }
        }
        Ok(index)
    }

    /// The weight of the edge `(source, target)`, if present.
    pub fn edge_weight(&self, source: NodeId, target: NodeId) -> Option<f64> {
        if source >= self.node_count() || target >= self.node_count() {
            return None;
        }
        let key = self.canonical_key(source, target);
        self.edge_lookup
            .get(&key)
            .map(|&index| self.edges[index].weight)
    }

    /// Whether the edge `(source, target)` exists.
    pub fn has_edge(&self, source: NodeId, target: NodeId) -> bool {
        self.edge_weight(source, target).is_some()
    }

    /// The dense index of the edge `(source, target)`, if present.
    pub fn edge_index(&self, source: NodeId, target: NodeId) -> Option<usize> {
        if source >= self.node_count() || target >= self.node_count() {
            return None;
        }
        let key = self.canonical_key(source, target);
        self.edge_lookup.get(&key).copied()
    }

    /// The stored edge at a dense index.
    pub fn edge(&self, index: usize) -> Option<EdgeRef> {
        self.edges.get(index).map(|e| EdgeRef {
            index,
            source: e.source,
            target: e.target,
            weight: e.weight,
        })
    }

    /// Iterator over all stored edges in insertion order.
    pub fn edges(&self) -> impl Iterator<Item = EdgeRef> + '_ {
        self.edges.iter().enumerate().map(|(index, e)| EdgeRef {
            index,
            source: e.source,
            target: e.target,
            weight: e.weight,
        })
    }

    /// Outgoing neighbors of a node as `(neighbor, weight)` pairs.
    ///
    /// For undirected graphs this is simply the set of incident edges.
    pub fn out_neighbors(&self, node: NodeId) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        self.out_adjacency
            .get(node)
            .into_iter()
            .flatten()
            .map(move |&(neighbor, index)| (neighbor, self.edges[index].weight))
    }

    /// Incoming neighbors of a node as `(neighbor, weight)` pairs.
    ///
    /// For undirected graphs this is identical to [`Self::out_neighbors`].
    /// Returns a concrete iterator (not a boxed `dyn Iterator`), so per-node
    /// strength loops compile down to plain slice walks.
    pub fn in_neighbors(&self, node: NodeId) -> InNeighbors<'_> {
        let adjacency = match self.direction {
            Direction::Directed => self.in_adjacency.get(node),
            Direction::Undirected => self.out_adjacency.get(node),
        };
        InNeighbors {
            edges: &self.edges,
            adjacency: adjacency.map_or([].iter(), |list| list.iter()),
        }
    }

    /// Incident edge indices of a node (outgoing edges for directed graphs).
    pub fn out_edge_indices(&self, node: NodeId) -> impl Iterator<Item = usize> + '_ {
        self.out_adjacency
            .get(node)
            .into_iter()
            .flatten()
            .map(|&(_, index)| index)
    }

    /// Out-degree of a node (number of incident edges for undirected graphs).
    pub fn out_degree(&self, node: NodeId) -> usize {
        self.out_adjacency.get(node).map_or(0, |adj| adj.len())
    }

    /// In-degree of a node (same as [`Self::out_degree`] for undirected graphs).
    pub fn in_degree(&self, node: NodeId) -> usize {
        match self.direction {
            Direction::Directed => self.in_adjacency.get(node).map_or(0, |adj| adj.len()),
            Direction::Undirected => self.out_degree(node),
        }
    }

    /// Total degree: out-degree plus in-degree for directed graphs, number of
    /// incident edges for undirected graphs.
    pub fn degree(&self, node: NodeId) -> usize {
        match self.direction {
            Direction::Directed => self.out_degree(node) + self.in_degree(node),
            Direction::Undirected => self.out_degree(node),
        }
    }

    /// Total outgoing weight of a node: `N_i. = Σ_j N_ij`.
    pub fn out_strength(&self, node: NodeId) -> f64 {
        self.out_neighbors(node).map(|(_, w)| w).sum()
    }

    /// Total incoming weight of a node: `N_.j = Σ_i N_ij`.
    pub fn in_strength(&self, node: NodeId) -> f64 {
        self.in_neighbors(node).map(|(_, w)| w).sum()
    }

    /// Total weight in the network, `N_..`.
    ///
    /// For directed graphs this is the sum of all edge weights. For undirected
    /// graphs each edge contributes once (the backboning crate symmetrises the
    /// table itself when it needs both directions).
    pub fn total_weight(&self) -> f64 {
        self.edges.iter().map(|e| e.weight).sum()
    }

    /// Nodes with no incident edges at all.
    pub fn isolates(&self) -> Vec<NodeId> {
        self.nodes().filter(|&n| self.degree(n) == 0).collect()
    }

    /// Number of nodes that have at least one incident edge.
    pub fn non_isolated_node_count(&self) -> usize {
        self.node_count() - self.isolates().len()
    }

    /// Build a new graph with the same node set (and labels) containing only
    /// the edges whose dense indices are listed in `edge_indices`.
    pub fn subgraph_with_edges(&self, edge_indices: &[usize]) -> GraphResult<WeightedGraph> {
        let mut subgraph = WeightedGraph::new(self.direction);
        for node in self.nodes() {
            match self.label(node) {
                Some(label) => {
                    subgraph.add_labeled_node(label.to_string())?;
                }
                None => {
                    subgraph.add_node();
                }
            }
        }
        for &index in edge_indices {
            let edge = self.edges.get(index).ok_or(GraphError::InvalidParameter {
                parameter: "edge_indices",
                message: format!("edge index {index} out of bounds"),
            })?;
            subgraph.set_edge_weight(edge.source, edge.target, edge.weight)?;
        }
        Ok(subgraph)
    }

    /// Build a new graph with the same node set keeping only edges for which
    /// the predicate returns `true`.
    pub fn filter_edges<F>(&self, mut keep: F) -> GraphResult<WeightedGraph>
    where
        F: FnMut(EdgeRef) -> bool,
    {
        let kept: Vec<usize> = self
            .edges()
            .filter(|&edge| keep(edge))
            .map(|edge| edge.index)
            .collect();
        self.subgraph_with_edges(&kept)
    }

    /// Convenience constructor: build a graph from `(source_label, target_label, weight)`
    /// triples, creating labeled nodes on the fly and accumulating duplicate edges.
    pub fn from_labeled_edges<S: AsRef<str>>(
        direction: Direction,
        triples: impl IntoIterator<Item = (S, S, f64)>,
    ) -> GraphResult<WeightedGraph> {
        let mut graph = WeightedGraph::new(direction);
        for (source, target, weight) in triples {
            let source = graph.ensure_node(source.as_ref());
            let target = graph.ensure_node(target.as_ref());
            graph.add_edge(source, target, weight)?;
        }
        Ok(graph)
    }

    /// Convenience constructor: build a graph on `node_count` unlabeled nodes from
    /// `(source, target, weight)` triples, accumulating duplicate edges.
    pub fn from_edges(
        direction: Direction,
        node_count: usize,
        triples: impl IntoIterator<Item = (NodeId, NodeId, f64)>,
    ) -> GraphResult<WeightedGraph> {
        let mut graph = WeightedGraph::with_nodes(direction, node_count);
        for (source, target, weight) in triples {
            graph.add_edge(source, target, weight)?;
        }
        Ok(graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = WeightedGraph::directed();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert!(g.is_directed());
        assert_eq!(g.isolates(), Vec::<NodeId>::new());
        assert_eq!(g.total_weight(), 0.0);
    }

    #[test]
    fn add_nodes_and_labels() {
        let mut g = WeightedGraph::undirected();
        let a = g.add_labeled_node("USA").unwrap();
        let b = g.add_labeled_node("DEU").unwrap();
        let c = g.add_node();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.label(a), Some("USA"));
        assert_eq!(g.label(b), Some("DEU"));
        assert_eq!(g.label(c), None);
        assert_eq!(g.node_by_label("USA"), Some(a));
        assert_eq!(g.node_by_label("FRA"), None);
        assert!(g.add_labeled_node("USA").is_err());
    }

    #[test]
    fn ensure_node_is_idempotent() {
        let mut g = WeightedGraph::directed();
        let a = g.ensure_node("A");
        let again = g.ensure_node("A");
        assert_eq!(a, again);
        assert_eq!(g.node_count(), 1);
    }

    #[test]
    fn directed_edge_bookkeeping() {
        let mut g = WeightedGraph::with_nodes(Direction::Directed, 3);
        g.add_edge(0, 1, 2.0).unwrap();
        g.add_edge(1, 2, 3.0).unwrap();
        g.add_edge(0, 2, 1.0).unwrap();

        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.edge_weight(0, 1), Some(2.0));
        assert_eq!(g.edge_weight(1, 0), None); // direction matters
        assert!(g.has_edge(0, 2));
        assert!(!g.has_edge(2, 0));

        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(0), 0);
        assert_eq!(g.in_degree(2), 2);
        assert_eq!(g.degree(2), 2);

        assert!((g.out_strength(0) - 3.0).abs() < 1e-12);
        assert!((g.in_strength(2) - 4.0).abs() < 1e-12);
        assert!((g.total_weight() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn undirected_edge_bookkeeping() {
        let mut g = WeightedGraph::with_nodes(Direction::Undirected, 3);
        g.add_edge(0, 1, 2.0).unwrap();
        g.add_edge(2, 1, 3.0).unwrap();

        assert_eq!(g.edge_count(), 2);
        // Both orientations resolve to the same edge.
        assert_eq!(g.edge_weight(0, 1), Some(2.0));
        assert_eq!(g.edge_weight(1, 0), Some(2.0));
        assert_eq!(g.edge_weight(1, 2), Some(3.0));

        assert_eq!(g.degree(1), 2);
        assert_eq!(g.in_degree(1), 2);
        assert!((g.out_strength(1) - 5.0).abs() < 1e-12);
        assert!((g.in_strength(1) - 5.0).abs() < 1e-12);
        assert!((g.total_weight() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn add_edge_accumulates_and_set_replaces() {
        let mut g = WeightedGraph::with_nodes(Direction::Directed, 2);
        g.add_edge(0, 1, 1.0).unwrap();
        g.add_edge(0, 1, 2.5).unwrap();
        assert_eq!(g.edge_weight(0, 1), Some(3.5));
        assert_eq!(g.edge_count(), 1);

        g.set_edge_weight(0, 1, 10.0).unwrap();
        assert_eq!(g.edge_weight(0, 1), Some(10.0));
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn undirected_accumulation_merges_orientations() {
        let mut g = WeightedGraph::with_nodes(Direction::Undirected, 2);
        g.add_edge(0, 1, 1.0).unwrap();
        g.add_edge(1, 0, 2.0).unwrap();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.edge_weight(0, 1), Some(3.0));
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let mut g = WeightedGraph::with_nodes(Direction::Directed, 2);
        assert!(g.add_edge(0, 5, 1.0).is_err());
        assert!(g.add_edge(5, 0, 1.0).is_err());
        assert!(g.add_edge(0, 1, -1.0).is_err());
        assert!(g.add_edge(0, 1, f64::NAN).is_err());
        assert!(g.add_edge(0, 1, f64::INFINITY).is_err());
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn self_loops_are_allowed_and_counted_once() {
        let mut g = WeightedGraph::with_nodes(Direction::Undirected, 2);
        g.add_edge(0, 0, 5.0).unwrap();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.edge_weight(0, 0), Some(5.0));
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    fn neighbors_iteration() {
        let mut g = WeightedGraph::with_nodes(Direction::Directed, 4);
        g.add_edge(0, 1, 1.0).unwrap();
        g.add_edge(0, 2, 2.0).unwrap();
        g.add_edge(3, 0, 4.0).unwrap();

        let out: Vec<(NodeId, f64)> = g.out_neighbors(0).collect();
        assert_eq!(out.len(), 2);
        assert!(out.contains(&(1, 1.0)));
        assert!(out.contains(&(2, 2.0)));

        let incoming: Vec<(NodeId, f64)> = g.in_neighbors(0).collect();
        assert_eq!(incoming, vec![(3, 4.0)]);
    }

    #[test]
    fn isolates_and_coverage_counts() {
        let mut g = WeightedGraph::with_nodes(Direction::Undirected, 5);
        g.add_edge(0, 1, 1.0).unwrap();
        g.add_edge(1, 2, 1.0).unwrap();
        assert_eq!(g.isolates(), vec![3, 4]);
        assert_eq!(g.non_isolated_node_count(), 3);
    }

    #[test]
    fn subgraph_preserves_nodes_and_selected_edges() {
        let mut g = WeightedGraph::with_nodes(Direction::Directed, 4);
        let e0 = g.add_edge(0, 1, 1.0).unwrap();
        let _e1 = g.add_edge(1, 2, 2.0).unwrap();
        let e2 = g.add_edge(2, 3, 3.0).unwrap();

        let sub = g.subgraph_with_edges(&[e0, e2]).unwrap();
        assert_eq!(sub.node_count(), 4);
        assert_eq!(sub.edge_count(), 2);
        assert!(sub.has_edge(0, 1));
        assert!(!sub.has_edge(1, 2));
        assert!(sub.has_edge(2, 3));

        assert!(g.subgraph_with_edges(&[99]).is_err());
    }

    #[test]
    fn subgraph_preserves_labels() {
        let mut g = WeightedGraph::undirected();
        let a = g.add_labeled_node("A").unwrap();
        let b = g.add_labeled_node("B").unwrap();
        g.add_edge(a, b, 1.0).unwrap();
        let sub = g.subgraph_with_edges(&[0]).unwrap();
        assert_eq!(sub.label(a), Some("A"));
        assert_eq!(sub.node_by_label("B"), Some(b));
    }

    #[test]
    fn filter_edges_by_weight() {
        let mut g = WeightedGraph::with_nodes(Direction::Directed, 3);
        g.add_edge(0, 1, 1.0).unwrap();
        g.add_edge(1, 2, 5.0).unwrap();
        let filtered = g.filter_edges(|e| e.weight >= 2.0).unwrap();
        assert_eq!(filtered.edge_count(), 1);
        assert!(filtered.has_edge(1, 2));
    }

    #[test]
    fn from_labeled_edges_round_trip() {
        let g = WeightedGraph::from_labeled_edges(
            Direction::Directed,
            vec![("A", "B", 1.0), ("B", "C", 2.0), ("A", "B", 0.5)],
        )
        .unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        let a = g.node_by_label("A").unwrap();
        let b = g.node_by_label("B").unwrap();
        assert_eq!(g.edge_weight(a, b), Some(1.5));
    }

    #[test]
    fn from_edges_round_trip() {
        let g = WeightedGraph::from_edges(Direction::Undirected, 3, vec![(0, 1, 1.0), (1, 2, 2.0)])
            .unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn edges_iterator_exposes_indices() {
        let mut g = WeightedGraph::with_nodes(Direction::Directed, 3);
        g.add_edge(0, 1, 1.0).unwrap();
        g.add_edge(1, 2, 2.0).unwrap();
        let collected: Vec<EdgeRef> = g.edges().collect();
        assert_eq!(collected.len(), 2);
        assert_eq!(collected[0].index, 0);
        assert_eq!(collected[1].index, 1);
        assert_eq!(g.edge(1).unwrap().weight, 2.0);
        assert!(g.edge(5).is_none());
    }
}
