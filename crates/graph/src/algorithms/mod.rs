//! Graph algorithms used by the backboning methods and the evaluation harness.
//!
//! * [`UnionFind`] — disjoint sets, used by Kruskal's
//!   algorithm and the connectivity check of the Doubly-Stochastic backbone.
//! * [`components`] — (weakly) connected components and component counts.
//! * [`traversal`] — breadth-first and depth-first traversals.
//! * [`shortest_path`] — Dijkstra's algorithm and shortest-path trees, the
//!   building block of the High Salience Skeleton.
//! * [`spanning_tree`] — Kruskal maximum spanning trees.
//! * [`kcore`] — k-core decomposition (Seidman 1983), listed by the paper's
//!   related work among the classic network-reduction tools.
//! * [`degree`] — degree/strength sequences and neighbour-weight statistics
//!   (the quantities behind Figure 6 of the paper).

pub mod components;
pub mod degree;
pub mod kcore;
pub mod shortest_path;
pub mod spanning_tree;
pub mod traversal;
pub mod union_find;

pub use components::{connected_components, is_connected, largest_component_size};
pub use kcore::{core_numbers, degeneracy, k_core_subgraph};
pub use shortest_path::{dijkstra, shortest_path_tree, DistanceTransform, ShortestPathTree};
pub use spanning_tree::maximum_spanning_tree;
pub use traversal::{breadth_first_order, depth_first_order};
pub use union_find::UnionFind;
