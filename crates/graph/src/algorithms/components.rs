//! Connected components.
//!
//! Directed graphs are treated as undirected for component computation (weak
//! connectivity), which is what both the Doubly-Stochastic backbone's stopping
//! rule and the topology analyses of the paper require.

use crate::algorithms::union_find::UnionFind;
use crate::graph::NodeId;
use crate::view::GraphView;

/// Assign each node to a (weakly) connected component.
///
/// Returns a vector of component labels (0-based, in order of first
/// appearance) indexed by node id. Isolated nodes form their own components.
pub fn connected_components<G: GraphView>(graph: &G) -> Vec<usize> {
    let mut union_find = UnionFind::new(graph.node_count());
    for edge in graph.edges() {
        union_find.union(edge.source, edge.target);
    }
    let mut label_of_root = vec![usize::MAX; graph.node_count()];
    let mut labels = vec![0usize; graph.node_count()];
    let mut next_label = 0;
    for node in graph.nodes() {
        let root = union_find.find(node);
        if label_of_root[root] == usize::MAX {
            label_of_root[root] = next_label;
            next_label += 1;
        }
        labels[node] = label_of_root[root];
    }
    labels
}

/// Number of (weakly) connected components.
pub fn component_count<G: GraphView>(graph: &G) -> usize {
    if graph.node_count() == 0 {
        return 0;
    }
    connected_components(graph)
        .iter()
        .copied()
        .max()
        .map_or(0, |max| max + 1)
}

/// Whether the graph is (weakly) connected, i.e. consists of a single component.
/// The empty graph is considered connected.
pub fn is_connected<G: GraphView>(graph: &G) -> bool {
    component_count(graph) <= 1
}

/// Size (number of nodes) of the largest (weakly) connected component.
pub fn largest_component_size<G: GraphView>(graph: &G) -> usize {
    if graph.node_count() == 0 {
        return 0;
    }
    let labels = connected_components(graph);
    let component_total = labels.iter().copied().max().unwrap_or(0) + 1;
    let mut sizes = vec![0usize; component_total];
    for &label in &labels {
        sizes[label] += 1;
    }
    sizes.into_iter().max().unwrap_or(0)
}

/// The node ids of the largest (weakly) connected component.
pub fn largest_component_nodes<G: GraphView>(graph: &G) -> Vec<NodeId> {
    if graph.node_count() == 0 {
        return Vec::new();
    }
    let labels = connected_components(graph);
    let component_total = labels.iter().copied().max().unwrap_or(0) + 1;
    let mut sizes = vec![0usize; component_total];
    for &label in &labels {
        sizes[label] += 1;
    }
    let largest = sizes
        .iter()
        .enumerate()
        .max_by_key(|&(_, size)| *size)
        .map(|(label, _)| label)
        .unwrap_or(0);
    graph.nodes().filter(|&n| labels[n] == largest).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Direction, WeightedGraph};

    #[test]
    fn single_component_path() {
        let g = WeightedGraph::from_edges(
            Direction::Undirected,
            4,
            vec![(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)],
        )
        .unwrap();
        assert!(is_connected(&g));
        assert_eq!(component_count(&g), 1);
        assert_eq!(largest_component_size(&g), 4);
        assert_eq!(connected_components(&g), vec![0, 0, 0, 0]);
    }

    #[test]
    fn two_components_and_isolate() {
        let g = WeightedGraph::from_edges(Direction::Undirected, 5, vec![(0, 1, 1.0), (2, 3, 1.0)])
            .unwrap();
        assert!(!is_connected(&g));
        assert_eq!(component_count(&g), 3);
        assert_eq!(largest_component_size(&g), 2);
        let labels = connected_components(&g);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[2]);
        assert_ne!(labels[4], labels[0]);
    }

    #[test]
    fn directed_edges_count_as_weak_links() {
        let g = WeightedGraph::from_edges(Direction::Directed, 3, vec![(0, 1, 1.0), (2, 1, 1.0)])
            .unwrap();
        // No directed path between 0 and 2, but weakly connected.
        assert!(is_connected(&g));
    }

    #[test]
    fn empty_and_edgeless_graphs() {
        let empty = WeightedGraph::undirected();
        assert!(is_connected(&empty));
        assert_eq!(component_count(&empty), 0);
        assert_eq!(largest_component_size(&empty), 0);
        assert!(largest_component_nodes(&empty).is_empty());

        let edgeless = WeightedGraph::with_nodes(Direction::Undirected, 3);
        assert_eq!(component_count(&edgeless), 3);
        assert_eq!(largest_component_size(&edgeless), 1);
    }

    #[test]
    fn largest_component_nodes_returns_correct_set() {
        let g = WeightedGraph::from_edges(
            Direction::Undirected,
            6,
            vec![(0, 1, 1.0), (1, 2, 1.0), (3, 4, 1.0)],
        )
        .unwrap();
        let mut nodes = largest_component_nodes(&g);
        nodes.sort_unstable();
        assert_eq!(nodes, vec![0, 1, 2]);
    }
}
