//! Breadth-first and depth-first traversals.

use std::collections::VecDeque;

use crate::graph::{NodeId, WeightedGraph};

/// Nodes reachable from `start` by following outgoing edges, in breadth-first
/// order (including `start` itself).
pub fn breadth_first_order(graph: &WeightedGraph, start: NodeId) -> Vec<NodeId> {
    if start >= graph.node_count() {
        return Vec::new();
    }
    let mut visited = vec![false; graph.node_count()];
    let mut order = Vec::new();
    let mut queue = VecDeque::new();
    visited[start] = true;
    queue.push_back(start);
    while let Some(node) = queue.pop_front() {
        order.push(node);
        for (neighbor, _) in graph.out_neighbors(node) {
            if !visited[neighbor] {
                visited[neighbor] = true;
                queue.push_back(neighbor);
            }
        }
    }
    order
}

/// Nodes reachable from `start` by following outgoing edges, in depth-first
/// (pre-order) order.
pub fn depth_first_order(graph: &WeightedGraph, start: NodeId) -> Vec<NodeId> {
    if start >= graph.node_count() {
        return Vec::new();
    }
    let mut visited = vec![false; graph.node_count()];
    let mut order = Vec::new();
    let mut stack = vec![start];
    while let Some(node) = stack.pop() {
        if visited[node] {
            continue;
        }
        visited[node] = true;
        order.push(node);
        // Push neighbours in reverse insertion order so the traversal visits
        // them in insertion order (stable, deterministic output).
        let neighbors: Vec<NodeId> = graph.out_neighbors(node).map(|(n, _)| n).collect();
        for &neighbor in neighbors.iter().rev() {
            if !visited[neighbor] {
                stack.push(neighbor);
            }
        }
    }
    order
}

/// Number of nodes reachable from `start` (including itself).
pub fn reachable_count(graph: &WeightedGraph, start: NodeId) -> usize {
    breadth_first_order(graph, start).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Direction;

    fn path_graph() -> WeightedGraph {
        WeightedGraph::from_edges(
            Direction::Directed,
            4,
            vec![(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)],
        )
        .unwrap()
    }

    #[test]
    fn bfs_visits_reachable_nodes_in_order() {
        let g = path_graph();
        assert_eq!(breadth_first_order(&g, 0), vec![0, 1, 2, 3]);
        assert_eq!(breadth_first_order(&g, 2), vec![2, 3]);
        assert_eq!(reachable_count(&g, 1), 3);
    }

    #[test]
    fn bfs_respects_direction() {
        let g = path_graph();
        assert_eq!(breadth_first_order(&g, 3), vec![3]);
    }

    #[test]
    fn bfs_layers_on_star() {
        let g = WeightedGraph::from_edges(
            Direction::Undirected,
            4,
            vec![(0, 1, 1.0), (0, 2, 1.0), (0, 3, 1.0)],
        )
        .unwrap();
        let order = breadth_first_order(&g, 1);
        assert_eq!(order[0], 1);
        assert_eq!(order[1], 0);
        assert_eq!(order.len(), 4);
    }

    #[test]
    fn dfs_pre_order() {
        let g = WeightedGraph::from_edges(
            Direction::Directed,
            5,
            vec![(0, 1, 1.0), (0, 3, 1.0), (1, 2, 1.0), (3, 4, 1.0)],
        )
        .unwrap();
        assert_eq!(depth_first_order(&g, 0), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn out_of_bounds_start_returns_empty() {
        let g = path_graph();
        assert!(breadth_first_order(&g, 10).is_empty());
        assert!(depth_first_order(&g, 10).is_empty());
    }

    #[test]
    fn traversal_on_disconnected_graph_stays_in_component() {
        let g = WeightedGraph::from_edges(Direction::Undirected, 5, vec![(0, 1, 1.0), (2, 3, 1.0)])
            .unwrap();
        assert_eq!(breadth_first_order(&g, 0).len(), 2);
        assert_eq!(depth_first_order(&g, 2).len(), 2);
        assert_eq!(breadth_first_order(&g, 4), vec![4]);
    }
}
