//! k-core decomposition.
//!
//! The paper's related-work section lists the k-core decomposition (Seidman,
//! 1983) among the classic ways to reduce a network: recursively remove nodes
//! of degree lower than `k` until only the `k`-core remains. It is provided
//! here as an additional, purely structural reduction tool alongside the
//! backboning methods of the `backboning` crate.

use crate::graph::{NodeId, WeightedGraph};

/// Core number of every node: the largest `k` such that the node belongs to
/// the `k`-core (the maximal subgraph in which every node has degree ≥ `k`).
///
/// Degrees are unweighted; directed graphs are treated as undirected (total
/// degree), matching the classic definition. Self-loops contribute one to
/// their node's degree.
pub fn core_numbers(graph: &WeightedGraph) -> Vec<usize> {
    let node_count = graph.node_count();
    // Symmetric unweighted adjacency.
    let mut adjacency: Vec<Vec<NodeId>> = vec![Vec::new(); node_count];
    for edge in graph.edges() {
        adjacency[edge.source].push(edge.target);
        if edge.source != edge.target {
            adjacency[edge.target].push(edge.source);
        }
    }
    let mut degree: Vec<usize> = adjacency.iter().map(Vec::len).collect();
    let max_degree = degree.iter().copied().max().unwrap_or(0);

    // Bucket sort of nodes by current degree (the standard O(|V| + |E|) peel).
    let mut buckets: Vec<Vec<NodeId>> = vec![Vec::new(); max_degree + 1];
    for (node, &d) in degree.iter().enumerate() {
        buckets[d].push(node);
    }
    let mut core = vec![0usize; node_count];
    let mut removed = vec![false; node_count];
    let mut current_core = 0usize;

    for _ in 0..node_count {
        // Find the non-removed node with the smallest current degree.
        let mut found = None;
        'search: for (bucket_degree, bucket) in buckets.iter_mut().enumerate() {
            while let Some(candidate) = bucket.pop() {
                if !removed[candidate] && degree[candidate] == bucket_degree {
                    found = Some(candidate);
                    break 'search;
                }
                // Stale entry (degree changed since insertion): skip it.
            }
        }
        let Some(node) = found else { break };
        removed[node] = true;
        current_core = current_core.max(degree[node]);
        core[node] = current_core;
        for &neighbor in &adjacency[node] {
            if !removed[neighbor] && degree[neighbor] > degree[node] {
                degree[neighbor] -= 1;
                buckets[degree[neighbor]].push(neighbor);
            }
        }
    }
    core
}

/// The nodes of the `k`-core: every node whose core number is at least `k`.
pub fn k_core_nodes(graph: &WeightedGraph, k: usize) -> Vec<NodeId> {
    core_numbers(graph)
        .into_iter()
        .enumerate()
        .filter_map(|(node, core)| if core >= k { Some(node) } else { None })
        .collect()
}

/// The `k`-core as a subgraph: the original node set is preserved (so node ids
/// stay valid) but only edges with both endpoints in the `k`-core are kept.
pub fn k_core_subgraph(graph: &WeightedGraph, k: usize) -> WeightedGraph {
    let core = core_numbers(graph);
    let kept: Vec<usize> = graph
        .edges()
        .filter(|edge| core[edge.source] >= k && core[edge.target] >= k)
        .map(|edge| edge.index)
        .collect();
    graph
        .subgraph_with_edges(&kept)
        .expect("edge indices come from the same graph")
}

/// The degeneracy of the graph: the largest `k` for which a non-empty `k`-core exists.
pub fn degeneracy(graph: &WeightedGraph) -> usize {
    core_numbers(graph).into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{complete_graph, path_graph, star_graph};
    use crate::graph::{Direction, WeightedGraph};

    #[test]
    fn complete_graph_is_a_single_core() {
        let g = complete_graph(6, 1.0).unwrap();
        let core = core_numbers(&g);
        assert!(core.iter().all(|&c| c == 5));
        assert_eq!(degeneracy(&g), 5);
        assert_eq!(k_core_nodes(&g, 5).len(), 6);
        assert!(k_core_nodes(&g, 6).is_empty());
    }

    #[test]
    fn path_and_star_have_core_number_one() {
        let path = path_graph(5, 1.0).unwrap();
        assert!(core_numbers(&path).iter().all(|&c| c == 1));
        let star = star_graph(6, 1.0).unwrap();
        // Even the hub peels at k = 1: once the leaves are gone its degree is 0.
        assert!(core_numbers(&star).iter().all(|&c| c == 1));
        assert_eq!(degeneracy(&star), 1);
    }

    #[test]
    fn clique_with_tail_separates_cores() {
        // A 4-clique (nodes 0..4) with a pendant path 3-4-5.
        let mut g = WeightedGraph::with_nodes(Direction::Undirected, 6);
        for i in 0..4usize {
            for j in (i + 1)..4usize {
                g.add_edge(i, j, 1.0).unwrap();
            }
        }
        g.add_edge(3, 4, 1.0).unwrap();
        g.add_edge(4, 5, 1.0).unwrap();
        let core = core_numbers(&g);
        assert_eq!(&core[0..4], &[3, 3, 3, 3]);
        assert_eq!(core[4], 1);
        assert_eq!(core[5], 1);

        let three_core = k_core_subgraph(&g, 3);
        assert_eq!(three_core.node_count(), 6); // node set preserved
        assert_eq!(three_core.edge_count(), 6); // only the clique's edges
        assert!(three_core.isolates().contains(&5));
    }

    #[test]
    fn isolated_nodes_have_core_number_zero() {
        let mut g = path_graph(3, 1.0).unwrap();
        g.add_node();
        let core = core_numbers(&g);
        assert_eq!(core[3], 0);
        assert_eq!(k_core_nodes(&g, 1), vec![0, 1, 2]);
    }

    #[test]
    fn directed_graphs_use_total_degree() {
        let g = WeightedGraph::from_edges(
            Direction::Directed,
            3,
            vec![(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)],
        )
        .unwrap();
        assert!(core_numbers(&g).iter().all(|&c| c == 2));
    }

    #[test]
    fn empty_graph() {
        let g = WeightedGraph::undirected();
        assert!(core_numbers(&g).is_empty());
        assert_eq!(degeneracy(&g), 0);
    }
}
