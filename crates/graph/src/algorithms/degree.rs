//! Degree/strength sequences and neighbour-weight statistics.
//!
//! Figure 6 of the paper documents that edge weights are locally correlated:
//! the weight of an edge correlates with the average weight of the other edges
//! incident to its endpoints. [`edge_neighbor_weight_pairs`] computes exactly
//! those pairs; the evaluation crate feeds them to the log–log Pearson
//! correlation.

use crate::graph::{NodeId, WeightedGraph};

/// The degree of every node (total degree for directed graphs).
pub fn degree_sequence(graph: &WeightedGraph) -> Vec<usize> {
    graph.nodes().map(|n| graph.degree(n)).collect()
}

/// The out-strength of every node.
pub fn out_strength_sequence(graph: &WeightedGraph) -> Vec<f64> {
    graph.nodes().map(|n| graph.out_strength(n)).collect()
}

/// The in-strength of every node.
pub fn in_strength_sequence(graph: &WeightedGraph) -> Vec<f64> {
    graph.nodes().map(|n| graph.in_strength(n)).collect()
}

/// Average degree of the graph (0 for an empty graph).
pub fn average_degree(graph: &WeightedGraph) -> f64 {
    if graph.node_count() == 0 {
        return 0.0;
    }
    degree_sequence(graph).iter().sum::<usize>() as f64 / graph.node_count() as f64
}

/// All edge weights of the graph, in edge insertion order.
pub fn edge_weights(graph: &WeightedGraph) -> Vec<f64> {
    graph.edges().map(|e| e.weight).collect()
}

/// For every edge, the pair `(own weight, average weight of neighbouring
/// edges)`, where the neighbouring edges are all other edges incident to
/// either endpoint.
///
/// Edges without any neighbouring edge are skipped (the average is undefined).
pub fn edge_neighbor_weight_pairs(graph: &WeightedGraph) -> Vec<(f64, f64)> {
    // Precompute per-node incident weight sums and counts.
    let node_count = graph.node_count();
    let mut incident_sum = vec![0.0; node_count];
    let mut incident_count = vec![0usize; node_count];
    for edge in graph.edges() {
        incident_sum[edge.source] += edge.weight;
        incident_count[edge.source] += 1;
        if edge.source != edge.target {
            incident_sum[edge.target] += edge.weight;
            incident_count[edge.target] += 1;
        }
    }

    let mut pairs = Vec::with_capacity(graph.edge_count());
    for edge in graph.edges() {
        let own_contribution = if edge.source == edge.target { 1 } else { 2 };
        let neighbor_count =
            incident_count[edge.source] + incident_count[edge.target] - own_contribution;
        if neighbor_count == 0 {
            continue;
        }
        let neighbor_sum = incident_sum[edge.source] + incident_sum[edge.target]
            - own_contribution as f64 * edge.weight;
        pairs.push((edge.weight, neighbor_sum / neighbor_count as f64));
    }
    pairs
}

/// The node with the largest degree, or `None` for an empty graph.
pub fn max_degree_node(graph: &WeightedGraph) -> Option<NodeId> {
    graph.nodes().max_by_key(|&n| graph.degree(n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Direction;

    fn star() -> WeightedGraph {
        WeightedGraph::from_edges(
            Direction::Undirected,
            4,
            vec![(0, 1, 10.0), (0, 2, 20.0), (0, 3, 30.0)],
        )
        .unwrap()
    }

    #[test]
    fn degree_and_strength_sequences() {
        let g = star();
        assert_eq!(degree_sequence(&g), vec![3, 1, 1, 1]);
        assert_eq!(out_strength_sequence(&g), vec![60.0, 10.0, 20.0, 30.0]);
        assert_eq!(in_strength_sequence(&g), vec![60.0, 10.0, 20.0, 30.0]);
        assert!((average_degree(&g) - 1.5).abs() < 1e-12);
        assert_eq!(max_degree_node(&g), Some(0));
    }

    #[test]
    fn directed_strengths_differ() {
        let g = WeightedGraph::from_edges(Direction::Directed, 3, vec![(0, 1, 5.0), (2, 1, 7.0)])
            .unwrap();
        assert_eq!(out_strength_sequence(&g), vec![5.0, 0.0, 7.0]);
        assert_eq!(in_strength_sequence(&g), vec![0.0, 12.0, 0.0]);
    }

    #[test]
    fn edge_weights_in_insertion_order() {
        let g = star();
        assert_eq!(edge_weights(&g), vec![10.0, 20.0, 30.0]);
    }

    #[test]
    fn neighbor_weight_pairs_on_star() {
        let g = star();
        let pairs = edge_neighbor_weight_pairs(&g);
        assert_eq!(pairs.len(), 3);
        // For the edge (0,1,10): neighbours are the other two star edges, average 25.
        let pair = pairs.iter().find(|&&(w, _)| w == 10.0).unwrap();
        assert!((pair.1 - 25.0).abs() < 1e-12);
        // For the edge (0,3,30): neighbours average (10+20)/2 = 15.
        let pair = pairs.iter().find(|&&(w, _)| w == 30.0).unwrap();
        assert!((pair.1 - 15.0).abs() < 1e-12);
    }

    #[test]
    fn isolated_edge_is_skipped() {
        let g = WeightedGraph::from_edges(Direction::Undirected, 2, vec![(0, 1, 4.0)]).unwrap();
        assert!(edge_neighbor_weight_pairs(&g).is_empty());
    }

    #[test]
    fn empty_graph_statistics() {
        let g = WeightedGraph::undirected();
        assert!(degree_sequence(&g).is_empty());
        assert_eq!(average_degree(&g), 0.0);
        assert_eq!(max_degree_node(&g), None);
    }
}
