//! Dijkstra's algorithm and shortest-path trees.
//!
//! The High Salience Skeleton (Grady et al., 2012; paper Section III-B) is the
//! superposition of the shortest-path trees rooted at every node, where path
//! length is measured on a *distance* transform of the (proximity-like) edge
//! weights. Both the transform and the tree construction live here.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::csr::CsrGraph;
use crate::error::{GraphError, GraphResult};
use crate::graph::{NodeId, WeightedGraph};

/// How proximity-like edge weights are converted into distances for
/// shortest-path computations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DistanceTransform {
    /// `distance = 1 / weight` (the convention of the original HSS paper).
    #[default]
    Inverse,
    /// `distance = −ln(weight / max_weight)`, an alternative that compresses
    /// very heavy tails; exposed for the ablation benchmarks.
    NegativeLog,
    /// Use the weights directly as distances (for graphs that already carry
    /// distance semantics).
    Identity,
}

impl DistanceTransform {
    /// Convert a single weight into a distance. `max_weight` is the maximum
    /// weight in the graph (used only by [`DistanceTransform::NegativeLog`]).
    pub fn apply(self, weight: f64, max_weight: f64) -> f64 {
        match self {
            DistanceTransform::Inverse => {
                if weight > 0.0 {
                    1.0 / weight
                } else {
                    f64::INFINITY
                }
            }
            DistanceTransform::NegativeLog => {
                if weight > 0.0 && max_weight > 0.0 {
                    // Add a tiny offset so the heaviest edge has a small positive distance.
                    (max_weight / weight).ln() + 1e-12
                } else {
                    f64::INFINITY
                }
            }
            DistanceTransform::Identity => {
                if weight >= 0.0 {
                    weight
                } else {
                    f64::INFINITY
                }
            }
        }
    }
}

/// Result of a single-source shortest path computation.
#[derive(Debug, Clone, PartialEq)]
pub struct ShortestPathTree {
    /// The root of the tree.
    pub source: NodeId,
    /// Shortest distance from the root to each node (infinity when unreachable).
    pub distances: Vec<f64>,
    /// Predecessor of each node on its shortest path (`None` for the root and
    /// unreachable nodes).
    pub predecessors: Vec<Option<NodeId>>,
}

impl ShortestPathTree {
    /// Whether `node` is reachable from the source.
    pub fn is_reachable(&self, node: NodeId) -> bool {
        self.distances.get(node).is_some_and(|d| d.is_finite())
    }

    /// The tree edges as `(parent, child)` pairs.
    pub fn tree_edges(&self) -> Vec<(NodeId, NodeId)> {
        self.predecessors
            .iter()
            .enumerate()
            .filter_map(|(child, parent)| parent.map(|p| (p, child)))
            .collect()
    }

    /// Reconstruct the shortest path from the source to `target`
    /// (inclusive of both endpoints), or `None` if unreachable.
    pub fn path_to(&self, target: NodeId) -> Option<Vec<NodeId>> {
        if !self.is_reachable(target) {
            return None;
        }
        let mut path = vec![target];
        let mut current = target;
        while let Some(parent) = self.predecessors[current] {
            path.push(parent);
            current = parent;
        }
        path.reverse();
        Some(path)
    }
}

/// Entry in the Dijkstra priority queue (min-heap by distance).
#[derive(Debug, Clone, PartialEq)]
struct QueueEntry {
    distance: f64,
    node: NodeId,
}

impl Eq for QueueEntry {}

impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse so BinaryHeap (a max-heap) pops the smallest distance first.
        other
            .distance
            .partial_cmp(&self.distance)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Single-source shortest paths with Dijkstra's algorithm on transformed
/// edge weights.
///
/// Edge weights are interpreted as proximities and converted to distances via
/// `transform`; zero-weight edges become unreachable (infinite distance) under
/// the inverse and negative-log transforms.
pub fn dijkstra(
    graph: &WeightedGraph,
    source: NodeId,
    transform: DistanceTransform,
) -> GraphResult<ShortestPathTree> {
    if source >= graph.node_count() {
        return Err(GraphError::NodeOutOfBounds {
            node: source,
            node_count: graph.node_count(),
        });
    }
    let max_weight = graph.edges().map(|e| e.weight).fold(0.0_f64, f64::max);

    let node_count = graph.node_count();
    let mut distances = vec![f64::INFINITY; node_count];
    let mut predecessors: Vec<Option<NodeId>> = vec![None; node_count];
    let mut settled = vec![false; node_count];
    let mut heap = BinaryHeap::new();

    distances[source] = 0.0;
    heap.push(QueueEntry {
        distance: 0.0,
        node: source,
    });

    while let Some(QueueEntry { distance, node }) = heap.pop() {
        if settled[node] {
            continue;
        }
        settled[node] = true;
        for (neighbor, weight) in graph.out_neighbors(node) {
            let edge_distance = transform.apply(weight, max_weight);
            if !edge_distance.is_finite() {
                continue;
            }
            let candidate = distance + edge_distance;
            if candidate < distances[neighbor] {
                distances[neighbor] = candidate;
                predecessors[neighbor] = Some(node);
                heap.push(QueueEntry {
                    distance: candidate,
                    node: neighbor,
                });
            }
        }
    }

    Ok(ShortestPathTree {
        source,
        distances,
        predecessors,
    })
}

/// Precomputed transformed distances of every CSR adjacency entry, plus the
/// structural flag steering [`CsrDijkstra`]'s fast path.
#[derive(Debug, Clone)]
pub struct EntryDistances {
    values: Vec<f64>,
    /// `Some(d)` when every *finite* entry distance equals `d` (and at least
    /// one entry is finite) — the case of uniform-weight and unweighted
    /// networks under any transform. Dijkstra then degenerates to
    /// level-synchronous BFS, which [`CsrDijkstra::run`] exploits heap-free
    /// with bit-identical output.
    /// Equal distances of exactly `0.0` do NOT qualify: with a zero step
    /// every level shares the same packed distance bits, so the heap pops
    /// interleave across levels by node id and level-synchronous processing
    /// would assign different parents.
    uniform: Option<f64>,
    /// Whether `uniform` covers *every* entry (no infinite distances at all),
    /// letting the BFS paths skip the per-entry distance check.
    uniform_total: bool,
    /// Auto-tuned bucket width for [`BucketQueue`] (`None` when the
    /// distribution offers nothing to bucket on: uniform distances, or no
    /// finite positive distance at all).
    bucket_width: Option<f64>,
}

impl EntryDistances {
    /// The transformed distance per CSR adjacency entry.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The uniform finite distance, when the graph has one (see struct docs).
    pub fn uniform(&self) -> Option<f64> {
        self.uniform
    }

    /// Whether the uniform distance covers every entry (no entry is
    /// infinite), so uniform-path scans need no per-entry distance check.
    pub fn uniform_is_total(&self) -> bool {
        self.uniform_total
    }

    /// The auto-tuned bucket width for the frontier-bucketed SSSP engine: the
    /// 25th percentile of the finite positive entry distances (clamped from
    /// below so the whole per-entry range spans a bounded number of buckets).
    /// With that width at least three quarters of all relaxations jump past
    /// the current bucket and cost `O(1)` ring pushes instead of heap sifts.
    pub fn bucket_width(&self) -> Option<f64> {
        self.bucket_width
    }
}

/// Precompute the transformed distance of every CSR adjacency entry.
///
/// Applying the transform once per entry (instead of once per entry *per
/// Dijkstra root*) is one of the two wins of the CSR hot path; the other is
/// the cache-friendly flat layout. The values are identical to what
/// [`dijkstra`] computes on the fly, since `max_weight` is the same maximum
/// (each undirected edge merely appears twice in the entry array).
pub fn csr_entry_distances(csr: &CsrGraph, transform: DistanceTransform) -> EntryDistances {
    let max_weight = csr.entry_weights().iter().copied().fold(0.0_f64, f64::max);
    let values: Vec<f64> = csr
        .entry_weights()
        .iter()
        .map(|&weight| transform.apply(weight, max_weight))
        .collect();
    let mut uniform = None;
    let mut distinct_finite = false;
    let mut any_non_finite = false;
    for &value in &values {
        if !value.is_finite() {
            any_non_finite = true;
            continue;
        }
        match uniform {
            None if !distinct_finite => uniform = Some(value),
            Some(d) if d == value => {}
            _ => {
                uniform = None;
                distinct_finite = true;
            }
        }
    }
    // A zero step cannot drive the BFS path (see field docs).
    if uniform == Some(0.0) {
        uniform = None;
    }
    let uniform_total = uniform.is_some() && !any_non_finite;
    let bucket_width = if uniform.is_some() {
        None
    } else {
        tuned_bucket_width(&values)
    };
    EntryDistances {
        values,
        uniform,
        uniform_total,
        bucket_width,
    }
}

/// Pick the [`BucketQueue`] width from the finite positive entry distances:
/// their 25th percentile, clamped so the largest single entry distance spans
/// at most 2^16 buckets (heavier tails only cost overflow redistributions,
/// never correctness, but a bounded span keeps them rare).
fn tuned_bucket_width(values: &[f64]) -> Option<f64> {
    let mut finite: Vec<f64> = values
        .iter()
        .copied()
        .filter(|v| v.is_finite() && *v > 0.0)
        .collect();
    if finite.is_empty() {
        return None;
    }
    let k = finite.len() / 4;
    let (_, &mut quartile, _) = finite.select_nth_unstable_by(k, f64::total_cmp);
    let max = finite.iter().copied().fold(0.0_f64, f64::max);
    Some(quartile.max(max / 65536.0))
}

/// Sentinel for "no parent" in [`CsrDijkstra`]'s dense parent arrays.
const NO_PARENT: usize = usize::MAX;

/// A heap entry packed into one integer: distance bits in the high 64 bits,
/// node id in the low 64.
///
/// All distances reaching the heap are finite and non-negative (they are sums
/// of non-negative transformed edge distances, and `-0.0` cannot arise from
/// `0.0 + x` with `x ≥ 0`), and for such floats the IEEE-754 bit pattern is
/// monotone in the value. Popping the minimum packed key therefore yields
/// exactly the ascending `(distance, node)` order of [`QueueEntry`]'s
/// comparator — same pops, same relaxation order, same tree — while costing a
/// single integer comparison per sift instead of a float/tie-break chain.
/// Bit pattern of `f64::INFINITY` — the "unreached" marker in the packed
/// distance array.
const INFINITY_BITS: u64 = 0x7FF0_0000_0000_0000;

#[inline]
fn pack_entry(distance_bits: u64, node: NodeId) -> u128 {
    (u128::from(distance_bits) << 64) | node as u128
}

#[inline]
fn unpack_entry(key: u128) -> (u64, NodeId) {
    ((key >> 64) as u64, (key & u128::from(u64::MAX)) as usize)
}

/// A min-queue over packed `(distance bits, node)` keys.
///
/// Every key in the queue is unique — a strict relaxation can never re-insert
/// a node at a distance it already holds — so any correct priority queue pops
/// the same sequence (ascending key order); the binary heap over packed
/// integers is simply the fastest safe implementation measured. A single
/// `u128` comparison replaces the float-compare-plus-tie-break chain of
/// [`QueueEntry`].
#[derive(Debug, Clone, Default)]
struct PackedMinHeap {
    data: BinaryHeap<std::cmp::Reverse<u128>>,
}

impl PackedMinHeap {
    fn clear(&mut self) {
        self.data.clear();
    }

    #[inline]
    fn push(&mut self, key: u128) {
        self.data.push(std::cmp::Reverse(key));
    }

    #[inline]
    fn pop(&mut self) -> Option<u128> {
        self.data.pop().map(|reverse| reverse.0)
    }
}

/// The priority-queue interface shared by [`PackedMinHeap`] and
/// [`BucketQueue`]. Both pop packed keys in exactly ascending order, so the
/// relaxation loop is generic over the queue with bit-identical output.
trait MinQueue {
    fn push(&mut self, key: u128);
    fn pop(&mut self) -> Option<u128>;
}

impl MinQueue for PackedMinHeap {
    #[inline]
    fn push(&mut self, key: u128) {
        PackedMinHeap::push(self, key);
    }

    #[inline]
    fn pop(&mut self) -> Option<u128> {
        PackedMinHeap::pop(self)
    }
}

/// Number of future buckets directly addressable in [`BucketQueue`]'s ring.
const BUCKET_RING: usize = 1024;
const BUCKET_RING_WORDS: usize = BUCKET_RING / 64;

/// A frontier-bucketed (delta-stepping style) monotone min-queue over packed
/// `(distance bits, node)` keys.
///
/// Keys are grouped by `floor(distance / width)`. The bucket currently being
/// drained is held in a small exact binary heap; future buckets live in a
/// circular ring of `O(1)`-push vectors; keys more than [`BUCKET_RING`]
/// buckets ahead wait in an overflow list that is redistributed when the
/// window advances past them.
///
/// **Pop order is exactly that of [`PackedMinHeap`]** — the property that
/// keeps the SPT parents (and therefore every HSS salience bit) identical:
///
/// * the bucket index is monotone in the key (a positive multiply and a
///   truncation preserve order, and the `as u64` saturation only merges
///   far-future buckets), so every key in bucket `b` orders below every key
///   in any bucket `b' > b`;
/// * within the current bucket the binary heap pops exact ascending `u128`
///   order, including the node-id tie-break for equal distances;
/// * Dijkstra's monotonicity (a relaxation pushes `settled + edge ≥ settled`)
///   guarantees no key ever lands in a bucket below the one being drained,
///   so draining buckets in ascending index yields globally ascending pops.
///
/// The win over the heap is that the common case — a relaxation jumping past
/// the current bucket — is an `O(1)` ring push instead of an `O(log n)` sift.
#[derive(Debug, Clone)]
struct BucketQueue {
    width: f64,
    inv_width: f64,
    /// Bucket id currently being drained (through `current`).
    base: u64,
    /// Exact min-heap over the keys of bucket `base`.
    current: BinaryHeap<std::cmp::Reverse<u128>>,
    /// Future buckets `base+1 .. base+BUCKET_RING`, at slot `bucket % BUCKET_RING`.
    ring: Vec<Vec<u128>>,
    /// One bit per ring slot: slot holds at least one key.
    occupied: [u64; BUCKET_RING_WORDS],
    /// Keys at least [`BUCKET_RING`] buckets ahead of `base`.
    overflow: Vec<u128>,
    /// Minimum bucket id among `overflow` keys (when non-empty).
    overflow_min: u64,
}

impl BucketQueue {
    fn new(width: f64) -> Self {
        assert!(
            width.is_finite() && width > 0.0,
            "bucket width must be positive"
        );
        BucketQueue {
            width,
            inv_width: width.recip(),
            base: 0,
            current: BinaryHeap::new(),
            ring: vec![Vec::new(); BUCKET_RING],
            occupied: [0; BUCKET_RING_WORDS],
            overflow: Vec::new(),
            overflow_min: u64::MAX,
        }
    }

    #[inline]
    fn bucket_of(&self, key: u128) -> u64 {
        // Monotone in the distance; saturates for enormous quotients, which
        // only merges far-future buckets (the in-bucket heap re-orders them
        // exactly once they become current).
        (f64::from_bits((key >> 64) as u64) * self.inv_width) as u64
    }

    /// Reset to an empty queue at bucket zero. Sparse: only slots the last
    /// run left occupied are visited (a fully drained run leaves none).
    fn clear(&mut self) {
        self.current.clear();
        for (word_index, word) in self.occupied.iter_mut().enumerate() {
            let mut bits = *word;
            while bits != 0 {
                let bit = bits.trailing_zeros() as usize;
                self.ring[word_index * 64 + bit].clear();
                bits &= bits - 1;
            }
            *word = 0;
        }
        self.overflow.clear();
        self.overflow_min = u64::MAX;
        self.base = 0;
    }

    /// First occupied ring slot at or after `start` in circular window order
    /// (window order equals ascending bucket offset from `base`).
    fn next_occupied_slot(&self, start: usize) -> Option<usize> {
        let word0 = start / 64;
        let masked = self.occupied[word0] & (!0u64 << (start % 64));
        if masked != 0 {
            return Some(word0 * 64 + masked.trailing_zeros() as usize);
        }
        for step in 1..=BUCKET_RING_WORDS {
            let word = (word0 + step) % BUCKET_RING_WORDS;
            if self.occupied[word] != 0 {
                return Some(word * 64 + self.occupied[word].trailing_zeros() as usize);
            }
        }
        None
    }

    /// Move `base` to the next non-empty bucket and load it into `current`.
    /// Returns `false` when the queue is exhausted.
    ///
    /// Keys land in `overflow` relative to the base at *push* time and the
    /// window slides afterwards, so the earliest pending bucket can be in the
    /// overflow list even while ring slots are occupied. The next bucket is
    /// therefore the minimum of the two sources; when they tie, both load
    /// into `current` together so the in-bucket heap keeps exact order.
    fn advance(&mut self) -> bool {
        let base_slot = (self.base % BUCKET_RING as u64) as usize;
        let ring_next = self
            .next_occupied_slot((base_slot + 1) % BUCKET_RING)
            .map(|slot| {
                let offset = ((slot + BUCKET_RING - base_slot) % BUCKET_RING) as u64;
                (slot, self.base + offset)
            });
        let overflow_next = (!self.overflow.is_empty()).then_some(self.overflow_min);
        let target = match (ring_next, overflow_next) {
            (None, None) => return false,
            (Some((_, bucket)), None) => bucket,
            (None, Some(bucket)) => bucket,
            (Some((_, ring_bucket)), Some(overflow_bucket)) => ring_bucket.min(overflow_bucket),
        };
        self.base = target;
        if let Some((slot, bucket)) = ring_next {
            if bucket == target {
                self.occupied[slot / 64] &= !(1u64 << (slot % 64));
                // `drain` keeps the slot's allocation for later buckets.
                self.current
                    .extend(self.ring[slot].drain(..).map(std::cmp::Reverse));
            }
        }
        if overflow_next == Some(target) {
            // Re-push with the re-based window: bucket-`target` keys join
            // `current`, in-window keys go to ring slots, the rest overflow
            // again (with a freshly tracked minimum).
            self.overflow_min = u64::MAX;
            let pending = std::mem::take(&mut self.overflow);
            for key in pending {
                self.push(key);
            }
        }
        true
    }
}

impl MinQueue for BucketQueue {
    #[inline]
    fn push(&mut self, key: u128) {
        let bucket = self.bucket_of(key);
        if bucket <= self.base {
            // Same-bucket relaxation (equal or near-equal distance): the
            // exact heap keeps it ordered among the remaining current keys.
            self.current.push(std::cmp::Reverse(key));
        } else if bucket - self.base < BUCKET_RING as u64 {
            let slot = (bucket % BUCKET_RING as u64) as usize;
            self.ring[slot].push(key);
            self.occupied[slot / 64] |= 1u64 << (slot % 64);
        } else {
            if bucket < self.overflow_min {
                self.overflow_min = bucket;
            }
            self.overflow.push(key);
        }
    }

    #[inline]
    fn pop(&mut self) -> Option<u128> {
        loop {
            if let Some(std::cmp::Reverse(key)) = self.current.pop() {
                return Some(key);
            }
            if !self.advance() {
                return None;
            }
        }
    }
}

/// Which priority queue drives [`CsrDijkstra`]'s general (non-uniform) path.
///
/// Both engines pop packed keys in exactly ascending order, so distances,
/// parents and parent entries are bit-identical whichever is selected (pinned
/// by the engine-parity tests and the adjacency parity proptests).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SsspEngine {
    /// Pick per run: the frontier-bucketed queue whenever the entry-distance
    /// distribution yields a usable bucket width, the binary heap otherwise.
    #[default]
    Auto,
    /// Always the packed-`u128` binary heap.
    BinaryHeap,
    /// The frontier-bucketed queue (falls back to the heap when no bucket
    /// width can be tuned, e.g. all finite distances are zero).
    Bucketed,
}

/// Reusable single-source shortest-path workspace over a [`CsrGraph`].
///
/// The High Salience Skeleton runs one Dijkstra per node; allocating the
/// distance/parent/heap structures per root dominated the seed implementation
/// on small trees. This scratch allocates once and resets only the entries
/// touched by the previous run, so consecutive roots on a sparse graph cost
/// `O(reached · log reached)` with no allocation at all.
///
/// The relaxation order, queue tie-breaking and floating-point operations are
/// exactly those of [`dijkstra`] — for either [`SsspEngine`] — so for any
/// root the resulting tree is bit-identical to the adjacency-list
/// implementation (pinned by the parity test suite).
#[derive(Debug, Clone)]
pub struct CsrDijkstra {
    /// Distance per node as an IEEE-754 bit pattern. All reachable distances
    /// are non-negative finite floats, for which the bit pattern is monotone
    /// in the value, so `u64` comparisons order exactly like `f64` ones (with
    /// [`INFINITY_BITS`] above every finite distance).
    distance_bits: Vec<u64>,
    parent_node: Vec<usize>,
    parent_entry: Vec<usize>,
    reached: Vec<NodeId>,
    engine: SsspEngine,
    heap: PackedMinHeap,
    /// Lazily built when a run first takes the bucketed engine; reused (ring
    /// allocations and all) across runs with the same width.
    bucket: Option<BucketQueue>,
    /// Frontier buffers of the uniform-distance (BFS) fast path.
    current_level: Vec<NodeId>,
    next_level: Vec<NodeId>,
}

impl CsrDijkstra {
    /// Allocate a workspace for graphs with `node_count` nodes, selecting the
    /// queue engine automatically per run.
    pub fn new(node_count: usize) -> Self {
        Self::with_engine(node_count, SsspEngine::Auto)
    }

    /// Allocate a workspace pinned to a specific [`SsspEngine`].
    pub fn with_engine(node_count: usize, engine: SsspEngine) -> Self {
        CsrDijkstra {
            distance_bits: vec![INFINITY_BITS; node_count],
            parent_node: vec![NO_PARENT; node_count],
            parent_entry: vec![NO_PARENT; node_count],
            reached: Vec::with_capacity(node_count),
            engine,
            heap: PackedMinHeap::default(),
            bucket: None,
            current_level: Vec::new(),
            next_level: Vec::new(),
        }
    }

    /// Sparse reset: undo only what the previous run touched.
    fn reset(&mut self) {
        for &node in &self.reached {
            self.distance_bits[node] = INFINITY_BITS;
            self.parent_node[node] = NO_PARENT;
            self.parent_entry[node] = NO_PARENT;
        }
        self.reached.clear();
        self.heap.clear();
        if let Some(bucket) = &mut self.bucket {
            bucket.clear();
        }
    }

    /// Run Dijkstra from `source` over `csr`, using the precomputed
    /// [`csr_entry_distances`] as per-entry edge lengths.
    ///
    /// When the entry distances are uniform (unweighted or uniform-weight
    /// networks) the run takes a heap-free level-synchronous BFS path; the
    /// resulting tree is bit-identical either way (see [`EntryDistances`]).
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of bounds for the workspace, or if
    /// `entry_distances` is shorter than the graph's entry array.
    pub fn run(&mut self, csr: &CsrGraph, entry_distances: &EntryDistances, source: NodeId) {
        assert!(source < self.distance_bits.len(), "source out of bounds");
        assert!(entry_distances.values().len() >= csr.entry_count());
        self.reset();
        self.distance_bits[source] = 0.0_f64.to_bits();
        self.reached.push(source);
        if let Some(step) = entry_distances.uniform() {
            self.run_uniform(csr, entry_distances.values(), step, source);
        } else {
            self.run_general(csr, entry_distances, source);
        }
    }

    /// The general path: lazy-deletion Dijkstra over the engine's min-queue
    /// (both queues pop the identical ascending key sequence, see
    /// [`SsspEngine`]).
    fn run_general(&mut self, csr: &CsrGraph, entry_distances: &EntryDistances, source: NodeId) {
        let bucket_width = match self.engine {
            SsspEngine::BinaryHeap => None,
            SsspEngine::Auto | SsspEngine::Bucketed => entry_distances.bucket_width(),
        };
        let CsrDijkstra {
            distance_bits,
            parent_node,
            parent_entry,
            reached,
            heap,
            bucket,
            ..
        } = self;
        if let Some(width) = bucket_width {
            if bucket.as_ref().is_none_or(|queue| queue.width != width) {
                *bucket = Some(BucketQueue::new(width));
            }
            let queue = bucket.as_mut().expect("bucket queue just ensured");
            run_queue(
                queue,
                csr,
                entry_distances.values(),
                distance_bits,
                parent_node,
                parent_entry,
                reached,
                source,
            );
        } else {
            run_queue(
                heap,
                csr,
                entry_distances.values(),
                distance_bits,
                parent_node,
                parent_entry,
                reached,
                source,
            );
        }
    }

    /// The uniform-distance path: Dijkstra with one finite edge length `step`
    /// degenerates to BFS processed level by level.
    ///
    /// Output equivalence with [`Self::run_general`]: the heap would pop
    /// nodes in ascending `(distance, node)` order, i.e. level by level and
    /// by ascending node id within a level (every level-`k` node holds the
    /// identical accumulated float `k·step`). Processing each sorted level in
    /// order reproduces that relaxation order exactly, and the first-toucher
    /// parent assignment matches the heap path's strict relaxation (a later
    /// equal-distance candidate never replaces an earlier one). The level
    /// distance accumulates as `previous + step` — the same float expression
    /// the heap path evaluates — so distances are bit-identical too.
    fn run_uniform(&mut self, csr: &CsrGraph, entry_distances: &[f64], step: f64, source: NodeId) {
        let mut current = std::mem::take(&mut self.current_level);
        let mut next = std::mem::take(&mut self.next_level);
        current.clear();
        next.clear();
        current.push(source);
        let mut level_distance = 0.0_f64;
        while !current.is_empty() {
            let next_distance = level_distance + step;
            let next_bits = next_distance.to_bits();
            for &node in &current {
                let range = csr.entry_range(node);
                let entry_base = range.start;
                let targets = csr.neighbors(node);
                let distances = &entry_distances[range];
                for (slot, (&neighbor, &edge_distance)) in targets.iter().zip(distances).enumerate()
                {
                    let neighbor = neighbor as NodeId;
                    // Non-finite entries (e.g. zero-weight edges under the
                    // inverse transform) never relax.
                    if edge_distance != step {
                        continue;
                    }
                    if self.distance_bits[neighbor] == INFINITY_BITS {
                        self.distance_bits[neighbor] = next_bits;
                        self.parent_node[neighbor] = node;
                        self.parent_entry[neighbor] = entry_base + slot;
                        self.reached.push(neighbor);
                        next.push(neighbor);
                    }
                }
            }
            // The heap path settles a level in ascending node order.
            next.sort_unstable();
            std::mem::swap(&mut current, &mut next);
            next.clear();
            level_distance = next_distance;
        }
        self.current_level = current;
        self.next_level = next;
    }

    /// Shortest distance from the current root to `node`.
    pub fn distance(&self, node: NodeId) -> f64 {
        f64::from_bits(self.distance_bits[node])
    }

    /// Parent of `node` in the current shortest-path tree.
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        match self.parent_node[node] {
            NO_PARENT => None,
            parent => Some(parent),
        }
    }

    /// CSR entry index of the tree edge into `node`, if any. Combined with
    /// [`CsrGraph::entry_edge_id`] this maps a tree edge straight to its dense
    /// edge id, with no hash lookup.
    pub fn parent_entry(&self, node: NodeId) -> Option<usize> {
        match self.parent_entry[node] {
            NO_PARENT => None,
            entry => Some(entry),
        }
    }

    /// The nodes reached by the current run (the root first, then in order of
    /// first relaxation).
    pub fn reached(&self) -> &[NodeId] {
        &self.reached
    }
}

/// The engine-generic relaxation loop: lazy-deletion Dijkstra over any
/// ascending-order [`MinQueue`]. Monomorphized per queue, so the heap path
/// compiles to exactly the loop it was before the bucketed engine existed.
#[allow(clippy::too_many_arguments)]
fn run_queue<Q: MinQueue>(
    queue: &mut Q,
    csr: &CsrGraph,
    entry_distances: &[f64],
    distance_bits: &mut [u64],
    parent_node: &mut [usize],
    parent_entry: &mut [usize],
    reached: &mut Vec<NodeId>,
    source: NodeId,
) {
    queue.push(pack_entry(0.0_f64.to_bits(), source));
    while let Some(top) = queue.pop() {
        let (top_bits, node) = unpack_entry(top);
        // Stale-pop check, equivalent to a `settled` flag: a strict
        // relaxation can never re-push a node at its current (minimal)
        // distance, so the first pop of a node carries exactly its stored
        // bits and every later pop carries strictly larger ones.
        if top_bits != distance_bits[node] {
            continue;
        }
        let distance = f64::from_bits(top_bits);
        let range = csr.entry_range(node);
        let entry_base = range.start;
        let targets = csr.neighbors(node);
        let distances = &entry_distances[range];
        for (slot, (&neighbor, &edge_distance)) in targets.iter().zip(distances).enumerate() {
            let neighbor = neighbor as NodeId;
            // An unreachable (infinite) edge distance can never relax:
            // `distance + ∞` compares above every stored pattern,
            // including `INFINITY_BITS` itself.
            let candidate_bits = (distance + edge_distance).to_bits();
            if candidate_bits < distance_bits[neighbor] {
                if distance_bits[neighbor] == INFINITY_BITS {
                    reached.push(neighbor);
                }
                distance_bits[neighbor] = candidate_bits;
                parent_node[neighbor] = node;
                parent_entry[neighbor] = entry_base + slot;
                queue.push(pack_entry(candidate_bits, neighbor));
            }
        }
    }
}

/// Lane width of [`UniformBfsBatch`]: one `u64` mask packs 64 roots.
pub const UNIFORM_BFS_LANES: usize = 64;

/// Batched multi-root BFS over uniform entry distances: up to
/// [`UNIFORM_BFS_LANES`] shortest-path trees grown in one pass over the
/// edges per level, with per-root membership delivered as bitmask counts.
///
/// This is the engine behind exact HSS on uniform-weight graphs: instead of
/// one level-synchronous BFS per root (`O(V · E)` entry visits overall), each
/// batch advances 64 roots simultaneously — a node holds one `u64` frontier
/// mask and one `u64` undiscovered mask, and an edge scan settles it for all
/// 64 lanes at once (`O(V · E / 64)` plus per-discovery bit work).
///
/// **Output equivalence with the per-root paths** (pinned by the HSS parity
/// proptests): every level processes its nodes in ascending node id — the
/// union of the lanes' frontiers, sorted — and a lane's discoveries happen at
/// exactly the (node, slot) position its own sorted-level BFS would visit,
/// because nodes not in that lane's frontier contribute an empty lane mask.
/// First discovery wins per lane (the undiscovered-mask test), which is the
/// strict-relaxation parent rule of the heap path for uniform distances.
/// Levels stay synchronized across lanes since every tree edge has the same
/// step; distances are not materialized (no caller of the batch needs them).
#[derive(Debug, Clone)]
pub struct UniformBfsBatch {
    /// Per node: lanes that hold the node in the current BFS level.
    frontier: Vec<u64>,
    /// Per node: lanes that discovered the node while scanning this level.
    next_frontier: Vec<u64>,
    /// Per node: lanes that have NOT yet discovered the node.
    undiscovered: Vec<u64>,
    /// Current level, ascending; the union over all lanes.
    active: Vec<NodeId>,
    next_active: Vec<NodeId>,
    /// Nodes whose `undiscovered` mask was touched, for the sparse reset.
    touched: Vec<NodeId>,
}

impl UniformBfsBatch {
    /// Allocate a batch workspace for graphs with `node_count` nodes.
    pub fn new(node_count: usize) -> Self {
        UniformBfsBatch {
            frontier: vec![0; node_count],
            next_frontier: vec![0; node_count],
            undiscovered: vec![u64::MAX; node_count],
            active: Vec::new(),
            next_active: Vec::new(),
            touched: Vec::new(),
        }
    }

    /// Grow the shortest-path trees of up to 64 distinct `roots` at once.
    ///
    /// `on_tree_entry(entry, lanes)` fires once per discovery event: the CSR
    /// entry is the tree edge into the discovered node for exactly `lanes`
    /// roots of this batch. Summed over a whole batch sweep this yields the
    /// HSS tree-membership counts, bit-identical to running the roots one by
    /// one.
    ///
    /// # Panics
    ///
    /// Panics if `entry_distances` is not uniform, `roots` has more than
    /// [`UNIFORM_BFS_LANES`] entries, or a root is out of bounds. Roots must
    /// be distinct (checked in debug builds).
    pub fn run(
        &mut self,
        csr: &CsrGraph,
        entry_distances: &EntryDistances,
        roots: &[NodeId],
        on_tree_entry: impl FnMut(usize, u32),
    ) {
        let step = entry_distances
            .uniform()
            .expect("batched BFS requires uniform entry distances");
        assert!(roots.len() <= UNIFORM_BFS_LANES, "too many roots per batch");
        if entry_distances.uniform_is_total() {
            self.run_inner::<false>(csr, entry_distances.values(), step, roots, on_tree_entry);
        } else {
            self.run_inner::<true>(csr, entry_distances.values(), step, roots, on_tree_entry);
        }
    }

    fn run_inner<const CHECK_STEP: bool>(
        &mut self,
        csr: &CsrGraph,
        entry_distances: &[f64],
        step: f64,
        roots: &[NodeId],
        mut on_tree_entry: impl FnMut(usize, u32),
    ) {
        let UniformBfsBatch {
            frontier,
            next_frontier,
            undiscovered,
            active,
            next_active,
            touched,
        } = self;
        for (lane, &root) in roots.iter().enumerate() {
            let bit = 1u64 << lane;
            debug_assert!(undiscovered[root] & bit != 0, "roots must be distinct");
            if undiscovered[root] == u64::MAX {
                touched.push(root);
            }
            undiscovered[root] &= !bit;
            if frontier[root] == 0 {
                active.push(root);
            }
            frontier[root] |= bit;
        }
        active.sort_unstable();
        while !active.is_empty() {
            for &node in active.iter() {
                let lanes = frontier[node];
                let range = csr.entry_range(node);
                let entry_base = range.start;
                for (slot, &neighbor) in csr.neighbors(node).iter().enumerate() {
                    if CHECK_STEP && entry_distances[entry_base + slot] != step {
                        continue;
                    }
                    let neighbor = neighbor as NodeId;
                    let newly = lanes & undiscovered[neighbor];
                    if newly != 0 {
                        if undiscovered[neighbor] == u64::MAX {
                            touched.push(neighbor);
                        }
                        undiscovered[neighbor] &= !newly;
                        if next_frontier[neighbor] == 0 {
                            next_active.push(neighbor);
                        }
                        next_frontier[neighbor] |= newly;
                        on_tree_entry(entry_base + slot, newly.count_ones());
                    }
                }
            }
            // Clear the old level's masks before installing the new ones (a
            // node can sit in the current level for one lane and be freshly
            // discovered for another).
            for &node in active.iter() {
                frontier[node] = 0;
            }
            next_active.sort_unstable();
            for &node in next_active.iter() {
                frontier[node] = next_frontier[node];
                next_frontier[node] = 0;
            }
            std::mem::swap(active, next_active);
            next_active.clear();
        }
        // Sparse reset for the next batch.
        for &node in touched.iter() {
            undiscovered[node] = u64::MAX;
        }
        touched.clear();
    }
}

/// Single-source shortest paths over a [`CsrGraph`], equivalent to
/// [`dijkstra`] on the originating adjacency-list graph.
pub fn csr_dijkstra(
    csr: &CsrGraph,
    source: NodeId,
    transform: DistanceTransform,
) -> GraphResult<ShortestPathTree> {
    if source >= csr.node_count() {
        return Err(GraphError::NodeOutOfBounds {
            node: source,
            node_count: csr.node_count(),
        });
    }
    let entry_distances = csr_entry_distances(csr, transform);
    let mut scratch = CsrDijkstra::new(csr.node_count());
    scratch.run(csr, &entry_distances, source);
    Ok(ShortestPathTree {
        source,
        distances: (0..csr.node_count()).map(|n| scratch.distance(n)).collect(),
        predecessors: (0..csr.node_count()).map(|n| scratch.parent(n)).collect(),
    })
}

/// Convenience wrapper returning only the shortest-path tree edges rooted at
/// `source` (the quantity the High Salience Skeleton superimposes).
pub fn shortest_path_tree(
    graph: &WeightedGraph,
    source: NodeId,
    transform: DistanceTransform,
) -> GraphResult<Vec<(NodeId, NodeId)>> {
    Ok(dijkstra(graph, source, transform)?.tree_edges())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Direction;

    /// Triangle where the direct edge A-C is weak and the detour A-B-C is strong.
    fn detour_graph() -> WeightedGraph {
        WeightedGraph::from_edges(
            Direction::Undirected,
            3,
            vec![(0, 1, 10.0), (1, 2, 10.0), (0, 2, 1.0)],
        )
        .unwrap()
    }

    #[test]
    fn inverse_transform_prefers_heavy_edges() {
        let g = detour_graph();
        let tree = dijkstra(&g, 0, DistanceTransform::Inverse).unwrap();
        // Distance via the heavy detour: 1/10 + 1/10 = 0.2 < 1/1 = 1.0 direct.
        assert!((tree.distances[2] - 0.2).abs() < 1e-12);
        assert_eq!(tree.predecessors[2], Some(1));
        assert_eq!(tree.path_to(2), Some(vec![0, 1, 2]));
    }

    #[test]
    fn identity_transform_prefers_light_edges() {
        let g = detour_graph();
        let tree = dijkstra(&g, 0, DistanceTransform::Identity).unwrap();
        assert!((tree.distances[2] - 1.0).abs() < 1e-12);
        assert_eq!(tree.predecessors[2], Some(0));
    }

    #[test]
    fn negative_log_transform_orders_like_inverse() {
        let g = detour_graph();
        let inverse = dijkstra(&g, 0, DistanceTransform::Inverse).unwrap();
        let neg_log = dijkstra(&g, 0, DistanceTransform::NegativeLog).unwrap();
        assert_eq!(inverse.predecessors[2], neg_log.predecessors[2]);
    }

    #[test]
    fn unreachable_nodes_have_infinite_distance() {
        let g = WeightedGraph::from_edges(Direction::Directed, 4, vec![(0, 1, 1.0), (2, 3, 1.0)])
            .unwrap();
        let tree = dijkstra(&g, 0, DistanceTransform::Inverse).unwrap();
        assert!(tree.is_reachable(1));
        assert!(!tree.is_reachable(3));
        assert_eq!(tree.path_to(3), None);
    }

    #[test]
    fn zero_weight_edges_are_ignored() {
        let g = WeightedGraph::from_edges(Direction::Undirected, 2, vec![(0, 1, 0.0)]).unwrap();
        let tree = dijkstra(&g, 0, DistanceTransform::Inverse).unwrap();
        assert!(!tree.is_reachable(1));
    }

    #[test]
    fn tree_edges_form_a_tree() {
        // A small dense graph: the SPT must have exactly (reachable − 1) edges.
        let mut g = WeightedGraph::with_nodes(Direction::Undirected, 6);
        for i in 0..6usize {
            for j in (i + 1)..6usize {
                g.add_edge(i, j, ((i + 2 * j) % 7 + 1) as f64).unwrap();
            }
        }
        let tree = dijkstra(&g, 0, DistanceTransform::Inverse).unwrap();
        assert_eq!(tree.tree_edges().len(), 5);
        for node in 1..6 {
            assert!(tree.is_reachable(node));
        }
    }

    #[test]
    fn directed_shortest_paths_respect_direction() {
        let g = WeightedGraph::from_edges(
            Direction::Directed,
            3,
            vec![(0, 1, 5.0), (1, 2, 5.0), (2, 0, 5.0)],
        )
        .unwrap();
        let tree = dijkstra(&g, 0, DistanceTransform::Inverse).unwrap();
        // 0 → 1 → 2 reachable; distances accumulate along direction.
        assert!((tree.distances[1] - 0.2).abs() < 1e-12);
        assert!((tree.distances[2] - 0.4).abs() < 1e-12);
    }

    #[test]
    fn invalid_source_is_rejected() {
        let g = detour_graph();
        assert!(dijkstra(&g, 10, DistanceTransform::Inverse).is_err());
        assert!(shortest_path_tree(&g, 10, DistanceTransform::Inverse).is_err());
    }

    #[test]
    fn shortest_path_tree_wrapper_matches_dijkstra() {
        let g = detour_graph();
        let tree = dijkstra(&g, 0, DistanceTransform::Inverse).unwrap();
        let edges = shortest_path_tree(&g, 0, DistanceTransform::Inverse).unwrap();
        assert_eq!(edges, tree.tree_edges());
    }

    #[test]
    fn csr_dijkstra_matches_adjacency_dijkstra() {
        let g = detour_graph();
        let csr = CsrGraph::from_graph(&g).unwrap();
        for transform in [
            DistanceTransform::Inverse,
            DistanceTransform::NegativeLog,
            DistanceTransform::Identity,
        ] {
            for source in 0..g.node_count() {
                let adjacency = dijkstra(&g, source, transform).unwrap();
                let csr_tree = csr_dijkstra(&csr, source, transform).unwrap();
                assert_eq!(adjacency, csr_tree, "source {source}, {transform:?}");
            }
        }
    }

    #[test]
    fn csr_scratch_is_reusable_across_roots() {
        let mut g = WeightedGraph::with_nodes(Direction::Undirected, 8);
        for i in 0..8usize {
            for j in (i + 1)..8usize {
                if (i + j) % 3 != 0 {
                    g.add_edge(i, j, ((i * 5 + j) % 11 + 1) as f64).unwrap();
                }
            }
        }
        let csr = CsrGraph::from_graph(&g).unwrap();
        let entry_distances = csr_entry_distances(&csr, DistanceTransform::Inverse);
        let mut scratch = CsrDijkstra::new(csr.node_count());
        for source in 0..g.node_count() {
            scratch.run(&csr, &entry_distances, source);
            let reference = dijkstra(&g, source, DistanceTransform::Inverse).unwrap();
            for node in 0..g.node_count() {
                assert_eq!(scratch.distance(node), reference.distances[node]);
                assert_eq!(scratch.parent(node), reference.predecessors[node]);
            }
            // Parent entries resolve to real edges of the original graph.
            for node in 0..g.node_count() {
                if let Some(entry) = scratch.parent_entry(node) {
                    let edge_id = csr.entry_edge_id(entry);
                    let parent = scratch.parent(node).unwrap();
                    assert_eq!(g.edge_index(parent, node), Some(edge_id));
                }
            }
        }
    }

    #[test]
    fn csr_dijkstra_rejects_invalid_source() {
        let g = detour_graph();
        let csr = CsrGraph::from_graph(&g).unwrap();
        assert!(csr_dijkstra(&csr, 10, DistanceTransform::Inverse).is_err());
    }

    #[test]
    fn csr_entry_distances_match_on_the_fly_transform() {
        let g = detour_graph();
        let csr = CsrGraph::from_graph(&g).unwrap();
        let max_weight = g.edges().map(|e| e.weight).fold(0.0_f64, f64::max);
        for transform in [DistanceTransform::Inverse, DistanceTransform::NegativeLog] {
            let distances = csr_entry_distances(&csr, transform);
            for (entry, &distance) in distances.values().iter().enumerate() {
                let weight = csr.entry_weights()[entry];
                assert_eq!(distance, transform.apply(weight, max_weight));
            }
        }
    }

    #[test]
    fn uniform_distances_are_detected() {
        // Unit weights → all inverse distances equal 1.0.
        let mut unit = WeightedGraph::with_nodes(Direction::Undirected, 4);
        unit.add_edge(0, 1, 1.0).unwrap();
        unit.add_edge(1, 2, 1.0).unwrap();
        unit.add_edge(2, 3, 1.0).unwrap();
        let csr = CsrGraph::from_graph(&unit).unwrap();
        assert_eq!(
            csr_entry_distances(&csr, DistanceTransform::Inverse).uniform(),
            Some(1.0)
        );
        // A zero-weight edge (infinite distance) does not break uniformity.
        unit.add_edge(0, 3, 0.0).unwrap();
        let csr = CsrGraph::from_graph(&unit).unwrap();
        assert_eq!(
            csr_entry_distances(&csr, DistanceTransform::Inverse).uniform(),
            Some(1.0)
        );
        // Distinct weights do.
        let g = detour_graph();
        let csr = CsrGraph::from_graph(&g).unwrap();
        assert_eq!(
            csr_entry_distances(&csr, DistanceTransform::Inverse).uniform(),
            None
        );
    }

    #[test]
    fn zero_step_uniform_graphs_take_the_general_path() {
        // All-zero weights under the identity transform: every edge distance
        // is 0.0, so all levels share one packed distance and the BFS path
        // would assign different parents than the heap's by-node-id pops.
        let mut g = WeightedGraph::with_nodes(Direction::Directed, 10);
        for (a, b) in [(0, 9), (0, 1), (1, 2), (2, 8), (9, 8)] {
            g.add_edge(a, b, 0.0).unwrap();
        }
        let csr = CsrGraph::from_graph(&g).unwrap();
        assert_eq!(
            csr_entry_distances(&csr, DistanceTransform::Identity).uniform(),
            None
        );
        for source in g.nodes() {
            let adjacency = dijkstra(&g, source, DistanceTransform::Identity).unwrap();
            let csr_tree = csr_dijkstra(&csr, source, DistanceTransform::Identity).unwrap();
            assert_eq!(adjacency, csr_tree, "source {source}");
        }
    }

    #[test]
    fn uniform_fast_path_matches_adjacency_dijkstra() {
        // A unit-weight graph with branching, cycles, a zero-weight edge and a
        // disconnected part, exercising the BFS fast path.
        let mut g = WeightedGraph::with_nodes(Direction::Undirected, 10);
        for (a, b) in [
            (0, 1),
            (0, 2),
            (1, 3),
            (2, 3),
            (3, 4),
            (4, 5),
            (2, 5),
            (7, 8),
        ] {
            g.add_edge(a, b, 1.0).unwrap();
        }
        g.add_edge(0, 6, 0.0).unwrap(); // unreachable under inverse transform
        let csr = CsrGraph::from_graph(&g).unwrap();
        assert!(csr_entry_distances(&csr, DistanceTransform::Inverse)
            .uniform()
            .is_some());
        for source in g.nodes() {
            let adjacency = dijkstra(&g, source, DistanceTransform::Inverse).unwrap();
            let csr_tree = csr_dijkstra(&csr, source, DistanceTransform::Inverse).unwrap();
            assert_eq!(adjacency, csr_tree, "source {source}");
        }
    }

    /// Pseudo-random weighted graph for engine-parity checks.
    fn scrambled_graph(nodes: usize, seed: u64) -> WeightedGraph {
        let mut g = WeightedGraph::with_nodes(Direction::Undirected, nodes);
        let mut state = seed | 1;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for i in 0..nodes {
            for _ in 0..3 {
                let j = (next() as usize) % nodes;
                if i != j {
                    let weight = (next() % 1000) as f64 / 20.0 + 0.05;
                    g.add_edge(i, j, weight).unwrap();
                }
            }
        }
        g
    }

    #[test]
    fn bucket_queue_pops_in_ascending_key_order() {
        // Keys with duplicate distances and scrambled pushes, over a width
        // small enough to exercise the ring.
        let mut queue = BucketQueue::new(0.25);
        let mut keys = Vec::new();
        let mut state = 0x9E37u64;
        for node in 0..500usize {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let distance = ((state >> 33) % 64) as f64 / 4.0;
            keys.push(pack_entry(distance.to_bits(), node));
        }
        for &key in &keys {
            MinQueue::push(&mut queue, key);
        }
        keys.sort_unstable();
        let mut popped = Vec::new();
        while let Some(key) = MinQueue::pop(&mut queue) {
            popped.push(key);
        }
        assert_eq!(popped, keys);
    }

    #[test]
    fn bucket_queue_overflow_and_rebase_keep_exact_order() {
        // A tiny width spreads these keys across far more than BUCKET_RING
        // buckets, forcing the overflow list and repeated window re-bases.
        let mut queue = BucketQueue::new(1e-3);
        let mut keys = Vec::new();
        for node in 0..300usize {
            let distance = ((node * 7919) % 300) as f64 * 17.0;
            keys.push(pack_entry(distance.to_bits(), node));
        }
        for &key in &keys {
            MinQueue::push(&mut queue, key);
        }
        keys.sort_unstable();
        let mut popped = Vec::new();
        while let Some(key) = MinQueue::pop(&mut queue) {
            popped.push(key);
        }
        assert_eq!(popped, keys);
        // The queue is reusable after a full drain.
        queue.clear();
        MinQueue::push(&mut queue, pack_entry(1.0f64.to_bits(), 7));
        assert_eq!(
            MinQueue::pop(&mut queue),
            Some(pack_entry(1.0f64.to_bits(), 7))
        );
        assert_eq!(MinQueue::pop(&mut queue), None);
    }

    #[test]
    fn bucketed_engine_matches_heap_engine() {
        let g = scrambled_graph(60, 42);
        let csr = CsrGraph::from_graph(&g).unwrap();
        for transform in [
            DistanceTransform::Inverse,
            DistanceTransform::NegativeLog,
            DistanceTransform::Identity,
        ] {
            let entry_distances = csr_entry_distances(&csr, transform);
            assert!(entry_distances.bucket_width().is_some());
            let mut heap = CsrDijkstra::with_engine(csr.node_count(), SsspEngine::BinaryHeap);
            let mut bucketed = CsrDijkstra::with_engine(csr.node_count(), SsspEngine::Bucketed);
            for source in 0..csr.node_count() {
                heap.run(&csr, &entry_distances, source);
                bucketed.run(&csr, &entry_distances, source);
                // Same pop order ⇒ same relaxation order ⇒ identical reached
                // sequence, distances, parents and parent entries.
                assert_eq!(heap.reached(), bucketed.reached(), "source {source}");
                for node in 0..csr.node_count() {
                    assert_eq!(
                        heap.distance(node).to_bits(),
                        bucketed.distance(node).to_bits()
                    );
                    assert_eq!(heap.parent(node), bucketed.parent(node));
                    assert_eq!(heap.parent_entry(node), bucketed.parent_entry(node));
                }
            }
        }
    }

    #[test]
    fn auto_engine_matches_adjacency_on_weighted_graphs() {
        let g = scrambled_graph(40, 7);
        let csr = CsrGraph::from_graph(&g).unwrap();
        for source in 0..g.node_count() {
            let adjacency = dijkstra(&g, source, DistanceTransform::Inverse).unwrap();
            let csr_tree = csr_dijkstra(&csr, source, DistanceTransform::Inverse).unwrap();
            assert_eq!(adjacency, csr_tree, "source {source}");
        }
    }

    #[test]
    fn batched_bfs_matches_per_root_trees() {
        // The uniform_fast_path graph plus extra lanes: compare per-entry
        // tree-membership counts of the batch against per-root CsrDijkstra.
        let mut g = WeightedGraph::with_nodes(Direction::Undirected, 10);
        for (a, b) in [
            (0, 1),
            (0, 2),
            (1, 3),
            (2, 3),
            (3, 4),
            (4, 5),
            (2, 5),
            (7, 8),
        ] {
            g.add_edge(a, b, 1.0).unwrap();
        }
        g.add_edge(0, 6, 0.0).unwrap(); // infinite distance: must be skipped
        let csr = CsrGraph::from_graph(&g).unwrap();
        let entry_distances = csr_entry_distances(&csr, DistanceTransform::Inverse);
        assert!(entry_distances.uniform().is_some());
        assert!(!entry_distances.uniform_is_total());

        let roots: Vec<NodeId> = (0..csr.node_count()).collect();
        let mut batch_counts = vec![0usize; csr.entry_count()];
        let mut batch = UniformBfsBatch::new(csr.node_count());
        batch.run(&csr, &entry_distances, &roots, |entry, lanes| {
            batch_counts[entry] += lanes as usize;
        });

        let mut per_root_counts = vec![0usize; csr.entry_count()];
        let mut scratch = CsrDijkstra::new(csr.node_count());
        for root in 0..csr.node_count() {
            scratch.run(&csr, &entry_distances, root);
            for &node in scratch.reached() {
                if let Some(entry) = scratch.parent_entry(node) {
                    per_root_counts[entry] += 1;
                }
            }
        }
        assert_eq!(batch_counts, per_root_counts);
    }

    #[test]
    fn batched_bfs_is_reusable_across_batches() {
        // A directed unit-weight cycle with a chord, swept in two batches of
        // two roots each; totals must match a single four-root batch.
        let mut g = WeightedGraph::with_nodes(Direction::Directed, 4);
        for (a, b) in [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)] {
            g.add_edge(a, b, 1.0).unwrap();
        }
        let csr = CsrGraph::from_graph(&g).unwrap();
        let entry_distances = csr_entry_distances(&csr, DistanceTransform::Inverse);
        assert!(entry_distances.uniform_is_total());

        let mut split_counts = vec![0usize; csr.entry_count()];
        let mut batch = UniformBfsBatch::new(csr.node_count());
        for roots in [[0, 1], [2, 3]] {
            batch.run(&csr, &entry_distances, &roots, |entry, lanes| {
                split_counts[entry] += lanes as usize;
            });
        }
        let mut whole_counts = vec![0usize; csr.entry_count()];
        batch.run(&csr, &entry_distances, &[0, 1, 2, 3], |entry, lanes| {
            whole_counts[entry] += lanes as usize;
        });
        assert_eq!(split_counts, whole_counts);
    }

    #[test]
    fn bucket_width_is_tuned_from_the_distance_distribution() {
        // Uniform distances need no bucketing.
        let mut unit = WeightedGraph::with_nodes(Direction::Undirected, 3);
        unit.add_edge(0, 1, 1.0).unwrap();
        unit.add_edge(1, 2, 1.0).unwrap();
        let csr = CsrGraph::from_graph(&unit).unwrap();
        assert_eq!(
            csr_entry_distances(&csr, DistanceTransform::Inverse).bucket_width(),
            None
        );
        // All-zero distances (identity transform on zero weights) cannot be
        // bucketed either: the general path falls back to the heap.
        let mut zeros = WeightedGraph::with_nodes(Direction::Directed, 3);
        zeros.add_edge(0, 1, 0.0).unwrap();
        zeros.add_edge(1, 2, 0.0).unwrap();
        let csr = CsrGraph::from_graph(&zeros).unwrap();
        assert_eq!(
            csr_entry_distances(&csr, DistanceTransform::Identity).bucket_width(),
            None
        );
        // A weighted graph yields a positive width no larger than the median
        // entry distance.
        let g = detour_graph();
        let csr = CsrGraph::from_graph(&g).unwrap();
        let distances = csr_entry_distances(&csr, DistanceTransform::Inverse);
        let width = distances.bucket_width().unwrap();
        assert!(width > 0.0 && width <= 1.0);
    }

    #[test]
    fn path_to_source_is_trivial() {
        let g = detour_graph();
        let tree = dijkstra(&g, 0, DistanceTransform::Inverse).unwrap();
        assert_eq!(tree.path_to(0), Some(vec![0]));
        assert_eq!(tree.distances[0], 0.0);
    }
}

#[cfg(test)]
mod review_repro {
    use super::*;
    use crate::{CsrGraph, Direction, WeightedGraph};

    #[test]
    fn review_overflow_interleaved_parity() {
        // Chain 0-1-...-2999 with distance 1e-3 per edge (Identity), plus one
        // long edge 0 -> 3000 with distance 2.0. Tuned width ~1e-3 puts the
        // long edge ~2000 buckets ahead (> BUCKET_RING) -> overflow.
        let n = 3002usize;
        let mut g = WeightedGraph::with_nodes(Direction::Undirected, n);
        for i in 0..2999 {
            g.add_edge(i, i + 1, 1e-3).unwrap();
        }
        g.add_edge(0, 3000, 2.0).unwrap();
        // A child of the overflow node: its discovery time exposes when the
        // overflow key actually pops.
        g.add_edge(3000, 3001, 1e-3).unwrap();
        let csr = CsrGraph::from_graph(&g).unwrap();
        let ed = csr_entry_distances(&csr, DistanceTransform::Identity);
        eprintln!("bucket_width = {:?}", ed.bucket_width());
        let mut heap = CsrDijkstra::with_engine(csr.node_count(), SsspEngine::BinaryHeap);
        let mut bucketed = CsrDijkstra::with_engine(csr.node_count(), SsspEngine::Bucketed);
        heap.run(&csr, &ed, 0);
        bucketed.run(&csr, &ed, 0);
        assert_eq!(heap.reached(), bucketed.reached(), "reached order parity");
    }
}
