//! Dijkstra's algorithm and shortest-path trees.
//!
//! The High Salience Skeleton (Grady et al., 2012; paper Section III-B) is the
//! superposition of the shortest-path trees rooted at every node, where path
//! length is measured on a *distance* transform of the (proximity-like) edge
//! weights. Both the transform and the tree construction live here.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::csr::CsrGraph;
use crate::error::{GraphError, GraphResult};
use crate::graph::{NodeId, WeightedGraph};

/// How proximity-like edge weights are converted into distances for
/// shortest-path computations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DistanceTransform {
    /// `distance = 1 / weight` (the convention of the original HSS paper).
    #[default]
    Inverse,
    /// `distance = −ln(weight / max_weight)`, an alternative that compresses
    /// very heavy tails; exposed for the ablation benchmarks.
    NegativeLog,
    /// Use the weights directly as distances (for graphs that already carry
    /// distance semantics).
    Identity,
}

impl DistanceTransform {
    /// Convert a single weight into a distance. `max_weight` is the maximum
    /// weight in the graph (used only by [`DistanceTransform::NegativeLog`]).
    pub fn apply(self, weight: f64, max_weight: f64) -> f64 {
        match self {
            DistanceTransform::Inverse => {
                if weight > 0.0 {
                    1.0 / weight
                } else {
                    f64::INFINITY
                }
            }
            DistanceTransform::NegativeLog => {
                if weight > 0.0 && max_weight > 0.0 {
                    // Add a tiny offset so the heaviest edge has a small positive distance.
                    (max_weight / weight).ln() + 1e-12
                } else {
                    f64::INFINITY
                }
            }
            DistanceTransform::Identity => {
                if weight >= 0.0 {
                    weight
                } else {
                    f64::INFINITY
                }
            }
        }
    }
}

/// Result of a single-source shortest path computation.
#[derive(Debug, Clone, PartialEq)]
pub struct ShortestPathTree {
    /// The root of the tree.
    pub source: NodeId,
    /// Shortest distance from the root to each node (infinity when unreachable).
    pub distances: Vec<f64>,
    /// Predecessor of each node on its shortest path (`None` for the root and
    /// unreachable nodes).
    pub predecessors: Vec<Option<NodeId>>,
}

impl ShortestPathTree {
    /// Whether `node` is reachable from the source.
    pub fn is_reachable(&self, node: NodeId) -> bool {
        self.distances.get(node).is_some_and(|d| d.is_finite())
    }

    /// The tree edges as `(parent, child)` pairs.
    pub fn tree_edges(&self) -> Vec<(NodeId, NodeId)> {
        self.predecessors
            .iter()
            .enumerate()
            .filter_map(|(child, parent)| parent.map(|p| (p, child)))
            .collect()
    }

    /// Reconstruct the shortest path from the source to `target`
    /// (inclusive of both endpoints), or `None` if unreachable.
    pub fn path_to(&self, target: NodeId) -> Option<Vec<NodeId>> {
        if !self.is_reachable(target) {
            return None;
        }
        let mut path = vec![target];
        let mut current = target;
        while let Some(parent) = self.predecessors[current] {
            path.push(parent);
            current = parent;
        }
        path.reverse();
        Some(path)
    }
}

/// Entry in the Dijkstra priority queue (min-heap by distance).
#[derive(Debug, Clone, PartialEq)]
struct QueueEntry {
    distance: f64,
    node: NodeId,
}

impl Eq for QueueEntry {}

impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse so BinaryHeap (a max-heap) pops the smallest distance first.
        other
            .distance
            .partial_cmp(&self.distance)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Single-source shortest paths with Dijkstra's algorithm on transformed
/// edge weights.
///
/// Edge weights are interpreted as proximities and converted to distances via
/// `transform`; zero-weight edges become unreachable (infinite distance) under
/// the inverse and negative-log transforms.
pub fn dijkstra(
    graph: &WeightedGraph,
    source: NodeId,
    transform: DistanceTransform,
) -> GraphResult<ShortestPathTree> {
    if source >= graph.node_count() {
        return Err(GraphError::NodeOutOfBounds {
            node: source,
            node_count: graph.node_count(),
        });
    }
    let max_weight = graph.edges().map(|e| e.weight).fold(0.0_f64, f64::max);

    let node_count = graph.node_count();
    let mut distances = vec![f64::INFINITY; node_count];
    let mut predecessors: Vec<Option<NodeId>> = vec![None; node_count];
    let mut settled = vec![false; node_count];
    let mut heap = BinaryHeap::new();

    distances[source] = 0.0;
    heap.push(QueueEntry {
        distance: 0.0,
        node: source,
    });

    while let Some(QueueEntry { distance, node }) = heap.pop() {
        if settled[node] {
            continue;
        }
        settled[node] = true;
        for (neighbor, weight) in graph.out_neighbors(node) {
            let edge_distance = transform.apply(weight, max_weight);
            if !edge_distance.is_finite() {
                continue;
            }
            let candidate = distance + edge_distance;
            if candidate < distances[neighbor] {
                distances[neighbor] = candidate;
                predecessors[neighbor] = Some(node);
                heap.push(QueueEntry {
                    distance: candidate,
                    node: neighbor,
                });
            }
        }
    }

    Ok(ShortestPathTree {
        source,
        distances,
        predecessors,
    })
}

/// Precomputed transformed distances of every CSR adjacency entry, plus the
/// structural flag steering [`CsrDijkstra`]'s fast path.
#[derive(Debug, Clone)]
pub struct EntryDistances {
    values: Vec<f64>,
    /// `Some(d)` when every *finite* entry distance equals `d` (and at least
    /// one entry is finite) — the case of uniform-weight and unweighted
    /// networks under any transform. Dijkstra then degenerates to
    /// level-synchronous BFS, which [`CsrDijkstra::run`] exploits heap-free
    /// with bit-identical output.
    /// Equal distances of exactly `0.0` do NOT qualify: with a zero step
    /// every level shares the same packed distance bits, so the heap pops
    /// interleave across levels by node id and level-synchronous processing
    /// would assign different parents.
    uniform: Option<f64>,
}

impl EntryDistances {
    /// The transformed distance per CSR adjacency entry.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The uniform finite distance, when the graph has one (see struct docs).
    pub fn uniform(&self) -> Option<f64> {
        self.uniform
    }
}

/// Precompute the transformed distance of every CSR adjacency entry.
///
/// Applying the transform once per entry (instead of once per entry *per
/// Dijkstra root*) is one of the two wins of the CSR hot path; the other is
/// the cache-friendly flat layout. The values are identical to what
/// [`dijkstra`] computes on the fly, since `max_weight` is the same maximum
/// (each undirected edge merely appears twice in the entry array).
pub fn csr_entry_distances(csr: &CsrGraph, transform: DistanceTransform) -> EntryDistances {
    let max_weight = csr.entry_weights().iter().copied().fold(0.0_f64, f64::max);
    let values: Vec<f64> = csr
        .entry_weights()
        .iter()
        .map(|&weight| transform.apply(weight, max_weight))
        .collect();
    let mut uniform = None;
    for &value in &values {
        if !value.is_finite() {
            continue;
        }
        match uniform {
            None => uniform = Some(value),
            Some(d) if d == value => {}
            Some(_) => {
                uniform = None;
                break;
            }
        }
    }
    // A zero step cannot drive the BFS path (see field docs).
    if uniform == Some(0.0) {
        uniform = None;
    }
    EntryDistances { values, uniform }
}

/// Sentinel for "no parent" in [`CsrDijkstra`]'s dense parent arrays.
const NO_PARENT: usize = usize::MAX;

/// A heap entry packed into one integer: distance bits in the high 64 bits,
/// node id in the low 64.
///
/// All distances reaching the heap are finite and non-negative (they are sums
/// of non-negative transformed edge distances, and `-0.0` cannot arise from
/// `0.0 + x` with `x ≥ 0`), and for such floats the IEEE-754 bit pattern is
/// monotone in the value. Popping the minimum packed key therefore yields
/// exactly the ascending `(distance, node)` order of [`QueueEntry`]'s
/// comparator — same pops, same relaxation order, same tree — while costing a
/// single integer comparison per sift instead of a float/tie-break chain.
/// Bit pattern of `f64::INFINITY` — the "unreached" marker in the packed
/// distance array.
const INFINITY_BITS: u64 = 0x7FF0_0000_0000_0000;

#[inline]
fn pack_entry(distance_bits: u64, node: NodeId) -> u128 {
    (u128::from(distance_bits) << 64) | node as u128
}

#[inline]
fn unpack_entry(key: u128) -> (u64, NodeId) {
    ((key >> 64) as u64, (key & u128::from(u64::MAX)) as usize)
}

/// A min-queue over packed `(distance bits, node)` keys.
///
/// Every key in the queue is unique — a strict relaxation can never re-insert
/// a node at a distance it already holds — so any correct priority queue pops
/// the same sequence (ascending key order); the binary heap over packed
/// integers is simply the fastest safe implementation measured. A single
/// `u128` comparison replaces the float-compare-plus-tie-break chain of
/// [`QueueEntry`].
#[derive(Debug, Clone, Default)]
struct PackedMinHeap {
    data: BinaryHeap<std::cmp::Reverse<u128>>,
}

impl PackedMinHeap {
    fn clear(&mut self) {
        self.data.clear();
    }

    #[inline]
    fn push(&mut self, key: u128) {
        self.data.push(std::cmp::Reverse(key));
    }

    #[inline]
    fn pop(&mut self) -> Option<u128> {
        self.data.pop().map(|reverse| reverse.0)
    }
}

/// Reusable single-source shortest-path workspace over a [`CsrGraph`].
///
/// The High Salience Skeleton runs one Dijkstra per node; allocating the
/// distance/parent/heap structures per root dominated the seed implementation
/// on small trees. This scratch allocates once and resets only the entries
/// touched by the previous run, so consecutive roots on a sparse graph cost
/// `O(reached · log reached)` with no allocation at all.
///
/// The relaxation order, heap tie-breaking and floating-point operations are
/// exactly those of [`dijkstra`], so for any root the resulting tree is
/// bit-identical to the adjacency-list implementation (pinned by the parity
/// test suite).
#[derive(Debug, Clone)]
pub struct CsrDijkstra {
    /// Distance per node as an IEEE-754 bit pattern. All reachable distances
    /// are non-negative finite floats, for which the bit pattern is monotone
    /// in the value, so `u64` comparisons order exactly like `f64` ones (with
    /// [`INFINITY_BITS`] above every finite distance).
    distance_bits: Vec<u64>,
    parent_node: Vec<usize>,
    parent_entry: Vec<usize>,
    reached: Vec<NodeId>,
    heap: PackedMinHeap,
    /// Frontier buffers of the uniform-distance (BFS) fast path.
    current_level: Vec<NodeId>,
    next_level: Vec<NodeId>,
}

impl CsrDijkstra {
    /// Allocate a workspace for graphs with `node_count` nodes.
    pub fn new(node_count: usize) -> Self {
        CsrDijkstra {
            distance_bits: vec![INFINITY_BITS; node_count],
            parent_node: vec![NO_PARENT; node_count],
            parent_entry: vec![NO_PARENT; node_count],
            reached: Vec::with_capacity(node_count),
            heap: PackedMinHeap::default(),
            current_level: Vec::new(),
            next_level: Vec::new(),
        }
    }

    /// Sparse reset: undo only what the previous run touched.
    fn reset(&mut self) {
        for &node in &self.reached {
            self.distance_bits[node] = INFINITY_BITS;
            self.parent_node[node] = NO_PARENT;
            self.parent_entry[node] = NO_PARENT;
        }
        self.reached.clear();
        self.heap.clear();
    }

    /// Run Dijkstra from `source` over `csr`, using the precomputed
    /// [`csr_entry_distances`] as per-entry edge lengths.
    ///
    /// When the entry distances are uniform (unweighted or uniform-weight
    /// networks) the run takes a heap-free level-synchronous BFS path; the
    /// resulting tree is bit-identical either way (see [`EntryDistances`]).
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of bounds for the workspace, or if
    /// `entry_distances` is shorter than the graph's entry array.
    pub fn run(&mut self, csr: &CsrGraph, entry_distances: &EntryDistances, source: NodeId) {
        assert!(source < self.distance_bits.len(), "source out of bounds");
        assert!(entry_distances.values().len() >= csr.entry_count());
        self.reset();
        self.distance_bits[source] = 0.0_f64.to_bits();
        self.reached.push(source);
        if let Some(step) = entry_distances.uniform() {
            self.run_uniform(csr, entry_distances.values(), step, source);
        } else {
            self.run_general(csr, entry_distances.values(), source);
        }
    }

    /// The general path: lazy-deletion Dijkstra over the packed min-heap.
    fn run_general(&mut self, csr: &CsrGraph, entry_distances: &[f64], source: NodeId) {
        self.heap.push(pack_entry(0.0_f64.to_bits(), source));
        while let Some(top) = self.heap.pop() {
            let (top_bits, node) = unpack_entry(top);
            // Stale-pop check, equivalent to a `settled` flag: a strict
            // relaxation can never re-push a node at its current (minimal)
            // distance, so the first pop of a node carries exactly its stored
            // bits and every later pop carries strictly larger ones.
            if top_bits != self.distance_bits[node] {
                continue;
            }
            let distance = f64::from_bits(top_bits);
            let range = csr.entry_range(node);
            let entry_base = range.start;
            let targets = csr.neighbors(node);
            let distances = &entry_distances[range];
            for (slot, (&neighbor, &edge_distance)) in targets.iter().zip(distances).enumerate() {
                let neighbor = neighbor as NodeId;
                // An unreachable (infinite) edge distance can never relax:
                // `distance + ∞` compares above every stored pattern,
                // including `INFINITY_BITS` itself.
                let candidate_bits = (distance + edge_distance).to_bits();
                if candidate_bits < self.distance_bits[neighbor] {
                    if self.distance_bits[neighbor] == INFINITY_BITS {
                        self.reached.push(neighbor);
                    }
                    self.distance_bits[neighbor] = candidate_bits;
                    self.parent_node[neighbor] = node;
                    self.parent_entry[neighbor] = entry_base + slot;
                    self.heap.push(pack_entry(candidate_bits, neighbor));
                }
            }
        }
    }

    /// The uniform-distance path: Dijkstra with one finite edge length `step`
    /// degenerates to BFS processed level by level.
    ///
    /// Output equivalence with [`Self::run_general`]: the heap would pop
    /// nodes in ascending `(distance, node)` order, i.e. level by level and
    /// by ascending node id within a level (every level-`k` node holds the
    /// identical accumulated float `k·step`). Processing each sorted level in
    /// order reproduces that relaxation order exactly, and the first-toucher
    /// parent assignment matches the heap path's strict relaxation (a later
    /// equal-distance candidate never replaces an earlier one). The level
    /// distance accumulates as `previous + step` — the same float expression
    /// the heap path evaluates — so distances are bit-identical too.
    fn run_uniform(&mut self, csr: &CsrGraph, entry_distances: &[f64], step: f64, source: NodeId) {
        let mut current = std::mem::take(&mut self.current_level);
        let mut next = std::mem::take(&mut self.next_level);
        current.clear();
        next.clear();
        current.push(source);
        let mut level_distance = 0.0_f64;
        while !current.is_empty() {
            let next_distance = level_distance + step;
            let next_bits = next_distance.to_bits();
            for &node in &current {
                let range = csr.entry_range(node);
                let entry_base = range.start;
                let targets = csr.neighbors(node);
                let distances = &entry_distances[range];
                for (slot, (&neighbor, &edge_distance)) in targets.iter().zip(distances).enumerate()
                {
                    let neighbor = neighbor as NodeId;
                    // Non-finite entries (e.g. zero-weight edges under the
                    // inverse transform) never relax.
                    if edge_distance != step {
                        continue;
                    }
                    if self.distance_bits[neighbor] == INFINITY_BITS {
                        self.distance_bits[neighbor] = next_bits;
                        self.parent_node[neighbor] = node;
                        self.parent_entry[neighbor] = entry_base + slot;
                        self.reached.push(neighbor);
                        next.push(neighbor);
                    }
                }
            }
            // The heap path settles a level in ascending node order.
            next.sort_unstable();
            std::mem::swap(&mut current, &mut next);
            next.clear();
            level_distance = next_distance;
        }
        self.current_level = current;
        self.next_level = next;
    }

    /// Shortest distance from the current root to `node`.
    pub fn distance(&self, node: NodeId) -> f64 {
        f64::from_bits(self.distance_bits[node])
    }

    /// Parent of `node` in the current shortest-path tree.
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        match self.parent_node[node] {
            NO_PARENT => None,
            parent => Some(parent),
        }
    }

    /// CSR entry index of the tree edge into `node`, if any. Combined with
    /// [`CsrGraph::entry_edge_id`] this maps a tree edge straight to its dense
    /// edge id, with no hash lookup.
    pub fn parent_entry(&self, node: NodeId) -> Option<usize> {
        match self.parent_entry[node] {
            NO_PARENT => None,
            entry => Some(entry),
        }
    }

    /// The nodes reached by the current run (the root first, then in order of
    /// first relaxation).
    pub fn reached(&self) -> &[NodeId] {
        &self.reached
    }
}

/// Single-source shortest paths over a [`CsrGraph`], equivalent to
/// [`dijkstra`] on the originating adjacency-list graph.
pub fn csr_dijkstra(
    csr: &CsrGraph,
    source: NodeId,
    transform: DistanceTransform,
) -> GraphResult<ShortestPathTree> {
    if source >= csr.node_count() {
        return Err(GraphError::NodeOutOfBounds {
            node: source,
            node_count: csr.node_count(),
        });
    }
    let entry_distances = csr_entry_distances(csr, transform);
    let mut scratch = CsrDijkstra::new(csr.node_count());
    scratch.run(csr, &entry_distances, source);
    Ok(ShortestPathTree {
        source,
        distances: (0..csr.node_count()).map(|n| scratch.distance(n)).collect(),
        predecessors: (0..csr.node_count()).map(|n| scratch.parent(n)).collect(),
    })
}

/// Convenience wrapper returning only the shortest-path tree edges rooted at
/// `source` (the quantity the High Salience Skeleton superimposes).
pub fn shortest_path_tree(
    graph: &WeightedGraph,
    source: NodeId,
    transform: DistanceTransform,
) -> GraphResult<Vec<(NodeId, NodeId)>> {
    Ok(dijkstra(graph, source, transform)?.tree_edges())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Direction;

    /// Triangle where the direct edge A-C is weak and the detour A-B-C is strong.
    fn detour_graph() -> WeightedGraph {
        WeightedGraph::from_edges(
            Direction::Undirected,
            3,
            vec![(0, 1, 10.0), (1, 2, 10.0), (0, 2, 1.0)],
        )
        .unwrap()
    }

    #[test]
    fn inverse_transform_prefers_heavy_edges() {
        let g = detour_graph();
        let tree = dijkstra(&g, 0, DistanceTransform::Inverse).unwrap();
        // Distance via the heavy detour: 1/10 + 1/10 = 0.2 < 1/1 = 1.0 direct.
        assert!((tree.distances[2] - 0.2).abs() < 1e-12);
        assert_eq!(tree.predecessors[2], Some(1));
        assert_eq!(tree.path_to(2), Some(vec![0, 1, 2]));
    }

    #[test]
    fn identity_transform_prefers_light_edges() {
        let g = detour_graph();
        let tree = dijkstra(&g, 0, DistanceTransform::Identity).unwrap();
        assert!((tree.distances[2] - 1.0).abs() < 1e-12);
        assert_eq!(tree.predecessors[2], Some(0));
    }

    #[test]
    fn negative_log_transform_orders_like_inverse() {
        let g = detour_graph();
        let inverse = dijkstra(&g, 0, DistanceTransform::Inverse).unwrap();
        let neg_log = dijkstra(&g, 0, DistanceTransform::NegativeLog).unwrap();
        assert_eq!(inverse.predecessors[2], neg_log.predecessors[2]);
    }

    #[test]
    fn unreachable_nodes_have_infinite_distance() {
        let g = WeightedGraph::from_edges(Direction::Directed, 4, vec![(0, 1, 1.0), (2, 3, 1.0)])
            .unwrap();
        let tree = dijkstra(&g, 0, DistanceTransform::Inverse).unwrap();
        assert!(tree.is_reachable(1));
        assert!(!tree.is_reachable(3));
        assert_eq!(tree.path_to(3), None);
    }

    #[test]
    fn zero_weight_edges_are_ignored() {
        let g = WeightedGraph::from_edges(Direction::Undirected, 2, vec![(0, 1, 0.0)]).unwrap();
        let tree = dijkstra(&g, 0, DistanceTransform::Inverse).unwrap();
        assert!(!tree.is_reachable(1));
    }

    #[test]
    fn tree_edges_form_a_tree() {
        // A small dense graph: the SPT must have exactly (reachable − 1) edges.
        let mut g = WeightedGraph::with_nodes(Direction::Undirected, 6);
        for i in 0..6usize {
            for j in (i + 1)..6usize {
                g.add_edge(i, j, ((i + 2 * j) % 7 + 1) as f64).unwrap();
            }
        }
        let tree = dijkstra(&g, 0, DistanceTransform::Inverse).unwrap();
        assert_eq!(tree.tree_edges().len(), 5);
        for node in 1..6 {
            assert!(tree.is_reachable(node));
        }
    }

    #[test]
    fn directed_shortest_paths_respect_direction() {
        let g = WeightedGraph::from_edges(
            Direction::Directed,
            3,
            vec![(0, 1, 5.0), (1, 2, 5.0), (2, 0, 5.0)],
        )
        .unwrap();
        let tree = dijkstra(&g, 0, DistanceTransform::Inverse).unwrap();
        // 0 → 1 → 2 reachable; distances accumulate along direction.
        assert!((tree.distances[1] - 0.2).abs() < 1e-12);
        assert!((tree.distances[2] - 0.4).abs() < 1e-12);
    }

    #[test]
    fn invalid_source_is_rejected() {
        let g = detour_graph();
        assert!(dijkstra(&g, 10, DistanceTransform::Inverse).is_err());
        assert!(shortest_path_tree(&g, 10, DistanceTransform::Inverse).is_err());
    }

    #[test]
    fn shortest_path_tree_wrapper_matches_dijkstra() {
        let g = detour_graph();
        let tree = dijkstra(&g, 0, DistanceTransform::Inverse).unwrap();
        let edges = shortest_path_tree(&g, 0, DistanceTransform::Inverse).unwrap();
        assert_eq!(edges, tree.tree_edges());
    }

    #[test]
    fn csr_dijkstra_matches_adjacency_dijkstra() {
        let g = detour_graph();
        let csr = CsrGraph::from_graph(&g).unwrap();
        for transform in [
            DistanceTransform::Inverse,
            DistanceTransform::NegativeLog,
            DistanceTransform::Identity,
        ] {
            for source in 0..g.node_count() {
                let adjacency = dijkstra(&g, source, transform).unwrap();
                let csr_tree = csr_dijkstra(&csr, source, transform).unwrap();
                assert_eq!(adjacency, csr_tree, "source {source}, {transform:?}");
            }
        }
    }

    #[test]
    fn csr_scratch_is_reusable_across_roots() {
        let mut g = WeightedGraph::with_nodes(Direction::Undirected, 8);
        for i in 0..8usize {
            for j in (i + 1)..8usize {
                if (i + j) % 3 != 0 {
                    g.add_edge(i, j, ((i * 5 + j) % 11 + 1) as f64).unwrap();
                }
            }
        }
        let csr = CsrGraph::from_graph(&g).unwrap();
        let entry_distances = csr_entry_distances(&csr, DistanceTransform::Inverse);
        let mut scratch = CsrDijkstra::new(csr.node_count());
        for source in 0..g.node_count() {
            scratch.run(&csr, &entry_distances, source);
            let reference = dijkstra(&g, source, DistanceTransform::Inverse).unwrap();
            for node in 0..g.node_count() {
                assert_eq!(scratch.distance(node), reference.distances[node]);
                assert_eq!(scratch.parent(node), reference.predecessors[node]);
            }
            // Parent entries resolve to real edges of the original graph.
            for node in 0..g.node_count() {
                if let Some(entry) = scratch.parent_entry(node) {
                    let edge_id = csr.entry_edge_id(entry);
                    let parent = scratch.parent(node).unwrap();
                    assert_eq!(g.edge_index(parent, node), Some(edge_id));
                }
            }
        }
    }

    #[test]
    fn csr_dijkstra_rejects_invalid_source() {
        let g = detour_graph();
        let csr = CsrGraph::from_graph(&g).unwrap();
        assert!(csr_dijkstra(&csr, 10, DistanceTransform::Inverse).is_err());
    }

    #[test]
    fn csr_entry_distances_match_on_the_fly_transform() {
        let g = detour_graph();
        let csr = CsrGraph::from_graph(&g).unwrap();
        let max_weight = g.edges().map(|e| e.weight).fold(0.0_f64, f64::max);
        for transform in [DistanceTransform::Inverse, DistanceTransform::NegativeLog] {
            let distances = csr_entry_distances(&csr, transform);
            for (entry, &distance) in distances.values().iter().enumerate() {
                let weight = csr.entry_weights()[entry];
                assert_eq!(distance, transform.apply(weight, max_weight));
            }
        }
    }

    #[test]
    fn uniform_distances_are_detected() {
        // Unit weights → all inverse distances equal 1.0.
        let mut unit = WeightedGraph::with_nodes(Direction::Undirected, 4);
        unit.add_edge(0, 1, 1.0).unwrap();
        unit.add_edge(1, 2, 1.0).unwrap();
        unit.add_edge(2, 3, 1.0).unwrap();
        let csr = CsrGraph::from_graph(&unit).unwrap();
        assert_eq!(
            csr_entry_distances(&csr, DistanceTransform::Inverse).uniform(),
            Some(1.0)
        );
        // A zero-weight edge (infinite distance) does not break uniformity.
        unit.add_edge(0, 3, 0.0).unwrap();
        let csr = CsrGraph::from_graph(&unit).unwrap();
        assert_eq!(
            csr_entry_distances(&csr, DistanceTransform::Inverse).uniform(),
            Some(1.0)
        );
        // Distinct weights do.
        let g = detour_graph();
        let csr = CsrGraph::from_graph(&g).unwrap();
        assert_eq!(
            csr_entry_distances(&csr, DistanceTransform::Inverse).uniform(),
            None
        );
    }

    #[test]
    fn zero_step_uniform_graphs_take_the_general_path() {
        // All-zero weights under the identity transform: every edge distance
        // is 0.0, so all levels share one packed distance and the BFS path
        // would assign different parents than the heap's by-node-id pops.
        let mut g = WeightedGraph::with_nodes(Direction::Directed, 10);
        for (a, b) in [(0, 9), (0, 1), (1, 2), (2, 8), (9, 8)] {
            g.add_edge(a, b, 0.0).unwrap();
        }
        let csr = CsrGraph::from_graph(&g).unwrap();
        assert_eq!(
            csr_entry_distances(&csr, DistanceTransform::Identity).uniform(),
            None
        );
        for source in g.nodes() {
            let adjacency = dijkstra(&g, source, DistanceTransform::Identity).unwrap();
            let csr_tree = csr_dijkstra(&csr, source, DistanceTransform::Identity).unwrap();
            assert_eq!(adjacency, csr_tree, "source {source}");
        }
    }

    #[test]
    fn uniform_fast_path_matches_adjacency_dijkstra() {
        // A unit-weight graph with branching, cycles, a zero-weight edge and a
        // disconnected part, exercising the BFS fast path.
        let mut g = WeightedGraph::with_nodes(Direction::Undirected, 10);
        for (a, b) in [
            (0, 1),
            (0, 2),
            (1, 3),
            (2, 3),
            (3, 4),
            (4, 5),
            (2, 5),
            (7, 8),
        ] {
            g.add_edge(a, b, 1.0).unwrap();
        }
        g.add_edge(0, 6, 0.0).unwrap(); // unreachable under inverse transform
        let csr = CsrGraph::from_graph(&g).unwrap();
        assert!(csr_entry_distances(&csr, DistanceTransform::Inverse)
            .uniform()
            .is_some());
        for source in g.nodes() {
            let adjacency = dijkstra(&g, source, DistanceTransform::Inverse).unwrap();
            let csr_tree = csr_dijkstra(&csr, source, DistanceTransform::Inverse).unwrap();
            assert_eq!(adjacency, csr_tree, "source {source}");
        }
    }

    #[test]
    fn path_to_source_is_trivial() {
        let g = detour_graph();
        let tree = dijkstra(&g, 0, DistanceTransform::Inverse).unwrap();
        assert_eq!(tree.path_to(0), Some(vec![0]));
        assert_eq!(tree.distances[0], 0.0);
    }
}
