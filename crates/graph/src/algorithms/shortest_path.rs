//! Dijkstra's algorithm and shortest-path trees.
//!
//! The High Salience Skeleton (Grady et al., 2012; paper Section III-B) is the
//! superposition of the shortest-path trees rooted at every node, where path
//! length is measured on a *distance* transform of the (proximity-like) edge
//! weights. Both the transform and the tree construction live here.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::error::{GraphError, GraphResult};
use crate::graph::{NodeId, WeightedGraph};

/// How proximity-like edge weights are converted into distances for
/// shortest-path computations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DistanceTransform {
    /// `distance = 1 / weight` (the convention of the original HSS paper).
    #[default]
    Inverse,
    /// `distance = −ln(weight / max_weight)`, an alternative that compresses
    /// very heavy tails; exposed for the ablation benchmarks.
    NegativeLog,
    /// Use the weights directly as distances (for graphs that already carry
    /// distance semantics).
    Identity,
}

impl DistanceTransform {
    /// Convert a single weight into a distance. `max_weight` is the maximum
    /// weight in the graph (used only by [`DistanceTransform::NegativeLog`]).
    pub fn apply(self, weight: f64, max_weight: f64) -> f64 {
        match self {
            DistanceTransform::Inverse => {
                if weight > 0.0 {
                    1.0 / weight
                } else {
                    f64::INFINITY
                }
            }
            DistanceTransform::NegativeLog => {
                if weight > 0.0 && max_weight > 0.0 {
                    // Add a tiny offset so the heaviest edge has a small positive distance.
                    (max_weight / weight).ln() + 1e-12
                } else {
                    f64::INFINITY
                }
            }
            DistanceTransform::Identity => {
                if weight >= 0.0 {
                    weight
                } else {
                    f64::INFINITY
                }
            }
        }
    }
}

/// Result of a single-source shortest path computation.
#[derive(Debug, Clone, PartialEq)]
pub struct ShortestPathTree {
    /// The root of the tree.
    pub source: NodeId,
    /// Shortest distance from the root to each node (infinity when unreachable).
    pub distances: Vec<f64>,
    /// Predecessor of each node on its shortest path (`None` for the root and
    /// unreachable nodes).
    pub predecessors: Vec<Option<NodeId>>,
}

impl ShortestPathTree {
    /// Whether `node` is reachable from the source.
    pub fn is_reachable(&self, node: NodeId) -> bool {
        self.distances.get(node).is_some_and(|d| d.is_finite())
    }

    /// The tree edges as `(parent, child)` pairs.
    pub fn tree_edges(&self) -> Vec<(NodeId, NodeId)> {
        self.predecessors
            .iter()
            .enumerate()
            .filter_map(|(child, parent)| parent.map(|p| (p, child)))
            .collect()
    }

    /// Reconstruct the shortest path from the source to `target`
    /// (inclusive of both endpoints), or `None` if unreachable.
    pub fn path_to(&self, target: NodeId) -> Option<Vec<NodeId>> {
        if !self.is_reachable(target) {
            return None;
        }
        let mut path = vec![target];
        let mut current = target;
        while let Some(parent) = self.predecessors[current] {
            path.push(parent);
            current = parent;
        }
        path.reverse();
        Some(path)
    }
}

/// Entry in the Dijkstra priority queue (min-heap by distance).
#[derive(Debug, PartialEq)]
struct QueueEntry {
    distance: f64,
    node: NodeId,
}

impl Eq for QueueEntry {}

impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse so BinaryHeap (a max-heap) pops the smallest distance first.
        other
            .distance
            .partial_cmp(&self.distance)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Single-source shortest paths with Dijkstra's algorithm on transformed
/// edge weights.
///
/// Edge weights are interpreted as proximities and converted to distances via
/// `transform`; zero-weight edges become unreachable (infinite distance) under
/// the inverse and negative-log transforms.
pub fn dijkstra(
    graph: &WeightedGraph,
    source: NodeId,
    transform: DistanceTransform,
) -> GraphResult<ShortestPathTree> {
    if source >= graph.node_count() {
        return Err(GraphError::NodeOutOfBounds {
            node: source,
            node_count: graph.node_count(),
        });
    }
    let max_weight = graph.edges().map(|e| e.weight).fold(0.0_f64, f64::max);

    let node_count = graph.node_count();
    let mut distances = vec![f64::INFINITY; node_count];
    let mut predecessors: Vec<Option<NodeId>> = vec![None; node_count];
    let mut settled = vec![false; node_count];
    let mut heap = BinaryHeap::new();

    distances[source] = 0.0;
    heap.push(QueueEntry {
        distance: 0.0,
        node: source,
    });

    while let Some(QueueEntry { distance, node }) = heap.pop() {
        if settled[node] {
            continue;
        }
        settled[node] = true;
        for (neighbor, weight) in graph.out_neighbors(node) {
            let edge_distance = transform.apply(weight, max_weight);
            if !edge_distance.is_finite() {
                continue;
            }
            let candidate = distance + edge_distance;
            if candidate < distances[neighbor] {
                distances[neighbor] = candidate;
                predecessors[neighbor] = Some(node);
                heap.push(QueueEntry {
                    distance: candidate,
                    node: neighbor,
                });
            }
        }
    }

    Ok(ShortestPathTree {
        source,
        distances,
        predecessors,
    })
}

/// Convenience wrapper returning only the shortest-path tree edges rooted at
/// `source` (the quantity the High Salience Skeleton superimposes).
pub fn shortest_path_tree(
    graph: &WeightedGraph,
    source: NodeId,
    transform: DistanceTransform,
) -> GraphResult<Vec<(NodeId, NodeId)>> {
    Ok(dijkstra(graph, source, transform)?.tree_edges())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Direction;

    /// Triangle where the direct edge A-C is weak and the detour A-B-C is strong.
    fn detour_graph() -> WeightedGraph {
        WeightedGraph::from_edges(
            Direction::Undirected,
            3,
            vec![(0, 1, 10.0), (1, 2, 10.0), (0, 2, 1.0)],
        )
        .unwrap()
    }

    #[test]
    fn inverse_transform_prefers_heavy_edges() {
        let g = detour_graph();
        let tree = dijkstra(&g, 0, DistanceTransform::Inverse).unwrap();
        // Distance via the heavy detour: 1/10 + 1/10 = 0.2 < 1/1 = 1.0 direct.
        assert!((tree.distances[2] - 0.2).abs() < 1e-12);
        assert_eq!(tree.predecessors[2], Some(1));
        assert_eq!(tree.path_to(2), Some(vec![0, 1, 2]));
    }

    #[test]
    fn identity_transform_prefers_light_edges() {
        let g = detour_graph();
        let tree = dijkstra(&g, 0, DistanceTransform::Identity).unwrap();
        assert!((tree.distances[2] - 1.0).abs() < 1e-12);
        assert_eq!(tree.predecessors[2], Some(0));
    }

    #[test]
    fn negative_log_transform_orders_like_inverse() {
        let g = detour_graph();
        let inverse = dijkstra(&g, 0, DistanceTransform::Inverse).unwrap();
        let neg_log = dijkstra(&g, 0, DistanceTransform::NegativeLog).unwrap();
        assert_eq!(inverse.predecessors[2], neg_log.predecessors[2]);
    }

    #[test]
    fn unreachable_nodes_have_infinite_distance() {
        let g = WeightedGraph::from_edges(Direction::Directed, 4, vec![(0, 1, 1.0), (2, 3, 1.0)])
            .unwrap();
        let tree = dijkstra(&g, 0, DistanceTransform::Inverse).unwrap();
        assert!(tree.is_reachable(1));
        assert!(!tree.is_reachable(3));
        assert_eq!(tree.path_to(3), None);
    }

    #[test]
    fn zero_weight_edges_are_ignored() {
        let g = WeightedGraph::from_edges(Direction::Undirected, 2, vec![(0, 1, 0.0)]).unwrap();
        let tree = dijkstra(&g, 0, DistanceTransform::Inverse).unwrap();
        assert!(!tree.is_reachable(1));
    }

    #[test]
    fn tree_edges_form_a_tree() {
        // A small dense graph: the SPT must have exactly (reachable − 1) edges.
        let mut g = WeightedGraph::with_nodes(Direction::Undirected, 6);
        for i in 0..6usize {
            for j in (i + 1)..6usize {
                g.add_edge(i, j, ((i + 2 * j) % 7 + 1) as f64).unwrap();
            }
        }
        let tree = dijkstra(&g, 0, DistanceTransform::Inverse).unwrap();
        assert_eq!(tree.tree_edges().len(), 5);
        for node in 1..6 {
            assert!(tree.is_reachable(node));
        }
    }

    #[test]
    fn directed_shortest_paths_respect_direction() {
        let g = WeightedGraph::from_edges(
            Direction::Directed,
            3,
            vec![(0, 1, 5.0), (1, 2, 5.0), (2, 0, 5.0)],
        )
        .unwrap();
        let tree = dijkstra(&g, 0, DistanceTransform::Inverse).unwrap();
        // 0 → 1 → 2 reachable; distances accumulate along direction.
        assert!((tree.distances[1] - 0.2).abs() < 1e-12);
        assert!((tree.distances[2] - 0.4).abs() < 1e-12);
    }

    #[test]
    fn invalid_source_is_rejected() {
        let g = detour_graph();
        assert!(dijkstra(&g, 10, DistanceTransform::Inverse).is_err());
        assert!(shortest_path_tree(&g, 10, DistanceTransform::Inverse).is_err());
    }

    #[test]
    fn shortest_path_tree_wrapper_matches_dijkstra() {
        let g = detour_graph();
        let tree = dijkstra(&g, 0, DistanceTransform::Inverse).unwrap();
        let edges = shortest_path_tree(&g, 0, DistanceTransform::Inverse).unwrap();
        assert_eq!(edges, tree.tree_edges());
    }

    #[test]
    fn path_to_source_is_trivial() {
        let g = detour_graph();
        let tree = dijkstra(&g, 0, DistanceTransform::Inverse).unwrap();
        assert_eq!(tree.path_to(0), Some(vec![0]));
        assert_eq!(tree.distances[0], 0.0);
    }
}
