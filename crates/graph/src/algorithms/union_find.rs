//! Disjoint-set (union–find) data structure.

/// A union–find structure with path compression and union by rank.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u32>,
    components: usize,
}

impl UnionFind {
    /// Create a structure over `size` singleton sets.
    pub fn new(size: usize) -> Self {
        UnionFind {
            parent: (0..size).collect(),
            rank: vec![0; size],
            components: size,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets currently represented.
    pub fn component_count(&self) -> usize {
        self.components
    }

    /// Find the representative of `element`'s set (with path compression).
    pub fn find(&mut self, element: usize) -> usize {
        let mut root = element;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        // Path compression.
        let mut current = element;
        while self.parent[current] != root {
            let next = self.parent[current];
            self.parent[current] = root;
            current = next;
        }
        root
    }

    /// Merge the sets containing `a` and `b`. Returns `true` if they were
    /// previously disjoint.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let root_a = self.find(a);
        let root_b = self.find(b);
        if root_a == root_b {
            return false;
        }
        match self.rank[root_a].cmp(&self.rank[root_b]) {
            std::cmp::Ordering::Less => self.parent[root_a] = root_b,
            std::cmp::Ordering::Greater => self.parent[root_b] = root_a,
            std::cmp::Ordering::Equal => {
                self.parent[root_b] = root_a;
                self.rank[root_a] += 1;
            }
        }
        self.components -= 1;
        true
    }

    /// Whether `a` and `b` belong to the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_with_singletons() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.len(), 5);
        assert!(!uf.is_empty());
        assert_eq!(uf.component_count(), 5);
        for i in 0..5 {
            assert_eq!(uf.find(i), i);
        }
    }

    #[test]
    fn union_merges_components() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert_eq!(uf.component_count(), 3);
        assert!(uf.connected(0, 1));
        assert!(!uf.connected(0, 2));
        assert!(uf.union(1, 3));
        assert!(uf.connected(0, 2));
        assert_eq!(uf.component_count(), 2);
    }

    #[test]
    fn union_of_same_component_is_noop() {
        let mut uf = UnionFind::new(3);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert_eq!(uf.component_count(), 2);
    }

    #[test]
    fn transitive_chains_collapse() {
        let mut uf = UnionFind::new(100);
        for i in 0..99 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.component_count(), 1);
        assert!(uf.connected(0, 99));
        // All elements share the same representative after compression.
        let root = uf.find(0);
        for i in 0..100 {
            assert_eq!(uf.find(i), root);
        }
    }

    #[test]
    fn empty_structure() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.component_count(), 0);
    }
}
