//! Kruskal maximum spanning trees.
//!
//! The Maximum Spanning Tree backbone (paper Section III-B) keeps, for each
//! connected component, the tree of edges with maximum total weight. It is one
//! of the parameter-free baselines the Noise-Corrected backbone is compared
//! against.

use crate::algorithms::union_find::UnionFind;
use crate::view::GraphView;

/// Compute a maximum spanning forest with Kruskal's algorithm and return the
/// dense indices of the selected edges.
///
/// Directed graphs are treated as undirected (edge direction is ignored when
/// checking connectivity), mirroring the reference implementation. When
/// several edges share the same weight the tie is broken by insertion order,
/// so the result is deterministic.
pub fn maximum_spanning_tree<G: GraphView>(graph: &G) -> Vec<usize> {
    let mut edge_indices: Vec<usize> = (0..graph.edge_count()).collect();
    // Sort by descending weight; stable sort keeps insertion order for ties.
    edge_indices.sort_by(|&a, &b| {
        let wa = graph.edge(a).expect("index in range").weight;
        let wb = graph.edge(b).expect("index in range").weight;
        wb.partial_cmp(&wa).unwrap_or(std::cmp::Ordering::Equal)
    });

    let mut union_find = UnionFind::new(graph.node_count());
    let mut selected = Vec::new();
    for index in edge_indices {
        let edge = graph.edge(index).expect("index in range");
        if edge.source == edge.target {
            continue; // self-loops never belong to a spanning tree
        }
        if union_find.union(edge.source, edge.target) {
            selected.push(index);
        }
    }
    selected.sort_unstable();
    selected
}

/// Total weight of the maximum spanning forest.
pub fn maximum_spanning_tree_weight<G: GraphView>(graph: &G) -> f64 {
    maximum_spanning_tree(graph)
        .into_iter()
        .map(|index| graph.edge(index).expect("index in range").weight)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::components::{component_count, is_connected};
    use crate::graph::{Direction, WeightedGraph};

    #[test]
    fn picks_heaviest_edges_on_triangle() {
        let g = WeightedGraph::from_edges(
            Direction::Undirected,
            3,
            vec![(0, 1, 1.0), (1, 2, 3.0), (0, 2, 2.0)],
        )
        .unwrap();
        let tree = maximum_spanning_tree(&g);
        assert_eq!(tree.len(), 2);
        // The weight-1 edge (index 0) must be dropped.
        assert!(!tree.contains(&0));
        assert!((maximum_spanning_tree_weight(&g) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn spanning_tree_has_n_minus_one_edges_when_connected() {
        let mut g = WeightedGraph::with_nodes(Direction::Undirected, 8);
        for i in 0..8usize {
            for j in (i + 1)..8usize {
                g.add_edge(i, j, ((i * 3 + j * 7) % 11 + 1) as f64).unwrap();
            }
        }
        let tree = maximum_spanning_tree(&g);
        assert_eq!(tree.len(), 7);
        let backbone = g.subgraph_with_edges(&tree).unwrap();
        assert!(is_connected(&backbone));
    }

    #[test]
    fn spanning_forest_on_disconnected_graph() {
        let g = WeightedGraph::from_edges(
            Direction::Undirected,
            6,
            vec![
                (0, 1, 1.0),
                (1, 2, 2.0),
                (0, 2, 3.0),
                (3, 4, 1.0),
                (4, 5, 2.0),
                (3, 5, 3.0),
            ],
        )
        .unwrap();
        let tree = maximum_spanning_tree(&g);
        assert_eq!(tree.len(), 4); // two components × (3 − 1) edges
        let backbone = g.subgraph_with_edges(&tree).unwrap();
        assert_eq!(component_count(&backbone), 2);
    }

    #[test]
    fn total_weight_is_maximal_on_small_graph() {
        // Exhaustive check on a 4-node graph: no other spanning tree beats Kruskal.
        let edges = vec![
            (0usize, 1usize, 4.0),
            (0, 2, 3.0),
            (0, 3, 2.0),
            (1, 2, 5.0),
            (1, 3, 1.0),
            (2, 3, 6.0),
        ];
        let g = WeightedGraph::from_edges(Direction::Undirected, 4, edges.clone()).unwrap();
        let kruskal_weight = maximum_spanning_tree_weight(&g);

        // Enumerate all 3-edge subsets that span the graph.
        let mut best = 0.0f64;
        let m = edges.len();
        for a in 0..m {
            for b in (a + 1)..m {
                for c in (b + 1)..m {
                    let subset = [a, b, c];
                    let sub = g.subgraph_with_edges(&subset).unwrap();
                    if is_connected(&sub) {
                        let weight: f64 = subset.iter().map(|&i| g.edge(i).unwrap().weight).sum();
                        best = best.max(weight);
                    }
                }
            }
        }
        assert!((kruskal_weight - best).abs() < 1e-12);
    }

    #[test]
    fn self_loops_are_skipped() {
        let g =
            WeightedGraph::from_edges(Direction::Undirected, 2, vec![(0, 0, 100.0), (0, 1, 1.0)])
                .unwrap();
        let tree = maximum_spanning_tree(&g);
        assert_eq!(tree.len(), 1);
        assert_eq!(g.edge(tree[0]).unwrap().weight, 1.0);
    }

    #[test]
    fn directed_graph_treated_as_undirected() {
        let g = WeightedGraph::from_edges(
            Direction::Directed,
            3,
            vec![(0, 1, 1.0), (1, 0, 5.0), (1, 2, 2.0)],
        )
        .unwrap();
        let tree = maximum_spanning_tree(&g);
        // Only one of the two antiparallel edges is needed for connectivity.
        assert_eq!(tree.len(), 2);
        let weights: Vec<f64> = tree.iter().map(|&i| g.edge(i).unwrap().weight).collect();
        assert!(weights.contains(&5.0));
        assert!(weights.contains(&2.0));
    }

    #[test]
    fn empty_graph_yields_empty_tree() {
        let g = WeightedGraph::undirected();
        assert!(maximum_spanning_tree(&g).is_empty());
        assert_eq!(maximum_spanning_tree_weight(&g), 0.0);
    }
}
