//! A fluent builder for weighted graphs.

use crate::error::GraphResult;
use crate::graph::{Direction, NodeId, WeightedGraph};

/// Fluent builder around [`WeightedGraph`] for constructing test fixtures and
/// example networks.
///
/// ```
/// use backboning_graph::GraphBuilder;
///
/// let graph = GraphBuilder::undirected()
///     .edge("A", "B", 3.0)
///     .edge("B", "C", 1.0)
///     .build()
///     .unwrap();
/// assert_eq!(graph.node_count(), 3);
/// assert_eq!(graph.edge_count(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    direction: Direction,
    labeled_edges: Vec<(String, String, f64)>,
    indexed_edges: Vec<(NodeId, NodeId, f64)>,
    extra_nodes: Vec<String>,
    unlabeled_nodes: usize,
}

impl GraphBuilder {
    /// Start building a directed graph.
    pub fn directed() -> Self {
        Self::new(Direction::Directed)
    }

    /// Start building an undirected graph.
    pub fn undirected() -> Self {
        Self::new(Direction::Undirected)
    }

    /// Start building a graph with the given direction semantics.
    pub fn new(direction: Direction) -> Self {
        GraphBuilder {
            direction,
            labeled_edges: Vec::new(),
            indexed_edges: Vec::new(),
            extra_nodes: Vec::new(),
            unlabeled_nodes: 0,
        }
    }

    /// Add an edge between two labeled nodes (creating the nodes as needed).
    pub fn edge(
        mut self,
        source: impl Into<String>,
        target: impl Into<String>,
        weight: f64,
    ) -> Self {
        self.labeled_edges
            .push((source.into(), target.into(), weight));
        self
    }

    /// Add an edge between two node indices. Indices beyond the current node
    /// count are created automatically at build time.
    pub fn indexed_edge(mut self, source: NodeId, target: NodeId, weight: f64) -> Self {
        self.indexed_edges.push((source, target, weight));
        self
    }

    /// Add an isolated labeled node.
    pub fn node(mut self, label: impl Into<String>) -> Self {
        self.extra_nodes.push(label.into());
        self
    }

    /// Reserve `count` unlabeled nodes (ids `0..count`), useful together with
    /// [`Self::indexed_edge`].
    pub fn nodes(mut self, count: usize) -> Self {
        self.unlabeled_nodes = self.unlabeled_nodes.max(count);
        self
    }

    /// Build the graph.
    pub fn build(self) -> GraphResult<WeightedGraph> {
        let mut graph = WeightedGraph::new(self.direction);
        for _ in 0..self.unlabeled_nodes {
            graph.add_node();
        }
        let max_index = self.indexed_edges.iter().map(|&(s, t, _)| s.max(t)).max();
        if let Some(max_index) = max_index {
            while graph.node_count() <= max_index {
                graph.add_node();
            }
        }
        for (source, target, weight) in self.indexed_edges {
            graph.add_edge(source, target, weight)?;
        }
        for label in self.extra_nodes {
            graph.ensure_node(&label);
        }
        for (source, target, weight) in self.labeled_edges {
            let source = graph.ensure_node(&source);
            let target = graph.ensure_node(&target);
            graph.add_edge(source, target, weight)?;
        }
        Ok(graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_labeled_graph() {
        let graph = GraphBuilder::undirected()
            .edge("A", "B", 3.0)
            .edge("B", "C", 1.0)
            .node("D")
            .build()
            .unwrap();
        assert_eq!(graph.node_count(), 4);
        assert_eq!(graph.edge_count(), 2);
        assert!(graph.node_by_label("D").is_some());
        assert_eq!(graph.isolates().len(), 1);
    }

    #[test]
    fn builds_indexed_graph_and_grows_node_set() {
        let graph = GraphBuilder::directed()
            .nodes(2)
            .indexed_edge(0, 1, 1.0)
            .indexed_edge(4, 2, 2.0)
            .build()
            .unwrap();
        assert_eq!(graph.node_count(), 5);
        assert!(graph.has_edge(4, 2));
    }

    #[test]
    fn duplicate_labeled_edges_accumulate() {
        let graph = GraphBuilder::directed()
            .edge("A", "B", 1.0)
            .edge("A", "B", 2.0)
            .build()
            .unwrap();
        let a = graph.node_by_label("A").unwrap();
        let b = graph.node_by_label("B").unwrap();
        assert_eq!(graph.edge_weight(a, b), Some(3.0));
    }

    #[test]
    fn invalid_weight_propagates_error() {
        assert!(GraphBuilder::directed()
            .edge("A", "B", -1.0)
            .build()
            .is_err());
    }

    #[test]
    fn direction_is_respected() {
        let directed = GraphBuilder::directed()
            .edge("A", "B", 1.0)
            .build()
            .unwrap();
        assert!(directed.is_directed());
        let undirected = GraphBuilder::undirected()
            .edge("A", "B", 1.0)
            .build()
            .unwrap();
        assert!(!undirected.is_directed());
    }
}
