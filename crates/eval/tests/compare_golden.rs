//! Golden-file regression test for the `backbone compare` JSON report, plus
//! the thread-count invariance contract of the noise-stability Monte Carlo.
//!
//! The bundled example edge list (`docs/examples/trade.tsv`) goes in with
//! the `backbone compare` defaults (`nc,df,hss`, matched at the top 10% of
//! edges, 8 multiplicative-noise resamples at ±0.1, seed 4242), and the
//! resulting stable JSON (`to_json_stable`, no timings) must match the
//! committed golden file byte for byte — the same bytes the server's
//! `GET /graphs/trade/compare` emits (the CLI's `-o json` adds a
//! `score_wall_ms` timing per method on top of these).
//!
//! The golden file lives in `crates/eval/tests/golden/`. To regenerate it
//! after an intentional behaviour change:
//!
//! ```sh
//! BACKBONING_REGEN_GOLDEN=1 cargo test -p backboning_eval --test compare_golden
//! ```

use std::path::PathBuf;

use backboning_eval::comparison::DEFAULT_METHODS;
use backboning_eval::{Comparison, ComparisonConfig};
use backboning_graph::io::{read_edge_list_file, EdgeListOptions};
use backboning_graph::{Direction, WeightedGraph};

fn fixture_graph() -> WeightedGraph {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../docs/examples/trade.tsv");
    let options = EdgeListOptions::with_direction(Direction::Undirected);
    read_edge_list_file(&path, &options).expect("bundled example edge list parses")
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/compare_trade.json")
}

#[test]
fn default_compare_report_matches_its_golden_json() {
    let graph = fixture_graph();
    assert_eq!(graph.node_count(), 8);
    assert_eq!(graph.edge_count(), 28);

    let report = Comparison::new(ComparisonConfig::default())
        .expect("default config is valid")
        .run(&graph)
        .expect("comparison runs on the fixture");
    let mut produced = report.to_json_stable();
    produced.push('\n');

    let path = golden_path();
    if std::env::var("BACKBONING_REGEN_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &produced).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} (regenerate with BACKBONING_REGEN_GOLDEN=1): {e}",
            path.display()
        )
    });
    assert_eq!(
        produced,
        golden,
        "compare report drifted from {}",
        path.display()
    );

    // Structural sanity on top of the byte comparison: every default method
    // succeeded and the matched target is round(0.1 × 28) = 3.
    assert_eq!(report.matched_edges, 3);
    for method_report in &report.methods {
        let metrics = method_report
            .metrics
            .as_ref()
            .unwrap_or_else(|e| panic!("{} failed: {e}", method_report.method));
        assert_eq!(metrics.edges, 3);
        assert!(metrics.noise_stability.is_some());
    }
    assert_eq!(report.methods.len(), DEFAULT_METHODS.len());
}

/// The noise-stability Monte Carlo fans trials out across worker threads;
/// the mean is accumulated in trial order, so the whole report — down to the
/// JSON bytes — must be identical at any thread count.
#[test]
fn compare_report_is_invariant_across_thread_counts() {
    let graph = fixture_graph();
    let reference = Comparison::new(ComparisonConfig {
        threads: 1,
        ..ComparisonConfig::default()
    })
    .unwrap()
    .run(&graph)
    .unwrap();
    for threads in [2, 3, 8] {
        let run = Comparison::new(ComparisonConfig {
            threads,
            ..ComparisonConfig::default()
        })
        .unwrap()
        .run(&graph)
        .unwrap();
        assert_eq!(run, reference, "threads = {threads}");
        assert_eq!(
            run.to_json_stable(),
            reference.to_json_stable(),
            "threads = {threads}: JSON bytes differ"
        );
    }
}
