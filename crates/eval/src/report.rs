//! Plain-text table formatting for the reproduction reports.

use std::fmt::Write as _;

/// A simple fixed-width text table used by every reproduction binary.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Create a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (padded or truncated to the header width).
    pub fn add_row<S: Into<String>>(&mut self, row: Vec<S>) {
        let mut row: Vec<String> = row.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Render the table as an aligned plain-text string.
    pub fn render(&self) -> String {
        let columns = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (column, cell) in row.iter().enumerate().take(columns) {
                widths[column] = widths[column].max(cell.len());
            }
        }
        let mut output = String::new();
        let write_row = |output: &mut String, cells: &[String]| {
            for (column, cell) in cells.iter().enumerate().take(columns) {
                if column > 0 {
                    output.push_str("  ");
                }
                let _ = write!(output, "{cell:<width$}", width = widths[column]);
            }
            output.push('\n');
        };
        write_row(&mut output, &self.header);
        let separator: Vec<String> = widths.iter().map(|&w| "-".repeat(w)).collect();
        write_row(&mut output, &separator);
        for row in &self.rows {
            write_row(&mut output, row);
        }
        output
    }
}

/// Format a float with three decimal places, rendering non-finite values as "n/a".
pub fn fmt3(value: f64) -> String {
    if value.is_finite() {
        format!("{value:.3}")
    } else {
        "n/a".to_string()
    }
}

/// Format an optional float with three decimal places, rendering `None` as "n/a".
pub fn fmt_opt(value: Option<f64>) -> String {
    match value {
        Some(v) => fmt3(v),
        None => "n/a".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut table = TextTable::new(vec!["Method", "Score"]);
        table.add_row(vec!["NC", "1.000"]);
        table.add_row(vec!["Disparity Filter", "0.5"]);
        let rendered = table.render();
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Method"));
        assert!(lines[1].starts_with("---"));
        assert!(lines[3].contains("Disparity Filter"));
        assert_eq!(table.row_count(), 2);
    }

    #[test]
    fn short_rows_are_padded() {
        let mut table = TextTable::new(vec!["A", "B", "C"]);
        table.add_row(vec!["x"]);
        let rendered = table.render();
        assert!(rendered.contains('x'));
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt3(1.23456), "1.235");
        assert_eq!(fmt3(f64::NAN), "n/a");
        assert_eq!(fmt3(f64::INFINITY), "n/a");
        assert_eq!(fmt_opt(Some(0.5)), "0.500");
        assert_eq!(fmt_opt(None), "n/a");
    }
}
